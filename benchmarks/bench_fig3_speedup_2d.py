"""Figure 3: distribution of 2D-kernel speedups per ordering × machine.

Shape targets (paper §4.3): fewer and less extreme outliers than the
1D figure, and a smaller spread between reordering strategies.
"""

import time

import numpy as np

from repro.harness import experiment_speedups
from repro.harness.report import render_boxplot_figure
from repro.machine import architecture_names
from repro.obs.perf import metric


def test_fig3_speedup_distribution_2d(benchmark, full_sweep, emit,
                                      record_bench):
    t0 = time.perf_counter()
    study2 = benchmark.pedantic(
        experiment_speedups,
        args=(full_sweep, architecture_names(), "2d"),
        rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    study1 = experiment_speedups(full_sweep, architecture_names(), "1d")
    emit("fig3_speedup_2d",
         render_boxplot_figure(study2, architecture_names(),
                               "Figure 3: 2D SpMV speedup after "
                               "reordering"))
    # less extreme spread than 1D: compare pooled IQR widths
    def pooled_iqr(study):
        widths = []
        for (arch, o), box in study.boxes.items():
            widths.append(box[3] - box[1])
        return np.mean(widths)

    record_bench("fig3_speedup_2d", {
        "wall_seconds": metric(wall, unit="s"),
        "pooled_iqr_2d": metric(float(pooled_iqr(study2))),
        "pooled_iqr_1d": metric(float(pooled_iqr(study1))),
    })
    assert pooled_iqr(study2) <= pooled_iqr(study1) * 1.05
