"""§4.3: the 2D kernel versus the 1D kernel with the same ordering.

Shape targets: the 2D kernel typically matches or beats 1D; a
noticeable fraction of matrices gains >1.1x (paper: 25 % on Rome, more
on the machines with more cores); the largest individual gain is large
(paper: ~10x).
"""

import time

import numpy as np

from repro.harness import two_d_vs_one_d
from repro.harness.report import render_two_d_vs_one_d
from repro.machine import architecture_names
from repro.obs.perf import metric


def test_2d_vs_1d(benchmark, full_sweep, emit, record_bench):
    def run():
        return {arch: two_d_vs_one_d(full_sweep, arch)
                for arch in architecture_names()}

    t0 = time.perf_counter()
    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    text = "\n".join(render_two_d_vs_one_d(ratios[a], a)
                     for a in architecture_names())
    emit("2d_vs_1d", text)
    record_bench("2d_vs_1d", {
        "wall_seconds": metric(wall, unit="s"),
        "max_gain": metric(float(max(r.max() for r in ratios.values())),
                           polarity="higher"),
        **{f"median_{a.lower().replace(' ', '_')}":
           metric(float(np.median(r)), polarity="higher")
           for a, r in ratios.items()},
    })

    for arch, r in ratios.items():
        assert np.median(r) >= 0.95, arch  # 2D rarely loses
    # machines with more cores gain more from balancing (paper §4.3)
    frac_rome = np.mean(ratios["Rome"] > 1.1)
    frac_milanb = np.mean(ratios["Milan B"] > 1.1)
    assert frac_milanb >= frac_rome
    # some matrix somewhere gains substantially
    assert max(r.max() for r in ratios.values()) > 1.5
