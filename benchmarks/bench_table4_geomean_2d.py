"""Table 4: geometric-mean 2D speedups, orderings × architectures.

Shape targets (paper Table 4 + §4.3): GP still leads but by less than
in 1D; the GP and HP means shrink relative to their 1D values while
RCM, ND, AMD and Gray all improve — the load-balancing component of
the partitioners' advantage disappears once the kernel balances
nonzeros itself.
"""

import numpy as np

from repro.harness import experiment_speedups, render_geomean_table
from repro.harness.experiments import REORDERINGS
from repro.machine import architecture_names


def _overall(study):
    out = {}
    for o in REORDERINGS:
        vals = [study.geomeans[(a, o)] for a in architecture_names()]
        out[o] = float(np.exp(np.mean(np.log(vals))))
    return out


def test_table4_geomeans_2d(benchmark, full_sweep, emit, emit_json):
    study2 = benchmark.pedantic(
        experiment_speedups,
        args=(full_sweep, architecture_names(), "2d"),
        rounds=1, iterations=1)
    study1 = experiment_speedups(full_sweep, architecture_names(), "1d")
    emit("table4_geomean_2d",
         render_geomean_table(study2, architecture_names(),
                              "Table 4: geomean 2D speedups"))
    emit_json("table4_geomean_2d", {
        f"{arch}/{o}": study2.geomeans[(arch, o)]
        for arch in architecture_names() for o in REORDERINGS})
    o1, o2 = _overall(study1), _overall(study2)
    # GP's and HP's advantages shrink with the balanced kernel...
    assert o2["GP"] < o1["GP"]
    # ...while the non-balancing orderings improve
    for o in ("RCM", "ND", "AMD", "Gray"):
        assert o2[o] > o1[o], o
    # Gray remains the weakest
    assert o2["Gray"] == min(o2.values())
