"""Zero-cost-when-disabled gate for the observability layer.

The obs instrumentation (spans on every reorder / reuse-stats /
model-eval stage, registry counters on the statistics caches) sits on
the sweep's hottest paths, so its *disabled* cost must be noise.

Like ``bench_model_fastpath``, the hard gate is **deterministic**, not
a wall-clock A/B (CI machines are noisy; an inline tiny sweep has a
~±5 % run-to-run floor that would flake a 5 % gate):

1. one instrumented sweep run is executed with *counting* wrappers
   around ``span(...)`` and ``Counter.inc`` to learn exactly how many
   instrumentation calls the workload makes;
2. tight-loop microbenchmarks measure the per-call cost of the
   disabled span fast path and a counter increment (these are stable
   to a few ns);
3. the gate asserts ``calls x per-call cost < 5 %`` of the workload's
   wall time.  If tracing were ever accidentally left enabled by
   default, step 2 would measure the ~10x dearer enabled path and
   blow the gate.

A median-of-interleaved-runs A/B (instrumented vs a no-obs build with
``span``/``Counter.inc`` monkeypatched away) is still measured and
reported in ``benchmarks/output/<tier>/bench_obs_overhead.json`` as
end-to-end evidence, but only sanity-checked loosely.
"""

from __future__ import annotations

import statistics
import time
from contextlib import nullcontext

from repro.generators import build_corpus
from repro.harness import OrderingCache, SweepEngine
from repro.machine import get_architecture
from repro.obs import metrics as metrics_mod
from repro.obs import trace as trace_mod
from repro.util import format_table

from conftest import SEED

#: interleaved repetitions per arm for the (informational) macro A/B.
REPEATS = 5
MATRICES = 4
OVERHEAD_GATE = 0.05
#: the macro A/B only guards against egregious regressions.
MACRO_SANITY = 0.50

_NULL = nullcontext()


def _null_span(name, **args):
    return _NULL


def _run_workload(corpus) -> float:
    arch = get_architecture("Rome")
    engine = SweepEngine(corpus, [arch], ["RCM", "Gray"],
                         cache=OrderingCache(), seed=SEED)
    t0 = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - t0
    assert result.failed == []
    return elapsed


# ----------------------------------------------------------------------
# instrumentation stubs & call counting
# ----------------------------------------------------------------------
def _patch_obs(span_fn, inc_fn):
    """Swap the obs hot-path hooks; returns an undo callable."""
    from repro.harness import engine as engine_mod
    from repro.reorder import registry as registry_mod

    saved = [
        (trace_mod, "span", trace_mod.span),
        (registry_mod, "span", registry_mod.span),
        (engine_mod, "span", engine_mod.span),
        (metrics_mod.Counter, "inc", metrics_mod.Counter.inc),
    ]
    trace_mod.span = span_fn
    registry_mod.span = span_fn
    engine_mod.span = span_fn
    metrics_mod.Counter.inc = inc_fn

    def undo() -> None:
        for obj, name, orig in saved:
            setattr(obj, name, orig)

    return undo


def _count_instrumentation_calls(corpus) -> dict:
    """How many span()/inc() calls one workload run makes."""
    calls = {"span": 0, "inc": 0}
    real_span, real_inc = trace_mod.span, metrics_mod.Counter.inc

    def counting_span(name, **args):
        calls["span"] += 1
        return real_span(name, **args)

    def counting_inc(self, n=1):
        calls["inc"] += 1
        return real_inc(self, n)

    undo = _patch_obs(counting_span, counting_inc)
    try:
        _run_workload(corpus)
    finally:
        undo()
    return calls


def _median_interleaved(corpora) -> tuple:
    """Median wall time per arm, alternating arms run-by-run so CPU
    frequency ramps and cache warmup drift hit both equally."""
    instrumented, baseline = [], []
    for i in range(REPEATS):
        for arm in ((0, 1) if i % 2 == 0 else (1, 0)):
            if arm == 0:
                instrumented.append(_run_workload(corpora.pop()))
            else:
                undo = _patch_obs(_null_span, lambda self, n=1: None)
                try:
                    baseline.append(_run_workload(corpora.pop()))
                finally:
                    undo()
    return statistics.median(instrumented), statistics.median(baseline)


def test_disabled_tracing_overhead_under_gate(emit, emit_json):
    assert not trace_mod.is_enabled(), \
        "this gate measures the disabled fast path"
    # fresh corpora per run: matrices memoise their statistics, so
    # reuse would shrink later runs and skew the comparison
    # one corpus per run: warmup + call-count + 3 timed + the macro A/B
    corpora = [build_corpus("tiny", seed=SEED)[:MATRICES]
               for _ in range(2 * REPEATS + 5)]
    _run_workload(corpora.pop())  # warm caches/imports

    # -- deterministic gate: calls x per-call cost vs workload time ----
    calls = _count_instrumentation_calls(corpora.pop())
    assert calls["span"] > 0 and calls["inc"] > 0, \
        "the workload no longer exercises the instrumentation"
    workload_s = statistics.median(
        _run_workload(corpora.pop()) for _ in range(3))

    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        with trace_mod.span("micro", a=1):
            pass
    disabled_span_ns = (time.perf_counter() - t0) / n * 1e9

    counter = metrics_mod.MetricsRegistry().counter("micro")
    t0 = time.perf_counter()
    for _ in range(n):
        counter.inc()
    counter_inc_ns = (time.perf_counter() - t0) / n * 1e9

    overhead_s = (calls["span"] * disabled_span_ns
                  + calls["inc"] * counter_inc_ns) / 1e9
    overhead = overhead_s / workload_s
    assert overhead < OVERHEAD_GATE, \
        (f"disabled instrumentation costs {overhead:.2%} of the sweep "
         f"({calls['span']} spans x {disabled_span_ns:.0f}ns + "
         f"{calls['inc']} incs x {counter_inc_ns:.0f}ns over "
         f"{workload_s * 1e3:.1f}ms); gate is {OVERHEAD_GATE:.0%}")

    # -- macro A/B: end-to-end evidence, loosely sanity-checked --------
    instrumented_s, baseline_s = _median_interleaved(corpora)
    macro_overhead = instrumented_s / baseline_s - 1.0
    assert macro_overhead < MACRO_SANITY, \
        (f"instrumented sweep {macro_overhead:.0%} slower than the "
         "no-obs build — far beyond measurement noise")

    # enabled-path per-call cost, for the artifact
    tracer = trace_mod.Tracer(enabled=True)
    t0 = time.perf_counter()
    for _ in range(n // 10):
        with tracer.span("micro", a=1):
            pass
    enabled_span_ns = (time.perf_counter() - t0) / (n // 10) * 1e9

    artifact = {
        "seed": SEED,
        "matrices": MATRICES,
        "span_calls": calls["span"],
        "counter_incs": calls["inc"],
        "workload_seconds": round(workload_s, 5),
        "disabled_span_ns": round(disabled_span_ns, 1),
        "enabled_span_ns": round(enabled_span_ns, 1),
        "counter_inc_ns": round(counter_inc_ns, 1),
        "overhead_fraction": round(overhead, 6),
        "gate_fraction": OVERHEAD_GATE,
        "macro_instrumented_seconds": round(instrumented_s, 5),
        "macro_no_obs_seconds": round(baseline_s, 5),
        "macro_overhead_fraction": round(macro_overhead, 5),
    }
    emit_json("bench_obs_overhead", artifact)
    emit("bench_obs_overhead",
         "Observability overhead: disabled tracing vs no-obs baseline\n"
         + format_table(["metric", "value"],
                        [[k, str(v)] for k, v in artifact.items()]))


# ----------------------------------------------------------------------
# sampling-profiler overhead gate
# ----------------------------------------------------------------------
def _measure_sample_cost(prof, levels: int = 30, reps: int = 2000):
    """Per-call cost of the profiler's signal handler, measured on a
    call stack ``levels`` frames deep (representative of an engine
    run's depth); stable to a few microseconds."""
    import sys

    if levels:
        return _measure_sample_cost(prof, levels - 1, reps)
    frame = sys._getframe()
    t0 = time.perf_counter()
    for _ in range(reps):
        prof._sample(0, frame)
    return (time.perf_counter() - t0) / reps


def test_profiler_overhead_under_gate(emit_json, record_bench):
    """``repro profile`` must cost <5 % of an instrumented tiny sweep.

    Like the tracing gate above, the hard assertion is deterministic:
    the profiler takes at most one sample per ``interval`` seconds of
    CPU time, so its worst-case cost fraction is the per-sample
    handler cost divided by the interval — both sides stable where a
    wall-clock A/B would flake.  A real profiled sweep rides along to
    prove the handler actually fires and to report realised overhead.
    """
    from repro.obs.perf import metric
    from repro.obs.profiler import SamplingProfiler

    corpus = build_corpus("tiny", seed=SEED)[:MATRICES]
    _run_workload(corpus)  # warm caches/imports

    interval = 0.005
    prof = SamplingProfiler(interval=interval, timer="prof")
    t0 = time.perf_counter()
    with prof:
        _run_workload(corpus)
    wall = time.perf_counter() - t0
    assert prof.samples > 0, \
        "a CPU-bound sweep took no profiler samples — the timer is dead"

    per_sample_s = _measure_sample_cost(prof)
    worst_case = per_sample_s / interval
    realised = prof.samples * per_sample_s / wall
    assert worst_case < OVERHEAD_GATE, \
        (f"profiler handler costs {per_sample_s * 1e6:.1f}us per sample "
         f"at a {interval * 1e3:.0f}ms interval = {worst_case:.2%} "
         f"worst-case overhead; gate is {OVERHEAD_GATE:.0%}")

    artifact = {
        "seed": SEED,
        "matrices": MATRICES,
        "interval_seconds": interval,
        "samples": prof.samples,
        "profiled_wall_seconds": round(wall, 5),
        "per_sample_us": round(per_sample_s * 1e6, 2),
        "worst_case_overhead_fraction": round(worst_case, 6),
        "realised_overhead_fraction": round(realised, 6),
        "gate_fraction": OVERHEAD_GATE,
    }
    emit_json("bench_profiler_overhead", artifact)
    record_bench("profiler_overhead", {
        "profiled_wall_seconds": metric(wall, unit="s"),
        "per_sample_us": metric(per_sample_s * 1e6, unit="us",
                                tolerance=1.0),
    })
