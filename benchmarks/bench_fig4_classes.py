"""Figure 4: the six-class analysis on representative matrices across
three platforms (one AMD, one Intel, one ARM).

Shape targets (paper §4.4): the class-4 representative (HV15R-like,
uniform rows) stays near 1.0 everywhere; the class-5 representative
(hub-heavy) shows 1D effects driven by imbalance; class behaviour is
similar across the three vendors.
"""

import time

import numpy as np

from repro.harness.experiments import experiment_classes, FIG4_ARCHS
from repro.harness.report import render_classes
from repro.obs.perf import metric

from conftest import NAMED_SCALE


def test_fig4_class_analysis(benchmark, ordering_cache, emit,
                             record_bench):
    t0 = time.perf_counter()
    classes = benchmark.pedantic(
        experiment_classes,
        kwargs={"cache": ordering_cache, "scale": NAMED_SCALE},
        rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    emit("fig4_classes", render_classes(classes))

    # class 4 representative (HV15R-like): mostly neutral under the
    # symmetric orderings on every platform
    hv = classes[4]
    for arch in FIG4_ARCHS:
        vals = [c["speedup_1d"] for o, c in hv[arch].items()
                if o in ("RCM", "ND", "AMD")]
        assert np.median(np.abs(np.log(vals))) < 0.45, arch

    # the 2D kernel is balanced by construction for every cell
    for cls in classes.values():
        for arch in FIG4_ARCHS:
            for cell in cls[arch].values():
                assert cell["imbalance_after"] >= 1.0

    # cross-platform consistency: per (class, ordering), the sign of
    # the 1D effect agrees on at least 2 of the 3 platforms
    agree = 0
    total = 0
    for cls, data in classes.items():
        for o in data[FIG4_ARCHS[0]]:
            signs = [np.sign(np.log(max(data[a][o]["speedup_1d"], 1e-9)))
                     for a in FIG4_ARCHS]
            total += 1
            if abs(sum(signs)) >= 1:  # majority agreement
                agree += 1
    record_bench("fig4_classes", {
        "wall_seconds": metric(wall, unit="s"),
        "class_sign_agreement": metric(agree / total, polarity="higher"),
    })
    assert agree / total > 0.8
