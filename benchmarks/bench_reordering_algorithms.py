"""Micro-benchmarks of the reordering algorithms (wall-clock).

Complements Table 5: times each algorithm on a fixed mid-size mesh via
pytest-benchmark's statistics rather than a single shot.
"""

import pytest

from repro.generators import fem_mesh_2d
from repro.reorder import (
    amd_ordering,
    gp_ordering,
    gray_ordering,
    hp_ordering,
    nd_ordering,
    rcm_ordering,
)


@pytest.fixture(scope="module")
def matrix():
    return fem_mesh_2d(1200, seed=5, scrambled=True)


def test_bench_rcm(benchmark, matrix):
    assert benchmark(rcm_ordering, matrix).n == matrix.nrows


def test_bench_amd(benchmark, matrix):
    assert benchmark(amd_ordering, matrix).n == matrix.nrows


def test_bench_gray(benchmark, matrix):
    assert benchmark(gray_ordering, matrix).n == matrix.nrows


def test_bench_nd(benchmark, matrix):
    benchmark.pedantic(nd_ordering, args=(matrix,), rounds=2, iterations=1)


def test_bench_gp(benchmark, matrix):
    benchmark.pedantic(gp_ordering, args=(matrix,),
                       kwargs={"nparts": 64}, rounds=2, iterations=1)


def test_bench_hp(benchmark, matrix):
    benchmark.pedantic(hp_ordering, args=(matrix,), rounds=1, iterations=1)
