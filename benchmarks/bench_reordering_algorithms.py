"""Micro-benchmarks of the reordering algorithms (wall-clock).

Complements Table 5: times each algorithm on a fixed mid-size mesh via
pytest-benchmark's statistics rather than a single shot.

``test_fastpath_speedup_gate`` at the bottom is the PR 7 vectorisation
gate: every rewritten kernel is timed against its always-scalar
``*_reference`` twin on the same mesh, the permutations/outputs must be
bit-identical (hard assert), and the geometric-mean speedup over the
full kernel set — weak kernels included, no cherry-picking — is the
regression gate.  The artifact lands in
``benchmarks/output/<tier>/bench_reorder_fastpath.json``.
"""

import time

import numpy as np
import pytest

from repro.generators import fem_mesh_2d
from repro.reorder import (
    amd_ordering,
    gp_ordering,
    gray_ordering,
    hp_ordering,
    nd_ordering,
    rcm_ordering,
)
from repro.util import format_table


@pytest.fixture(scope="module")
def matrix():
    return fem_mesh_2d(1200, seed=5, scrambled=True)


def test_bench_rcm(benchmark, matrix):
    assert benchmark(rcm_ordering, matrix).n == matrix.nrows


def test_bench_amd(benchmark, matrix):
    assert benchmark(amd_ordering, matrix).n == matrix.nrows


def test_bench_gray(benchmark, matrix):
    assert benchmark(gray_ordering, matrix).n == matrix.nrows


def test_bench_nd(benchmark, matrix):
    benchmark.pedantic(nd_ordering, args=(matrix,), rounds=2, iterations=1)


def test_bench_gp(benchmark, matrix):
    benchmark.pedantic(gp_ordering, args=(matrix,),
                       kwargs={"nparts": 64}, rounds=2, iterations=1)


def test_bench_hp(benchmark, matrix):
    benchmark.pedantic(hp_ordering, args=(matrix,), rounds=1, iterations=1)


# ----------------------------------------------------------------------
# vectorisation gate: fast vs *_reference, bit-identical and faster
# ----------------------------------------------------------------------
TRIALS = 3

#: soft wall-clock floor for the geomean (measured ~5x on the dev
#: machine; the margin absorbs CI noise — bit-identity is the hard gate)
GEOMEAN_FLOOR = 3.5


def _timed_best(fn, trials=TRIALS):
    """(best seconds, last result) over ``trials`` runs."""
    best = float("inf")
    result = None
    for _ in range(trials):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _kernel_pairs(a):
    """(name, fast thunk, reference thunk, comparator) for every
    vectorised kernel, all closing over the same mesh."""
    from repro.graph.adjacency import graph_from_matrix
    from repro.graph.bfs import bfs_levels_fast, bfs_levels_reference
    from repro.graph.hypergraph import column_net_hypergraph
    from repro.hpartition.coarsen import (
        heavy_connectivity_matching, heavy_connectivity_matching_reference)
    from repro.hpartition.fm import (fm_refine_cutnet,
                                     fm_refine_cutnet_reference)
    from repro.hpartition.initial import (
        greedy_grow_hbisection, greedy_grow_hbisection_reference)
    from repro.partition.fm import (fm_refine_bisection,
                                    fm_refine_bisection_reference)
    from repro.partition.matching import (
        heavy_edge_matching, heavy_edge_matching_reference,
        matching_to_coarse_map, matching_to_coarse_map_reference)
    from repro.reorder.amd import amd_ordering_reference
    from repro.reorder.gray import gray_ordering_reference
    from repro.reorder.rcm import rcm_ordering_reference
    from repro.util.rng import as_rng

    g = graph_from_matrix(a)
    h = column_net_hypergraph(a)
    gt0 = int(g.total_vertex_weight()) // 2
    ht0 = int(h.vwgt.sum()) // 2
    gside = (as_rng(0).random(g.nvertices) < 0.5).astype(np.int64)
    hside = (as_rng(0).random(h.nvertices) < 0.5).astype(np.int64)
    hem = heavy_edge_matching(g, rng=as_rng(0))
    perm = np.array_equal

    def eq_cmap(x, y):
        return x[1] == y[1] and np.array_equal(x[0], y[0])

    return (
        ("rcm", lambda: rcm_ordering(a).perm,
         lambda: rcm_ordering_reference(a).perm, perm),
        ("amd", lambda: amd_ordering(a).perm,
         lambda: amd_ordering_reference(a).perm, perm),
        ("gray", lambda: gray_ordering(a).perm,
         lambda: gray_ordering_reference(a).perm, perm),
        ("bfs", lambda: bfs_levels_fast(g, 0),
         lambda: bfs_levels_reference(g, 0), perm),
        ("fm_graph", lambda: fm_refine_bisection(g, gside, gt0),
         lambda: fm_refine_bisection_reference(g, gside, gt0), perm),
        ("hem", lambda: heavy_edge_matching(g, rng=as_rng(0)),
         lambda: heavy_edge_matching_reference(g, rng=as_rng(0)), perm),
        ("mtcm", lambda: matching_to_coarse_map(hem),
         lambda: matching_to_coarse_map_reference(hem), eq_cmap),
        ("fm_cutnet", lambda: fm_refine_cutnet(h, hside, ht0),
         lambda: fm_refine_cutnet_reference(h, hside, ht0), perm),
        ("hcm", lambda: heavy_connectivity_matching(h, rng=as_rng(0)),
         lambda: heavy_connectivity_matching_reference(h, rng=as_rng(0)),
         perm),
        ("hgrow", lambda: greedy_grow_hbisection(h, ht0, 0),
         lambda: greedy_grow_hbisection_reference(h, ht0, 0), perm),
    )


def test_fastpath_speedup_gate(matrix, emit, emit_json):
    rows = []
    per_kernel = {}
    for name, fast_fn, ref_fn, same in _kernel_pairs(matrix):
        fast_fn()  # warm memoised adjacency/bitmap caches once
        fast_s, fast_out = _timed_best(fast_fn)
        ref_s, ref_out = _timed_best(ref_fn)
        # hard gate: the fast path must be *bit-identical*, always
        assert same(fast_out, ref_out), \
            f"{name}: fast path output diverges from its reference"
        per_kernel[name] = ref_s / fast_s
        rows.append([name, f"{ref_s * 1e3:.2f}", f"{fast_s * 1e3:.2f}",
                     f"{ref_s / fast_s:.2f}x"])
    geomean = float(np.exp(np.mean(np.log(list(per_kernel.values())))))
    rows.append(["geomean", "", "", f"{geomean:.2f}x"])
    emit("bench_reorder_fastpath",
         "Vectorised reordering kernels vs scalar references "
         "(bit-identical outputs)\n"
         + format_table(["kernel", "reference ms", "fast ms", "speedup"],
                        rows))
    emit_json("bench_reorder_fastpath", {
        "matrix": "fem_mesh_2d(1200, seed=5, scrambled=True)",
        "trials": TRIALS,
        "kernels": {name: round(s, 2) for name, s in per_kernel.items()},
        "geomean_speedup": round(geomean, 2),
        "floor": GEOMEAN_FLOOR,
    })
    # soft wall-clock gate (bit-identity above is the hard one)
    assert geomean >= GEOMEAN_FLOOR, \
        f"vectorisation geomean regressed to {geomean:.2f}x"
