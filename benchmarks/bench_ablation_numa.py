"""Ablation: NUMA placement (paper §3.1's first-touch policy).

The paper uses first-touch placement "to ensure that the data is placed
close to the core using it".  This bench quantifies the modelled cost
of getting placement wrong (interleaved) versus first-touch versus an
idealised local-only placement, and shows that block-local orderings
(GP) are less NUMA-sensitive than the original order — locality helps
twice.
"""

import time

import numpy as np

from repro.analysis import geomean
from repro.harness import OrderingCache
from repro.machine import NumaModel, get_architecture
from repro.obs.perf import metric
from repro.spmv import schedule_1d
from repro.util import format_table

PLACEMENTS = ("local_only", "first_touch", "interleaved")


def test_ablation_numa_placement(benchmark, corpus, ordering_cache, emit,
                                 record_bench):
    arch = get_architecture("Milan B")  # 2 sockets
    subset = [e for e in corpus if e.nrows >= 256][:10]

    def run():
        out = {}
        for placement in PLACEMENTS:
            model = NumaModel(arch, placement=placement)
            slowdowns = []
            gp_slowdowns = []
            base_model = NumaModel(arch, placement="local_only")
            for e in subset:
                s = schedule_1d(e.matrix, arch.threads)
                t = model.predict(e.matrix, s).seconds
                t0 = base_model.predict(e.matrix, s).seconds
                slowdowns.append(t / t0)
                r = ordering_cache.get(e.matrix, e.name, "GP",
                                       nparts=arch.gp_parts)
                b = r.apply(e.matrix)
                sb = schedule_1d(b, arch.threads)
                tb = model.predict(b, sb).seconds
                tb0 = base_model.predict(b, sb).seconds
                gp_slowdowns.append(tb / tb0)
            out[placement] = (geomean(slowdowns), geomean(gp_slowdowns))
        return out

    t0 = time.perf_counter()
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    record_bench("ablation_numa", {
        "wall_seconds": metric(wall, unit="s"),
        "first_touch_slowdown_orig": metric(float(out["first_touch"][0])),
        "first_touch_slowdown_gp": metric(float(out["first_touch"][1])),
    })
    rows = [[p, v[0], v[1]] for p, v in out.items()]
    emit("ablation_numa",
         "NUMA placement ablation (slowdown vs local-only, Milan B)\n"
         + format_table(
             ["placement", "original order", "GP order"], rows))
    # orderings don't change local-only; first-touch <= interleaved
    assert out["local_only"] == (1.0, 1.0)
    assert out["first_touch"][0] <= out["interleaved"][0] + 1e-9
    # GP's block locality reduces the NUMA surcharge
    assert out["first_touch"][1] <= out["first_touch"][0] + 1e-9
