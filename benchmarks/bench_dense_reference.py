"""§4.2 calibration point: the tall-and-skinny dense matrix in CSR.

The paper measures ~53 Gflop/s / 317 GB/s on Milan B for a dense
96000×4000 CSR matrix — about 77 % of peak memory bandwidth.  The
model must reproduce the *regime*: bandwidth-bound (x in cache, matrix
streaming) and a large fraction of peak.
"""

from repro.harness import dense_reference_experiment
from repro.util import format_table


def test_dense_reference_bandwidth_bound(benchmark, emit):
    out = benchmark.pedantic(
        dense_reference_experiment,
        kwargs={"arch_name": "Milan B", "scale": 0.1},
        rounds=1, iterations=1)
    text = "Dense tall-skinny CSR reference (§4.2)\n" + format_table(
        ["arch", "Gflop/s", "GB/s", "fraction of peak BW"],
        [[out["arch"], out["gflops"], out["bytes_per_second"] / 1e9,
          out["fraction_of_peak"]]])
    emit("dense_reference", text)
    # bandwidth-bound regime: a large fraction of peak is achieved
    # (the LLC-residency floor lets the blended figure exceed the pure
    # DRAM efficiency of 0.77, but never the theoretical peak)
    assert 0.3 < out["fraction_of_peak"] <= 1.0
    # the x vector is tiny: the working set must not look cache-hot
    assert out["llc_residency"] < 0.5
