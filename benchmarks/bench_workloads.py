"""The workload-model gate: CG/Jacobi/SpGEMM/SpMM scores as exact metrics.

The machine model's workload axis (:mod:`repro.machine.workloads`) is
closed-form on top of the SpMV prediction, so every number here is
deterministic and machine-independent.  The recorded ledger entry
carries them as *exact* metrics: the CI ``workloads-smoke`` job replays
this bench and gates with ``repro perf compare --kinds exact`` against
the committed ``benchmarks/baselines/BENCH_workloads.json`` — any
drift in the scoring formulas (or in the SpMV model underneath them)
trips the gate with a named metric instead of a silent score change.

Shape targets double as sanity assertions: solver loops cost more than
one SpMV, SpMM amortises the matrix stream below k independent SpMVs,
and SpGEMM's row-gather intensity never discounts below one SpMV.
"""

from __future__ import annotations

import time

from repro.machine import get_architecture, predict_many
from repro.machine.workloads import ITERATIONS, SPMM_VECTORS
from repro.obs.perf import metric
from repro.util import format_table

WORKLOADS = ("spmv", "cg", "jacobi", "spgemm", "spmm")
ARCHS = ("Rome", "Milan B")


def _geomean(values):
    import math

    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_workload_model_scores(corpus, emit, emit_json, record_bench):
    archs = [get_architecture(a) for a in ARCHS]
    # spgemm is defined for square operands only; the tiny corpus is
    # all-square today, but filter so a future rectangular entry drops
    # from this bench instead of crashing it
    square = [e for e in corpus if e.matrix.is_square]
    assert square, "corpus has no square matrices"

    totals = {w: 0.0 for w in WORKLOADS}
    flops = {w: 0.0 for w in WORKLOADS}
    ratios = {w: [] for w in WORKLOADS}
    t0 = time.perf_counter()
    for e in square:
        out = predict_many(e.matrix, architectures=archs,
                           kernels=("1d",), workloads=WORKLOADS)
        for (arch, kernel, nt, w), wp in out.items():
            totals[w] += wp.seconds
            flops[w] += wp.flops
            base = out[(arch, kernel, nt, "spmv")]
            ratio = wp.seconds / base.seconds
            ratios[w].append(ratio)
            if w in ("cg", "jacobi"):
                assert ratio > ITERATIONS[w], (e.name, arch, w)
            elif w == "spmm":
                assert 1.0 <= ratio < SPMM_VECTORS, (e.name, arch)
            elif w == "spgemm":
                assert ratio >= 1.0, (e.name, arch)
    wall = time.perf_counter() - t0

    geo = {w: _geomean(ratios[w]) for w in WORKLOADS}
    rows = [[w, f"{totals[w]:.6g}", f"{flops[w]:.6g}", f"{geo[w]:.4f}"]
            for w in WORKLOADS]
    emit("workloads", "workload model scores "
         f"({len(square)} matrices x {len(archs)} architectures)\n"
         + format_table(["workload", "model-s", "flops",
                         "geomean vs spmv"], rows))
    emit_json("workloads", {"totals": totals, "flops": flops,
                            "geomean_vs_spmv": geo})

    record_bench("workloads", {
        "wall_seconds": metric(wall, unit="s"),
        "cells": metric(float(len(square) * len(archs) * len(WORKLOADS)),
                        unit="cells", polarity="higher"),
        **{f"seconds_{w}": metric(totals[w], unit="model-s")
           for w in WORKLOADS},
        **{f"flops_{w}": metric(flops[w], unit="flop", polarity="higher")
           for w in WORKLOADS},
        **{f"geomean_vs_spmv_{w}": metric(geo[w], unit="ratio")
           for w in WORKLOADS if w != "spmv"},
    }, context={"architectures": list(ARCHS),
                "workloads": list(WORKLOADS)})
