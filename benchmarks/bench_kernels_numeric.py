"""Micro-benchmarks of the numeric SpMV kernels themselves.

These time the actual Python/numpy execution (not the machine model):
useful for tracking performance regressions of the substrate and for
verifying that the 2D kernel's partial-row handling costs little.
"""

import numpy as np
import pytest

from repro.generators import stencil_2d
from repro.spmv import schedule_1d, schedule_2d, spmv_1d, spmv_2d


@pytest.fixture(scope="module")
def matrix():
    return stencil_2d(60, seed=0)  # 3600 rows, ~21k nnz


@pytest.fixture(scope="module")
def x(matrix):
    return np.random.default_rng(0).standard_normal(matrix.ncols)


def test_bench_spmv_1d(benchmark, matrix, x):
    s = schedule_1d(matrix, 8)
    y = benchmark(spmv_1d, matrix, x, s)
    assert np.allclose(y, matrix.to_scipy() @ x)


def test_bench_spmv_2d(benchmark, matrix, x):
    s = schedule_2d(matrix, 8)
    y = benchmark(spmv_2d, matrix, x, s)
    assert np.allclose(y, matrix.to_scipy() @ x)


def test_bench_reference_matvec(benchmark, matrix, x):
    y = benchmark(matrix.matvec, x)
    assert np.allclose(y, matrix.to_scipy() @ x)


def test_bench_scipy_matvec(benchmark, matrix, x):
    sp = matrix.to_scipy()
    benchmark(lambda: sp @ x)
