"""Extension orderings (paper §2/§5 survey) vs the six main ones.

Evaluates CM, GPS, SFC, TSP and the two-sided SBD form alongside RCM
and GP on the corpus: the related-work claims to check are that the
classical bandwidth reducers (CM/GPS) land close to RCM, the TSP
ordering "improves data locality" modestly (Pinar & Heath report ~10 %
kernel-level gains), and SBD behaves like a cache-oblivious cousin of
HP.
"""

import numpy as np

from repro.analysis import geomean
from repro.machine import PerfModel, get_architecture, simulate_measurement
from repro.reorder import compute_ordering, sbd_ordering
from repro.util import format_table

NAMES = ("RCM", "CM", "GPS", "SFC", "TSP", "GP")


def test_extension_orderings(benchmark, corpus, emit):
    arch = get_architecture("Ice Lake")
    model = PerfModel(arch)
    subset = [e for e in corpus if e.nrows >= 200][:10]

    def run():
        speed = {n: [] for n in NAMES + ("SBD",)}
        for e in subset:
            base = simulate_measurement(e.matrix, arch, "1d", e.name,
                                        "original", model=model)
            for n in NAMES:
                r = compute_ordering(e.matrix, n, nparts=arch.gp_parts)
                rec = simulate_measurement(r.apply(e.matrix), arch, "1d",
                                           e.name, n, model=model)
                speed[n].append(rec.gflops_max / base.gflops_max)
            sbd = sbd_ordering(e.matrix, seed=0)
            rec = simulate_measurement(sbd.apply(e.matrix), arch, "1d",
                                       e.name, "SBD", model=model)
            speed["SBD"].append(rec.gflops_max / base.gflops_max)
        return {n: geomean(v) for n, v in speed.items()}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("extension_orderings",
         "Extension orderings (geomean 1D speedup, Ice Lake)\n"
         + format_table(["ordering", "geomean speedup"],
                        [[n, v] for n, v in out.items()]))
    # CM and RCM are the same level structure: nearly identical effect
    assert abs(np.log(out["CM"] / out["RCM"])) < 0.25
    # GPS is a bandwidth reducer of the same family as RCM
    assert abs(np.log(out["GPS"] / out["RCM"])) < 0.35
    # every extension produces a working ordering with sane effect size
    for n, v in out.items():
        assert 0.4 < v < 3.0, n
