"""Table 3: geometric-mean 1D speedups, orderings × architectures.

Shape targets (paper Table 3): GP has the highest geometric mean on
every machine; HP second overall; RCM above 1; AMD and Gray below 1;
Gray worst.

Also hosts the sweep-engine scaling check: with enough cores, a
``jobs=4`` engine run over the demo corpus must beat the serial run by
at least 2× wall-clock.
"""

import os
import time

import pytest

from repro.harness import SweepEngine, experiment_speedups, \
    render_geomean_table
from repro.harness.experiments import REORDERINGS
from repro.machine import architecture_names


def test_table3_geomeans_1d(benchmark, full_sweep, emit):
    study = benchmark.pedantic(
        experiment_speedups,
        args=(full_sweep, architecture_names(), "1d"),
        rounds=1, iterations=1)
    emit("table3_geomean_1d",
         render_geomean_table(study, architecture_names(),
                              "Table 3: geomean 1D speedups"))
    overall = {}
    import numpy as np

    for o in REORDERINGS:
        vals = [study.geomeans[(a, o)] for a in architecture_names()]
        overall[o] = float(np.exp(np.mean(np.log(vals))))
    # ranking targets
    assert overall["GP"] == max(overall.values())
    assert overall["Gray"] == min(overall.values())
    assert overall["GP"] > overall["HP"] > overall["ND"] > overall["AMD"]
    assert overall["RCM"] > 1.0
    assert overall["AMD"] < 1.0
    # GP best (or within 3 %) on every machine; strictly best on most
    wins = 0
    for a in architecture_names():
        row = {o: study.geomeans[(a, o)] for o in REORDERINGS}
        best = max(row.values())
        assert row["GP"] >= 0.97 * best, a
        wins += row["GP"] == best
    assert wins >= len(architecture_names()) // 2


def test_sweep_observability_artifact(sweep_metrics, emit_json):
    """The engine's machine-readable metrics are complete and coherent."""
    m = sweep_metrics.to_dict()
    emit_json("sweep_metrics_table3", m)
    assert m["cells"]["failed"] == 0
    assert m["cells"]["completed"] == m["cells"]["total"]
    cache = m["cache"]
    if cache.get("requests"):
        assert cache["requests"] == (cache["hits"] + cache["disk_hits"]
                                     + cache["misses"])


def _timed_sweep(corpus, archs, jobs, tmpdir):
    from repro.harness import OrderingCache

    start = time.perf_counter()
    engine = SweepEngine(corpus, archs, list(REORDERINGS),
                         cache=OrderingCache(path=str(tmpdir / f"c{jobs}")),
                         jobs=jobs)
    result = engine.run()
    return time.perf_counter() - start, result


@pytest.mark.skipif(
    len(os.sched_getaffinity(0)) < 4,
    reason="parallel-speedup check needs >= 4 usable cores")
def test_engine_parallel_speedup_at_jobs4(corpus, all_architectures,
                                          tmp_path_factory, emit_json):
    """--jobs 4 must give >= 2x wall-clock over serial on the demo
    corpus (each worker gets a cold cache, so the comparison is fair)."""
    tmpdir = tmp_path_factory.mktemp("engine_scaling")
    demo = corpus[: min(len(corpus), 12)]
    t_serial, r_serial = _timed_sweep(demo, all_architectures, 1, tmpdir)
    t_fanout, r_fanout = _timed_sweep(demo, all_architectures, 4, tmpdir)
    emit_json("sweep_engine_scaling", {
        "matrices": len(demo), "serial_seconds": t_serial,
        "jobs4_seconds": t_fanout,
        "speedup": t_serial / t_fanout if t_fanout else None})
    assert r_serial.records == r_fanout.records
    assert t_serial / t_fanout >= 2.0, \
        f"jobs=4 speedup only {t_serial / t_fanout:.2f}x"
