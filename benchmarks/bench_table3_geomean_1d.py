"""Table 3: geometric-mean 1D speedups, orderings × architectures.

Shape targets (paper Table 3): GP has the highest geometric mean on
every machine; HP second overall; RCM above 1; AMD and Gray below 1;
Gray worst.
"""

from repro.harness import experiment_speedups, render_geomean_table
from repro.harness.experiments import REORDERINGS
from repro.machine import architecture_names


def test_table3_geomeans_1d(benchmark, full_sweep, emit):
    study = benchmark.pedantic(
        experiment_speedups,
        args=(full_sweep, architecture_names(), "1d"),
        rounds=1, iterations=1)
    emit("table3_geomean_1d",
         render_geomean_table(study, architecture_names(),
                              "Table 3: geomean 1D speedups"))
    overall = {}
    import numpy as np

    for o in REORDERINGS:
        vals = [study.geomeans[(a, o)] for a in architecture_names()]
        overall[o] = float(np.exp(np.mean(np.log(vals))))
    # ranking targets
    assert overall["GP"] == max(overall.values())
    assert overall["Gray"] == min(overall.values())
    assert overall["GP"] > overall["HP"] > overall["ND"] > overall["AMD"]
    assert overall["RCM"] > 1.0
    assert overall["AMD"] < 1.0
    # GP best (or within 3 %) on every machine; strictly best on most
    wins = 0
    for a in architecture_names():
        row = {o: study.geomeans[(a, o)] for o in REORDERINGS}
        best = max(row.values())
        assert row["GP"] >= 0.97 * best, a
        wins += row["GP"] == best
    assert wins >= len(architecture_names()) // 2
