"""Validation: the analytical x-traffic model vs the exact LRU simulator.

Not a paper artifact — this bench audits the reproduction's central
substitution (DESIGN.md §2): the windowed working-set model must rank
(matrix, ordering) pairs by x traffic the same way an exact LRU cache
simulation does, otherwise every speedup table built on it would be
suspect.
"""

from repro.machine.validate import validate_x_traffic_model
from repro.reorder import compute_ordering
from repro.util import format_table


def test_model_tracks_exact_simulator(benchmark, corpus, emit):
    subset = [e for e in corpus if 200 <= e.nrows <= 2000][:6]

    def run():
        variants = []
        labels = []
        for e in subset:
            variants.append(e.matrix)
            labels.append(f"{e.name}/original")
            for o in ("RCM", "GP"):
                r = compute_ordering(e.matrix, o, nparts=16)
                variants.append(r.apply(e.matrix))
                labels.append(f"{e.name}/{o}")
        return validate_x_traffic_model(variants, cache_lines=32,
                                        labels=labels)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[lab, int(m), int(x)] for lab, m, x in
            zip(report.labels, report.model_loads, report.exact_misses)]
    emit("model_validation",
         "Windowed model vs exact LRU simulator (x-line loads)\n"
         + format_table(["matrix/ordering", "model", "exact"], rows)
         + f"\nrank correlation: {report.rank_correlation:.3f}"
         + f"\nmean |log error|: {report.mean_abs_log_error:.3f}")
    assert report.rank_correlation > 0.7
    assert report.mean_abs_log_error < 1.2
