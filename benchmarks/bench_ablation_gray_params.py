"""Ablation: Gray ordering parameters (DESIGN.md §5.4).

The paper fixes the Zhao et al. parameters: 16-bit bitmaps, dense-row
threshold 20 (§3.3).  This sweep varies both and records the modelled
1D speedup, demonstrating the library reproduces the *parameterised*
algorithm rather than one hard-coded configuration.
"""

import time

from repro.analysis import geomean
from repro.machine import PerfModel, get_architecture, simulate_measurement
from repro.obs.perf import metric
from repro.reorder.gray import gray_ordering
from repro.util import format_table

THRESHOLDS = (5, 20, 80)
BITS = (8, 16, 32)


def test_ablation_gray_parameters(benchmark, corpus, emit, record_bench):
    arch = get_architecture("Skylake")
    model = PerfModel(arch)
    subset = [e for e in corpus if e.nrows >= 256][:8]

    def run():
        out = {}
        for thr in THRESHOLDS:
            for bits in BITS:
                speedups = []
                for e in subset:
                    base = simulate_measurement(
                        e.matrix, arch, "1d", e.name, "original",
                        model=model)
                    r = gray_ordering(e.matrix, dense_threshold=thr,
                                      bits=bits)
                    rec = simulate_measurement(
                        r.apply(e.matrix), arch, "1d", e.name, "Gray",
                        model=model)
                    speedups.append(rec.gflops_max / base.gflops_max)
                out[(thr, bits)] = geomean(speedups)
        return out

    t0 = time.perf_counter()
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    record_bench("ablation_gray_params", {
        "wall_seconds": metric(wall, unit="s"),
        "geomean_speedup_t20_b16": metric(float(out[(20, 16)]),
                                          polarity="higher"),
    })
    rows = [[thr, bits, v] for (thr, bits), v in sorted(out.items())]
    emit("ablation_gray_params",
         "Gray parameter sweep (geomean 1D speedup, Skylake)\n"
         + format_table(["dense threshold", "bitmap bits",
                         "geomean speedup"], rows))
    # every configuration must produce a valid ordering and a positive
    # speedup; the paper's (20, 16) configuration is in the set
    assert (20, 16) in out
    assert all(v > 0 for v in out.values())
