"""Figure 2: distribution of 1D-kernel speedups per ordering × machine.

Shape targets (paper §4.2): the interquartile box of the typical
ordering sits in ~[0.5, 1.5]; RCM/GP/HP medians are above 1; Gray's
upper quartile is ~1 or below (mostly slowdowns); the overall picture
is similar on every machine.
"""

import time

import numpy as np

from repro.harness import experiment_speedups
from repro.harness.report import render_boxplot_figure
from repro.machine import architecture_names
from repro.obs.perf import metric


def test_fig2_speedup_distribution_1d(benchmark, full_sweep, emit,
                                      record_bench):
    t0 = time.perf_counter()
    study = benchmark.pedantic(
        experiment_speedups,
        args=(full_sweep, architecture_names(), "1d"),
        rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    emit("fig2_speedup_1d",
         render_boxplot_figure(study, architecture_names(),
                               "Figure 2: 1D SpMV speedup after "
                               "reordering"))
    record_bench("fig2_speedup_1d", {
        "wall_seconds": metric(wall, unit="s"),
        "gp_median_min": metric(
            float(min(np.median(study.raw[(a, "GP")])
                      for a in architecture_names())),
            polarity="higher"),
        "gray_median_max": metric(
            float(max(np.median(study.raw[(a, "Gray")])
                      for a in architecture_names()))),
    })
    gp_wins = 0
    for arch in architecture_names():
        # GP: matrices typically speed up (paper: ~75 % of matrices)
        gp = study.raw[(arch, "GP")]
        assert np.median(gp) >= 0.95, arch
        gp_wins += np.median(gp) >= 1.0
        # Gray: majority slow down
        gray = study.raw[(arch, "Gray")]
        assert np.median(gray) <= 1.05, arch
    # GP's median speedup exceeds 1 on most machines
    assert gp_wins >= len(architecture_names()) // 2
