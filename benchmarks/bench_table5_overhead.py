"""Table 5: reordering time for the ten named stand-ins, versus the
time of a single SpMV iteration.

Shape targets (paper §4.7): Gray is always the fastest reordering and
RCM usually second; ND and HP are typically the slowest; reordering
costs span orders of magnitude relative to one SpMV iteration.
"""

import numpy as np

from repro.harness import experiment_overhead
from repro.harness.report import render_overhead_table

from conftest import NAMED_SCALE

ORDER = ("RCM", "AMD", "ND", "GP", "HP", "Gray")


def test_table5_reordering_overhead(benchmark, emit, emit_json):
    rows = benchmark.pedantic(
        experiment_overhead, kwargs={"scale": NAMED_SCALE},
        rounds=1, iterations=1)
    emit("table5_overhead", render_overhead_table(rows))
    emit_json("table5_overhead", [
        {"matrix": r[0],
         **{o: r[1 + i] for i, o in enumerate(ORDER)},
         "spmv_model_seconds": r[-1]}
        for r in rows])

    times = {o: np.array([r[1 + i] for r in rows])
             for i, o in enumerate(ORDER)}
    # Gray fastest on every matrix
    for o in ORDER:
        if o != "Gray":
            assert np.all(times["Gray"] <= times[o]), o
    # RCM second-fastest in the median
    med = {o: float(np.median(v)) for o, v in times.items()}
    ranked = sorted(med, key=med.get)
    assert ranked[0] == "Gray"
    assert ranked[1] == "RCM"
    # ND and HP among the slowest two or three
    assert set(ranked[-3:]) >= {"HP"}
    assert "ND" in ranked[-3:] or "GP" in ranked[-3:]
