"""Throughput benchmark of the batched model-evaluation fast path.

Measures the same grid twice — every (matrix, ordering) variant of the
corpus under all eight architectures and both kernels:

* **legacy**: fresh matrix objects and ``fastpath=False`` models, i.e.
  per-cell schedule rebuilds and the per-thread, per-window
  ``np.unique`` working-set loop;
* **fast**: :func:`repro.machine.bench.simulate_many`, where one
  :class:`~repro.machine.reuse.ReuseStats` pass and the per-matrix
  schedule cache serve all cells of a variant.

The two record lists must be bit-identical.  The regression gate is
*counter-based*, not wall-time-based (CI machines are noisy): the fast
pass must issue zero ``np.unique`` calls, exactly one statistics build
per variant, and exactly one schedule build per distinct
(thread-count, kernel) pair per variant.  The measured speedup lands
in ``benchmarks/output/<tier>/bench_model_fastpath.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.harness.experiments import REORDERINGS
from repro.machine import reuse as reuse_mod
from repro.machine.bench import simulate_many, simulate_measurement
from repro.machine.model import PerfModel
from repro.matrix.csr import CSRMatrix
from repro.spmv import schedule as schedule_mod
from repro.util import format_table

from conftest import SEED, TIER

#: GP part count for the benchmark variants (one permutation per
#: matrix; this bench measures model throughput, not the sweep grid)
GP_PARTS = 64


def _fresh(a: CSRMatrix) -> CSRMatrix:
    """A copy with no memoised statistics/schedules attached."""
    return CSRMatrix(a.nrows, a.ncols, a.rowptr.copy(), a.colidx.copy(),
                     a.values.copy())


def _build_variants(corpus, ordering_cache):
    variants = []
    for e in corpus:
        variants.append((f"{e.name}/original", e.matrix))
        for name in REORDERINGS:
            result = ordering_cache.get(e.matrix, e.name, name,
                                        nparts=GP_PARTS, seed=SEED)
            variants.append((f"{e.name}/{name}", result.apply(e.matrix)))
    return variants


class _UniqueCounter:
    """Count ``np.unique`` calls made inside a with-block."""

    def __init__(self):
        self.calls = 0

    def __enter__(self):
        self._orig = np.unique

        def counted(*args, **kwargs):
            self.calls += 1
            return self._orig(*args, **kwargs)

        np.unique = counted
        return self

    def __exit__(self, *exc):
        np.unique = self._orig


def test_fastpath_speedup_and_operation_counts(corpus, ordering_cache,
                                               all_architectures, emit,
                                               emit_json):
    archs = all_architectures
    variants = _build_variants(corpus, ordering_cache)
    ncells = len(variants) * len(archs) * 2
    thread_counts = {a.threads for a in archs}

    # -- legacy pass: per-cell recomputation ---------------------------
    legacy_models = [PerfModel(a, fastpath=False) for a in archs]
    with _UniqueCounter() as legacy_unique:
        t0 = time.perf_counter()
        legacy_records = [
            simulate_measurement(_fresh(m), arch, kernel, label, "",
                                 model=model)
            for label, m in variants
            for arch, model in zip(archs, legacy_models)
            for kernel in ("1d", "2d")]
        legacy_s = time.perf_counter() - t0

    # -- fast pass: shared statistics, fresh matrices ------------------
    counters_before = reuse_mod.counters_snapshot()
    counters_before.update(schedule_mod.COUNTERS)
    with _UniqueCounter() as fast_unique:
        t0 = time.perf_counter()
        fast_records = []
        for label, m in variants:
            fast_records.extend(
                simulate_many(_fresh(m), archs, matrix_name=label))
        fast_s = time.perf_counter() - t0
    counters_after = reuse_mod.counters_snapshot()
    counters_after.update(schedule_mod.COUNTERS)
    delta = {k: counters_after[k] - counters_before[k]
             for k in counters_after}

    # -- equivalence and operation-count gates -------------------------
    mismatch = [(f.matrix, f.architecture, f.kernel)
                for f, l in zip(fast_records, legacy_records) if f != l]
    assert fast_records == legacy_records, \
        f"{len(mismatch)} cells differ, first: {mismatch[:3]}"
    assert fast_unique.calls == 0, \
        "fast path must not call np.unique"
    assert legacy_unique.calls > 0
    assert delta["reuse_builds"] == len(variants), \
        "expected exactly one statistics build per (matrix, ordering)"
    assert delta["reuse_hits"] == ncells - len(variants)
    assert delta["schedule_builds"] == \
        len(variants) * len(thread_counts) * 2
    assert delta["schedule_hits"] == \
        len(variants) * (len(archs) - len(thread_counts)) * 2

    speedup = legacy_s / fast_s
    # soft wall-time sanity only — the hard gates above are counters
    assert speedup > 2.0, f"fast path only {speedup:.2f}x faster"

    artifact = {
        "tier": TIER,
        "seed": SEED,
        "variants": len(variants),
        "cells": ncells,
        "legacy_seconds": round(legacy_s, 4),
        "fast_seconds": round(fast_s, 4),
        "speedup": round(speedup, 2),
        "cells_per_sec_legacy": round(ncells / legacy_s, 1),
        "cells_per_sec_fast": round(ncells / fast_s, 1),
        "np_unique_calls_legacy": legacy_unique.calls,
        "np_unique_calls_fast": fast_unique.calls,
        "counters": delta,
    }
    emit_json("bench_model_fastpath", artifact)
    rows = [[k, str(v)] for k, v in artifact.items() if k != "counters"]
    rows += [[f"counters.{k}", str(v)] for k, v in sorted(delta.items())]
    emit("bench_model_fastpath",
         "Model-evaluation fast path: batched vs per-cell\n"
         + format_table(["metric", "value"], rows))
