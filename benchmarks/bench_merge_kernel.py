"""Merge-based SpMV vs the paper's 1D and 2D kernels.

The paper positions its 2D kernel as a simplified merge-based kernel
with competitive balance (§3.1).  This bench verifies that claim in the
model: on nonzero-skewed matrices both 2D and merge crush the 1D
kernel's imbalance; on row-overhead-heavy matrices (many short/empty
rows) merge additionally balances the row loop.
"""

import numpy as np

from repro.analysis import geomean
from repro.machine import PerfModel, get_architecture
from repro.spmv import schedule_1d, schedule_2d, schedule_merge
from repro.util import format_table


def test_merge_vs_2d_vs_1d(benchmark, corpus, emit):
    arch = get_architecture("Milan B")
    model = PerfModel(arch)

    def run():
        ratios_2d = []
        ratios_merge = []
        for e in corpus:
            a = e.matrix
            t1 = model.predict(a, schedule_1d(a, arch.threads)).seconds
            t2 = model.predict(a, schedule_2d(a, arch.threads)).seconds
            tm = model.predict(a, schedule_merge(a, arch.threads)).seconds
            ratios_2d.append(t1 / t2)
            ratios_merge.append(t1 / tm)
        return np.array(ratios_2d), np.array(ratios_merge)

    r2, rm = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("merge_kernel",
         "Merge-based kernel vs 1D and 2D (Milan B)\n" + format_table(
             ["kernel", "geomean speedup over 1D", "max"],
             [["2D", geomean(r2), float(r2.max())],
              ["merge", geomean(rm), float(rm.max())]]))
    # both balanced kernels beat 1D overall, and merge is competitive
    # with 2D (the paper's justification for using the simpler kernel)
    assert geomean(r2) >= 0.98
    assert geomean(rm) >= 0.98
    assert abs(np.log(geomean(rm) / geomean(r2))) < 0.1
