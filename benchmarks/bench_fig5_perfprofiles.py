"""Figure 5: Dolan–Moré performance profiles of bandwidth, profile,
off-diagonal nonzero count and modelled SpMV runtime on Milan B.

Shape targets (paper §4.5): RCM dominates the bandwidth profile; ND and
RCM lead the profile metric; GP leads the off-diagonal count (with HP
second); and the SpMV-runtime profile most closely resembles the
off-diagonal profile — key finding 5.
"""

import time

import numpy as np

from repro.analysis import profile_at
from repro.harness import experiment_feature_profiles
from repro.harness.report import render_profile_figure
from repro.obs.perf import metric
from repro.reorder import ALL_ORDERINGS


def test_fig5_performance_profiles(benchmark, corpus, ordering_cache,
                                   emit, record_bench):
    t0 = time.perf_counter()
    profiles = benchmark.pedantic(
        experiment_feature_profiles,
        args=(corpus, ordering_cache),
        rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    emit("fig5_perfprofiles",
         render_profile_figure(profiles, list(ALL_ORDERINGS)))

    # RCM wins the bandwidth profile at tau=1
    bw_at_1 = {m: profile_at(profiles["bandwidth"], m, 1.0)
               for m in ALL_ORDERINGS}
    record_bench("fig5_perfprofiles", {
        "wall_seconds": metric(wall, unit="s"),
        "rcm_bandwidth_at_tau1": metric(float(bw_at_1["RCM"]),
                                        polarity="higher"),
        "gp_offdiag_at_tau1": metric(
            float(profile_at(profiles["offdiag"], "GP", 1.0)),
            polarity="higher"),
    })
    assert max(bw_at_1, key=bw_at_1.get) == "RCM"

    # GP leads the off-diagonal count; HP among the runners-up (rank
    # evaluated at tau=1.1 — at exactly tau=1 tie clusters make the
    # order of the non-winners noisy on a small corpus)
    off_at_1 = {m: profile_at(profiles["offdiag"], m, 1.0)
                for m in ALL_ORDERINGS}
    assert max(off_at_1, key=off_at_1.get) == "GP"
    off_at_11 = {m: profile_at(profiles["offdiag"], m, 1.1)
                 for m in ALL_ORDERINGS}
    ranked = sorted(off_at_11, key=off_at_11.get, reverse=True)
    assert "HP" in ranked[:3]
    # GP and HP are the two most effective methods for SpMV runtime
    # (paper: "we again see GP and HP as the first and second most
    # effective methods")
    time_at_11 = {m: profile_at(profiles["spmv_time"], m, 1.1)
                  for m in ALL_ORDERINGS}
    t_ranked = sorted(time_at_11, key=time_at_11.get, reverse=True)
    assert set(t_ranked[:2]) == {"GP", "HP"}

    # the SpMV-runtime profile resembles the off-diag profile more than
    # the bandwidth profile (rank correlation over methods at tau=1.1)
    def ranks(feature):
        vals = {m: profile_at(profiles[feature], m, 1.1)
                for m in ALL_ORDERINGS}
        order = sorted(vals, key=vals.get)
        return {m: i for i, m in enumerate(order)}

    spmv_r, off_r, bw_r = ranks("spmv_time"), ranks("offdiag"), \
        ranks("bandwidth")

    def distance(a, b):
        return sum(abs(a[m] - b[m]) for m in a)

    assert distance(spmv_r, off_r) <= distance(spmv_r, bw_r)
