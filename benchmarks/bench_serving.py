"""Serving-path gate: the daemon must batch, not just answer.

Boots a real :class:`repro.serve.AdvisorDaemon` on a loopback port and
replays a seeded bursty trace (zipf popularity, open-loop arrivals)
against it.  The hard gates are **deterministic**:

1. every request is answered — no transport failures, no drops;
2. every 200 response is bit-identical to a direct, unbatched
   ``Advisor.advise`` call on a fresh advisor (batching must be
   invisible in the answers);
3. the burst actually reaches the batched path: the server-side
   batch-size histogram has mean > 1 and ``advise_many`` saw
   multi-request batches (a daemon that degenerates to singleton
   batches silently loses the fast path this subsystem exists for);
4. the /metricsz SLO section carries the latency quantiles and shed
   counters dashboards key on.

Throughput is also gated, but against a *conservative* floor (CI
machines are noisy): the tiny-tier daemon sustains well over 1000
requests/s locally, so a floor of 50/s only catches pathological
regressions (e.g. the batcher serialising on the linger timer).

Client-side latency percentiles and the server SLO snapshot land in
``benchmarks/output/<tier>/bench_serving.json``.
"""

from __future__ import annotations

from repro.advisor import Advisor, train_model
from repro.generators import build_corpus
from repro.machine import get_architecture
from repro.serve import (ServeClient, ServeConfig, generate_trace,
                         replay, start_in_thread)
from repro.serve.protocol import advice_to_wire
from repro.util import format_table

from conftest import SEED

ARCH_NAME = "Rome"
ORDERINGS = ("RCM", "Gray")
MATRICES = 4
REQUESTS = 120
RATE = 600.0
#: deliberately far below the ~1000+ rps the tiny tier sustains
THROUGHPUT_FLOOR_RPS = 50.0


def test_daemon_batches_and_answers_bit_identically(emit, emit_json):
    corpus = build_corpus("tiny", seed=SEED)[:MATRICES]
    arch = get_architecture(ARCH_NAME)
    model = train_model(corpus=corpus, architectures=[arch],
                        orderings=ORDERINGS, seed=SEED)
    advisor = Advisor(model, workers=2)
    trace = generate_trace([e.name for e in corpus], n=REQUESTS,
                           seed=SEED, rate=RATE)
    config = ServeConfig(port=0, rate=None, max_batch=32,
                         linger_ms=5.0)
    try:
        with start_in_thread(advisor, corpus, config) as handle:
            report = replay(trace, port=handle.port, arch=ARCH_NAME)
            with ServeClient(handle.host, handle.port) as client:
                metrics = client.metricsz()
    finally:
        advisor.close()

    # -- gate 1: nothing lost ------------------------------------------
    assert report.transport_failures == 0, \
        f"{report.transport_failures} request(s) got no response"
    assert report.ok == REQUESTS, \
        (f"only {report.ok}/{REQUESTS} ok "
         f"(rejected={report.rejected}, errors={report.errors})")

    # -- gate 2: batching is invisible in the answers ------------------
    oracle = Advisor(model)  # fresh caches: a true unbatched reference
    by_name = {e.name: e for e in corpus}
    for req in trace:
        e = by_name[req.matrix]
        expected = advice_to_wire(
            oracle.advise(e.matrix, arch, matrix_name=e.name))
        got = report.responses[req.id]["advice"]
        assert got == expected, \
            (f"request {req.id} ({req.matrix}): served advice differs "
             f"from the unbatched oracle:\n  {got}\nvs\n  {expected}")

    # -- gate 3: the batched path was reached --------------------------
    slo = metrics["slo"]
    batch = slo["batch"]
    assert batch["mean_size"] > 1.0, \
        (f"mean batch size {batch['mean_size']} over "
         f"{batch['batches']} batch(es): the burst never coalesced")
    assert batch["max_size"] >= 2
    client_mean = (sum(report.batch_sizes) / len(report.batch_sizes))
    assert client_mean > 1.0  # clients see the same coalescing

    # -- gate 4: the SLO section is populated --------------------------
    lat = slo["latency_ms"]
    assert lat["count"] == REQUESTS
    assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
    assert set(slo["shed"]) == {"rate_limited", "queue_full",
                                "draining"}
    assert sum(slo["shed"].values()) == 0  # admission was off

    # -- conservative throughput floor ---------------------------------
    assert report.achieved_rps > THROUGHPUT_FLOOR_RPS, \
        (f"achieved {report.achieved_rps:.0f} rps < floor "
         f"{THROUGHPUT_FLOOR_RPS:.0f} rps on the tiny tier")

    artifact = {
        "seed": SEED,
        "matrices": MATRICES,
        "requests": REQUESTS,
        "offered_rps": report.to_dict()["offered_rps"],
        "achieved_rps": report.to_dict()["achieved_rps"],
        "client_latency_ms": report.latency_ms,
        "client_mean_batch_size": round(client_mean, 3),
        "server_slo": slo,
        "throughput_floor_rps": THROUGHPUT_FLOOR_RPS,
    }
    emit_json("bench_serving", artifact)
    rows = [
        ["requests", str(REQUESTS)],
        ["offered rps", f"{artifact['offered_rps']:.0f}"],
        ["achieved rps", f"{artifact['achieved_rps']:.0f}"],
        ["client p50 ms", f"{report.latency_ms['p50']:.2f}"],
        ["client p99 ms", f"{report.latency_ms['p99']:.2f}"],
        ["server p99 ms", f"{lat['p99']:.2f}"],
        ["mean batch", f"{batch['mean_size']:.2f}"],
        ["max batch", str(batch["max_size"])],
        ["batches", str(batch["batches"])],
    ]
    emit("bench_serving",
         "Serving gate: micro-batched daemon vs unbatched oracle\n"
         + format_table(["metric", "value"], rows))
