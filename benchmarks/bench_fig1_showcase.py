"""Figure 1: RCM/ND/GP speedups for Freescale2, com-Amazon and kmer_V1r
stand-ins on Milan B and Ice Lake.

Shape target (paper Fig. 1): GP helps all three matrices; ND hurts the
circuit-like Freescale2; the effects hold on both machines.
"""

import time

from repro.harness import experiment_fig1_showcase
from repro.harness.report import render_fig1
from repro.obs.perf import metric

from conftest import NAMED_SCALE


def test_fig1_showcase(benchmark, ordering_cache, emit, record_bench):
    t0 = time.perf_counter()
    showcase = benchmark.pedantic(
        experiment_fig1_showcase,
        kwargs={"cache": ordering_cache, "scale": NAMED_SCALE},
        rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    emit("fig1_showcase", render_fig1(showcase))
    cell = showcase[("Freescale2", "Milan B")]
    record_bench("fig1_showcase", {
        "wall_seconds": metric(wall, unit="s"),
        "gp_over_nd_freescale2_milanb": metric(
            float(cell["GP"] / cell["ND"]), polarity="higher"),
    })
    # GP must beat ND on the circuit-like Freescale2 on both machines
    for arch in ("Milan B", "Ice Lake"):
        cell = showcase[("Freescale2", arch)]
        assert cell["GP"] > cell["ND"]
    # every (matrix, arch) pair produced all three orderings
    assert len(showcase) == 6
