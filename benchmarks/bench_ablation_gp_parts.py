"""Ablation: GP part count (DESIGN.md §5.3).

The paper matches the part count to the core count (§3.3).  This sweep
varies it from far-too-coarse to far-too-fine on a fixed machine and
shows that matching the core count is near-optimal: too few parts lose
per-thread block locality, far too many shred the blocks across thread
boundaries.
"""

import time

import numpy as np

from repro.analysis import geomean
from repro.machine import PerfModel, get_architecture, simulate_measurement
from repro.obs.perf import metric
from repro.reorder import gp_ordering
from repro.util import format_table

PART_COUNTS = (4, 16, 64, 128, 256)


def test_ablation_gp_part_count(benchmark, corpus, emit, record_bench):
    arch = get_architecture("Milan B")  # 128 cores
    model = PerfModel(arch)
    subset = [e for e in corpus if e.nrows >= 512][:8]

    def run():
        out = {}
        for k in PART_COUNTS:
            speedups = []
            for e in subset:
                base = simulate_measurement(e.matrix, arch, "1d",
                                            e.name, "original",
                                            model=model)
                r = gp_ordering(e.matrix, nparts=k, seed=0)
                rec = simulate_measurement(r.apply(e.matrix), arch, "1d",
                                           e.name, "GP", model=model)
                speedups.append(rec.gflops_max / base.gflops_max)
            out[k] = geomean(speedups)
        return out

    t0 = time.perf_counter()
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    emit("ablation_gp_parts",
         "GP part-count sweep (geomean 1D speedup, Milan B = 128 cores)\n"
         + format_table(["parts", "geomean speedup"],
                        [[k, v] for k, v in out.items()]))
    record_bench("ablation_gp_parts", {
        "wall_seconds": metric(wall, unit="s"),
        "geomean_speedup_parts128": metric(float(out[128]),
                                           polarity="higher"),
        "geomean_speedup_parts4": metric(float(out[4]),
                                         polarity="higher"),
    })
    # the core-matched count must beat the extreme undershoot
    assert out[128] > out[4]
