"""Figure 6: Cholesky fill ratio nnz(L)/nnz(A) per ordering over the
SPD subset of the corpus.

Shape targets (paper §4.6): the fill-reducing orderings AMD and ND
produce the least fill; RCM, GP and HP are considerably less effective
but typically still better than the original ordering; Gray is absent
(row-only permutations cannot be used for a symmetric factorisation).
"""

import time

import numpy as np

from repro.harness import experiment_cholesky_fill
from repro.harness.report import render_fill_figure
from repro.obs.perf import metric


def test_fig6_cholesky_fill(benchmark, corpus, ordering_cache, emit,
                            record_bench):
    t0 = time.perf_counter()
    fills = benchmark.pedantic(
        experiment_cholesky_fill,
        args=(corpus, ordering_cache),
        rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    emit("fig6_cholesky_fill", render_fill_figure(fills))

    med = {o: np.median(v) for o, v in fills["_raw"].items()}
    record_bench("fig6_cholesky_fill", {
        "wall_seconds": metric(wall, unit="s"),
        "fill_amd_median": metric(float(med["AMD"])),
        "fill_nd_median": metric(float(med["ND"])),
        "fill_rcm_median": metric(float(med["RCM"])),
    })
    assert "Gray" not in med
    # AMD and ND least fill (medians)
    others = [med[o] for o in ("RCM", "GP", "HP", "original")]
    assert med["AMD"] < min(others)
    assert med["ND"] < min(others)
    # the others typically still better than the original order
    assert med["RCM"] < med["original"]
