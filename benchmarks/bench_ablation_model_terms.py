"""Ablation: the two explanatory terms of the performance model.

DESIGN.md §5.1–5.2: disabling the *locality* term (x-reuse window
model) should collapse the GP/RCM advantage; disabling the *imbalance*
term (max-over-threads) should collapse the 1D-vs-2D difference.  This
is the model-side counterpart of the paper's claim that locality and
load balance jointly explain reordering behaviour (§4.4).
"""

import time

import numpy as np

from repro.analysis import geomean
from repro.harness import OrderingCache, run_sweep
from repro.machine import PerfModel, get_architecture
from repro.obs.perf import metric
from repro.util import format_table


def _sweep_geomeans(corpus, cache, model_factory):
    arch = get_architecture("Milan B")
    sweep = run_sweep(corpus, [arch], ["RCM", "GP", "Gray"],
                      cache=cache, model_factory=model_factory)
    out = {}
    for kernel in ("1d", "2d"):
        for o in ("RCM", "GP", "Gray"):
            out[(kernel, o)] = geomean(
                sweep.speedups(o, kernel, "Milan B"))
    return out


def test_ablation_model_terms(benchmark, corpus, ordering_cache, emit,
                              record_bench):
    def run():
        full = _sweep_geomeans(corpus, ordering_cache, PerfModel)
        no_loc = _sweep_geomeans(
            corpus, ordering_cache,
            lambda a: PerfModel(a, locality_term=False))
        no_imb = _sweep_geomeans(
            corpus, ordering_cache,
            lambda a: PerfModel(a, imbalance_term=False))
        return full, no_loc, no_imb

    t0 = time.perf_counter()
    full, no_loc, no_imb = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    record_bench("ablation_model_terms", {
        "wall_seconds": metric(wall, unit="s"),
        "gp_1d_full": metric(float(full[("1d", "GP")]),
                             polarity="higher"),
        "gp_1d_no_locality": metric(float(no_loc[("1d", "GP")]),
                                    polarity="higher"),
    })

    rows = []
    for (kernel, o) in sorted(full):
        rows.append([f"{o}/{kernel}", full[(kernel, o)],
                     no_loc[(kernel, o)], no_imb[(kernel, o)]])
    emit("ablation_model_terms", "Model-term ablation (geomean speedups, "
         "Milan B)\n" + format_table(
             ["ordering/kernel", "full model", "no locality",
              "no imbalance"], rows))

    # locality off: GP's 1D advantage collapses towards 1
    assert abs(np.log(no_loc[("1d", "GP")])) < abs(
        np.log(full[("1d", "GP")]))
    # imbalance off: 1D and 2D speedups of GP converge
    gap_full = abs(np.log(full[("1d", "GP")] / full[("2d", "GP")]))
    gap_no_imb = abs(np.log(no_imb[("1d", "GP")] / no_imb[("2d", "GP")]))
    assert gap_no_imb <= gap_full + 0.02
