"""Out-of-core sweep gate: RSS budget, bit-identity, and kill/resume.

The acceptance gate for the :mod:`repro.storage` layer (PR 8).  A
sharded memmap sweep over the xl tier (>= 10^7 nnz at the default
scale) must

* complete with peak RSS under a configured budget — matrices stream
  from disk shard by shard instead of residing in every worker;
* produce records bit-identical to the in-RAM pickle transport on the
  tiny tier (the transport must never change results);
* survive SIGKILL mid-sweep: ``--resume`` completes the journal with
  the pre-kill prefix intact and **zero** snapshot regeneration (the
  corpus is reattached by content address, not rebuilt).

Knobs (environment):

* ``REPRO_OOC_SCALE``          xl row-count multiplier (default 1.0)
* ``REPRO_OOC_RSS_BUDGET_MB``  peak-RSS budget for the gated sweep
  (default 2048)
* ``REPRO_OOC_JOBS``           worker processes (default 2)

Run with ``pytest -q -s benchmarks/bench_outofcore_sweep.py``; the
machine-readable verdict lands in
``benchmarks/output/<tier>/outofcore_sweep.json``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.obs.metrics import REGISTRY
from repro.storage import ensure_corpus_snapshot, open_corpus_snapshot

SCALE = float(os.environ.get("REPRO_OOC_SCALE", "1.0"))
BUDGET_MB = int(os.environ.get("REPRO_OOC_RSS_BUDGET_MB", "2048"))
JOBS = int(os.environ.get("REPRO_OOC_JOBS", "2"))
SEED = 0
SHARD_BYTES = 256 * 1024 * 1024

STORAGE_DIR = Path(__file__).parent / "output" / "storage"
XL_DIR = STORAGE_DIR / f"xl_{SEED}_{SCALE:g}"

#: common CLI tail for every gated sweep (Gray only: the point is the
#: storage layer, not reordering cost on 10^6-row graphs)
SWEEP_ARGS = ["--archs", "Rome", "--orderings", "Gray", "--kernels", "1d",
              "--jobs", str(JOBS), "--transport", "memmap",
              "--shard-bytes", str(SHARD_BYTES)]


def _env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.fixture(scope="module")
def xl_snapshot():
    """The content-addressed xl corpus (built once, reused by address)."""
    STORAGE_DIR.mkdir(parents=True, exist_ok=True)
    t0 = time.perf_counter()
    snap = ensure_corpus_snapshot(str(XL_DIR), tier="xl", seed=SEED,
                                  scale=SCALE)
    nnz = sum(e.nnz for e in snap.entries)
    print(f"\nxl snapshot: {len(snap.entries)} matrices, {nnz:,} nnz, "
          f"signature {snap.signature} "
          f"({time.perf_counter() - t0:.1f}s)")
    if SCALE >= 1.0:
        assert nnz >= 10_000_000, \
            f"xl tier must reach 10^7 nnz at scale>=1, got {nnz:,}"
    return snap


@pytest.fixture(scope="module")
def gated_sweep(xl_snapshot):
    """Run the sharded memmap sweep in a wrapper subprocess that reports
    its own peak RSS (self + workers), isolated from pytest's other
    children."""
    journal = STORAGE_DIR / "xl_reference.jsonl"
    journal.unlink(missing_ok=True)
    metrics = STORAGE_DIR / "xl_reference_metrics.json"
    wrapper = textwrap.dedent(f"""
        import json, resource, sys, time
        from repro.harness import cli
        t0 = time.perf_counter()
        rc = cli.main(["sweep", "--corpus", {str(XL_DIR)!r}]
                      + {SWEEP_ARGS!r}
                      + ["--journal", {str(journal)!r},
                         "--metrics", {str(metrics)!r},
                         "--manifest", {str(STORAGE_DIR / 'xl_manifest.json')!r},
                         "--strict"])
        kb = 1024.0
        print(json.dumps({{
            "rc": rc,
            "wall_s": round(time.perf_counter() - t0, 2),
            "self_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / kb,
            "child_max_mb": resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / kb,
        }}))
    """)
    proc = subprocess.run([sys.executable, "-c", wrapper], env=_env(),
                          capture_output=True, text=True, timeout=1800)
    assert proc.returncode == 0, \
        f"gated sweep failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    stats = json.loads(proc.stdout.strip().splitlines()[-1])
    # upper bound on concurrent RSS: the engine process plus every
    # worker at the single worst worker's peak
    stats["peak_mb"] = stats["self_mb"] + JOBS * stats["child_max_mb"]
    stats["journal"] = str(journal)
    print(f"gated sweep: {stats['wall_s']}s, engine "
          f"{stats['self_mb']:.0f} MB, worst worker "
          f"{stats['child_max_mb']:.0f} MB, bounded peak "
          f"{stats['peak_mb']:.0f} MB (budget {BUDGET_MB} MB)")
    return stats


def _journal_records(path):
    recs = []
    with open(path) as f:
        for line in f:
            if not line.strip():
                continue
            d = json.loads(line)
            if d.get("type") != "record":
                continue
            r = d["data"]
            recs.append((r["matrix"], r["ordering"], r["kernel"],
                         r["architecture"], r["gflops_max"],
                         r["gflops_mean"], r["seconds"]))
    return sorted(recs)


def test_rss_budget(gated_sweep, xl_snapshot, emit_json):
    """The sharded memmap sweep stays under the configured RSS budget."""
    verdict = {
        "scale": SCALE, "jobs": JOBS, "shard_bytes": SHARD_BYTES,
        "budget_mb": BUDGET_MB, "snapshot": xl_snapshot.signature,
        "nnz": sum(e.nnz for e in xl_snapshot.entries),
        **{k: gated_sweep[k] for k in
           ("rc", "wall_s", "self_mb", "child_max_mb", "peak_mb")},
    }
    emit_json("outofcore_sweep", verdict)
    assert gated_sweep["peak_mb"] < BUDGET_MB, \
        (f"peak RSS {gated_sweep['peak_mb']:.0f} MB exceeds the "
         f"{BUDGET_MB} MB budget — sharding is not bounding memory")


def test_transport_bit_identity(tmp_path):
    """memmap-over-snapshot records == pickle-over-RAM records (tiny)."""
    from repro.generators import build_corpus
    from repro.harness.engine import SweepEngine
    from repro.machine import get_architecture

    snap = ensure_corpus_snapshot(str(tmp_path / "tiny"), tier="tiny",
                                  seed=SEED, limit=4, groups=("Banded",))
    inram = build_corpus("tiny", seed=SEED, groups=("Banded",))[:4]
    archs = [get_architecture("Rome")]

    def run(corpus, transport):
        engine = SweepEngine(corpus, archs, ["RCM", "Gray"],
                             kernels=("1d",), seed=SEED, jobs=2,
                             transport=transport)
        result = engine.run()
        assert not result.failed
        return sorted((r.matrix, r.ordering, r.kernel, r.architecture,
                       r.gflops_max, r.gflops_mean, r.seconds)
                      for r in result.records)

    mm = run(list(snap.entries), "memmap")
    ref = run(inram, "pickle")
    assert mm == ref, \
        "memmap transport changed sweep records vs in-RAM pickle"


def test_sigkill_resume_zero_regeneration(gated_sweep, xl_snapshot):
    """SIGKILL mid-sweep, then --resume: the pre-kill journal prefix is
    preserved, the completed journal matches the uninterrupted run, and
    the snapshot is reattached with zero regeneration."""
    journal = STORAGE_DIR / "xl_killed.jsonl"
    journal.unlink(missing_ok=True)
    cmd = [sys.executable, "-m", "repro", "sweep",
           "--corpus", str(XL_DIR)] + SWEEP_ARGS + \
          ["--journal", str(journal)]
    proc = subprocess.Popen(cmd, env=_env(), start_new_session=True,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 600
        while time.time() < deadline:
            if journal.exists() and len(_journal_records(journal)) >= 2:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.1)
        killed = proc.poll() is None
        if killed:
            os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    prefix = journal.read_bytes()
    assert _journal_records(journal), "no records before the kill"
    print(f"\nkilled={killed} with {len(_journal_records(journal))} "
          "record(s) journaled")

    # reattach by content address: nothing may be rebuilt or quarantined
    built0 = REGISTRY.counter("storage.snapshots_built").value
    quar0 = REGISTRY.counter("storage.snapshots_quarantined").value
    snap = ensure_corpus_snapshot(str(XL_DIR), tier="xl", seed=SEED,
                                  scale=SCALE)
    assert snap.signature == xl_snapshot.signature
    built = REGISTRY.counter("storage.snapshots_built").value - built0
    quar = REGISTRY.counter("storage.snapshots_quarantined").value - quar0
    assert built == 0 and quar == 0, \
        (f"resume rebuilt {built} / quarantined {quar} snapshot "
         "matrices — reattachment is not content-addressed")

    resume = subprocess.run(cmd + ["--resume", "--strict"], env=_env(),
                            capture_output=True, text=True, timeout=1800)
    assert resume.returncode == 0, \
        f"resume failed:\n{resume.stdout[-2000:]}\n{resume.stderr[-2000:]}"
    final = journal.read_bytes()
    assert final.startswith(prefix), \
        "resume rewrote the pre-kill journal prefix"
    assert _journal_records(journal) == \
        _journal_records(gated_sweep["journal"]), \
        "resumed journal differs from the uninterrupted reference run"
    # verify the snapshot arrays really survived untouched
    open_corpus_snapshot(str(XL_DIR), verify="crc")
