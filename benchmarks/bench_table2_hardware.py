"""Table 2: the eight machine descriptions (configuration check).

Regenerates the hardware table from :mod:`repro.machine.arch` and
benchmarks the (trivial) lookup path, so any drift in the architecture
constants shows up as an artifact diff.
"""

from repro.machine import TABLE2, architecture_names, get_architecture
from repro.util import format_table


def render_table2() -> str:
    headers = ["", *architecture_names()]
    rows = [
        ["CPU"] + [TABLE2[n].cpu for n in architecture_names()],
        ["Instr. set"] + [TABLE2[n].isa for n in architecture_names()],
        ["Microarch."] + [TABLE2[n].microarch for n in architecture_names()],
        ["Sockets"] + [TABLE2[n].sockets for n in architecture_names()],
        ["Cores"] + [TABLE2[n].cores for n in architecture_names()],
        ["L2/core [KiB]"] + [TABLE2[n].l2_per_core // 1024
                             for n in architecture_names()],
        ["L3/socket [MiB]"] + [TABLE2[n].l3_per_socket // 2**20
                               for n in architecture_names()],
        ["Bandwidth [GB/s]"] + [TABLE2[n].bandwidth / 1e9
                                for n in architecture_names()],
    ]
    return "Table 2: hardware used in the modelled experiments\n" + \
        format_table(headers, rows, floatfmt="{:.1f}")


def test_table2_hardware(benchmark, emit, emit_json):
    text = benchmark(render_table2)
    emit("table2_hardware", text)
    emit_json("table2_hardware", {
        n: {"cpu": TABLE2[n].cpu, "isa": TABLE2[n].isa,
            "cores": TABLE2[n].cores,
            "bandwidth_gbs": TABLE2[n].bandwidth / 1e9}
        for n in architecture_names()})
    assert "Milan B" in text
    # the paper's GP part counts must be exactly the core counts
    parts = sorted(get_architecture(n).gp_parts
                   for n in architecture_names())
    assert parts == [16, 32, 48, 64, 64, 72, 128, 128]
