"""Per-family breakdown of reordering benefit (extends §4.4).

The class analysis explains *why* individual matrices respond to
reordering; this bench aggregates the same story per structural family
of the corpus: meshes and circuits benefit, already-ordered matrices do
not, and the no-structure random family cannot be helped by anyone.
"""

import numpy as np

from repro.analysis import geomean
from repro.util import format_table


def test_family_breakdown(benchmark, corpus, full_sweep, emit):
    def run():
        groups = sorted({e.group for e in corpus})
        table = {}
        for group in groups:
            names = {e.name for e in corpus if e.group == group}
            for ordering in ("RCM", "GP", "Gray"):
                vals = []
                for rec in full_sweep.records:
                    if (rec.matrix in names and rec.kernel == "1d"
                            and rec.architecture == "Milan B"
                            and rec.ordering == ordering):
                        base = full_sweep.lookup(rec.matrix, "original",
                                                 "1d", "Milan B")
                        vals.append(rec.gflops_max / base.gflops_max)
                table[(group, ordering)] = geomean(vals)
        return groups, table

    groups, table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[g] + [table[(g, o)] for o in ("RCM", "GP", "Gray")]
            for g in groups]
    emit("family_breakdown",
         "Per-family geomean 1D speedups (Milan B)\n"
         + format_table(["family", "RCM", "GP", "Gray"], rows))

    # the no-structure random family must not show real GP gains
    if "Random" in groups:
        assert table[("Random", "GP")] < 1.35
    # mesh-dominated families benefit from GP more than random ones
    mesh_groups = [g for g in groups if g in ("PDE", "FEM")]
    if mesh_groups and "Random" in groups:
        best_mesh = max(table[(g, "GP")] for g in mesh_groups)
        assert best_mesh >= table[("Random", "GP")]
    # Gray helps no family on average (its median case is a slowdown)
    assert all(table[(g, "Gray")] < 1.25 for g in groups)
