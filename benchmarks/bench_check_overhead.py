"""Cost gate for the quick check tier: a fixed op-count budget.

The oracle layer rides in CI on every push, so its quick tier must
stay cheap *by construction*.  Like ``bench_obs_overhead`` and
``bench_model_fastpath``, the hard gate is **deterministic** — counts
of the expensive production primitives the suites invoke (ordering
computations, SpMV kernel launches, model predictions), not wall
time, so it cannot flake on a noisy CI runner:

1. one ``run_check(quick=True)`` is executed with counting wrappers
   around ``compute_ordering``, the three SpMV kernels and
   ``PerfModel.predict``;
2. the gate asserts each count stays under an explicit budget sized
   to the quick corpus (a new suite or a corpus-subsampling
   regression that balloons the tier blows the budget);
3. a coverage floor asserts the subsampling never hollows the tier
   out: at least ``MIN_CASES`` invariant cases must still run.

Wall time is measured and persisted as evidence but only
sanity-checked loosely.
"""

from __future__ import annotations

import time

from repro.check.cli import run_check
from repro.machine import model as model_mod
from repro.reorder import registry as registry_mod
from repro.spmv import kernels as kernels_mod

from conftest import SEED

#: op-count ceilings for one quick-tier run.  Sized from the current
#: quick corpus (19 matrices, ~2000 cases) with ~2x headroom; a
#: breach means the quick tier stopped being quick, not a flaky timer.
BUDGET = {
    "compute_ordering": 800,    # currently ~400 (permutation suite x2)
    "spmv_kernel": 450,         # currently ~230 (kernels suite)
    "model_predict": 900,       # currently ~440 (model + artifacts)
}
#: coverage floor: quick subsampling must not hollow the tier out
MIN_CASES = 1000
#: loose wall-time sanity bound (the CI job budget, not a perf gate)
WALL_SANITY_SECONDS = 120.0


def _counting(calls: dict, key: str, fn):
    def wrapper(*args, **kwargs):
        calls[key] += 1
        return fn(*args, **kwargs)

    return wrapper


def test_quick_check_fits_op_budget(emit, emit_json):
    calls = dict.fromkeys(BUDGET, 0)
    saved = [
        (registry_mod, "compute_ordering", "compute_ordering"),
        (kernels_mod, "spmv_1d", "spmv_kernel"),
        (kernels_mod, "spmv_2d", "spmv_kernel"),  # also the merge path
        (model_mod.PerfModel, "predict", "model_predict"),
    ]
    originals = [(obj, name, getattr(obj, name)) for obj, name, _ in saved]
    for (obj, name, key), (_, _, orig) in zip(saved, originals):
        setattr(obj, name, _counting(calls, key, orig))
    t0 = time.perf_counter()
    try:
        report = run_check(seed=SEED, quick=True)
    finally:
        for obj, name, orig in originals:
            setattr(obj, name, orig)
    wall = time.perf_counter() - t0

    assert report.ok, [str(f) for f in report.findings]
    assert report.cases >= MIN_CASES, (
        f"quick tier ran only {report.cases} invariant case(s) — the "
        f"subsampling hollowed the oracle out (floor {MIN_CASES})")
    over = {k: (calls[k], BUDGET[k]) for k in BUDGET
            if calls[k] > BUDGET[k]}
    assert not over, (
        f"quick check blew its op-count budget: {over} — a suite or "
        "corpus change made the CI tier expensive")
    assert wall < WALL_SANITY_SECONDS

    rows = [f"{k:>18}: {calls[k]:5d} / budget {BUDGET[k]}"
            for k in BUDGET]
    text = "\n".join([
        "quick check op-count budget",
        *rows,
        f"{'cases':>18}: {report.cases:5d} / floor  {MIN_CASES}",
        f"{'wall':>18}: {wall:8.2f}s",
    ])
    emit("bench_check_overhead", text)
    emit_json("bench_check_overhead", {
        "calls": calls, "budget": BUDGET, "cases": report.cases,
        "min_cases": MIN_CASES, "wall_seconds": round(wall, 3),
    })
