"""Advisor quality: learned selection vs oracle-best vs always-RCM.

The product question behind :mod:`repro.advisor`: if a service had to
pick ONE ordering per (matrix, architecture, kernel) request without
running the six-ordering sweep, how much of the achievable speedup
would it keep?  The corpus is split by structural family (train/test
disjoint), the model is trained on the training side of the shared
full sweep, and scored on the held-out matrices across all eight
machines and both kernels.

Acceptance: the advisor's picks must achieve >= 90% of the oracle-best
geomean modeled speedup and beat the always-RCM single-default
baseline.
"""

from repro.advisor import Advisor, AdvisorModel, build_dataset, \
    evaluate_advisor
from repro.generators import split_corpus
from repro.util import format_table

from conftest import SEED


def test_advisor_vs_oracle(benchmark, corpus, full_sweep, ordering_cache,
                           all_architectures, emit):
    train, test = split_corpus(corpus, test_fraction=0.3, seed=SEED)

    def run():
        rows = build_dataset(train, all_architectures, sweep=full_sweep,
                             cache=ordering_cache, seed=SEED)
        advisor = Advisor(AdvisorModel(k=5).fit(rows))
        report = evaluate_advisor(advisor, test, all_architectures,
                                  sweep=full_sweep, cache=ordering_cache,
                                  seed=SEED)
        return advisor, report

    advisor, report = benchmark.pedantic(run, rounds=1, iterations=1)

    policy_rows = [[name, f"{gm:.4f}", f"{frac:.1%}"]
                   for name, gm, frac in report.rows()]
    picks = ", ".join(f"{o}:{n}" for o, n in
                      sorted(report.picks.items(), key=lambda kv: -kv[1]))
    emit("advisor_vs_oracle",
         f"Advisor evaluation — {len(train)} train / {len(test)} test "
         f"matrices, {report.cases} (matrix, arch, kernel) cells\n"
         + format_table(["policy", "geomean speedup", "vs oracle"],
                        policy_rows)
         + f"\ntop-1 accuracy: {report.top1_accuracy:.1%}"
         + f"   within 5% of oracle: {report.within_5pct:.1%}"
         + f"\npicks: {picks}")

    assert report.geomean_oracle >= 1.0
    assert report.geomean_advisor >= 0.90 * report.geomean_oracle
    assert report.geomean_advisor > report.geomean_rcm
    assert report.geomean_advisor > report.geomean_natural
