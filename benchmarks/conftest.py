"""Shared fixtures for the benchmark harness.

All benches share one corpus, one ordering cache (persisted on disk, so
re-runs skip the expensive reordering pass) and one full measurement
sweep.  Set ``REPRO_BENCH_TIER=small`` (or ``medium``) for a larger
corpus closer to the paper's scale — the default ``tiny`` keeps the
full suite in the minutes range on one core.

Rendered tables/figures are printed (visible with ``pytest -s``) and
also written under ``benchmarks/output/`` so the artifacts persist.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.generators import build_corpus
from repro.harness import OrderingCache, run_sweep
from repro.harness.experiments import REORDERINGS
from repro.machine import architecture_names, get_architecture

TIER = os.environ.get("REPRO_BENCH_TIER", "tiny")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
OUTPUT_DIR = Path(__file__).parent / "output" / TIER
CACHE_DIR = Path(__file__).parent / f".ordering_cache_{TIER}_{SEED}"
#: scale of the named stand-in matrices used by Figures 1/4 & Table 5
NAMED_SCALE = {"tiny": 0.25, "small": 1.0, "medium": 2.0}[TIER]


@pytest.fixture(scope="session")
def corpus():
    return build_corpus(TIER, seed=SEED)


@pytest.fixture(scope="session")
def ordering_cache():
    return OrderingCache(path=str(CACHE_DIR))


@pytest.fixture(scope="session")
def all_architectures():
    return [get_architecture(n) for n in architecture_names()]


@pytest.fixture(scope="session")
def full_sweep(corpus, all_architectures, ordering_cache):
    """The complete measurement sweep behind Figures 2/3 and Tables 3/4."""
    return run_sweep(corpus, all_architectures, list(REORDERINGS),
                     cache=ordering_cache, seed=SEED)


@pytest.fixture(scope="session")
def emit():
    """Print a rendered artifact and persist it under benchmarks/output."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
