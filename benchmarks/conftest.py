"""Shared fixtures for the benchmark harness.

All benches share one corpus, one ordering cache (persisted on disk, so
re-runs skip the expensive reordering pass) and one full measurement
sweep.  The sweep runs through :class:`repro.harness.SweepEngine`: set
``REPRO_BENCH_JOBS=N`` to fan it out over N worker processes, and the
JSONL journal under ``benchmarks/output/`` makes an interrupted bench
run resume instead of recomputing.  Set ``REPRO_BENCH_TIER=small`` (or
``medium``) for a larger corpus closer to the paper's scale — the
default ``tiny`` keeps the full suite in the minutes range on one core.

Rendered tables/figures are printed (visible with ``pytest -s``) and
also written under ``benchmarks/output/`` so the artifacts persist;
machine-readable JSON artifacts (including ``sweep_metrics.json``) land
next to them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.generators import build_corpus
from repro.harness import OrderingCache, SweepEngine
from repro.harness.experiments import REORDERINGS
from repro.machine import architecture_names, get_architecture
from repro.obs.perf import BenchLedger, bench_record

TIER = os.environ.get("REPRO_BENCH_TIER", "tiny")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
OUTPUT_DIR = Path(__file__).parent / "output" / TIER
CACHE_DIR = Path(__file__).parent / f".ordering_cache_{TIER}_{SEED}"
JOURNAL = OUTPUT_DIR / f"sweep_journal_{TIER}_{SEED}.jsonl"
LEDGER = OUTPUT_DIR / f"BENCH_{TIER}.json"
#: scale of the named stand-in matrices used by Figures 1/4 & Table 5
NAMED_SCALE = {"tiny": 0.25, "small": 1.0, "medium": 2.0}[TIER]


@pytest.fixture(scope="session")
def corpus():
    return build_corpus(TIER, seed=SEED)


@pytest.fixture(scope="session")
def ordering_cache():
    return OrderingCache(path=str(CACHE_DIR))


@pytest.fixture(scope="session")
def all_architectures():
    return [get_architecture(n) for n in architecture_names()]


@pytest.fixture(scope="session")
def sweep_engine(corpus, all_architectures, ordering_cache):
    """The engine behind ``full_sweep`` — journaled and resumable, so a
    killed bench run continues where it stopped."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return SweepEngine(corpus, all_architectures, list(REORDERINGS),
                       cache=ordering_cache, seed=SEED, jobs=JOBS,
                       journal_path=str(JOURNAL), resume=True)


@pytest.fixture(scope="session")
def full_sweep(sweep_engine):
    """The complete measurement sweep behind Figures 2/3 and Tables 3/4."""
    from repro.errors import HarnessError

    try:
        result = sweep_engine.run()
    except HarnessError:
        # stale journal from an older corpus/config: start over
        JOURNAL.unlink(missing_ok=True)
        result = sweep_engine.run()
    assert result.complete, \
        f"sweep had {len(result.failed)} failed cells: {result.failed[:3]}"
    sweep_engine.metrics.save(OUTPUT_DIR / "sweep_metrics.json")
    return result


@pytest.fixture(scope="session")
def sweep_metrics(full_sweep, sweep_engine):
    """Observability snapshot of the sweep run (cells, stages, cache)."""
    return sweep_engine.metrics


@pytest.fixture(scope="session")
def emit():
    """Print a rendered artifact and persist it under benchmarks/output."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def bench_ledger():
    """The per-tier append-only benchmark history (``repro perf``)."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return BenchLedger(str(LEDGER))


@pytest.fixture(scope="session")
def record_bench(bench_ledger):
    """Append one BenchRecord to the per-tier ledger.

    ``metrics`` is a dict of :func:`repro.obs.perf.metric` values; the
    record carries the tier/seed/git provenance so a later
    ``repro perf compare --ledger benchmarks/output/<tier>/BENCH_<tier>.json``
    can gate regressions against any committed baseline.
    """

    def _record(name: str, metrics: dict, context: dict | None = None):
        rec = bench_record(name, tier=TIER, seed=SEED, metrics=metrics,
                           context=context)
        bench_ledger.append(rec)
        return rec

    return _record


@pytest.fixture(scope="session")
def emit_json():
    """Persist a machine-readable artifact next to the text tables."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)

    def _emit(name: str, data) -> None:
        path = OUTPUT_DIR / f"{name}.json"
        path.write_text(json.dumps(data, indent=2, sort_keys=True,
                                   default=str) + "\n")

    return _emit
