"""Ablation: FM refinement in the multilevel partitioners (DESIGN.md §5.5).

Refinement is the costly step of the multilevel method; this bench
quantifies what it buys: edge-cut / cut-net quality with and without
FM, and the knock-on effect on the GP ordering's modelled speedup.
"""

import time

import numpy as np

from repro.graph import column_net_hypergraph, graph_from_matrix
from repro.hpartition import cutnet, partition_hypergraph
from repro.partition import edge_cut, partition_graph
from repro.obs.perf import metric
from repro.util import format_table


def test_ablation_fm_refinement(benchmark, corpus, emit, record_bench):
    subset = [e for e in corpus if 256 <= e.nrows][:6]

    def run():
        rows = []
        for e in subset:
            g = graph_from_matrix(e.matrix)
            h = column_net_hypergraph(e.matrix)
            rng1 = np.random.default_rng(0)
            rng2 = np.random.default_rng(0)
            cut_ref = edge_cut(g, partition_graph(g, 16, rng=rng1))
            cut_no = edge_cut(g, partition_graph(g, 16, rng=rng2,
                                                 refine=False))
            hcut_ref = cutnet(h, partition_hypergraph(
                h, 16, rng=np.random.default_rng(0)))
            hcut_no = cutnet(h, partition_hypergraph(
                h, 16, rng=np.random.default_rng(0), refine=False))
            rows.append([e.name, cut_no, cut_ref, hcut_no, hcut_ref])
        return rows

    t0 = time.perf_counter()
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    emit("ablation_fm_refinement",
         "FM refinement ablation (16-way cuts)\n" + format_table(
             ["matrix", "edge-cut no-FM", "edge-cut FM",
              "cut-net no-FM", "cut-net FM"], rows))
    # refinement never hurts, and helps in aggregate
    total_no = sum(r[1] for r in rows)
    total_ref = sum(r[2] for r in rows)
    record_bench("ablation_fm_refinement", {
        "wall_seconds": metric(wall, unit="s"),
        "edge_cut_fm": metric(float(total_ref), unit="edges"),
        "edge_cut_no_fm": metric(float(total_no), unit="edges"),
        "cutnet_fm": metric(float(sum(r[4] for r in rows)),
                            unit="nets"),
    })
    assert total_ref <= total_no
    for r in rows:
        assert r[2] <= r[1]
        assert r[4] <= r[3]
