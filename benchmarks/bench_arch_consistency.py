"""Key finding 3: reordering behaviour is similar across architectures.

The paper highlights that, despite individual hardware-sensitive
matrices, the *overall* effect of each reordering barely depends on the
machine.  This bench quantifies that on the sweep: for every ordering,
the per-matrix log-speedups on each pair of machines must be strongly
positively correlated, and the per-machine geomeans must rank the
orderings identically on most machines.
"""

import numpy as np

from repro.harness import experiment_speedups
from repro.harness.experiments import REORDERINGS
from repro.machine import architecture_names
from repro.util import format_table


def test_cross_architecture_consistency(benchmark, full_sweep, emit):
    study = benchmark.pedantic(
        experiment_speedups,
        args=(full_sweep, architecture_names(), "1d"),
        rounds=1, iterations=1)

    archs = architecture_names()
    # mean pairwise Pearson correlation of log-speedups per ordering
    rows = []
    for o in REORDERINGS:
        logs = {a: np.log(study.raw[(a, o)]) for a in archs}
        cors = []
        for i, a in enumerate(archs):
            for b in archs[i + 1:]:
                la, lb = logs[a], logs[b]
                if la.std() > 1e-12 and lb.std() > 1e-12:
                    cors.append(float(np.corrcoef(la, lb)[0, 1]))
        rows.append([o, float(np.mean(cors)), float(np.min(cors))])
    emit("arch_consistency",
         "Cross-architecture consistency of 1D speedups "
         "(pairwise correlation of per-matrix log-speedups)\n"
         + format_table(["ordering", "mean corr", "min corr"], rows))

    for o, mean_c, min_c in rows:
        assert mean_c > 0.5, o   # strongly correlated on average
        assert min_c > 0.0, o    # never anti-correlated

    # ranking agreement: per-arch ordering ranking vs the global one
    overall = {o: np.exp(np.mean([np.log(study.geomeans[(a, o)])
                                  for a in archs])) for o in REORDERINGS}
    global_rank = sorted(REORDERINGS, key=lambda o: overall[o])
    agreements = 0
    for a in archs:
        rank = sorted(REORDERINGS, key=lambda o: study.geomeans[(a, o)])
        # Kendall-style: count pairwise agreements with the global rank
        pairs = 0
        agree = 0
        for i in range(len(REORDERINGS)):
            for j in range(i + 1, len(REORDERINGS)):
                pairs += 1
                gi = global_rank.index(rank[i])
                gj = global_rank.index(rank[j])
                agree += gi < gj
        agreements += agree / pairs > 0.7
    assert agreements >= len(archs) - 1  # at most one deviant machine
