"""Property-based tests for the multilevel partitioners."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import column_net_hypergraph, graph_from_matrix
from repro.hpartition import cutnet, hyper_balance, partition_hypergraph
from repro.matrix import coo_from_arrays, csr_from_coo
from repro.partition import edge_cut, partition_balance, partition_graph


@st.composite
def random_sym_matrix(draw, max_n=40, max_m=120):
    n = draw(st.integers(min_value=4, max_value=max_n))
    m = draw(st.integers(min_value=n, max_value=max_m + n))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)
    rows = np.concatenate([u, v])
    cols = np.concatenate([v, u])
    return csr_from_coo(coo_from_arrays(n, n, rows, cols))


@given(random_sym_matrix(), st.integers(2, 8))
@settings(max_examples=25, deadline=None)
def test_partition_covers_and_bounds(a, k):
    g = graph_from_matrix(a)
    part = partition_graph(g, k, rng=np.random.default_rng(0))
    assert part.shape == (g.nvertices,)
    assert part.min() >= 0 and part.max() < k
    # cut never exceeds total edge weight
    assert 0 <= edge_cut(g, part) <= g.total_edge_weight()


@given(random_sym_matrix(), st.integers(2, 6))
@settings(max_examples=20, deadline=None)
def test_partition_balance_bounded(a, k):
    g = graph_from_matrix(a)
    part = partition_graph(g, k, rng=np.random.default_rng(0))
    # balance can degrade on adversarial graphs but must stay below the
    # one-part-holds-everything bound
    assert partition_balance(g, part, k) <= k


@given(random_sym_matrix(), st.integers(2, 6))
@settings(max_examples=20, deadline=None)
def test_hpartition_covers_and_bounds(a, k):
    h = column_net_hypergraph(a)
    part = partition_hypergraph(h, k, rng=np.random.default_rng(0))
    assert part.shape == (h.nvertices,)
    assert part.min() >= 0 and part.max() < k
    assert 0 <= cutnet(h, part) <= int(h.nwgt.sum())
    assert hyper_balance(h, part, k) <= k


@given(random_sym_matrix())
@settings(max_examples=15, deadline=None)
def test_single_part_has_zero_cut(a):
    g = graph_from_matrix(a)
    part = partition_graph(g, 1)
    assert edge_cut(g, part) == 0
    h = column_net_hypergraph(a)
    hpart = partition_hypergraph(h, 1)
    assert cutnet(h, hpart) == 0


@given(random_sym_matrix(), st.integers(2, 6),
       st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_partition_deterministic_given_seed(a, k, seed):
    g = graph_from_matrix(a)
    p1 = partition_graph(g, k, rng=np.random.default_rng(seed))
    p2 = partition_graph(g, k, rng=np.random.default_rng(seed))
    assert np.array_equal(p1, p2)
