"""Unit tests for initial-bisection strategies."""

import numpy as np
import pytest

from repro.generators import fem_mesh_2d, stencil_2d
from repro.graph import graph_from_matrix
from repro.partition.initial import (
    greedy_grow_bisection,
    initial_bisection,
    spectral_bisection,
)


@pytest.fixture(scope="module")
def grid():
    return graph_from_matrix(stencil_2d(8, seed=0))


def test_greedy_grow_hits_target(grid):
    target = grid.total_vertex_weight() // 2
    side = greedy_grow_bisection(grid, target, seed_vertex=0)
    w0 = int(grid.vwgt[side == 0].sum())
    assert abs(w0 - target) <= int(grid.vwgt.max())


def test_greedy_grow_region_is_connected(grid):
    # side 0 grows as a BFS ball: it must be connected
    import networkx as nx

    side = greedy_grow_bisection(grid, grid.total_vertex_weight() // 2, 0)
    gx = nx.Graph()
    gx.add_nodes_from(range(grid.nvertices))
    for v in range(grid.nvertices):
        for u in grid.neighbours(v):
            gx.add_edge(v, int(u))
    sub = gx.subgraph(np.flatnonzero(side == 0).tolist())
    assert nx.number_connected_components(sub) == 1


def test_greedy_grow_handles_disconnected():
    from repro.graph.adjacency import Graph

    # two components: 0-1 and 2-3
    xadj = np.array([0, 1, 2, 3, 4])
    adjncy = np.array([1, 0, 3, 2])
    g = Graph(xadj, adjncy)
    side = greedy_grow_bisection(g, 2, seed_vertex=0)
    assert (side == 0).sum() == 2


def test_spectral_bisection_splits_path():
    # path graph: the Fiedler split is the midpoint cut
    from repro.matrix import csr_from_dense

    n = 12
    dense = np.zeros((n, n))
    for i in range(n - 1):
        dense[i, i + 1] = dense[i + 1, i] = 1.0
    g = graph_from_matrix(csr_from_dense(dense))
    side = spectral_bisection(g, n // 2)
    # the two halves must be contiguous index ranges (path order)
    zeros = np.flatnonzero(side == 0)
    assert zeros.size == n // 2
    assert np.all(np.diff(zeros) == 1)


def test_spectral_tiny_graphs():
    from repro.graph.adjacency import Graph

    empty = Graph(np.array([0]), np.array([], dtype=np.int64))
    assert spectral_bisection(empty, 0).size == 0
    two = Graph(np.array([0, 1, 2]), np.array([1, 0]))
    side = spectral_bisection(two, 1)
    assert set(side.tolist()) == {0, 1}


def test_initial_bisection_portfolio_feasible(grid):
    target = grid.total_vertex_weight() // 2
    side = initial_bisection(grid, target, rng=np.random.default_rng(0))
    w0 = int(grid.vwgt[side == 0].sum())
    assert abs(w0 - target) <= 0.25 * grid.total_vertex_weight()


def test_initial_bisection_empty_graph():
    from repro.graph.adjacency import Graph

    empty = Graph(np.array([0]), np.array([], dtype=np.int64))
    assert initial_bisection(empty, 0).size == 0


def test_initial_bisection_prefers_lower_cut():
    # dumbbell: two cliques joined by one edge — the 1-edge cut must win
    from repro.matrix import csr_from_dense

    n = 12
    dense = np.zeros((n, n))
    dense[:6, :6] = 1.0
    dense[6:, 6:] = 1.0
    np.fill_diagonal(dense, 0)
    dense[5, 6] = dense[6, 5] = 1.0
    g = graph_from_matrix(csr_from_dense(dense))
    from repro.partition.metrics import edge_cut

    side = initial_bisection(g, 6, rng=np.random.default_rng(0))
    assert edge_cut(g, side) == 1
