import numpy as np
import pytest

from repro.generators import random_er, stencil_2d
from repro.graph import graph_from_matrix
from repro.partition.matching import (
    heavy_edge_matching,
    matching_to_coarse_map,
    random_matching,
)


@pytest.fixture
def grid_graph():
    return graph_from_matrix(stencil_2d(10, seed=0))


@pytest.fixture
def er_graph():
    return graph_from_matrix(random_er(200, 8.0, seed=1))


def assert_valid_matching(g, match):
    n = g.nvertices
    assert match.shape == (n,)
    for v in range(n):
        u = int(match[v])
        assert 0 <= u < n
        assert match[u] == v  # involution
        if u != v:
            assert u in g.neighbours(v)  # matched along an edge


def test_heavy_edge_matching_valid(grid_graph):
    match = heavy_edge_matching(grid_graph, rng=np.random.default_rng(0))
    assert_valid_matching(grid_graph, match)


def test_heavy_edge_matching_valid_er(er_graph):
    match = heavy_edge_matching(er_graph, rng=np.random.default_rng(0))
    assert_valid_matching(er_graph, match)


def test_random_matching_valid(er_graph):
    match = random_matching(er_graph, rng=np.random.default_rng(0))
    assert_valid_matching(er_graph, match)


def test_matching_shrinks_graph(grid_graph):
    match = heavy_edge_matching(grid_graph, rng=np.random.default_rng(0))
    _, ncoarse = matching_to_coarse_map(match)
    # a grid has a near-perfect matching; expect close to n/2
    assert ncoarse <= 0.65 * grid_graph.nvertices


def test_heavy_edge_prefers_heavy_edges():
    from repro.graph.adjacency import Graph

    # square 0-1-3-2-0 with heavy edges 0-1 and 2-3: whichever vertex is
    # visited first, HEM must pick the heavy pairs
    xadj = np.array([0, 2, 4, 6, 8])
    adjncy = np.array([1, 2, 0, 3, 0, 3, 1, 2])
    ewgt = np.array([100, 1, 100, 1, 1, 100, 1, 100])
    g = Graph(xadj, adjncy, ewgt=ewgt)
    for seed in range(5):
        match = heavy_edge_matching(g, rng=np.random.default_rng(seed))
        assert match[0] == 1 and match[1] == 0
        assert match[2] == 3 and match[3] == 2


def test_coarse_map_pairs_share_id():
    match = np.array([1, 0, 2, 4, 3])
    cmap, ncoarse = matching_to_coarse_map(match)
    assert ncoarse == 3
    assert cmap[0] == cmap[1]
    assert cmap[3] == cmap[4]
    assert cmap[2] not in (cmap[0], cmap[3])
