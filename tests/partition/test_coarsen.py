import numpy as np

from repro.generators import fem_mesh_2d, stencil_2d
from repro.graph import graph_from_matrix
from repro.partition.coarsen import coarsen_hierarchy, contract
from repro.partition.matching import heavy_edge_matching, matching_to_coarse_map


def test_contract_preserves_total_vertex_weight():
    g = graph_from_matrix(stencil_2d(12, seed=0))
    match = heavy_edge_matching(g, rng=np.random.default_rng(0))
    cmap, nc = matching_to_coarse_map(match)
    coarse = contract(g, cmap, nc)
    assert coarse.total_vertex_weight() == g.total_vertex_weight()


def test_contract_drops_intra_pair_edges():
    g = graph_from_matrix(stencil_2d(8, seed=0))
    match = heavy_edge_matching(g, rng=np.random.default_rng(1))
    cmap, nc = matching_to_coarse_map(match)
    coarse = contract(g, cmap, nc)
    # every fine edge is either inside a pair (gone) or crosses (kept);
    # total edge weight can only decrease
    assert coarse.total_edge_weight() <= g.total_edge_weight()
    # coarse graph has no self-loops
    src = np.repeat(np.arange(coarse.nvertices), coarse.degrees())
    assert np.all(src != coarse.adjncy)


def test_contract_merges_parallel_edges():
    # square 0-1-2-3-0; match (0,1) and (2,3): coarse graph has
    # two parallel fine edges merging into one weight-2 edge
    from repro.graph.adjacency import Graph

    xadj = np.array([0, 2, 4, 6, 8])
    adjncy = np.array([1, 3, 0, 2, 1, 3, 2, 0])
    g = Graph(xadj, adjncy)
    cmap = np.array([0, 0, 1, 1])
    coarse = contract(g, cmap, 2)
    assert coarse.nvertices == 2
    assert coarse.adjncy.size == 2  # one undirected edge
    assert coarse.ewgt[0] == 2


def test_cut_weight_preserved_under_contraction():
    # the cut of a coarse partition equals the fine cut of its preimage
    from repro.partition.metrics import edge_cut

    g = graph_from_matrix(fem_mesh_2d(300, seed=0))
    match = heavy_edge_matching(g, rng=np.random.default_rng(0))
    cmap, nc = matching_to_coarse_map(match)
    coarse = contract(g, cmap, nc)
    rng = np.random.default_rng(3)
    coarse_side = rng.integers(0, 2, nc)
    fine_side = coarse_side[cmap]
    assert edge_cut(coarse, coarse_side) == edge_cut(g, fine_side)


def test_hierarchy_monotone_and_terminates():
    g = graph_from_matrix(fem_mesh_2d(500, seed=0))
    levels = coarsen_hierarchy(g, min_vertices=32,
                               rng=np.random.default_rng(0))
    sizes = [lv.graph.nvertices for lv in levels]
    assert all(a > b for a, b in zip(sizes, sizes[1:]))
    assert levels[-1].cmap is None
    assert all(lv.cmap is not None for lv in levels[:-1])


def test_hierarchy_single_level_for_small_graph():
    g = graph_from_matrix(stencil_2d(3, seed=0))
    levels = coarsen_hierarchy(g, min_vertices=64)
    assert len(levels) == 1
