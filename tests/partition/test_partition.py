import numpy as np
import pytest

from repro.errors import PartitionError
from repro.generators import fem_mesh_2d, random_er, rmat_graph, stencil_2d
from repro.graph import graph_from_matrix
from repro.partition import (
    bisect,
    edge_cut,
    partition_balance,
    partition_graph,
    partition_weights,
    vertex_separator,
)


@pytest.fixture
def mesh_graph():
    return graph_from_matrix(fem_mesh_2d(600, seed=0, scrambled=True))


def test_bisect_covers_all_vertices(mesh_graph):
    side = bisect(mesh_graph, rng=np.random.default_rng(0))
    assert side.shape == (mesh_graph.nvertices,)
    assert set(np.unique(side).tolist()) <= {0, 1}
    assert (side == 0).any() and (side == 1).any()


def test_bisect_balance(mesh_graph):
    side = bisect(mesh_graph, rng=np.random.default_rng(0))
    w0 = int(mesh_graph.vwgt[side == 0].sum())
    total = mesh_graph.total_vertex_weight()
    assert abs(w0 - total / 2) < 0.15 * total


def test_bisect_cut_much_better_than_random(mesh_graph):
    rng = np.random.default_rng(0)
    side = bisect(mesh_graph, rng=rng)
    random_side = np.random.default_rng(1).integers(
        0, 2, mesh_graph.nvertices)
    assert edge_cut(mesh_graph, side) < 0.5 * edge_cut(mesh_graph,
                                                       random_side)


def test_bisect_respects_target():
    g = graph_from_matrix(stencil_2d(20, seed=0))
    target = g.total_vertex_weight() // 4
    side = bisect(g, target0=target, rng=np.random.default_rng(0))
    w0 = int(g.vwgt[side == 0].sum())
    assert abs(w0 - target) <= 0.1 * g.total_vertex_weight()


def test_bisect_bad_target_rejected(mesh_graph):
    with pytest.raises(PartitionError):
        bisect(mesh_graph, target0=-5)


def test_bisect_trivial_graphs():
    from repro.graph.adjacency import Graph

    empty = Graph(np.array([0]), np.array([], dtype=np.int64))
    assert bisect(empty).size == 0
    single = Graph(np.array([0, 0]), np.array([], dtype=np.int64))
    assert np.array_equal(bisect(single), [0])


@pytest.mark.parametrize("k", [2, 3, 7, 16])
def test_partition_graph_k_parts(mesh_graph, k):
    part = partition_graph(mesh_graph, k, rng=np.random.default_rng(0))
    used = np.unique(part)
    assert used.min() >= 0 and used.max() < k
    assert used.size == k  # every part nonempty on this graph
    assert partition_balance(mesh_graph, part, k) < 1.6


def test_partition_graph_one_part(mesh_graph):
    part = partition_graph(mesh_graph, 1)
    assert np.all(part == 0)


def test_partition_graph_invalid_k(mesh_graph):
    with pytest.raises(PartitionError):
        partition_graph(mesh_graph, 0)


def test_partition_weights_sum(mesh_graph):
    part = partition_graph(mesh_graph, 8, rng=np.random.default_rng(0))
    w = partition_weights(mesh_graph, part, 8)
    assert w.sum() == mesh_graph.total_vertex_weight()


def test_refinement_improves_cut():
    g = graph_from_matrix(fem_mesh_2d(800, seed=2, scrambled=True))
    cut_ref = edge_cut(g, partition_graph(
        g, 8, rng=np.random.default_rng(0), refine=True))
    cut_noref = edge_cut(g, partition_graph(
        g, 8, rng=np.random.default_rng(0), refine=False))
    assert cut_ref <= cut_noref


def test_partition_handles_disconnected():
    import scipy.sparse as sp

    from repro.matrix import csr_from_dense

    # two disjoint paths
    dense = np.zeros((10, 10))
    for i in range(4):
        dense[i, i + 1] = dense[i + 1, i] = 1
    for i in range(5, 9):
        dense[i, i + 1] = dense[i + 1, i] = 1
    g = graph_from_matrix(csr_from_dense(dense))
    part = partition_graph(g, 2, rng=np.random.default_rng(0))
    assert edge_cut(g, part) <= 1


def test_edge_cut_known_value():
    from repro.graph.adjacency import Graph

    # path 0-1-2-3 split as [0,1 | 2,3] cuts exactly one edge
    xadj = np.array([0, 1, 3, 5, 6])
    adjncy = np.array([1, 0, 2, 1, 3, 2])
    g = Graph(xadj, adjncy)
    assert edge_cut(g, np.array([0, 0, 1, 1])) == 1
    assert edge_cut(g, np.array([0, 1, 0, 1])) == 3


def test_edge_cut_bad_assignment():
    g = graph_from_matrix(stencil_2d(4, seed=0))
    with pytest.raises(PartitionError):
        edge_cut(g, np.zeros(3, dtype=np.int64))


def test_separator_disconnects(mesh_graph):
    a, b, sep = vertex_separator(mesh_graph, rng=np.random.default_rng(0))
    assert a.size + b.size + sep.size == mesh_graph.nvertices
    in_a = np.zeros(mesh_graph.nvertices, dtype=bool)
    in_a[a] = True
    in_b = np.zeros(mesh_graph.nvertices, dtype=bool)
    in_b[b] = True
    # no edge directly connects A and B
    src = np.repeat(np.arange(mesh_graph.nvertices), mesh_graph.degrees())
    crossing = (in_a[src] & in_b[mesh_graph.adjncy])
    assert not crossing.any()


def test_separator_small_on_mesh(mesh_graph):
    a, b, sep = vertex_separator(mesh_graph, rng=np.random.default_rng(0))
    # planar-ish mesh: separator ~ sqrt(n), allow generous headroom
    assert sep.size < 6 * int(np.sqrt(mesh_graph.nvertices))


def test_separator_on_rmat():
    g = graph_from_matrix(rmat_graph(9, seed=0))
    a, b, sep = vertex_separator(g, rng=np.random.default_rng(0))
    assert a.size + b.size + sep.size == g.nvertices


def test_separator_trivial():
    from repro.graph.adjacency import Graph

    single = Graph(np.array([0, 0]), np.array([], dtype=np.int64))
    a, b, sep = vertex_separator(single)
    assert a.size == 1 and b.size == 0 and sep.size == 0
