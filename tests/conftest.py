"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrix import coo_from_arrays, csr_from_coo


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_csr(n, nnz, rng, symmetric=False, ncols=None):
    """Build a random CSR matrix for tests (duplicates allowed pre-dedup)."""
    ncols = n if ncols is None else ncols
    row = rng.integers(0, n, nnz)
    col = rng.integers(0, ncols, nnz)
    vals = rng.standard_normal(nnz)
    if symmetric:
        row, col = np.concatenate([row, col]), np.concatenate([col, row])
        vals = np.concatenate([vals, vals])
    return csr_from_coo(coo_from_arrays(n, ncols, row, col, vals))


@pytest.fixture
def small_random_matrix(rng):
    return random_csr(40, 200, rng)


@pytest.fixture
def small_symmetric_matrix(rng):
    return random_csr(40, 160, rng, symmetric=True)
