import io

import numpy as np
import pytest

from repro.harness.cli import main
from repro.matrix import read_matrix_market, write_matrix_market


@pytest.fixture
def mtx_file(tmp_path, rng):
    from ..conftest import random_csr

    a = random_csr(30, 150, rng)
    path = tmp_path / "m.mtx"
    write_matrix_market(a, path)
    return str(path)


def test_corpus_command(capsys):
    assert main(["corpus", "--tier", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "stencil2d" in out
    assert "total nonzeros" in out


def test_archs_command(capsys):
    assert main(["archs"]) == 0
    out = capsys.readouterr().out
    assert "Milan B" in out and "ARMv8.2" in out


def test_reorder_command(mtx_file, tmp_path, capsys):
    out_file = str(tmp_path / "out.mtx")
    assert main(["reorder", mtx_file, "RCM", "--output", out_file]) == 0
    out = capsys.readouterr().out
    assert "bandwidth" in out
    b = read_matrix_market(out_file)
    assert b.nnz > 0


def test_reorder_rejects_unknown_ordering(mtx_file):
    with pytest.raises(SystemExit):
        main(["reorder", mtx_file, "QuickSort"])


def test_recommend_command(mtx_file, capsys):
    assert main(["recommend", mtx_file]) == 0
    out = capsys.readouterr().out
    assert "recommended ordering" in out


def test_study_command(capsys, tmp_path):
    assert main(["study", "--tier", "tiny", "--archs", "Rome",
                 "--cache", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out and "Table 4" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
