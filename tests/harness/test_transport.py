"""Matrix transports and RSS-bounded sharding (PR 8 plumbing).

Covers the generalisation of the PR 7 shm switch into a transport
policy (``auto | shm | memmap | pickle``), the byte-bounded shard
scheduler, the spill store for in-RAM corpora under the memmap policy,
and the ``mapped_bytes`` accounting of memmap-backed ordering-cache
entries (satellite 1).
"""

import glob
import os

import numpy as np
import pytest

from repro.errors import HarnessError
from repro.generators import build_corpus
from repro.harness.engine import SweepEngine
from repro.machine import get_architecture
from repro.storage import ensure_corpus_snapshot
from repro.storage import format as fmt


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_corpus("tiny", seed=0, groups=("Banded",))[:3]


@pytest.fixture(scope="module")
def rome():
    return [get_architecture("Rome")]


def _run(corpus, archs, **kw):
    engine = SweepEngine(corpus, archs, ["RCM", "Gray"],
                         kernels=("1d",), **kw)
    result = engine.run()
    assert not result.failed
    return engine, sorted(
        (r.matrix, r.ordering, r.kernel, r.architecture, r.gflops_max,
         r.gflops_mean, r.seconds) for r in result.records)


# ----------------------------------------------------------------------
# constructor policy
# ----------------------------------------------------------------------
def test_transport_validation(tiny_corpus, rome):
    with pytest.raises(HarnessError, match="unknown transport"):
        SweepEngine(tiny_corpus, rome, ["RCM"], transport="carrier-pigeon")
    with pytest.raises(HarnessError, match="shard_bytes"):
        SweepEngine(tiny_corpus, rome, ["RCM"], shard_bytes=0)


def test_legacy_shared_memory_maps_to_transport(tiny_corpus, rome):
    for legacy, expected in ((None, "auto"), (True, "shm"),
                             (False, "pickle")):
        e = SweepEngine(tiny_corpus, rome, ["RCM"], shared_memory=legacy)
        assert e.transport == expected
    # explicit transport wins over the legacy switch
    e = SweepEngine(tiny_corpus, rome, ["RCM"], shared_memory=True,
                    transport="memmap")
    assert e.transport == "memmap"


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
def test_shard_tasks_bounds_bytes(tiny_corpus, rome):
    class T:  # minimal stand-in for _TaskSpec
        def __init__(self, entry):
            self.entry = entry

    per = SweepEngine._entry_nbytes(tiny_corpus[0])
    assert per == (tiny_corpus[0].matrix.nrows + 1) * 8 + \
        tiny_corpus[0].matrix.nnz * 16

    tasks = [T(e) for e in tiny_corpus * 4]
    engine = SweepEngine(tiny_corpus, rome, ["RCM"], shard_bytes=1)
    # budget smaller than any matrix: one task per shard, none dropped
    shards = engine._shard_tasks(tasks)
    assert [len(s) for s in shards] == [1] * len(tasks)

    engine = SweepEngine(tiny_corpus, rome, ["RCM"])
    assert engine._shard_tasks(tasks) == [tasks]  # no budget: one shard

    budget = sum(SweepEngine._entry_nbytes(t.entry) for t in tasks[:3])
    engine = SweepEngine(tiny_corpus, rome, ["RCM"], shard_bytes=budget)
    shards = engine._shard_tasks(tasks)
    assert sum(len(s) for s in shards) == len(tasks)  # order-preserving
    assert [t.entry.name for s in shards for t in s] == \
        [t.entry.name for t in tasks]
    for shard in shards[:-1]:
        assert sum(SweepEngine._entry_nbytes(t.entry)
                   for t in shard) <= budget


def test_sharded_pool_sweep_matches_serial(tiny_corpus, rome):
    _, serial = _run(tiny_corpus, rome, seed=0, jobs=1)
    engine, sharded = _run(tiny_corpus, rome, seed=0, jobs=2,
                           transport="pickle", shard_bytes=1)
    assert sharded == serial
    assert engine.metrics.workers["shards"] > 1


# ----------------------------------------------------------------------
# memmap transport
# ----------------------------------------------------------------------
def test_memmap_over_snapshot_matches_pickle(tmp_path, tiny_corpus, rome):
    snap = ensure_corpus_snapshot(str(tmp_path / "c"), tier="tiny",
                                  seed=0, limit=3, groups=("Banded",))
    _, ref = _run(tiny_corpus, rome, seed=0, jobs=2, transport="pickle")
    engine, mm = _run(list(snap.entries), rome, seed=0, jobs=2,
                      transport="memmap", snapshot=snap)
    assert mm == ref
    assert engine.metrics.stages["storage"] >= 0.0
    assert engine.signature()["snapshot"] == snap.signature


def test_auto_prefers_memmap_for_stored_entries(tmp_path, tiny_corpus,
                                                rome):
    snap = ensure_corpus_snapshot(str(tmp_path / "c"), tier="tiny",
                                  seed=0, limit=1, groups=("Banded",))
    engine = SweepEngine(list(snap.entries), rome, ["RCM"],
                         kernels=("1d",))

    from repro.harness.engine import _TaskSpec

    task = _TaskSpec(entry=snap.entries[0], pending=frozenset())
    packed = engine._pack_task(task)
    assert packed.transport == "memmap"
    assert packed.matrix_ref == snap.entries[0].storage_path

    # in-RAM entries under auto go shm (or pickle where shm is absent)
    engine2 = SweepEngine(tiny_corpus, rome, ["RCM"], kernels=("1d",))
    task2 = _TaskSpec(entry=tiny_corpus[0], pending=frozenset())
    packed2 = engine2._pack_task(task2)
    assert packed2.transport in ("shm", "pickle")
    engine2._release_segments()


def test_memmap_spills_inram_corpus_and_cleans_up(tiny_corpus, rome):
    """Forcing memmap on an in-RAM corpus spills to a temp store that
    is removed after the run."""
    engine, recs = _run(tiny_corpus, rome, seed=0, jobs=2,
                        transport="memmap")
    _, ref = _run(tiny_corpus, rome, seed=0, jobs=1)
    assert recs == ref
    assert engine._spill_dir is None
    assert not glob.glob("/tmp/repro_spill_*"), \
        "spill directories leaked"


def test_worker_attach_resolves_memmap(tmp_path, rome):
    """The worker-side resolver attaches a stored matrix read-only."""
    from repro.harness.engine import _TaskSpec, _resolve_task_matrix

    snap = ensure_corpus_snapshot(str(tmp_path / "c"), tier="tiny",
                                  seed=0, limit=1, groups=("Banded",))
    entry = snap.entries[0]
    task = _TaskSpec(entry=entry, pending=frozenset(),
                     transport="memmap", matrix_ref=entry.storage_path)
    timings = {"storage": 0.0, "deserialize": 0.0}
    a = _resolve_task_matrix(task, timings)
    assert a.nnz == entry.nnz
    assert not a.values.flags.writeable
    assert timings["storage"] > 0.0
    fmt.detach_all()


# ----------------------------------------------------------------------
# satellite 1: ordering-cache stats must not bill mapped permutations
# ----------------------------------------------------------------------
def test_ordering_cache_reports_mapped_separately(tmp_path):
    from types import SimpleNamespace

    from repro.harness.runner import OrderingCache
    from repro.obs.cachestats import CACHE_STATS_KEYS

    cache = OrderingCache()
    heap_perm = np.arange(64)
    cache._memory["m1/RCM"] = SimpleNamespace(perm=heap_perm)
    stats = cache.stats
    assert all(k in stats for k in CACHE_STATS_KEYS)
    assert stats["size_bytes"] == heap_perm.nbytes
    assert stats["mapped_bytes"] == 0

    # a memmap-backed permutation must move to mapped_bytes
    mpath = tmp_path / "perm.npy"
    np.save(mpath, np.arange(128))
    mapped_perm = np.load(mpath, mmap_mode="r")
    cache._memory["m2/RCM"] = SimpleNamespace(perm=mapped_perm)
    stats = cache.stats
    assert stats["size_bytes"] == heap_perm.nbytes
    assert stats["mapped_bytes"] == mapped_perm.nbytes
