"""Rendering edge cases for the report module."""

import numpy as np
import pytest

from repro.harness.experiments import SpeedupStudy
from repro.harness.report import (
    render_boxplot_figure,
    render_fill_figure,
    render_geomean_table,
)


def _study(kernel="1d"):
    study = SpeedupStudy(kernel=kernel)
    rng = np.random.default_rng(0)
    for arch in ("A1", "A2"):
        for o in ("RCM", "ND", "AMD", "GP", "HP", "Gray"):
            sp = rng.uniform(0.6, 1.8, 10)
            study.raw[(arch, o)] = sp
            from repro.analysis import boxplot_summary, geomean

            study.boxes[(arch, o)] = boxplot_summary(sp)
            study.geomeans[(arch, o)] = geomean(sp)
    return study


def test_geomean_table_mean_row_consistent():
    study = _study()
    rows = study.geomean_table(["A1", "A2"],
                               ["RCM", "ND", "AMD", "GP", "HP", "Gray"])
    assert rows[-1][0] == "Mean"
    # the per-row mean of arch A1 equals the geomean of its 6 entries
    vals = [study.geomeans[("A1", o)]
            for o in ("RCM", "ND", "AMD", "GP", "HP", "Gray")]
    expected = float(np.exp(np.mean(np.log(vals))))
    assert rows[0][-1] == pytest.approx(expected)


def test_render_geomean_table_contains_title():
    out = render_geomean_table(_study(), ["A1", "A2"], "My Table")
    assert out.startswith("My Table")
    assert "A1" in out and "Gray" in out


def test_render_boxplots_all_archs():
    out = render_boxplot_figure(_study(), ["A1", "A2"], "Figure X")
    assert out.count("--") >= 2
    assert "med=" in out


def test_render_fill_figure_scales_axis():
    fill = {
        "original": (1.0, 2.0, 3.0, 4.0, 5.0),
        "AMD": (1.0, 1.2, 1.5, 1.8, 2.0),
        "_raw": {"original": [3.0], "AMD": [1.5]},
    }
    out = render_fill_figure(fill)
    assert "original" in out and "AMD" in out
    assert "_raw" not in out
