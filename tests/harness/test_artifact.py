"""Tests for the paper's artifact-format writer/reader."""

import io

import numpy as np
import pytest

from repro.errors import HarnessError
from repro.generators import build_corpus
from repro.harness import OrderingCache, run_sweep
from repro.harness.artifact import (
    ARTIFACT_ORDERINGS,
    artifact_filename,
    export_all_artifacts,
    read_artifact_file,
    speedups_from_artifact,
    write_artifact_file,
)
from repro.harness.experiments import REORDERINGS
from repro.machine import get_architecture


@pytest.fixture(scope="module")
def corpus():
    return build_corpus("tiny", seed=1)[:4]


@pytest.fixture(scope="module")
def sweep(corpus):
    return run_sweep(corpus, [get_architecture("Rome")],
                     list(REORDERINGS), cache=OrderingCache())


def test_filename_convention():
    assert artifact_filename("1d", "Milan B", 128, 490) == \
        "csr_1d_milanb_128_threads_ss490.txt"


def test_write_read_roundtrip(sweep, corpus):
    buf = io.StringIO()
    write_artifact_file(sweep, corpus, "1d", "Rome", buf)
    buf.seek(0)
    rows = read_artifact_file(buf)
    assert len(rows) == len(corpus)
    for row, entry in zip(rows, corpus):
        assert row["name"] == entry.name
        assert row["nnz"] == entry.nnz
        assert row["nthreads"] == 16
        for o in ARTIFACT_ORDERINGS:
            assert row[o]["imbalance"] >= 1.0
            assert row[o]["gflops_max"] > 0


def test_column_count_is_54(sweep, corpus):
    buf = io.StringIO()
    write_artifact_file(sweep, corpus, "1d", "Rome", buf)
    line = buf.getvalue().splitlines()[0]
    assert len(line.split()) == 54  # the artifact's documented layout


def test_speedups_match_sweep(sweep, corpus):
    buf = io.StringIO()
    write_artifact_file(sweep, corpus, "1d", "Rome", buf)
    rows = read_artifact_file(buf.getvalue())
    from_artifact = speedups_from_artifact(rows, "GP")
    direct = sweep.speedups("GP", "1d", "Rome")
    assert np.allclose(from_artifact, direct, rtol=1e-4)


def test_missing_record_rejected(sweep, corpus):
    from repro.generators import named_matrix

    other = [named_matrix("HV15R", scale=0.1)]
    with pytest.raises(HarnessError):
        write_artifact_file(sweep, other, "1d", "Rome", io.StringIO())


def test_malformed_line_rejected():
    with pytest.raises(HarnessError):
        read_artifact_file("a b c\n")


def test_unknown_ordering_rejected(sweep, corpus):
    buf = io.StringIO()
    write_artifact_file(sweep, corpus, "1d", "Rome", buf)
    rows = read_artifact_file(buf.getvalue())
    with pytest.raises(HarnessError):
        speedups_from_artifact(rows, "QuickSort")


def test_export_all(sweep, corpus, tmp_path):
    paths = export_all_artifacts(sweep, corpus,
                                 [get_architecture("Rome")], tmp_path)
    assert len(paths) == 2  # 1d + 2d
    for p in paths:
        rows = read_artifact_file(p)
        assert len(rows) == len(corpus)


def test_2d_imbalance_is_one_in_artifact(sweep, corpus):
    """Footnote 1 of the paper: the 2D kernel's imbalance factor is
    always ~1.0 in the artifact files."""
    buf = io.StringIO()
    write_artifact_file(sweep, corpus, "2d", "Rome", buf)
    for row in read_artifact_file(buf.getvalue()):
        for o in ARTIFACT_ORDERINGS:
            assert row[o]["imbalance"] <= 1.05
