"""Integration tests: every paper experiment runs end-to-end on a tiny
corpus and produces sanely-shaped output."""

import numpy as np
import pytest

from repro.generators import build_corpus
from repro.harness import (
    OrderingCache,
    dense_reference_experiment,
    experiment_cholesky_fill,
    experiment_feature_profiles,
    experiment_fig1_showcase,
    experiment_overhead,
    experiment_speedups,
    run_sweep,
    two_d_vs_one_d,
)
from repro.harness.experiments import (
    REORDERINGS,
    amortization_iterations,
    experiment_classes,
)
from repro.machine import get_architecture


@pytest.fixture(scope="module")
def corpus():
    return build_corpus("tiny", seed=0)[:6]


@pytest.fixture(scope="module")
def cache():
    return OrderingCache()


@pytest.fixture(scope="module")
def sweep(corpus, cache):
    archs = [get_architecture(n) for n in ("Rome", "Milan B")]
    return run_sweep(corpus, archs, list(REORDERINGS), cache=cache)


def test_speedup_study_shapes(sweep):
    study = experiment_speedups(sweep, ["Rome", "Milan B"], "1d")
    assert ("Rome", "GP") in study.geomeans
    assert len(study.boxes[("Milan B", "RCM")]) == 5
    table = study.geomean_table(["Rome", "Milan B"], list(REORDERINGS))
    assert len(table) == 3  # 2 archs + mean row
    assert table[-1][0] == "Mean"


def test_speedups_positive(sweep):
    study = experiment_speedups(sweep, ["Rome"], "2d")
    for o in REORDERINGS:
        assert study.geomeans[("Rome", o)] > 0


def test_fig1_showcase(cache):
    out = experiment_fig1_showcase(cache=cache, scale=0.2)
    assert len(out) == 6  # 3 matrices x 2 archs
    for cell in out.values():
        assert set(cell) == {"RCM", "ND", "GP"}
        for v in cell.values():
            assert v > 0


def test_classes_experiment(cache):
    out = experiment_classes(cache=cache, scale=0.15)
    assert set(out) == {1, 2, 3, 4, 5, 6}
    for cls, data in out.items():
        for arch in ("Milan B", "Ice Lake", "Hi1620"):
            assert arch in data
            for o, cell in data[arch].items():
                assert cell["class"] in range(1, 7)
                assert cell["imbalance_after"] >= 1.0


def test_feature_profiles(corpus, cache):
    profiles = experiment_feature_profiles(corpus, cache)
    assert set(profiles) == {"bandwidth", "profile", "offdiag",
                             "spmv_time"}
    for prof in profiles.values():
        assert "original" in prof and "RCM" in prof


def test_cholesky_fill_experiment(corpus, cache):
    fills = experiment_cholesky_fill(corpus, cache)
    assert "original" in fills and "AMD" in fills
    assert "Gray" not in fills
    raw = fills["_raw"]
    for v in raw.values():
        assert all(x >= 0.5 for x in v)


def test_overhead_experiment():
    rows = experiment_overhead(scale=0.1)
    assert len(rows) == 10
    for row in rows:
        assert len(row) == 8
        assert all(v >= 0 for v in row[1:])


def test_amortization():
    # europe_osm example from §4.7: 15.4s reorder, 0.013s SpMV, 22% gain
    iters = amortization_iterations(15.4, 0.013, 1.22)
    assert iters == pytest.approx(6568, rel=0.01)
    assert amortization_iterations(1.0, 0.01, 0.9) == float("inf")


def test_dense_reference():
    out = dense_reference_experiment(scale=0.05)
    assert out["fraction_of_peak"] < 1.0
    assert out["gflops"] > 0


def test_two_d_vs_one_d(sweep):
    ratios = two_d_vs_one_d(sweep, "Rome")
    assert ratios.size == 6
    assert np.all(ratios > 0)


def test_report_rendering(sweep, corpus, cache):
    from repro.harness.report import (
        render_boxplot_figure,
        render_fig1,
        render_geomean_table,
        render_overhead_table,
        render_profile_figure,
        render_two_d_vs_one_d,
    )

    study = experiment_speedups(sweep, ["Rome"], "1d")
    txt = render_geomean_table(study, ["Rome"], "Table 3")
    assert "Table 3" in txt and "GP" in txt
    txt = render_boxplot_figure(study, ["Rome"], "Figure 2")
    assert "Rome" in txt
    showcase = experiment_fig1_showcase(cache=cache, scale=0.1)
    assert "Figure 1" in render_fig1(showcase)
    profiles = experiment_feature_profiles(corpus, cache)
    txt = render_profile_figure(
        profiles, ["original", "RCM", "GP"])
    assert "bandwidth" in txt
    rows = experiment_overhead(scale=0.05)
    assert "Table 5" in render_overhead_table(rows)
    ratios = two_d_vs_one_d(sweep, "Rome")
    assert "2D vs 1D" in render_two_d_vs_one_d(ratios, "Rome")
