import numpy as np
import pytest

from repro.generators import build_corpus
from repro.harness import OrderingCache, run_sweep
from repro.machine import get_architecture


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_corpus("tiny", seed=0)[:4]


@pytest.fixture(scope="module")
def small_sweep(tiny_corpus):
    archs = [get_architecture("Rome")]
    return run_sweep(tiny_corpus, archs, ["RCM", "Gray"],
                     cache=OrderingCache())


def test_sweep_record_count(small_sweep, tiny_corpus):
    # (1 baseline + 2 orderings) x 2 kernels x 4 matrices x 1 arch
    assert len(small_sweep.records) == 3 * 2 * 4


def test_sweep_lookup(small_sweep, tiny_corpus):
    name = tiny_corpus[0].name
    rec = small_sweep.lookup(name, "original", "1d", "Rome")
    assert rec.matrix == name
    with pytest.raises(KeyError):
        small_sweep.lookup(name, "GP", "1d", "Rome")


def test_sweep_speedups(small_sweep, tiny_corpus):
    sp = small_sweep.speedups("RCM", "1d", "Rome")
    assert sp.shape == (len(tiny_corpus),)
    assert np.all(sp > 0)


def test_sweep_matrices_order(small_sweep, tiny_corpus):
    assert small_sweep.matrices() == [e.name for e in tiny_corpus]


def test_ordering_cache_memoises(tiny_corpus):
    cache = OrderingCache()
    e = tiny_corpus[0]
    r1 = cache.get(e.matrix, e.name, "RCM")
    r2 = cache.get(e.matrix, e.name, "RCM")
    assert r1 is r2


def test_ordering_cache_nparts_only_matters_for_gp(tiny_corpus):
    cache = OrderingCache()
    e = tiny_corpus[0]
    a = cache.get(e.matrix, e.name, "RCM", nparts=16)
    b = cache.get(e.matrix, e.name, "RCM", nparts=128)
    assert a is b
    g16 = cache.get(e.matrix, e.name, "GP", nparts=4)
    g32 = cache.get(e.matrix, e.name, "GP", nparts=8)
    assert g16 is not g32


def test_ordering_cache_disk_roundtrip(tiny_corpus, tmp_path):
    e = tiny_corpus[0]
    c1 = OrderingCache(path=str(tmp_path))
    r1 = c1.get(e.matrix, e.name, "RCM")
    c2 = OrderingCache(path=str(tmp_path))
    r2 = c2.get(e.matrix, e.name, "RCM")
    assert np.array_equal(r1.perm, r2.perm)
    assert r2.algorithm == "RCM"
    assert r2.symmetric


def test_model_factory_hook(tiny_corpus):
    from repro.machine import PerfModel

    calls = []

    def factory(arch):
        calls.append(arch.name)
        return PerfModel(arch, locality_term=False)

    run_sweep(tiny_corpus[:1], [get_architecture("Rome")], ["Gray"],
              model_factory=factory)
    assert calls == ["Rome"]


def test_ordering_cache_stats(tiny_corpus):
    cache = OrderingCache()
    e = tiny_corpus[0]
    assert cache.stats == {"hits": 0, "disk_hits": 0, "misses": 0,
                           "requests": 0, "hit_rate": 0.0,
                           "evictions": 0, "size_bytes": 0,
                           "mapped_bytes": 0}
    cache.get(e.matrix, e.name, "RCM")
    cache.get(e.matrix, e.name, "RCM")
    cache.get(e.matrix, e.name, "Gray")
    s = cache.stats
    assert s["hits"] == 1 and s["misses"] == 2
    assert s["requests"] == 3
    assert s["hit_rate"] == pytest.approx(1 / 3)


def test_ordering_cache_stats_disk(tiny_corpus, tmp_path):
    e = tiny_corpus[0]
    c1 = OrderingCache(path=str(tmp_path))
    c1.get(e.matrix, e.name, "RCM")
    assert c1.stats["misses"] == 1
    c2 = OrderingCache(path=str(tmp_path))
    c2.get(e.matrix, e.name, "RCM")
    c2.get(e.matrix, e.name, "RCM")
    s = c2.stats
    assert s["disk_hits"] == 1 and s["hits"] == 1 and s["misses"] == 0


def test_ordering_cache_key_folds_in_shape_and_nnz(tmp_path):
    """Regression: two corpora sharing a matrix *name* but different
    dimensions/nnz must never alias to the same cached permutation."""
    from repro.generators import stencil_2d

    small = stencil_2d(5, 5, seed=0)
    large = stencil_2d(9, 9, seed=0)
    cache = OrderingCache(path=str(tmp_path))
    r_small = cache.get(small, "shared_name", "RCM")
    r_large = cache.get(large, "shared_name", "RCM")
    assert cache.stats["misses"] == 2  # no alias
    assert r_small.n == small.nrows and r_large.n == large.nrows
    # and the disk entries are distinct files
    assert len(list(tmp_path.glob("*.npz"))) == 2


def test_ordering_cache_key_folds_in_structure():
    """Same name, same shape, same nnz, different sparsity structure:
    the CRC fingerprint must keep the entries apart."""
    from repro.matrix import coo_from_arrays, csr_from_coo

    def diag_like(cols):
        rows = np.arange(4)
        return csr_from_coo(coo_from_arrays(
            4, 4, rows, np.array(cols), np.ones(4)))

    a = diag_like([0, 1, 2, 3])
    b = diag_like([1, 0, 3, 2])
    assert (a.nrows, a.ncols, a.nnz) == (b.nrows, b.ncols, b.nnz)
    cache = OrderingCache()
    cache.get(a, "same", "Gray")
    cache.get(b, "same", "Gray")
    assert cache.stats["misses"] == 2


def test_ordering_cache_key_folds_in_seed(tiny_corpus):
    """A seed-dependent ordering computed under two seeds must occupy
    two cache entries."""
    e = tiny_corpus[0]
    cache = OrderingCache()
    cache.get(e.matrix, e.name, "GP", nparts=4, seed=0)
    cache.get(e.matrix, e.name, "GP", nparts=4, seed=1)
    assert cache.stats["misses"] == 2
    cache.get(e.matrix, e.name, "GP", nparts=4, seed=0)
    assert cache.stats["hits"] == 1


def test_ordering_cache_survives_corrupt_disk_entry(tiny_corpus, tmp_path):
    e = tiny_corpus[0]
    c1 = OrderingCache(path=str(tmp_path))
    r1 = c1.get(e.matrix, e.name, "RCM")
    # truncate the artifact, as a botched copy or git filter would
    npz = next(tmp_path.glob("*.npz"))
    npz.write_bytes(npz.read_bytes()[:100])
    c2 = OrderingCache(path=str(tmp_path))
    r2 = c2.get(e.matrix, e.name, "RCM")
    assert np.array_equal(r1.perm, r2.perm)
    assert c2.stats["misses"] == 1 and c2.stats["disk_hits"] == 0
    # the recompute overwrote the corrupt file: next cache reads it
    c3 = OrderingCache(path=str(tmp_path))
    c3.get(e.matrix, e.name, "RCM")
    assert c3.stats["disk_hits"] == 1
