"""Tests for the parallel, resumable sweep engine.

Covers the journal golden round-trip (write → kill mid-sweep → resume
recomputes only the torn cell and reproduces bit-identical records),
fault tolerance (FailedCell rows instead of crashes, bounded retries,
timeouts), parallel-vs-serial result equivalence, and the metrics
artifact.
"""

import json
import time

import numpy as np
import pytest

from repro.errors import HarnessError
from repro.generators import build_corpus
from repro.harness import (
    FailedCell,
    OrderingCache,
    SweepEngine,
    SweepJournal,
    run_sweep,
)
from repro.machine import get_architecture
from repro.reorder import registry


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_corpus("tiny", seed=0)[:4]


@pytest.fixture(scope="module")
def rome():
    return [get_architecture("Rome")]


def _run(corpus, archs, journal=None, resume=False, **kw):
    engine = SweepEngine(corpus, archs, ["RCM", "Gray"],
                         journal_path=journal, resume=resume, **kw)
    return engine, engine.run()


# ----------------------------------------------------------------------
# equivalence with the legacy serial runner
# ----------------------------------------------------------------------
def test_engine_matches_run_sweep(tiny_corpus, rome):
    legacy = run_sweep(tiny_corpus, rome, ["RCM", "Gray"],
                       cache=OrderingCache())
    _, engine = _run(tiny_corpus, rome)
    assert legacy.records == engine.records


def test_parallel_records_identical_to_serial(tiny_corpus, rome):
    _, serial = _run(tiny_corpus, rome)
    _, fanout = _run(tiny_corpus, rome, jobs=2)
    assert serial.records == fanout.records
    assert fanout.failed == []


# ----------------------------------------------------------------------
# journal: golden round-trip
# ----------------------------------------------------------------------
def test_journal_roundtrip_and_resume_skips_completed(
        tiny_corpus, rome, tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    eng1, clean = _run(tiny_corpus, rome, journal=journal)
    assert eng1.metrics.cells["resumed"] == 0

    eng2, resumed = _run(tiny_corpus, rome, journal=journal, resume=True)
    assert resumed.records == clean.records  # bit-identical dataclasses
    stats = eng2.metrics.cells
    assert stats["resumed"] == stats["total"] == len(clean.records)
    # zero recomputation: no ordering was recomputed on resume
    assert eng2.metrics.cache.get("requests", 0) == 0


def test_torn_journal_recomputes_only_the_torn_cell(
        tiny_corpus, rome, tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    _, clean = _run(tiny_corpus, rome, journal=journal)

    # kill mid-write: truncate the file inside its final record line
    raw = open(journal, "rt").readlines()
    torn = "".join(raw[:-1]) + raw[-1][: len(raw[-1]) // 2]
    with open(journal, "wt") as f:
        f.write(torn)

    eng, resumed = _run(tiny_corpus, rome, journal=journal, resume=True)
    assert resumed.records == clean.records
    stats = eng.metrics.cells
    assert stats["resumed"] == stats["total"] - 1
    # the journal healed: a further resume completes without computing
    eng2, again = _run(tiny_corpus, rome, journal=journal, resume=True)
    assert eng2.metrics.cells["resumed"] == stats["total"]
    assert again.records == clean.records


def test_resume_rejects_mismatched_signature(tiny_corpus, rome, tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    _run(tiny_corpus, rome, journal=journal)
    with pytest.raises(HarnessError, match="signature"):
        SweepEngine(tiny_corpus[:2], rome, ["RCM", "Gray"],
                    journal_path=journal, resume=True).run()


def test_journal_without_resume_starts_fresh(tiny_corpus, rome, tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    _run(tiny_corpus, rome, journal=journal)
    eng, _ = _run(tiny_corpus, rome, journal=journal, resume=False)
    assert eng.metrics.cells["resumed"] == 0
    # the file was rewritten, not appended to
    _, records, _ = SweepJournal.load(journal)
    assert len(records) == eng.metrics.cells["total"]


def test_journal_load_rejects_headerless_file_with_entries(tmp_path):
    # entries whose header is gone cannot be matched to a sweep
    path = tmp_path / "broken.jsonl"
    failed = json.dumps({"type": "failed", "cell": ["m", "RCM", "1d", "Rome"],
                         "data": {"matrix": "m", "ordering": "RCM",
                                  "kernel": "1d", "architecture": "Rome",
                                  "stage": "reorder", "error": "E",
                                  "message": "boom"}})
    path.write_text(failed + "\n")
    with pytest.raises(HarnessError, match="header"):
        SweepJournal.load(str(path))


def test_journal_load_empty_file_is_no_completed_cells(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert SweepJournal.load(str(path)) == (None, {}, [])


def test_resume_from_zero_byte_journal_starts_fresh(
        tiny_corpus, rome, tmp_path):
    # a sweep killed before its header flushed leaves a 0-byte file;
    # resuming from it must behave exactly like a fresh run
    journal = str(tmp_path / "sweep.jsonl")
    open(journal, "wt").close()
    _, clean = _run(tiny_corpus, rome)
    eng, resumed = _run(tiny_corpus, rome, journal=journal, resume=True)
    assert resumed.records == clean.records
    assert eng.metrics.cells["resumed"] == 0
    # and the healed journal now supports a normal full resume
    eng2, _ = _run(tiny_corpus, rome, journal=journal, resume=True)
    assert eng2.metrics.cells["resumed"] == eng2.metrics.cells["total"]


def test_resume_from_torn_only_journal_starts_fresh(
        tiny_corpus, rome, tmp_path):
    # the only line is the torn prefix of the header (killed mid-write)
    journal = str(tmp_path / "sweep.jsonl")
    with open(journal, "wt") as f:
        f.write('{"type": "header", "versi')
    _, clean = _run(tiny_corpus, rome)
    eng, resumed = _run(tiny_corpus, rome, journal=journal, resume=True)
    assert resumed.records == clean.records
    assert eng.metrics.cells["resumed"] == 0


# ----------------------------------------------------------------------
# fault tolerance
# ----------------------------------------------------------------------
@pytest.fixture
def exploding_ordering():
    def boom(a, **kw):
        raise RuntimeError("injected failure")

    registry.ORDERING_FUNCS["Boom"] = boom
    yield "Boom"
    registry.ORDERING_FUNCS.pop("Boom", None)


@pytest.fixture
def sleepy_ordering():
    def sleepy(a, **kw):
        time.sleep(10)

    registry.ORDERING_FUNCS["Sleepy"] = sleepy
    yield "Sleepy"
    registry.ORDERING_FUNCS.pop("Sleepy", None)


def test_raising_ordering_yields_failed_cells_not_a_crash(
        tiny_corpus, rome, exploding_ordering):
    engine = SweepEngine(tiny_corpus, rome, ["RCM", exploding_ordering],
                         retries=1)
    result = engine.run()
    # every other cell completed: baseline + RCM, both kernels
    assert len(result.records) == len(tiny_corpus) * 2 * 2
    assert len(result.failed) == len(tiny_corpus) * 2
    for f in result.failed:
        assert isinstance(f, FailedCell)
        assert f.ordering == exploding_ordering
        assert f.stage == "reorder"
        assert f.error == "RuntimeError"
        assert f.attempts == 2
    assert engine.metrics.cells["retried"] == len(tiny_corpus)
    assert not result.complete


def test_timeout_produces_structured_timeout_failure(
        tiny_corpus, rome, sleepy_ordering):
    engine = SweepEngine(tiny_corpus[:1], rome, [sleepy_ordering],
                         timeout=0.2)
    start = time.perf_counter()
    result = engine.run()
    assert time.perf_counter() - start < 5.0  # did not sleep 10s
    assert [f.error for f in result.failed] == ["CellTimeout"] * 2


def test_failed_cells_are_journaled_and_retried_on_resume(
        tiny_corpus, rome, tmp_path, exploding_ordering):
    journal = str(tmp_path / "sweep.jsonl")
    eng1 = SweepEngine(tiny_corpus[:2], rome, ["RCM", exploding_ordering],
                       journal_path=journal)
    eng1.run()
    _, _, journaled_failures = SweepJournal.load(journal)
    assert len(journaled_failures) == 2 * 2

    # the ordering is fixed before the resume: the failed cells are
    # still pending (only completed cells are skipped) and now succeed
    registry.ORDERING_FUNCS[exploding_ordering] = \
        registry.ORDERING_FUNCS["RCM"]
    eng2 = SweepEngine(tiny_corpus[:2], rome, ["RCM", exploding_ordering],
                       journal_path=journal, resume=True)
    result = eng2.run()
    assert result.failed == []
    assert len(result.records) == eng2.metrics.cells["total"]
    assert eng2.metrics.cells["resumed"] == 2 * (1 + 1) * 2  # ok cells


def test_strict_run_sweep_escalates_failures(
        tiny_corpus, rome, exploding_ordering):
    with pytest.raises(HarnessError, match="injected failure"):
        run_sweep(tiny_corpus[:1], rome, [exploding_ordering])
    result = run_sweep(tiny_corpus[:1], rome, [exploding_ordering],
                       strict=False)
    assert len(result.failed) == 2


# ----------------------------------------------------------------------
# metrics & progress
# ----------------------------------------------------------------------
def test_metrics_artifact_shape(tiny_corpus, rome, tmp_path):
    engine, result = _run(tiny_corpus, rome, jobs=2)
    path = tmp_path / "sweep_metrics.json"
    engine.metrics.save(path)
    m = json.loads(path.read_text())
    assert m["jobs"] == 2
    assert m["cells"]["completed"] == len(result.records)
    assert m["cells"]["failed"] == 0
    assert set(m["stages"]) >= {"reorder", "model_eval"}
    assert m["stages"]["model_eval"] > 0.0
    assert 0.0 < m["workers"]["utilization"] <= 1.0
    assert m["cache"]["requests"] == m["cache"]["hits"] + \
        m["cache"]["disk_hits"] + m["cache"]["misses"]


def test_progress_heartbeat_reaches_total(tiny_corpus, rome):
    beats = []
    engine = SweepEngine(
        tiny_corpus, rome, ["RCM"],
        progress=lambda done, total, failed, elapsed:
            beats.append((done, total, failed)))
    engine.run()
    assert beats, "progress callback never fired"
    done, total, failed = beats[-1]
    assert done == total == engine.metrics.cells["total"]
    assert failed == 0
    assert [b[0] for b in beats] == sorted(b[0] for b in beats)


def test_engine_rejects_bad_config(tiny_corpus, rome):
    with pytest.raises(HarnessError):
        SweepEngine(tiny_corpus, rome, ["RCM"], jobs=0)
    with pytest.raises(HarnessError):
        SweepEngine(tiny_corpus, rome, ["RCM"], retries=-1)


# ----------------------------------------------------------------------
# advisor integration: dataset building over a faulty sweep
# ----------------------------------------------------------------------
def test_advisor_dataset_skips_failed_cells(
        tiny_corpus, rome, exploding_ordering):
    from repro.advisor.dataset import build_dataset

    cache = OrderingCache()
    engine = SweepEngine(tiny_corpus, rome, ["RCM", exploding_ordering],
                         cache=cache)
    sweep = engine.run()
    assert sweep.failed
    rows = build_dataset(tiny_corpus, rome,
                         orderings=["RCM", exploding_ordering],
                         cache=cache, sweep=sweep)
    assert len(rows) == len(tiny_corpus) * 2  # one per kernel
    for row in rows:
        assert exploding_ordering not in row.speedups
        assert exploding_ordering not in row.reorder_seconds
        assert set(row.speedups) == {"original", "RCM"}
        assert np.isfinite(row.best_speedup)


# ----------------------------------------------------------------------
# model-statistics reuse observability
# ----------------------------------------------------------------------
def test_metrics_report_model_stat_reuse(tmp_path):
    """A multi-architecture sweep must reuse the per-(matrix, ordering)
    statistics and schedules across cells, and say so in the metrics.
    Naples and TX2 share a 64-core count, so their schedules must be
    served from the same cache entries.  A fresh corpus (not the
    module fixture) keeps the build counts deterministic — matrices
    memoise their statistics across engine runs."""
    corpus = build_corpus("tiny", seed=0)[:4]
    archs = [get_architecture(n) for n in ("Naples", "TX2")]
    engine = SweepEngine(corpus, archs, ["RCM", "Gray"])
    engine.run()
    stats = engine.metrics.model_stats
    # 3 variants (original, RCM, Gray) per matrix, one statistics build
    # each; every further (arch, kernel) cell is a hit
    assert stats["reuse_builds"] == 3 * len(corpus)
    assert stats["reuse_hits"] > 0
    assert stats["schedule_builds"] > 0
    assert stats["schedule_hits"] > 0
    assert "reuse_stats" in engine.metrics.stages
    path = tmp_path / "sweep_metrics.json"
    engine.metrics.save(path)
    m = json.loads(path.read_text())
    assert m["model_stats"] == stats
    assert set(m["stages"]) >= {"reorder", "reuse_stats", "model_eval"}


def test_gp_grouping_keeps_per_arch_permutations(tiny_corpus):
    """GP permutations depend on the architecture's core count; the
    ordering-outer loop must still produce the same records as the
    legacy arch-outer serial runner."""
    archs = [get_architecture(n) for n in ("Rome", "Milan B")]
    legacy = run_sweep(tiny_corpus[:2], archs, ["GP"],
                       cache=OrderingCache())
    engine = SweepEngine(tiny_corpus[:2], archs, ["GP"])
    assert engine.run().records == legacy.records
