"""The ``--progress`` heartbeat: first tick, throttling, quiet/verbose
routing, and the resumed-sweep ETA accounting.

The ETA contract matters on resume: the first tick's ``done`` count is
journal backfill, not throughput, so the rate (and the ETA derived
from it) must count only cells worked *this run*.
"""

from __future__ import annotations

import io
import logging

import pytest

from repro.harness.cli import _progress_printer
from repro.obs.log import LOGGER_NAME, setup_cli_logging


@pytest.fixture
def capture():
    """Collect every message logged under the ``repro`` logger."""
    records: list = []

    class _Capture(logging.Handler):
        def emit(self, record):
            records.append(record.getMessage())

    logger = logging.getLogger(LOGGER_NAME)
    handler = _Capture(level=logging.DEBUG)
    old_level = logger.level
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
    yield records
    logger.removeHandler(handler)
    logger.setLevel(old_level)


@pytest.fixture
def clock(monkeypatch):
    """A controllable ``time.monotonic`` so throttle windows are exact."""
    state = {"t": 1000.0}
    monkeypatch.setattr("time.monotonic", lambda: state["t"])
    return state


def test_first_tick_always_prints(capture, clock):
    cb = _progress_printer()
    cb(0, 100, 0, 0.0)
    assert len(capture) == 1
    assert "0/100 cells" in capture[0]


def test_ticks_throttled_between_intervals(capture, clock):
    cb = _progress_printer(min_interval=0.5)
    cb(1, 100, 0, 1.0)
    clock["t"] += 0.1
    cb(2, 100, 0, 1.1)  # inside the window: suppressed
    assert len(capture) == 1
    clock["t"] += 1.0
    cb(3, 100, 0, 2.1)  # window passed
    assert len(capture) == 2
    assert "3/100" in capture[1]


def test_final_tick_bypasses_throttle(capture, clock):
    cb = _progress_printer(min_interval=60.0)
    cb(99, 100, 0, 1.0)
    cb(100, 100, 0, 1.01)  # done == total must print immediately
    assert len(capture) == 2
    assert "100/100" in capture[1]
    assert "left" not in capture[1]  # no ETA on the final line


def test_resumed_sweep_eta_counts_only_new_work(capture, clock):
    cb = _progress_printer(min_interval=0.0)
    cb(50, 100, 0, 0.0)  # journal backfill: 50 cells already done
    assert "(50 resumed)" in capture[0]
    assert "left" not in capture[0]
    clock["t"] += 1.0
    cb(60, 100, 0, 10.0)  # 10 cells actually worked, in 10s
    # the rate is 1 cell/s over *worked* cells, so 40 remaining ≈ 40s.
    # Counting the backfill as throughput would promise ~7s.
    assert "~40s left" in capture[1]
    assert "resumed" not in capture[1]


def test_fresh_sweep_has_no_resumed_marker(capture, clock):
    cb = _progress_printer(min_interval=0.0)
    cb(0, 10, 0, 0.0)
    assert "resumed" not in capture[0]


def test_quiet_suppresses_heartbeat_verbose_keeps_it():
    stream = io.StringIO()
    setup_cli_logging(quiet=True, stream=stream)
    try:
        cb = _progress_printer()
        cb(0, 10, 0, 0.0)
        assert stream.getvalue() == ""

        stream2 = io.StringIO()
        setup_cli_logging(verbose=True, stream=stream2)
        cb2 = _progress_printer()
        cb2(0, 10, 0, 0.0)
        assert "0/10 cells" in stream2.getvalue()
    finally:
        # leave the shared CLI handler at its default level, detached
        # from this test's (soon-closed) streams
        setup_cli_logging(stream=io.StringIO())
