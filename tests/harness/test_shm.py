"""Shared-memory CSR transport: correctness and lifecycle.

Covers the PR 7 zero-copy sweep plumbing end to end:

* export → attach round-trip is bit-exact and the attached arrays are
  read-only zero-copy views (attaching twice returns the same object);
* a pool sweep over shared memory produces records identical to the
  serial inline run, and so does the explicit pickle fallback
  (``shared_memory=False`` — the CI leg for hosts without /dev/shm);
* an export failure silently falls back to the pickle transport;
* **lifecycle**: a worker SIGKILLed mid-cell leaks no ``/dev/shm``
  segment (the engine owns and unlinks every segment in its
  ``finally``), and an interrupted sweep resumed with shm enabled
  reattaches and completes with the same records;
* the ``serialize`` stage shows up in the sweep metrics for pool runs.
"""

import os
import signal

import numpy as np
import pytest

from repro.generators import build_corpus
from repro.harness import shm
from repro.harness.engine import SweepEngine
from repro.machine import get_architecture

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="no /dev/shm on this platform")


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_corpus("tiny", seed=0)[:4]


@pytest.fixture(scope="module")
def rome():
    return [get_architecture("Rome")]


def _records(result):
    return [vars(r) for r in result.records]


def _run(corpus, archs, **kw):
    engine = SweepEngine(corpus, archs, ["RCM", "Gray"],
                         kernels=("1d",), **kw)
    return engine, engine.run()


# ----------------------------------------------------------------------
# export / attach round-trip
# ----------------------------------------------------------------------
def test_export_attach_roundtrip(tiny_corpus):
    a = tiny_corpus[0].matrix
    handle, seg = shm.export_matrix(a)
    try:
        b = shm.attach_matrix(handle)
        assert (b.nrows, b.ncols, b.nnz) == (a.nrows, a.ncols, a.nnz)
        np.testing.assert_array_equal(b.rowptr, a.rowptr)
        np.testing.assert_array_equal(b.colidx, a.colidx)
        np.testing.assert_array_equal(b.values, a.values)
        for arr in (b.rowptr, b.colidx, b.values):
            assert not arr.flags.writeable
        # memoised: the second attach is the same object, no new map
        assert shm.attach_matrix(handle) is b
        assert handle.name in [s for s in shm.leaked_segments()]
    finally:
        del b
        shm.detach_all()
        shm.unlink_segment(seg)
    assert handle.name not in shm.leaked_segments()


def test_export_empty_matrix():
    from repro.matrix import coo_from_arrays, csr_from_coo

    empty = csr_from_coo(coo_from_arrays(5, 5, [], []))
    handle, seg = shm.export_matrix(empty)
    try:
        b = shm.attach_matrix(handle)
        assert b.nnz == 0 and b.nrows == 5
    finally:
        del b
        shm.detach_all()
        shm.unlink_segment(seg)


# ----------------------------------------------------------------------
# transport equivalence
# ----------------------------------------------------------------------
def test_shm_records_identical_to_serial(tiny_corpus, rome):
    _, serial = _run(tiny_corpus, rome)
    e_shm, pooled = _run(tiny_corpus, rome, jobs=2, shared_memory=True)
    assert _records(serial) == _records(pooled)
    assert pooled.failed == []
    assert e_shm.metrics.stages["serialize"] > 0.0
    assert shm.leaked_segments() == []


def test_pickle_fallback_records_identical_to_serial(tiny_corpus, rome):
    _, serial = _run(tiny_corpus, rome)
    e_pkl, pooled = _run(tiny_corpus, rome, jobs=2, shared_memory=False)
    assert _records(serial) == _records(pooled)
    assert pooled.failed == []
    assert e_pkl.metrics.stages["serialize"] > 0.0
    assert shm.leaked_segments() == []


def test_export_failure_falls_back_to_pickle(tiny_corpus, rome,
                                             monkeypatch):
    def boom(a):
        raise OSError("no shared memory today")

    monkeypatch.setattr(shm, "export_matrix", boom)
    _, serial = _run(tiny_corpus, rome)
    engine, pooled = _run(tiny_corpus, rome, jobs=2, shared_memory=None)
    assert _records(serial) == _records(pooled)
    assert pooled.failed == []
    assert engine._segments == []


def test_serial_run_stays_inline(tiny_corpus, rome):
    engine, result = _run(tiny_corpus, rome, jobs=1)
    assert engine.metrics.stages["serialize"] == 0.0
    assert engine._segments == []
    assert result.failed == []


# ----------------------------------------------------------------------
# lifecycle: worker death and interrupted resume
# ----------------------------------------------------------------------
def _install_killer_ordering():
    from repro.reorder import registry

    def killer(a, **kw):
        os.kill(os.getpid(), signal.SIGKILL)

    registry.ORDERING_FUNCS["Killer"] = killer


@pytest.fixture
def killer_ordering():
    from repro.reorder import registry

    _install_killer_ordering()
    yield "Killer"
    registry.ORDERING_FUNCS.pop("Killer", None)


def test_worker_sigkill_leaks_no_segments(tiny_corpus, rome,
                                          killer_ordering):
    engine = SweepEngine(tiny_corpus, rome, ["RCM", killer_ordering],
                         kernels=("1d",), jobs=2, shared_memory=True,
                         retries=0)
    result = engine.run()
    # the killer cells become structured worker-death failures...
    assert any(f.stage == "worker" for f in result.failed)
    # ...and the engine still unlinked every segment it created
    assert shm.leaked_segments() == []
    assert engine._segments == []


def test_interrupted_resume_reattaches_over_shm(tiny_corpus, rome,
                                                tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    _, full = _run(tiny_corpus, rome, jobs=2, shared_memory=True,
                   journal_path=journal)
    assert shm.leaked_segments() == []

    # simulate a kill partway through: drop the last 6 journaled cells
    with open(journal) as f:
        lines = f.readlines()
    with open(journal, "wt") as f:
        f.writelines(lines[:-6])

    engine, resumed = _run(tiny_corpus, rome, jobs=2,
                           shared_memory=True, journal_path=journal,
                           resume=True)
    assert _records(resumed) == _records(full)
    assert resumed.failed == []
    assert engine.metrics.cells["resumed"] == len(lines) - 1 - 6
    # the resumed run exported only the matrices it still needed
    assert engine.metrics.stages["serialize"] > 0.0
    assert shm.leaked_segments() == []
