"""Unit tests for hypergraph initial bisection."""

import numpy as np
import pytest

from repro.generators import fem_mesh_2d
from repro.graph import column_net_hypergraph
from repro.hpartition.initial import (
    greedy_grow_hbisection,
    initial_hbisection,
)
from repro.matrix import csr_from_dense


@pytest.fixture(scope="module")
def mesh_hg():
    return column_net_hypergraph(fem_mesh_2d(300, seed=0))


def test_greedy_grow_hits_target(mesh_hg):
    target = int(mesh_hg.vwgt.sum()) // 2
    side = greedy_grow_hbisection(mesh_hg, target, seed_vertex=0)
    w0 = int(mesh_hg.vwgt[side == 0].sum())
    assert abs(w0 - target) <= int(mesh_hg.vwgt.max())


def test_greedy_grow_handles_disconnected():
    # block-diagonal matrix: nets never bridge the two halves
    dense = np.zeros((6, 6))
    dense[:3, :3] = 1.0
    dense[3:, 3:] = 1.0
    h = column_net_hypergraph(csr_from_dense(dense))
    side = greedy_grow_hbisection(h, 3, seed_vertex=0)
    assert (side == 0).sum() == 3


def test_initial_portfolio_feasible(mesh_hg):
    target = int(mesh_hg.vwgt.sum()) // 2
    side = initial_hbisection(mesh_hg, target,
                              rng=np.random.default_rng(0))
    w0 = int(mesh_hg.vwgt[side == 0].sum())
    assert abs(w0 - target) <= 0.25 * int(mesh_hg.vwgt.sum())


def test_initial_empty_hypergraph():
    from repro.matrix import coo_from_arrays, csr_from_coo

    h = column_net_hypergraph(csr_from_coo(coo_from_arrays(0, 0, [], [])))
    assert initial_hbisection(h, 0).size == 0


def test_initial_prefers_zero_cut_split():
    # two dense column-blocks: the block split cuts zero nets
    from repro.hpartition.metrics import cutnet

    dense = np.zeros((8, 8))
    dense[:4, :4] = 1.0
    dense[4:, 4:] = 1.0
    h = column_net_hypergraph(csr_from_dense(dense))
    side = initial_hbisection(h, 4, rng=np.random.default_rng(0))
    assert cutnet(h, side) == 0
