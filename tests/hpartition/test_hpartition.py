import numpy as np
import pytest

from repro.errors import PartitionError
from repro.generators import circuit_matrix, fem_mesh_2d, stencil_2d
from repro.graph import column_net_hypergraph
from repro.hpartition import (
    connectivity_minus_one,
    cutnet,
    hbisect,
    hyper_balance,
    partition_hypergraph,
)
from repro.hpartition.coarsen import hcontract, heavy_connectivity_matching
from repro.hpartition.recursive import induced_subhypergraph
from repro.matrix import csr_from_dense


@pytest.fixture
def mesh_hg():
    return column_net_hypergraph(fem_mesh_2d(400, seed=0, scrambled=True))


def test_cutnet_known_value():
    # 2 rows; column 2 has pins in both rows
    dense = np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 4.0]])
    h = column_net_hypergraph(csr_from_dense(dense))
    part = np.array([0, 1])
    assert cutnet(h, part) == 1  # only column 2 is cut
    assert connectivity_minus_one(h, part) == 1


def test_cutnet_zero_when_together():
    dense = np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 4.0]])
    h = column_net_hypergraph(csr_from_dense(dense))
    assert cutnet(h, np.array([0, 0])) == 0


def test_cutnet_bad_assignment(mesh_hg):
    with pytest.raises(PartitionError):
        cutnet(mesh_hg, np.zeros(3, dtype=np.int64))


def test_connectivity_lower_bounds_cutnet(mesh_hg):
    part = partition_hypergraph(mesh_hg, 4, rng=np.random.default_rng(0))
    # every cut net spans >= 2 parts so lambda-1 >= cutnet
    assert connectivity_minus_one(mesh_hg, part) >= cutnet(mesh_hg, part)


def test_matching_validity(mesh_hg):
    match = heavy_connectivity_matching(mesh_hg,
                                        rng=np.random.default_rng(0))
    for v in range(mesh_hg.nvertices):
        u = int(match[v])
        assert match[u] == v


def test_contract_preserves_weight(mesh_hg):
    from repro.partition.matching import matching_to_coarse_map

    match = heavy_connectivity_matching(mesh_hg,
                                        rng=np.random.default_rng(0))
    cmap, nc = matching_to_coarse_map(match)
    coarse = hcontract(mesh_hg, cmap, nc)
    assert int(coarse.vwgt.sum()) == int(mesh_hg.vwgt.sum())
    assert coarse.nvertices == nc
    # no single-pin nets survive
    assert int(coarse.net_sizes().min(initial=2)) >= 2


def test_hbisect_balance(mesh_hg):
    side = hbisect(mesh_hg, rng=np.random.default_rng(0))
    w0 = int(mesh_hg.vwgt[side == 0].sum())
    total = int(mesh_hg.vwgt.sum())
    assert abs(w0 - total / 2) < 0.15 * total


def test_hbisect_beats_random(mesh_hg):
    side = hbisect(mesh_hg, rng=np.random.default_rng(0))
    rnd = np.random.default_rng(1).integers(0, 2, mesh_hg.nvertices)
    assert cutnet(mesh_hg, side) < 0.6 * cutnet(mesh_hg, rnd)


@pytest.mark.parametrize("k", [2, 3, 8])
def test_partition_hypergraph_k(mesh_hg, k):
    part = partition_hypergraph(mesh_hg, k, rng=np.random.default_rng(0))
    used = np.unique(part)
    assert used.min() >= 0 and used.max() < k
    assert hyper_balance(mesh_hg, part, k) < 1.7


def test_partition_hypergraph_invalid_k(mesh_hg):
    with pytest.raises(PartitionError):
        partition_hypergraph(mesh_hg, 0)


def test_refinement_not_worse():
    h = column_net_hypergraph(stencil_2d(16, seed=1, scrambled=True))
    ref = partition_hypergraph(h, 4, rng=np.random.default_rng(0),
                               refine=True)
    noref = partition_hypergraph(h, 4, rng=np.random.default_rng(0),
                                 refine=False)
    assert cutnet(h, ref) <= cutnet(h, noref)


def test_induced_subhypergraph_drops_outside_pins():
    dense = np.array([
        [1.0, 1.0, 0.0],
        [0.0, 1.0, 1.0],
        [1.0, 0.0, 1.0],
    ])
    h = column_net_hypergraph(csr_from_dense(dense))
    sub = induced_subhypergraph(h, np.array([0, 1]))
    assert sub.nvertices == 2
    # only column 1 has >= 2 pins within {0, 1}
    assert sub.nnets == 1
    assert set(sub.pins(0).tolist()) == {0, 1}


def test_circuit_partition_isolates_rails():
    a = circuit_matrix(600, rail_rows=2, seed=0)
    h = column_net_hypergraph(a)
    part = partition_hypergraph(h, 4, rng=np.random.default_rng(0))
    assert cutnet(h, part) < h.nnets  # something is uncut
