"""The check suites hold on clean code and notice injected defects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check.corpus import check_corpus, edge_corpus
from repro.check.features import check_features
from repro.check.kernels import check_kernels
from repro.check.model import check_model
from repro.check.permutations import check_permutations


@pytest.fixture(scope="module")
def matrices():
    return check_corpus(seed=0)[:2] + edge_corpus(seed=0)


def _failed(report):
    return [str(f) for f in report.findings]


def test_features_clean_on_corpus(matrices):
    report = check_features(matrices)
    assert report.ok, _failed(report)
    assert report.cases > 0


def test_features_cover_explicit_zero_and_empty_matrices(matrices):
    names = [n for n, _ in matrices]
    assert any("explicit-zeros" in n for n in names)
    assert any("empty" in n for n in names)


def test_kernels_clean_on_corpus(matrices):
    report = check_kernels(matrices, seed=0)
    assert report.ok, _failed(report)


def test_permutations_clean_on_small_square(matrices):
    square = [(n, a) for n, a in matrices if a.is_square][:3]
    report = check_permutations(square, orderings=("RCM", "Gray"), seed=0)
    assert report.ok, _failed(report)


def test_permutations_skip_rectangular(matrices):
    rect = [(n, a) for n, a in matrices if not a.is_square]
    assert rect, "edge corpus must include a rectangular matrix"
    report = check_permutations(rect, orderings=("RCM",), seed=0)
    assert report.ok and report.cases == 0


def test_model_clean_on_corpus(matrices):
    report = check_model(check_corpus(seed=0)[:2],
                         architectures=("Rome",))
    assert report.ok, _failed(report)


def test_features_notice_a_wrong_bandwidth(matrices, monkeypatch):
    import repro.features as features

    orig = features.bandwidth
    monkeypatch.setattr(features, "bandwidth", lambda a: orig(a) + 1)
    report = check_features(matrices)
    assert any(f.invariant == "bandwidth-matches-oracle"
               for f in report.findings)


def test_kernels_notice_a_corrupted_result(matrices, monkeypatch):
    from repro.spmv import kernels

    orig = kernels.spmv_1d

    def corrupt(a, x, schedule):
        y = orig(a, x, schedule)
        if y.size:
            y[0] += 1.0
        return y

    monkeypatch.setattr(kernels, "spmv_1d", corrupt)
    report = check_kernels(matrices, seed=0)
    assert any(f.invariant == "spmv-matches-dense-oracle"
               for f in report.findings)


def test_edge_corpus_is_deterministic():
    a = dict(edge_corpus(seed=0))
    b = dict(edge_corpus(seed=0))
    assert a.keys() == b.keys()
    for name in a:
        assert np.array_equal(a[name].colidx, b[name].colidx)
        assert np.array_equal(a[name].values, b[name].values)


def test_artifacts_clean(tmp_path):
    from repro.check.artifacts import check_artifacts

    report = check_artifacts(seed=0, workdir=str(tmp_path))
    assert report.ok, _failed(report)
    assert (tmp_path / "check_sweep.jsonl").exists()
    assert (tmp_path / "check_manifest.json").exists()


def test_serving_clean():
    """The daemon-vs-oracle suite holds on a live loopback daemon."""
    from repro.check.serving import check_serving

    report = check_serving(seed=0)
    assert report.ok, _failed(report)
    assert report.suites == ["serving"]
    invariants = {f.invariant for f in report.findings}
    assert not invariants
    assert report.cases >= 20  # replay + schema + reject checks
