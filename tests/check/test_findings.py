"""Unit tests for the finding/report containers."""

from __future__ import annotations

from repro.check.findings import CheckReport, Finding


def test_finding_renders_suite_invariant_subject():
    f = Finding("features", "bandwidth-matches-oracle", "matrix=m0",
                "bandwidth()=3, dense oracle=2")
    s = str(f)
    assert "features" in s
    assert "bandwidth-matches-oracle" in s
    assert "matrix=m0" in s


def test_report_check_records_case_and_finding():
    r = CheckReport(suites=["s"])
    assert r.check(True, "s", "inv", "subj", "detail")
    assert not r.check(False, "s", "inv", "subj", "detail")
    assert r.cases == 2
    assert len(r.findings) == 1
    assert not r.ok


def test_report_ok_when_clean():
    r = CheckReport(suites=["s"])
    r.case(5)
    assert r.ok
    assert r.cases == 5


def test_report_merge_accumulates():
    a = CheckReport(suites=["a"])
    a.case(3)
    b = CheckReport(suites=["b"])
    b.fail("b", "inv", "subj", "boom")
    a.merge(b)
    assert a.cases == 3  # fail() records the finding, not a case
    assert len(a.findings) == 1
    assert a.suites == ["a", "b"]
    assert not a.ok


def test_report_round_trips_to_dict():
    r = CheckReport(suites=["s"])
    r.fail("s", "inv", "subj", "boom")
    d = r.to_dict()
    assert d["ok"] is False
    assert d["findings"][0]["invariant"] == "inv"


def test_render_caps_findings():
    r = CheckReport(suites=["s"])
    for i in range(60):
        r.fail("s", "inv", f"subj{i}", "boom")
    text = r.render(max_findings=50)
    assert "10 more" in text
