"""Exit-code and wiring tests for ``python -m repro check``."""

from __future__ import annotations

import json

from repro.check.findings import CheckReport
from repro.harness.cli import main as repro_main


def test_check_quick_single_suite_exits_zero(capsys):
    rc = repro_main(["check", "--quick", "--suites", "features"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "check: OK" in out


def test_check_unknown_suite_exits_two():
    assert repro_main(["check", "--suites", "nope"]) == 2


def test_check_findings_exit_nonzero(monkeypatch, capsys):
    from repro.check import cli as check_cli

    dirty = CheckReport(suites=["features"])
    dirty.fail("features", "bandwidth-matches-oracle", "matrix=m",
               "seeded failure")
    monkeypatch.setattr(check_cli, "run_check",
                        lambda **kw: dirty)
    rc = repro_main(["check", "--quick"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAILED" in out
    assert "bandwidth-matches-oracle" in out


def test_check_writes_json_report(tmp_path, capsys):
    path = tmp_path / "report.json"
    rc = repro_main(["check", "--quick", "--suites", "kernels",
                     "--json", str(path)])
    capsys.readouterr()
    assert rc == 0
    data = json.loads(path.read_text())
    assert data["ok"] is True
    assert data["suites"] == ["kernels"]
    assert data["cases"] > 0


def test_quick_mode_subsamples(monkeypatch):
    from repro.check import cli as check_cli

    seen = {}

    def spy(name, matrices, seed):
        seen[name] = [a.nrows for _, a in matrices]
        return CheckReport(suites=[name])

    monkeypatch.setattr(check_cli, "_run_suite", spy)
    report = check_cli.run_check(suites=("features",), seed=0, quick=True)
    assert report.ok
    assert seen["features"], "quick corpus must not be empty"
    assert max(seen["features"]) <= check_cli.QUICK_MAX_ROWS


def test_mutation_smoke_cli_flag(monkeypatch, capsys, tmp_path):
    from repro.check import cli as check_cli
    from repro.check import mutation as mutation_mod
    from repro.check.mutation import MutationOutcome, MutationReport

    good = MutationReport(outcomes=[MutationOutcome(
        "fault", True, 1, 1, "seeded")])
    monkeypatch.setattr(mutation_mod, "run_mutation_smoke",
                        lambda seed=0: good)
    path = tmp_path / "smoke.json"
    rc = repro_main(["check", "--mutation-smoke", "--json", str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "every fault caught" in out
    assert json.loads(path.read_text())["ok"] is True

    bad = MutationReport(outcomes=[MutationOutcome(
        "fault", False, 0, 0, "seeded")])
    monkeypatch.setattr(mutation_mod, "run_mutation_smoke",
                        lambda seed=0: bad)
    rc = repro_main(["check", "--mutation-smoke"])
    capsys.readouterr()
    assert rc == 1
