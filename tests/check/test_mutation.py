"""The mutation smoke catches every seeded fault and leaves no patches."""

from __future__ import annotations

import pytest

from repro.check import mutation


@pytest.fixture(scope="module")
def smoke():
    return mutation.run_mutation_smoke(seed=0)


def test_baseline_is_clean(smoke):
    assert smoke.baseline_clean, smoke.baseline_findings


def test_every_fault_is_caught(smoke):
    missed = [o.fault for o in smoke.outcomes if not o.caught]
    assert not missed, f"oracle blind spots: {missed}"
    assert smoke.ok
    assert len(smoke.outcomes) == len(mutation.FAULTS) >= 10


def test_fault_names_are_unique():
    names = [f.name for f in mutation.FAULTS]
    assert len(names) == len(set(names))


def test_patches_are_restored(smoke):
    # after the smoke ran (module fixture), production symbols must be
    # the originals — a leaked patch would poison later test modules
    import repro.features as features
    from repro.machine.reuse import ReuseStats
    from repro.obs import cachestats
    from repro.spmv import kernels

    assert features.bandwidth.__module__ == "repro.features.bandwidth"
    assert kernels.spmv_1d.__module__ == "repro.spmv.kernels"
    assert cachestats.cache_stats.__module__ == "repro.obs.cachestats"
    assert ReuseStats.prev.__qualname__ == "ReuseStats.prev"


def test_patch_context_restores_on_error():
    class Box:
        attr = "orig"

    with pytest.raises(RuntimeError):
        with mutation._patched(Box, "attr", "patched"):
            assert Box.attr == "patched"
            raise RuntimeError("boom")
    assert Box.attr == "orig"


def test_report_serialises(smoke):
    d = smoke.to_dict()
    assert d["ok"] is True
    assert len(d["outcomes"]) == len(mutation.FAULTS)
    text = smoke.render()
    assert "every fault caught" in text
