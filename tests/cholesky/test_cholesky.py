import numpy as np
import pytest

from repro.cholesky import (
    cholesky_nnz,
    cholesky_row_counts,
    elimination_tree,
    etree_postorder,
    fill_ratio,
)
from repro.errors import CholeskyError
from repro.generators import fem_mesh_2d, stencil_2d
from repro.matrix import csr_from_dense, symmetrize_pattern

from ..conftest import random_csr


def spd_pattern(n, rng, extra=3.0):
    """Random SPD matrix (dense reference obtainable)."""
    a = random_csr(n, int(extra * n), rng, symmetric=True)
    dense = a.to_dense()
    dense = dense + dense.T
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    return csr_from_dense(dense)


def dense_cholesky_nnz(a, tol=1e-12):
    """Oracle: nnz of L via dense numeric Cholesky on an SPD-ised copy."""
    dense = a.to_dense()
    # symbolic fill: replace values to make it numerically SPD with the
    # same pattern and no accidental cancellation
    rng = np.random.default_rng(0)
    sym = (dense != 0) | (dense != 0).T
    vals = np.where(sym, rng.uniform(0.1, 1.0, dense.shape), 0.0)
    vals = (vals + vals.T) / 2
    np.fill_diagonal(vals, np.abs(vals).sum(axis=1) + 1.0)
    L = np.linalg.cholesky(vals)
    return int(np.sum(np.abs(L) > tol))


def test_etree_of_tridiagonal_is_path():
    n = 6
    dense = np.eye(n)
    for i in range(n - 1):
        dense[i, i + 1] = dense[i + 1, i] = 1.0
    parent = elimination_tree(csr_from_dense(dense))
    assert np.array_equal(parent, [1, 2, 3, 4, 5, -1])


def test_etree_of_diagonal_is_forest():
    from repro.matrix import csr_identity

    parent = elimination_tree(csr_identity(4))
    assert np.all(parent == -1)


def test_etree_of_arrow_matrix():
    # arrow: last row/col dense -> every column's parent chain ends at n-1
    n = 5
    dense = np.eye(n)
    dense[n - 1, :] = 1.0
    dense[:, n - 1] = 1.0
    parent = elimination_tree(csr_from_dense(dense))
    assert np.array_equal(parent, [4, 4, 4, 4, -1])


def test_etree_requires_symmetric():
    dense = np.zeros((3, 3))
    dense[0, 2] = 1.0
    with pytest.raises(CholeskyError):
        elimination_tree(csr_from_dense(dense))


def test_postorder_is_permutation():
    parent = np.array([2, 2, 4, 4, -1])
    post = etree_postorder(parent)
    assert sorted(post.tolist()) == list(range(5))
    # children before parents
    pos = np.empty(5, dtype=int)
    pos[post] = np.arange(5)
    for j, p in enumerate(parent):
        if p != -1:
            assert pos[j] < pos[p]


def test_postorder_cycle_detected():
    with pytest.raises(CholeskyError):
        etree_postorder(np.array([1, 0]))


def test_row_counts_tridiagonal():
    n = 5
    dense = np.eye(n)
    for i in range(n - 1):
        dense[i, i + 1] = dense[i + 1, i] = 1.0
    counts = cholesky_row_counts(csr_from_dense(dense))
    # L is bidiagonal: row 0 has 1 entry, rows 1.. have 2
    assert np.array_equal(counts, [1, 2, 2, 2, 2])


@pytest.mark.parametrize("n", [8, 15, 25])
def test_nnz_matches_dense_oracle(n, rng):
    a = spd_pattern(n, rng)
    assert cholesky_nnz(a) == dense_cholesky_nnz(a)


def test_nnz_matches_oracle_on_stencil():
    a = stencil_2d(5, seed=0)
    assert cholesky_nnz(a) == dense_cholesky_nnz(a)


def test_fill_ratio_at_least_lower_triangle():
    a = stencil_2d(6, seed=0)
    # L has at least the lower triangle of A: ratio >= ~0.5
    assert fill_ratio(a) >= 0.5


def test_fill_reducing_orderings_reduce_fill():
    from repro.reorder import amd_ordering, nd_ordering, rcm_ordering

    a = fem_mesh_2d(300, seed=1, scrambled=True)
    base = fill_ratio(a)
    assert fill_ratio(a, amd_ordering(a)) < base
    assert fill_ratio(a, nd_ordering(a)) < base
    assert fill_ratio(a, rcm_ordering(a)) < base


def test_amd_nd_beat_rcm_on_mesh():
    from repro.reorder import amd_ordering, nd_ordering, rcm_ordering

    a = fem_mesh_2d(400, seed=2, scrambled=True)
    rcm = fill_ratio(a, rcm_ordering(a))
    assert fill_ratio(a, amd_ordering(a)) < rcm
    assert fill_ratio(a, nd_ordering(a)) < rcm


def test_gray_rejected_for_cholesky():
    from repro.reorder import gray_ordering

    a = stencil_2d(5, seed=0)
    with pytest.raises(CholeskyError):
        fill_ratio(a, gray_ordering(a))


def test_fill_ratio_handles_missing_diagonal():
    dense = np.zeros((3, 3))
    dense[0, 1] = dense[1, 0] = 1.0
    ratio = fill_ratio(csr_from_dense(dense))
    assert ratio > 0


def test_fill_ratios_per_ordering():
    from repro.cholesky import fill_ratios_per_ordering
    from repro.reorder import amd_ordering, gray_ordering

    a = stencil_2d(6, seed=0)
    out = fill_ratios_per_ordering(
        a, {"AMD": amd_ordering(a), "Gray": gray_ordering(a)})
    assert "original" in out and "AMD" in out
    assert "Gray" not in out  # unsymmetric orderings skipped


def test_postorder_invariance_of_fill():
    # postordering an elimination order must not change nnz(L)
    from repro.matrix import permute_symmetric
    from repro.cholesky.etree import elimination_tree
    from repro.cholesky.postorder import etree_postorder

    a = stencil_2d(6, seed=3)
    base = cholesky_nnz(a)
    parent = elimination_tree(a)
    post = etree_postorder(parent)
    b = permute_symmetric(a, post)
    assert cholesky_nnz(b) == base
