import numpy as np
import pytest

from repro.analysis import (
    NearestCentroidPredictor,
    extract_features,
    recommend_ordering,
)
from repro.analysis.predict import PredictorFeatures
from repro.errors import HarnessError
from repro.generators import banded_matrix, circuit_matrix, stencil_2d


def test_extract_features_shapes(rng):
    a = stencil_2d(10, seed=0)
    f = extract_features(a, nthreads=8)
    assert 0 <= f.rel_bandwidth <= 1
    assert 0 <= f.rel_offdiag <= 1
    assert f.imbalance_1d >= 1.0
    assert f.density > 0
    assert f.vector().shape == (5,)


def test_extract_features_empty_rejected():
    from repro.matrix import coo_from_arrays, csr_from_coo

    a = csr_from_coo(coo_from_arrays(0, 0, [], []))
    with pytest.raises(HarnessError):
        extract_features(a)


def test_recommendation_keeps_banded_original():
    a = banded_matrix(2000, 8, seed=0)  # narrow band, balanced
    assert recommend_ordering(a) == "original"


def test_recommendation_gp_for_hub_matrices():
    a = circuit_matrix(1000, rail_rows=3, rail_fanout=0.3, seed=0,
                       scrambled=False)
    assert recommend_ordering(a, kernel="1d") == "GP"


def test_recommendation_for_scattered_mesh():
    a = stencil_2d(30, seed=0, scrambled=True)
    assert recommend_ordering(a) in ("RCM", "GP")


def test_recommendation_2d_kernel():
    a = stencil_2d(30, seed=0, scrambled=True)
    assert recommend_ordering(a, kernel="2d") in ("RCM", "GP")


def _features(vals):
    return PredictorFeatures(*vals)


def test_nearest_centroid_basic():
    # two clearly separated regions
    train_f = [_features([0.9, 0.8, 1.0, 6.0, 0.3]) for _ in range(5)]
    train_f += [_features([0.02, 0.05, 1.0, 6.0, 0.3]) for _ in range(5)]
    labels = ["GP"] * 5 + ["original"] * 5
    p = NearestCentroidPredictor().fit(train_f, labels)
    assert p.predict(_features([0.85, 0.75, 1.0, 6.0, 0.3])) == "GP"
    assert p.predict(_features([0.01, 0.04, 1.0, 6.0, 0.3])) == "original"


def test_nearest_centroid_untrained_rejected():
    p = NearestCentroidPredictor()
    assert not p.is_trained
    with pytest.raises(HarnessError):
        p.predict(_features([0, 0, 1, 1, 0]))


def test_nearest_centroid_fit_validation():
    with pytest.raises(HarnessError):
        NearestCentroidPredictor().fit([], [])
    with pytest.raises(HarnessError):
        NearestCentroidPredictor().fit(
            [_features([0, 0, 1, 1, 0])], ["a", "b"])


def test_trained_from_sweep():
    from repro.generators import build_corpus
    from repro.harness import OrderingCache, run_sweep
    from repro.machine import get_architecture

    corpus = build_corpus("tiny", seed=3)[:5]
    sweep = run_sweep(corpus, [get_architecture("Rome")],
                      ["RCM", "GP"], cache=OrderingCache())
    feats, labels = NearestCentroidPredictor.labels_from_sweep(
        sweep, corpus, "1d", "Rome")
    assert len(feats) == 5
    assert set(labels) <= {"original", "RCM", "GP"}
    p = NearestCentroidPredictor().fit(feats, labels)
    # predictions come from the trained label set
    for f in feats:
        assert p.predict(f) in set(labels)
