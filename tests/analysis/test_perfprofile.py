import numpy as np
import pytest

from repro.analysis import performance_profile, profile_at
from repro.errors import HarnessError


def test_dominant_method_profile():
    costs = {"fast": [1.0, 1.0, 1.0], "slow": [2.0, 2.0, 2.0]}
    prof = performance_profile(costs)
    assert profile_at(prof, "fast", 1.0) == pytest.approx(1.0)
    assert profile_at(prof, "slow", 1.0) == pytest.approx(0.0)
    assert profile_at(prof, "slow", 2.0) == pytest.approx(1.0)


def test_profiles_monotone_nondecreasing():
    rng = np.random.default_rng(0)
    costs = {f"m{i}": rng.uniform(1, 10, 50) for i in range(4)}
    prof = performance_profile(costs)
    for name in costs:
        assert np.all(np.diff(prof[name]) >= -1e-12)


def test_rho_at_one_sums_to_at_least_one():
    """At tau=1 at least one method is best per problem, so the sum of
    rho(1) over methods is >= 1 (ties can push it above)."""
    rng = np.random.default_rng(1)
    costs = {f"m{i}": rng.uniform(1, 10, 40) for i in range(3)}
    prof = performance_profile(costs)
    total = sum(profile_at(prof, m, 1.0) for m in costs)
    assert total >= 1.0 - 1e-12


def test_zero_costs_handled():
    costs = {"zero": [0.0, 0.0], "pos": [1.0, 0.0]}
    prof = performance_profile(costs)
    assert profile_at(prof, "zero", 1.0) == pytest.approx(1.0)
    # pos matches the zero best only on the second problem
    assert profile_at(prof, "pos", 10.0) == pytest.approx(0.5)


def test_mismatched_lengths_rejected():
    with pytest.raises(HarnessError):
        performance_profile({"a": [1.0], "b": [1.0, 2.0]})


def test_empty_rejected():
    with pytest.raises(HarnessError):
        performance_profile({})
    with pytest.raises(HarnessError):
        performance_profile({"a": []})


def test_negative_costs_rejected():
    with pytest.raises(HarnessError):
        performance_profile({"a": [-1.0]})


def test_unknown_method_rejected():
    prof = performance_profile({"a": [1.0]})
    with pytest.raises(HarnessError):
        profile_at(prof, "b", 1.0)


def test_paper_interpretation_example():
    """Mimic the paper's reading: point (1.0, 0.78) on a curve means the
    method is best for 78% of matrices."""
    costs = {"rcm": [1.0] * 78 + [2.0] * 22,
             "other": [1.5] * 78 + [1.0] * 22}
    prof = performance_profile(costs)
    assert profile_at(prof, "rcm", 1.0) == pytest.approx(0.78)
