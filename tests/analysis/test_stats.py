import numpy as np
import pytest

from repro.analysis import boxplot_summary, geomean, speedup_quartiles
from repro.errors import HarnessError


def test_geomean_known():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)


def test_geomean_single():
    assert geomean([3.5]) == pytest.approx(3.5)


def test_geomean_empty_rejected():
    with pytest.raises(HarnessError):
        geomean([])


def test_geomean_nonpositive_rejected():
    with pytest.raises(HarnessError):
        geomean([1.0, 0.0])
    with pytest.raises(HarnessError):
        geomean([1.0, -2.0])


def test_geomean_below_arith_mean(rng):
    vals = rng.uniform(0.5, 2.0, 100)
    assert geomean(vals) <= vals.mean() + 1e-12


def test_boxplot_summary_ordered():
    lo, q1, med, q3, hi = boxplot_summary(np.arange(1, 101, dtype=float))
    assert lo <= q1 <= med <= q3 <= hi
    assert med == pytest.approx(50.5)


def test_boxplot_whiskers_exclude_outliers():
    vals = np.concatenate([np.ones(99), [1000.0]])
    lo, q1, med, q3, hi = boxplot_summary(vals)
    assert hi < 1000.0


def test_boxplot_empty_rejected():
    with pytest.raises(HarnessError):
        boxplot_summary([])


def test_speedup_quartiles():
    q1, med, q3 = speedup_quartiles(np.linspace(0.5, 1.5, 101))
    assert q1 == pytest.approx(0.75)
    assert med == pytest.approx(1.0)
    assert q3 == pytest.approx(1.25)


def test_speedup_quartiles_empty():
    with pytest.raises(HarnessError):
        speedup_quartiles([])
