import pytest

from repro.analysis import CLASS_DESCRIPTIONS, classify_matrix
from repro.analysis.classes import ClassificationInput


def obs(s1, s2, i0, i1):
    return ClassificationInput(speedup_1d=s1, speedup_2d=s2,
                               imbalance_before=i0, imbalance_after=i1)


def test_class1_locality_win():
    # balanced before & after, both kernels speed up (333SP scenario)
    assert classify_matrix(obs(1.4, 1.3, 1.0, 1.0)) == 1


def test_class2_locality_and_balance():
    # imbalance improves and both kernels speed up (nv2 scenario)
    assert classify_matrix(obs(1.5, 1.2, 1.8, 1.05)) == 2


def test_class3_balance_only():
    # 1D speeds up, 2D flat (audikw_1 scenario)
    assert classify_matrix(obs(1.3, 1.0, 1.6, 1.1)) == 3


def test_class4_neutral():
    # no change anywhere (HV15R scenario)
    assert classify_matrix(obs(1.0, 1.01, 1.05, 1.05)) == 4


def test_class5_introduced_imbalance():
    # reordering provokes 1D imbalance; 2D unaffected
    assert classify_matrix(obs(0.6, 1.0, 1.05, 2.4)) == 5


def test_class6_mixed():
    # slowdown in both kernels without imbalance change: not classes 1-5
    assert classify_matrix(obs(0.6, 0.6, 1.0, 1.0)) == 6


def test_descriptions_cover_all_classes():
    assert set(CLASS_DESCRIPTIONS) == {1, 2, 3, 4, 5, 6}
    for c in range(1, 7):
        assert len(CLASS_DESCRIPTIONS[c]) > 10


def test_boundary_neutral_band():
    # within +-5% counts as flat
    assert classify_matrix(obs(1.04, 1.04, 1.0, 1.0)) == 4


def test_class_is_deterministic():
    o = obs(1.2, 1.15, 1.3, 1.1)
    assert classify_matrix(o) == classify_matrix(o)
