"""The sampling profiler: sampling, span attribution, collapsed
output, CLI wrapping, and its safety constraints."""

from __future__ import annotations

import threading
import time

import pytest

from repro.harness.cli import main
from repro.obs import trace as trace_mod
from repro.obs.profiler import (ProfilerError, SamplingProfiler,
                                maybe_profile)


@pytest.fixture(autouse=True)
def clean_tracer():
    yield
    trace_mod.disable()
    trace_mod.TRACER.clear()
    trace_mod.track_stacks(False)


def _burn(seconds: float) -> float:
    deadline = time.perf_counter() + seconds
    x = 0.0
    while time.perf_counter() < deadline:
        x += 1.0
    return x


def test_rejects_bad_configuration():
    with pytest.raises(ProfilerError, match="unknown timer"):
        SamplingProfiler(timer="cosmic")
    with pytest.raises(ProfilerError, match="interval"):
        SamplingProfiler(interval=0.0)


def test_must_start_on_main_thread():
    errors: list = []

    def off_main():
        try:
            with SamplingProfiler():
                pass
        except ProfilerError as e:
            errors.append(e)

    t = threading.Thread(target=off_main)
    t.start()
    t.join()
    assert errors and "main thread" in str(errors[0])


def test_samples_cpu_bound_work():
    prof = SamplingProfiler(interval=0.002)
    with prof:
        _burn(0.3)
    assert prof.samples > 0
    assert sum(prof.counts.values()) == prof.samples
    # the busy loop's frame dominates self-time
    leaf, _ = max(prof.self_times().items(), key=lambda kv: kv[1])
    assert "_burn" in leaf


def test_span_attribution_without_tracing():
    assert not trace_mod.is_enabled()
    prof = SamplingProfiler(interval=0.002)
    with prof:
        with trace_mod.span("hotspot"):
            _burn(0.3)
    spans = prof.span_times()
    assert spans.get("hotspot", 0) > 0
    # stacks carry the span pseudo-frame ahead of the code frames
    assert any(key and key[0] == "span:hotspot"
               for key in prof.counts)
    # the profiler restored the no-tracking default on exit
    assert trace_mod.current_span_stack() == []


def test_collapsed_format_and_save(tmp_path):
    prof = SamplingProfiler(interval=0.002)
    with prof:
        _burn(0.2)
    lines = prof.collapsed()
    assert lines
    for line in lines:
        stack, count = line.rsplit(" ", 1)
        assert int(count) > 0 and ";" in stack or stack
    out = tmp_path / "p.collapsed"
    assert prof.save(str(out)) == len(lines)
    assert out.read_text().splitlines() == lines
    top = prof.render_top(5)
    assert "self-time by function" in top and "samples" in top


def test_render_top_with_zero_samples():
    prof = SamplingProfiler()
    assert "0 samples" in prof.render_top()


def test_timer_and_handler_restored_on_exit():
    import signal

    before = signal.getsignal(signal.SIGPROF)
    with SamplingProfiler(interval=0.002):
        _burn(0.05)
    assert signal.getsignal(signal.SIGPROF) == before
    assert signal.getitimer(signal.ITIMER_PROF) == (0.0, 0.0)


def test_maybe_profile_noop_and_scoped(tmp_path):
    with maybe_profile(None):
        pass  # plain nullcontext — nothing written anywhere
    out = tmp_path / "scoped.collapsed"
    with maybe_profile(str(out), interval=0.002):
        _burn(0.2)
    assert out.exists() and out.read_text().strip()


@pytest.mark.slow
def test_profile_cli_wraps_a_sweep(tmp_path, capsys):
    out = tmp_path / "sweep.collapsed"
    rc = main(["profile", "--out", str(out), "--interval", "0.002",
               "sweep", "--tier", "tiny", "--limit", "2",
               "--archs", "Rome", "--orderings", "RCM"])
    assert rc == 0
    assert out.exists()
    assert "self-time by span" in capsys.readouterr().out


def test_profile_cli_rejects_empty_and_self(capsys):
    assert main(["profile"]) == 2
    assert main(["profile", "profile"]) == 2
