"""Engine observability: traced sweeps, worker death, exact counters.

The kill test is the ISSUE's worker-death contract: a worker is
SIGKILLed mid-chunk during a ``--jobs 2`` sweep and the engine must
(a) finish every cell, and (b) report *exactly* the counters of an
undisturbed run — the dead worker's partial work is neither lost
(its cells are recomputed) nor double-counted (it never shipped a
delta).
"""

import os
import signal

import pytest

from repro.generators import build_corpus
from repro.harness import SweepEngine
from repro.machine import get_architecture
from repro.machine.model import PerfModel
from repro.obs import trace as obs_trace
from repro.obs.report import validate_trace


@pytest.fixture(autouse=True)
def clean_global_tracer():
    yield
    obs_trace.disable()
    obs_trace.TRACER.clear()


class KillOnceFactory:
    """A poisoned model factory: the first worker to claim the sentinel
    SIGKILLs itself (simulating an OOM kill mid-chunk); every later
    call builds a normal model.  Picklable, so it rides the engine's
    ``model_factory`` hook into pool workers."""

    def __init__(self, sentinel: str) -> None:
        self.sentinel = sentinel

    def __call__(self, arch) -> PerfModel:
        try:
            fd = os.open(self.sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
        return PerfModel(arch)


class AlwaysKillFactory:
    """SIGKILLs every worker that tries to build a model."""

    def __call__(self, arch) -> None:
        os.kill(os.getpid(), signal.SIGKILL)


def _metrics_fingerprint(engine: SweepEngine) -> tuple:
    """Everything that must be exact regardless of worker deaths."""
    reg = engine.registry.values()
    return (engine.metrics.model_stats,
            {k: v for k, v in reg.items()
             if k.startswith("reorder.computed.")},
            engine.metrics.cache["requests"],
            engine.metrics.cache["misses"])


def test_worker_death_mid_chunk_loses_nothing(tmp_path):
    archs = [get_architecture("Rome")]
    baseline = SweepEngine(build_corpus("tiny", seed=0)[:3], archs,
                           ["RCM", "Gray"])
    reference = baseline.run()
    assert reference.failed == []

    sentinel = str(tmp_path / "killed-once")
    engine = SweepEngine(build_corpus("tiny", seed=0)[:3], archs,
                         ["RCM", "Gray"], jobs=2, retries=1,
                         model_factory=KillOnceFactory(sentinel),
                         trace=True)
    result = engine.run()

    assert os.path.exists(sentinel), "the poisoned worker never fired"
    assert engine.metrics.workers["crash_rounds"] >= 1
    # (a) the sweep completed: same records as the undisturbed run
    assert result.failed == []
    assert result.records == reference.records
    # (b) counters are exact: no loss, no double count
    assert _metrics_fingerprint(engine) == _metrics_fingerprint(baseline)
    # (c) trace events shipped only by surviving task completions:
    #     exactly one model_eval span per cell, and the trace is valid
    events = obs_trace.TRACER.events()
    assert validate_trace(events) == []
    model_evals = [ev for ev in events if ev["name"] == "model_eval"]
    assert len(model_evals) == engine.metrics.cells["total"]
    reorders = [ev for ev in events if ev["name"] == "reorder"]
    assert len(reorders) == 2 * 3  # two orderings x three matrices


def test_tasks_that_keep_killing_workers_fail_structurally():
    corpus = build_corpus("tiny", seed=0)[:2]
    engine = SweepEngine(corpus, [get_architecture("Rome")], ["RCM"],
                         jobs=2, retries=0,
                         model_factory=AlwaysKillFactory())
    result = engine.run()
    assert result.records == []
    assert result.failed
    assert {f.stage for f in result.failed} == {"worker"}
    assert {f.error for f in result.failed} == {"WorkerDied"}
    assert engine.metrics.cells["failed"] == engine.metrics.cells["total"]


def test_traced_parallel_sweep_produces_per_worker_lanes(tmp_path):
    corpus = build_corpus("tiny", seed=0)[:4]
    engine = SweepEngine(corpus, [get_architecture("Rome")],
                         ["RCM", "Gray"], jobs=2, trace=True,
                         manifest_path=str(tmp_path / "run_manifest.json"))
    result = engine.run()
    assert result.failed == []
    events = obs_trace.TRACER.events()
    assert validate_trace(events) == []
    names = {ev["name"] for ev in events}
    assert names >= {"sweep.task", "reorder", "ordering.compute",
                     "reuse_stats", "model_eval"}
    # worker pids differ from the parent: distinct Perfetto lanes
    assert os.getpid() not in {ev["pid"] for ev in events}
    # the manifest points back at this run
    man_path = tmp_path / "run_manifest.json"
    assert man_path.exists()
    import json

    man = json.loads(man_path.read_text())
    assert man["run_id"] == engine.metrics.run_id
    assert man["config"]["jobs"] == 2 and man["config"]["trace"] is True
    assert man["signature"]["corpus"] == [e.name for e in corpus]


def test_sweep_metrics_is_a_view_over_the_registry(tmp_path):
    corpus = build_corpus("tiny", seed=0)[:2]
    engine = SweepEngine(corpus, [get_architecture("Rome")], ["RCM"])
    engine.run()
    m = engine.metrics
    reg = m.registry
    assert m.model_stats["reuse_builds"] == \
        reg["reuse.builds"]["value"] == 2 * len(corpus)
    assert m.model_stats["schedule_hits"] == \
        reg.get("schedule.hits", {}).get("value", 0)
    assert reg["reorder.computed.RCM"]["value"] == len(corpus)
    path = tmp_path / "metrics.json"
    m.save(path)
    import json

    saved = json.loads(path.read_text())
    assert saved["registry"] == reg
