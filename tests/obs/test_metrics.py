"""Metrics registry: snapshot → delta → merge shipping protocol."""

import pytest

from repro.obs.metrics import (
    CounterView,
    Histogram,
    MetricsRegistry,
    log_buckets,
)


def test_counter_monotone_and_rejects_negative():
    r = MetricsRegistry()
    c = r.counter("hits")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_registry_returns_same_instance_and_guards_types():
    r = MetricsRegistry()
    assert r.counter("x") is r.counter("x")
    with pytest.raises(TypeError):
        r.gauge("x")


def test_histogram_buckets_quantiles_and_merge():
    bounds = log_buckets(1e-3, 1e0, per_decade=1)  # 1ms, 10ms, 100ms, 1s
    assert bounds == (1e-3, 1e-2, 1e-1, 1e0)
    h = Histogram("lat", bounds)
    for v in (0.0005, 0.005, 0.005, 0.05, 5.0):
        h.observe(v)
    assert h.count == 5
    assert h.mean() == pytest.approx(sum((0.0005, 0.005, 0.005, 0.05, 5.0))
                                     / 5)
    snap = h.snapshot()
    assert snap["counts"] == [1, 2, 1, 0, 1]  # final slot = overflow
    assert h.quantile(0.5) == pytest.approx(1e-2)
    assert h.quantile(1.0) == pytest.approx(5.0)  # max, not a bound

    r1, r2 = MetricsRegistry(), MetricsRegistry()
    r1.histogram("lat", bounds).observe(0.005)
    r2.histogram("lat", bounds).observe(0.5)
    r2.merge_delta(r1.delta_since({}))
    merged = r2.histogram("lat", bounds).snapshot()
    assert merged["count"] == 2
    assert merged["counts"] == [0, 1, 0, 1, 0]


def test_delta_since_reports_only_what_happened():
    r = MetricsRegistry()
    r.counter("a").inc(3)
    r.gauge("g").set(7.0)
    before = r.snapshot()
    r.counter("a").inc(2)
    r.counter("b").inc(1)
    delta = r.delta_since(before)
    assert delta["a"]["value"] == 2
    assert delta["b"]["value"] == 1
    assert delta["g"]["value"] == 7.0  # gauges report their level
    # an untouched counter does not appear in the delta at all
    r.counter("idle")
    before2 = r.snapshot()
    assert "idle" not in r.delta_since(before2)


def test_merge_deltas_from_two_workers_is_exact():
    """The engine's invariant: merging per-worker deltas never loses or
    double-counts, regardless of how work was split."""
    engine = MetricsRegistry()

    def worker(work: int) -> dict:
        shared = MetricsRegistry()  # stands in for a worker's REGISTRY
        shared.counter("builds").inc(100)  # pre-existing state
        before = shared.snapshot()
        shared.counter("builds").inc(work)
        shared.histogram("lat", (0.1, 1.0)).observe(0.5)
        return shared.delta_since(before)

    engine.merge_delta(worker(3))
    engine.merge_delta(worker(4))
    assert engine.values()["builds"] == 7  # not 207
    assert engine.histogram("lat", (0.1, 1.0)).count == 2


def test_counter_view_is_a_live_readonly_mapping():
    r = MetricsRegistry()
    c = r.counter("reuse.builds")
    view = CounterView({"reuse_builds": c})
    assert dict(view) == {"reuse_builds": 0}
    c.inc(2)
    assert view["reuse_builds"] == 2
    assert len(view) == 1 and "reuse_builds" in view
    target = {"other": 1}
    target.update(view)  # the benchmark's read pattern
    assert target == {"other": 1, "reuse_builds": 2}


def test_snapshot_is_json_shaped():
    import json

    r = MetricsRegistry()
    r.counter("c").inc()
    r.gauge("g").set(1.5)
    r.histogram("h").observe(0.01)
    assert json.loads(json.dumps(r.snapshot())) == r.snapshot()


def test_instrumented_modules_expose_legacy_counter_names():
    from repro.machine import reuse
    from repro.spmv import schedule

    assert set(dict(reuse.COUNTERS)) == {"reuse_builds", "reuse_hits"}
    assert set(dict(schedule.COUNTERS)) == {"schedule_builds",
                                            "schedule_hits"}
    assert reuse.counters_snapshot() == dict(reuse.COUNTERS)
    assert schedule.counters_snapshot() == dict(schedule.COUNTERS)
