"""Span tracer: golden Chrome trace-event schema, nesting, no-op path."""

import json
import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.report import load_trace, validate_trace
from repro.obs.trace import _NOP, Tracer, span


@pytest.fixture
def tracer():
    t = Tracer(enabled=True)
    yield t
    t.disable()


@pytest.fixture(autouse=True)
def clean_global_tracer():
    yield
    obs_trace.disable()
    obs_trace.TRACER.clear()


# ----------------------------------------------------------------------
# disabled fast path
# ----------------------------------------------------------------------
def test_disabled_span_is_the_shared_noop_singleton():
    assert not obs_trace.is_enabled()
    s1 = span("anything", algo="RCM")
    s2 = span("else")
    assert s1 is s2 is _NOP
    with s1 as inner:
        assert inner.set(more=1) is _NOP
    assert obs_trace.TRACER.events() == []


def test_noop_span_does_not_swallow_exceptions():
    with pytest.raises(ValueError):
        with span("x"):
            raise ValueError("must propagate")


# ----------------------------------------------------------------------
# golden schema
# ----------------------------------------------------------------------
def test_saved_trace_is_schema_valid_chrome_json(tracer, tmp_path):
    with tracer.span("outer", matrix="m1"):
        with tracer.span("inner", algo="RCM"):
            pass
        with tracer.span("inner", algo="Gray"):
            pass
    tracer.instant("marker", note="here")
    path = tmp_path / "trace.json"
    n = tracer.save(str(path))
    assert n == 4

    raw = json.loads(path.read_text())
    assert isinstance(raw["traceEvents"], list)
    assert raw["displayTimeUnit"] == "ms"

    events = load_trace(str(path))
    assert validate_trace(events) == []
    complete = [ev for ev in events if ev["ph"] == "X"]
    # save() sorts by start time: the outer span opened first
    assert [ev["name"] for ev in complete] == ["outer", "inner", "inner"]
    for ev in complete:
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            assert key in ev
        assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert ev["cat"] == "repro"
    assert complete[0]["args"] == {"matrix": "m1"}
    assert complete[1]["args"] == {"algo": "RCM"}


def test_nested_spans_nest_on_the_time_axis(tracer):
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    inner, outer = tracer.events()
    assert inner["ts"] >= outer["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 0.01


def test_exception_inside_span_is_recorded_and_propagates(tracer):
    with pytest.raises(RuntimeError):
        with tracer.span("failing", algo="HP"):
            raise RuntimeError("boom")
    (ev,) = tracer.events()
    assert ev["args"]["error"] == "RuntimeError"
    assert ev["args"]["algo"] == "HP"


def test_set_attaches_mid_span_attributes(tracer):
    with tracer.span("work") as s:
        s.set(rows=7)
    (ev,) = tracer.events()
    assert ev["args"] == {"rows": 7}


def test_spans_are_thread_safe(tracer):
    def worker(i):
        for _ in range(50):
            with tracer.span("t", idx=i):
                pass

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    events = tracer.events()
    assert len(events) == 200
    assert validate_trace(events) == []
    # every thread's spans all arrived (tids may be reused after join)
    assert {ev["args"]["idx"] for ev in events} == {0, 1, 2, 3}


def test_jsonl_mirror_appends_one_event_per_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    t = Tracer()
    t.enable(jsonl_path=str(path))
    with t.span("a"):
        pass
    with t.span("b"):
        pass
    t.disable()
    lines = path.read_text().splitlines()
    assert [json.loads(ln)["name"] for ln in lines] == ["a", "b"]


def test_drain_and_merge_ship_events_between_tracers(tracer):
    with tracer.span("shipped"):
        pass
    events = tracer.drain()
    assert tracer.events() == []
    other = Tracer()
    other.merge(events)
    assert [ev["name"] for ev in other.events()] == ["shipped"]


# ----------------------------------------------------------------------
# validator negatives
# ----------------------------------------------------------------------
def test_validator_flags_missing_keys_and_bad_durations():
    assert validate_trace([{"ph": "X", "ts": 0, "pid": 1, "tid": 1}])
    assert validate_trace(
        [{"name": "x", "ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 1}])
    assert validate_trace(
        [{"name": "x", "ph": "X", "ts": -5, "dur": 1, "pid": 1, "tid": 1}])
    assert validate_trace(
        [{"name": "x", "ph": "?", "ts": 0, "pid": 1, "tid": 1}])


def test_validator_flags_partial_overlap_on_one_thread():
    events = [
        {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 1},
        {"name": "b", "ph": "X", "ts": 5.0, "dur": 10.0, "pid": 1, "tid": 1},
    ]
    problems = validate_trace(events)
    assert problems and "overlap" in problems[0]
    # same spans on different threads are fine
    events[1]["tid"] = 2
    assert validate_trace(events) == []


def test_validator_flags_unbalanced_duration_events():
    assert validate_trace(
        [{"name": "x", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1}])
    assert validate_trace(
        [{"name": "x", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1}])
    ok = [{"name": "x", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
          {"name": "x", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1}]
    assert validate_trace(ok) == []
