"""Every cache in the code base speaks the shared stats schema."""

import numpy as np
import pytest

from repro.obs.cachestats import (
    CACHE_STATS_KEYS,
    CacheStatCounters,
    cache_stats,
    mapped_nbytes,
    sizeof_value,
)


def _assert_shared_shape(stats: dict) -> None:
    for key in CACHE_STATS_KEYS:
        assert key in stats, f"missing shared key {key!r}"
    assert stats["hits"] >= 0 and stats["misses"] >= 0
    assert stats["evictions"] >= 0 and stats["size_bytes"] >= 0
    assert 0.0 <= stats["hit_rate"] <= 1.0


def test_cache_stats_helper_computes_hit_rate():
    s = cache_stats(hits=3, misses=1, size_bytes=64, extra_key=9)
    _assert_shared_shape(s)
    assert s["hit_rate"] == pytest.approx(0.75)
    assert s["extra_key"] == 9
    assert cache_stats()["hit_rate"] == 0.0  # idle cache, no div-by-zero


def test_sizeof_value_prefers_nbytes():
    arr = np.zeros(10, dtype=np.int64)
    assert sizeof_value(arr) == 80
    assert sizeof_value([arr, arr]) >= 160
    assert sizeof_value({"k": arr}) >= 80
    assert sizeof_value("text") > 0


def test_mapped_nbytes_walks_base_chain(tmp_path):
    heap = np.zeros(16)
    assert mapped_nbytes(heap) == 0
    assert mapped_nbytes("not an array") == 0

    np.save(tmp_path / "a.npy", np.arange(32))
    mm = np.load(tmp_path / "a.npy", mmap_mode="r")
    assert mapped_nbytes(mm) == mm.nbytes
    # a view of a memmap (e.g. CSRMatrix astype(copy=False) passthrough)
    # is still disk-backed and must be billed as mapped
    view = mm[4:]
    assert isinstance(view, np.ndarray)
    assert mapped_nbytes(view) == view.nbytes


def test_delta_and_merge_carry_mapped_bytes():
    before = cache_stats(mapped_bytes=100)
    after = cache_stats(hits=1, mapped_bytes=250)
    delta = CacheStatCounters.delta(after, before)
    assert delta["mapped_bytes"] == 150
    agg = cache_stats(mapped_bytes=10)
    CacheStatCounters.merge(agg, delta)
    assert agg["mapped_bytes"] == 160


def test_cache_stat_counters_delta_and_merge():
    c = CacheStatCounters()
    c.miss()
    c.grow(100)
    before = c.snapshot()
    c.hit(3)
    c.evict(freed_bytes=40)
    delta = CacheStatCounters.delta(c.snapshot(), before)
    assert delta["hits"] == 3 and delta["misses"] == 0
    assert delta["evictions"] == 1 and delta["size_bytes"] == -40
    agg = cache_stats(hits=1, misses=1)
    CacheStatCounters.merge(agg, delta)
    assert agg["hits"] == 4 and agg["hit_rate"] == pytest.approx(0.8)


# ----------------------------------------------------------------------
# the three real caches all expose the shared keys (regression)
# ----------------------------------------------------------------------
def test_ordering_cache_stats_shape(small_symmetric_matrix):
    from repro.harness.runner import OrderingCache

    cache = OrderingCache()
    cache.get(small_symmetric_matrix, "m", "RCM", nparts=4, seed=0)
    cache.get(small_symmetric_matrix, "m", "RCM", nparts=4, seed=0)
    stats = cache.stats
    _assert_shared_shape(stats)
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["requests"] == 2  # extras stay
    assert stats["size_bytes"] > 0  # one permutation resident


def test_advisor_lru_cache_stats_shape():
    from repro.advisor.cache import LRUCache

    cache = LRUCache(capacity=2)
    cache.get("a")                      # miss
    cache.put("a", np.arange(4))
    cache.get("a")                      # hit
    cache.put("b", np.arange(4))
    cache.put("c", np.arange(4))        # evicts "a"
    stats = cache.stats
    _assert_shared_shape(stats)
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["evictions"] == 1
    assert stats["size"] == 2 and stats["capacity"] == 2
    assert stats["size_bytes"] >= 2 * np.arange(4).nbytes


def test_idle_caches_report_zero_hit_rate():
    # zero accesses must never divide by zero (the guard lives once, in
    # cache_stats) — regression across every cache sharing the schema
    from repro.advisor.cache import LRUCache as AdvisorLRU
    from repro.harness.runner import OrderingCache
    from repro.machine.cache import LRUCache as SimLRU

    for stats in (OrderingCache().stats,
                  AdvisorLRU(capacity=2).stats,
                  SimLRU(size=1024, line_size=64, associativity=2).stats):
        _assert_shared_shape(stats)
        assert stats["hit_rate"] == 0.0
        assert stats["hits"] == 0 and stats["misses"] == 0


def test_simulator_cache_stats_shape():
    from repro.machine.cache import LRUCache

    cache = LRUCache(size=128, line_size=64, associativity=1)  # 2 sets
    cache.access(0)        # miss (line 0, set 0)
    cache.access(0)        # hit
    cache.access(128)      # miss (line 2, set 0) — evicts line 0
    stats = cache.stats
    _assert_shared_shape(stats)
    assert stats["hits"] == 1 and stats["misses"] == 2
    assert stats["evictions"] == 1
    assert stats["size_bytes"] == 64  # one line resident
    assert stats["hit_rate"] == pytest.approx(1 / 3)


def test_simulator_cache_vectorised_stats_match_reference():
    from repro.machine.cache import LRUCache

    rng = np.random.default_rng(7)
    addrs = rng.integers(0, 16, size=200) * 8
    fast = LRUCache(size=256, line_size=64, associativity=4)  # 1 set
    slow = LRUCache(size=256, line_size=64, associativity=4)
    fast.access_many(addrs)           # vectorised empty-cache path
    for a in addrs:
        slow.access(int(a))           # per-access reference loop
    assert fast.stats == slow.stats


def test_reuse_stats_cache_shape(small_symmetric_matrix):
    from repro.machine.reuse import ReuseStats, reuse_cache_stats

    before = reuse_cache_stats()
    stats_obj = ReuseStats.for_matrix(small_symmetric_matrix)
    stats_obj.prev(8)
    stats_obj.prev(8)
    after = reuse_cache_stats()
    _assert_shared_shape(after)
    assert after["misses"] == before["misses"] + 1  # one build
    assert after["hits"] == before["hits"] + 1      # one memoised serve
    assert after["size_bytes"] > before["size_bytes"]
    assert after["evictions"] == 0  # unbounded, dies with the matrix
