"""The benchmark ledger: schema, noise-aware comparison, regression
gates, and the ``repro perf`` CLI."""

from __future__ import annotations

import json
import math

import pytest

from repro.harness.cli import main
from repro.obs.perf import (BenchLedger, _geomean, _worse_ratio,
                            bench_record, compare_ledgers,
                            compare_records, metric, metric_kind,
                            render_comparison, render_trend,
                            run_builtin_bench)


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------
def test_metric_kind_by_unit():
    assert metric_kind("s") == "time"
    assert metric_kind("ms") == "time"
    assert metric_kind("cells") == "exact"
    assert metric_kind("") == "exact"


def test_metric_value_defaults_to_best_sample():
    lower = metric(samples=[3.0, 1.0, 2.0], unit="s")
    assert lower["value"] == 1.0           # min-of-k for lower-is-better
    higher = metric(samples=[3.0, 1.0, 2.0], polarity="higher")
    assert higher["value"] == 3.0
    assert lower["samples"] == [3.0, 1.0, 2.0]


def test_metric_rejects_bad_input():
    with pytest.raises(ValueError):
        metric(1.0, polarity="sideways")
    with pytest.raises(ValueError):
        metric()  # neither value nor samples


def test_bench_record_carries_provenance():
    rec = bench_record("b", tier="tiny", seed=0,
                       metrics={"m": metric(1.0, unit="s")})
    assert rec["name"] == "b" and rec["tier"] == "tiny"
    assert "git_sha" in rec and "created" in rec
    assert rec["metrics"]["m"]["kind"] == "time"


def test_ledger_append_and_latest(tmp_path):
    ledger = BenchLedger(str(tmp_path / "BENCH_tiny.json"))
    assert ledger.records() == []
    for v in (2.0, 1.5):
        ledger.append(bench_record(
            "b", "tiny", 0, {"m": metric(v, unit="s")}))
    assert len(ledger.records("b")) == 2
    assert ledger.latest()["b"]["metrics"]["m"]["value"] == 1.5
    # the file is plain versioned JSON
    doc = json.load(open(ledger.path))
    assert doc["version"] == 1 and len(doc["records"]) == 2


def test_ledger_rejects_foreign_json(tmp_path):
    path = tmp_path / "not_a_ledger.json"
    path.write_text('{"traceEvents": []}')
    with pytest.raises(ValueError, match="not a bench ledger"):
        BenchLedger(str(path)).load()


# ----------------------------------------------------------------------
# comparison semantics
# ----------------------------------------------------------------------
def _rec(**metrics):
    return bench_record("b", "tiny", 0, metrics)


def test_worse_ratio_polarity():
    assert _worse_ratio(1.0, 1.2, "lower") == pytest.approx(1.2)
    assert _worse_ratio(1.0, 1.2, "higher") == pytest.approx(1 / 1.2)
    assert _worse_ratio(0.0, 0.0, "lower") == 1.0
    assert _worse_ratio(0.0, 1.0, "lower") == math.inf


def test_identical_records_have_no_regressions():
    base = _rec(t=metric(1.0, unit="s"), n=metric(5.0, unit="cells"))
    cmp = compare_records(base, base)
    assert cmp["regressions"] == [] and cmp["missing"] == []
    assert all(r["ratio"] == 1.0 for r in cmp["rows"])


def test_time_metric_within_band_passes_beyond_band_fails():
    base = _rec(t=metric(1.0, unit="s"))
    ok = compare_records(_rec(t=metric(1.10, unit="s")), base)
    assert ok["regressions"] == []          # inside the ±15 % band
    bad = compare_records(_rec(t=metric(1.20, unit="s")), base)
    assert [r["metric"] for r in bad["regressions"]] == ["t"]


def test_exact_metric_any_drift_regresses():
    base = _rec(n=metric(10.0, unit="cells", polarity="higher"))
    bad = compare_records(_rec(n=metric(9.0, unit="cells",
                                        polarity="higher")), base)
    assert bad["regressions"]
    # drift in the *better* direction is not a regression
    good = compare_records(_rec(n=metric(11.0, unit="cells",
                                         polarity="higher")), base)
    assert good["regressions"] == []


def test_per_metric_tolerance_overrides_default():
    base = _rec(t=metric(1.0, unit="s", tolerance=0.5))
    cmp = compare_records(_rec(t=metric(1.4, unit="s", tolerance=0.5)),
                          base)
    assert cmp["regressions"] == []


def test_missing_metric_reported_not_regressed():
    base = _rec(t=metric(1.0, unit="s"), gone=metric(2.0, unit="s"))
    cmp = compare_records(_rec(t=metric(1.0, unit="s")), base)
    assert cmp["missing"] == ["gone"]
    assert cmp["regressions"] == []


def test_kinds_filter_restricts_comparison():
    base = _rec(t=metric(1.0, unit="s"), n=metric(5.0, unit="cells"))
    cur = _rec(t=metric(9.9, unit="s"), n=metric(5.0, unit="cells"))
    cmp = compare_records(cur, base, kinds=("exact",))
    assert [r["metric"] for r in cmp["rows"]] == ["n"]
    assert cmp["regressions"] == []


def test_compare_ledgers_geomean_and_missing(tmp_path):
    base = BenchLedger(str(tmp_path / "base.json"))
    cur = BenchLedger(str(tmp_path / "cur.json"))
    base.append(bench_record("a", "tiny", 0,
                             {"t": metric(1.0, unit="s")}))
    base.append(bench_record("only_base", "tiny", 0,
                             {"t": metric(1.0, unit="s")}))
    cur.append(bench_record("a", "tiny", 0,
                            {"t": metric(2.0, unit="s")}))
    report = compare_ledgers(cur, base)
    assert report["missing_benches"] == ["only_base"]
    assert report["geomean_ratio"] == pytest.approx(2.0)
    assert report["regressions"][0]["bench"] == "a"
    text = render_comparison(report)
    assert "REGRESSED" in text and "1 regression(s)" in text


def test_geomean_edge_cases():
    assert _geomean([]) == 1.0
    assert _geomean([math.inf]) == math.inf
    assert _geomean([2.0, 0.5]) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# built-in benches + the seeded synthetic regression
# ----------------------------------------------------------------------
def test_unknown_builtin_bench_rejected():
    with pytest.raises(ValueError, match="unknown builtin bench"):
        run_builtin_bench("nope")


@pytest.mark.slow
def test_builtin_sweep_record_and_seeded_regression(tmp_path):
    base = BenchLedger(str(tmp_path / "base.json"))
    cur = BenchLedger(str(tmp_path / "cur.json"))
    base.append(run_builtin_bench("sweep", k=1))
    # bit-identical code, same seed: exact metrics cannot regress
    cur.append(run_builtin_bench("sweep", k=1))
    clean = compare_ledgers(cur, base, kinds=("exact",))
    assert clean["regressions"] == []
    # the synthetic ~2x slowdown must trip the time gate
    slow = BenchLedger(str(tmp_path / "slow.json"))
    slow.append(run_builtin_bench("sweep", k=1, slowdown=2.0))
    bad = compare_ledgers(slow, base, kinds=("time",))
    assert bad["regressions"], render_comparison(bad)
    assert all(r["ratio"] > 1.15 for r in bad["regressions"])


@pytest.mark.slow
def test_perf_cli_record_compare_trend(tmp_path, capsys):
    ledger = str(tmp_path / "BENCH_tiny.json")
    baseline = str(tmp_path / "BASELINE_tiny.json")
    assert main(["perf", "record", "--ledger", baseline,
                 "--bench", "model_eval", "-k", "1"]) == 0
    assert main(["perf", "record", "--ledger", ledger,
                 "--bench", "model_eval", "-k", "1"]) == 0
    # identical rerun: exits 0
    assert main(["perf", "compare", "--ledger", ledger,
                 "--baseline", baseline, "--kinds", "exact"]) == 0
    # unknown kind: exits 2
    assert main(["perf", "compare", "--ledger", ledger,
                 "--baseline", baseline, "--kinds", "vibes"]) == 2
    assert main(["perf", "trend", "--ledger", ledger]) == 0
    out = capsys.readouterr().out
    assert "model_eval" in out and "perf trend" in out


def test_render_trend_empty_ledger(tmp_path):
    ledger = BenchLedger(str(tmp_path / "empty.json"))
    assert "no matching records" in render_trend(ledger)
