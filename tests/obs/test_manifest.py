"""Run manifest: collection, round-trip, validation."""

import json

from repro.obs.manifest import (
    MANIFEST_VERSION,
    REQUIRED_FIELDS,
    RunManifest,
    collect,
)


def test_collect_gathers_provenance():
    man = collect(seed=42, signature={"corpus": ["m1"]},
                  config={"jobs": 2}, argv=["repro", "sweep"])
    assert man.version == MANIFEST_VERSION
    assert man.seed == 42
    assert man.signature == {"corpus": ["m1"]}
    assert man.config == {"jobs": 2}
    assert man.argv == ["repro", "sweep"]
    assert man.python and man.platform
    assert set(man.packages) >= {"numpy", "scipy"}
    assert man.packages["numpy"]  # baked into the image
    # this repo is a git checkout, so the sha must resolve
    assert man.git_sha and len(man.git_sha) == 40
    assert RunManifest.validate(man.to_dict()) == []


def test_run_ids_are_unique():
    assert collect().run_id != collect().run_id


def test_write_load_roundtrip(tmp_path):
    man = collect(seed=7, config={"tier": "tiny"})
    path = str(tmp_path / "run_manifest.json")
    man.write(path)
    loaded = RunManifest.load(path)
    assert loaded == man
    # the on-disk form is sorted, indented JSON
    data = json.loads(open(path).read())
    assert RunManifest.validate(data) == []


def test_load_ignores_unknown_fields(tmp_path):
    man = collect()
    data = man.to_dict()
    data["future_field"] = "something"
    path = tmp_path / "m.json"
    path.write_text(json.dumps(data))
    assert RunManifest.load(str(path)) == man


def test_validate_flags_missing_fields_and_newer_versions():
    problems = RunManifest.validate({})
    assert len(problems) == len(REQUIRED_FIELDS)
    data = collect().to_dict()
    data["version"] = MANIFEST_VERSION + 1
    assert any("newer" in p for p in RunManifest.validate(data))
    del data["run_id"]
    assert any("run_id" in p for p in RunManifest.validate(data))


def test_unpicklable_seed_is_stringified():
    man = collect(seed=object())
    assert isinstance(man.seed, str)
    json.dumps(man.to_dict())  # must stay serialisable
