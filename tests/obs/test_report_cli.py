"""`repro sweep --trace` → `repro report` end to end, plus --check."""

import json

import pytest

from repro.harness.cli import main
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def clean_global_tracer():
    yield
    obs_trace.disable()
    obs_trace.TRACER.clear()


@pytest.fixture
def traced_run(tmp_path):
    paths = {
        "trace": str(tmp_path / "trace.json"),
        "journal": str(tmp_path / "journal.jsonl"),
        "manifest": str(tmp_path / "run_manifest.json"),
        "metrics": str(tmp_path / "sweep_metrics.json"),
    }
    rc = main(["sweep", "--tier", "tiny", "--limit", "2",
               "--archs", "Rome", "--orderings", "RCM,Gray",
               "--jobs", "2",
               "--trace", paths["trace"],
               "--journal", paths["journal"],
               "--manifest", paths["manifest"],
               "--metrics", paths["metrics"]])
    assert rc == 0
    return paths


def test_traced_sweep_leaves_all_four_artifacts(traced_run):
    trace = json.load(open(traced_run["trace"]))
    names = {ev["name"] for ev in trace["traceEvents"]}
    assert names >= {"reorder", "reuse_stats", "model_eval"}
    # the crash-safe sidecar mirrors the same events line by line
    sidecar = [json.loads(ln)
               for ln in open(traced_run["trace"] + "l")]
    assert len(sidecar) == len(trace["traceEvents"])
    metrics = json.load(open(traced_run["metrics"]))
    manifest = json.load(open(traced_run["manifest"]))
    assert metrics["run_id"] == manifest["run_id"]
    assert "reuse.builds" in metrics["registry"]


def test_report_renders_breakdowns(traced_run, capsys):
    assert main(["report", "--trace", traced_run["trace"],
                 "--journal", traced_run["journal"],
                 "--manifest", traced_run["manifest"]]) == 0
    out = capsys.readouterr().out
    assert "per-stage breakdown" in out
    assert "reordering time by algorithm" in out
    assert "model evaluation by ordering" in out
    assert "slowest spans" in out
    assert "RCM" in out and "Gray" in out
    assert "model_eval" in out


def test_report_check_passes_on_valid_artifacts(traced_run):
    assert main(["report", "--check",
                 "--trace", traced_run["trace"],
                 "--journal", traced_run["journal"],
                 "--manifest", traced_run["manifest"]]) == 0


def test_report_check_fails_on_missing_or_broken_trace(tmp_path, capsys):
    missing = str(tmp_path / "nope.json")
    assert main(["report", "--check", "--trace", missing,
                 "--manifest", ""]) == 1

    broken = tmp_path / "broken.json"
    broken.write_text(json.dumps({"traceEvents": [
        {"ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1}]}))
    assert main(["report", "--check", "--trace", str(broken),
                 "--manifest", ""]) == 1


def test_report_check_fails_when_required_spans_are_absent(tmp_path):
    sparse = tmp_path / "sparse.json"
    sparse.write_text(json.dumps({"traceEvents": [
        {"name": "other", "ph": "X", "ts": 0.0, "dur": 1.0,
         "pid": 1, "tid": 1}]}))
    assert main(["report", "--check", "--trace", str(sparse),
                 "--manifest", ""]) == 1


def test_report_on_missing_artifacts_degrades_gracefully(tmp_path, capsys):
    assert main(["report", "--trace", str(tmp_path / "none.json"),
                 "--journal", "", "--manifest", ""]) == 0
    assert "no artifacts" in capsys.readouterr().out


def test_quiet_silences_status_but_not_data(traced_run, capsys):
    assert main(["--quiet", "report",
                 "--trace", traced_run["trace"],
                 "--manifest", traced_run["manifest"]]) == 0
    captured = capsys.readouterr()
    assert "per-stage breakdown" in captured.out
    assert captured.err == ""
