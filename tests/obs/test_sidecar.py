"""Sidecar loading (crash contract), correlation-link validation, and
cross-process trace merging."""

from __future__ import annotations

import json

import pytest

from repro.obs.report import (load_any_trace, load_sidecar, merge_traces,
                              validate_links)


def _ev(name, ts, dur, pid=1, tid=1, **args):
    ev = {"name": name, "ph": "X", "cat": "repro", "ts": ts, "dur": dur,
          "pid": pid, "tid": tid}
    if args:
        ev["args"] = args
    return ev


# ----------------------------------------------------------------------
# load_sidecar: the crash contract
# ----------------------------------------------------------------------
def test_sidecar_roundtrip(tmp_path):
    path = tmp_path / "t.jsonl"
    events = [_ev("a", 0.0, 5.0), _ev("b", 1.0, 2.0)]
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    assert load_sidecar(str(path)) == events


def test_sidecar_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(json.dumps(_ev("a", 0.0, 5.0)) + "\n"
                    + '{"name": "torn", "ph"')
    events = load_sidecar(str(path))
    assert [e["name"] for e in events] == ["a"]


def test_sidecar_rejects_midfile_corruption(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"broken\n' + json.dumps(_ev("a", 0.0, 5.0)) + "\n")
    with pytest.raises(ValueError, match="corrupt sidecar line"):
        load_sidecar(str(path))


def test_sidecar_rejects_non_object_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('[1, 2, 3]\n' + json.dumps(_ev("a", 0.0, 5.0)) + "\n")
    with pytest.raises(ValueError, match="not an object"):
        load_sidecar(str(path))


def test_sidecar_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text("\n" + json.dumps(_ev("a", 0.0, 5.0)) + "\n\n")
    assert len(load_sidecar(str(path))) == 1


# ----------------------------------------------------------------------
# validate_links
# ----------------------------------------------------------------------
def test_plain_trace_passes_vacuously():
    assert validate_links([_ev("a", 0.0, 5.0)]) == []


def test_linked_spans_within_parent_pass():
    events = [
        _ev("child", 1.0, 2.0, span_id="c", parent_id="p",
            trace_id="t"),
        _ev("parent", 0.0, 5.0, span_id="p", trace_id="t"),
    ]
    assert validate_links(events) == []


def test_orphaned_parent_flagged():
    events = [_ev("child", 1.0, 2.0, span_id="c", parent_id="ghost")]
    problems = validate_links(events)
    assert len(problems) == 1 and "orphaned link" in problems[0]


def test_child_exceeding_parent_flagged():
    events = [
        _ev("child", 1.0, 9.0, span_id="c", parent_id="p"),
        _ev("parent", 0.0, 5.0, span_id="p"),
    ]
    problems = validate_links(events)
    assert len(problems) == 1 and "clock skew" in problems[0]


def test_remote_parent_exempt_until_merged():
    # a server-only trace: the client span lives in another process
    server = [_ev("serve.request", 1.0, 2.0, span_id="s",
                  trace_id="req-1", remote_parent="client-span")]
    assert validate_links(server) == []


# ----------------------------------------------------------------------
# merge_traces
# ----------------------------------------------------------------------
def test_merge_traces_sorts_and_correlates(tmp_path):
    client = tmp_path / "client.json"
    server = tmp_path / "server.jsonl"
    client_ev = _ev("loadgen.request", 0.0, 10.0, pid=100,
                    span_id="c1", trace_id="req-c1")
    server_evs = [
        _ev("serve.request", 2.0, 5.0, pid=200, span_id="s1",
            trace_id="req-c1", remote_parent="c1"),
        _ev("advisor.request", 3.0, 1.0, pid=200, span_id="a1",
            parent_id="s1", trace_id="req-c1"),
    ]
    client.write_text(json.dumps({"traceEvents": [client_ev]}))
    server.write_text("".join(json.dumps(e) + "\n" for e in server_evs))

    out = tmp_path / "merged.json"
    n = merge_traces([str(client), str(server)], str(out))
    assert n == 3
    merged = json.load(open(out))["traceEvents"]
    assert [(e["pid"], e["ts"]) for e in merged] == \
        sorted((e["pid"], e["ts"]) for e in merged)
    # one causally-linked timeline: ids resolve across processes now
    assert validate_links(merged) == []
    assert {e["args"]["trace_id"] for e in merged} == {"req-c1"}


def test_load_any_trace_dispatches_on_extension(tmp_path):
    ev = _ev("a", 0.0, 1.0)
    json_path = tmp_path / "t.json"
    json_path.write_text(json.dumps({"traceEvents": [ev]}))
    jsonl_path = tmp_path / "t.jsonl"
    jsonl_path.write_text(json.dumps(ev) + "\n")
    assert load_any_trace(str(json_path)) == [ev]
    assert load_any_trace(str(jsonl_path)) == [ev]
