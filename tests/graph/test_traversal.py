import numpy as np
import pytest

from repro.graph import (
    bfs_levels,
    bfs_order,
    connected_components,
    graph_from_matrix,
    pseudo_peripheral_vertex,
)
from repro.graph.components import component_sizes
from repro.matrix import csr_from_dense

from .test_adjacency import path_graph


def grid_graph(rows, cols):
    n = rows * cols
    dense = np.zeros((n, n))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                dense[v, v + 1] = dense[v + 1, v] = 1.0
            if r + 1 < rows:
                dense[v, v + cols] = dense[v + cols, v] = 1.0
    return graph_from_matrix(csr_from_dense(dense))


def test_bfs_levels_on_path():
    g = path_graph(5)
    assert np.array_equal(bfs_levels(g, 0), [0, 1, 2, 3, 4])
    assert np.array_equal(bfs_levels(g, 2), [2, 1, 0, 1, 2])


def test_bfs_levels_unreachable():
    dense = np.zeros((4, 4))
    dense[0, 1] = dense[1, 0] = 1.0
    g = graph_from_matrix(csr_from_dense(dense))
    lv = bfs_levels(g, 0)
    assert lv[0] == 0 and lv[1] == 1
    assert lv[2] == -1 and lv[3] == -1


def test_bfs_levels_match_networkx(rng):
    import networkx as nx

    g = grid_graph(5, 7)
    nxg = nx.grid_2d_graph(5, 7)
    mapping = {(r, c): r * 7 + c for r, c in nxg.nodes}
    nxg = nx.relabel_nodes(nxg, mapping)
    dist = nx.single_source_shortest_path_length(nxg, 0)
    lv = bfs_levels(g, 0)
    for v, d in dist.items():
        assert lv[v] == d


def test_bfs_order_visits_component_once():
    g = grid_graph(4, 4)
    order = bfs_order(g, 0)
    assert sorted(order.tolist()) == list(range(16))


def test_bfs_order_level_monotone():
    g = grid_graph(4, 5)
    order = bfs_order(g, 0)
    lv = bfs_levels(g, 0)
    assert np.all(np.diff(lv[order]) >= 0)


def test_bfs_order_degree_sorted_within_level():
    g = grid_graph(3, 3)
    order = bfs_order(g, 0)
    lv = bfs_levels(g, 0)
    deg = g.degrees()
    for level in range(int(lv.max()) + 1):
        in_level = order[lv[order] == level]
        assert np.all(np.diff(deg[in_level]) >= 0)


def test_bfs_start_out_of_range():
    g = path_graph(3)
    with pytest.raises(IndexError):
        bfs_levels(g, 3)


def test_pseudo_peripheral_on_path():
    g = path_graph(9)
    v = pseudo_peripheral_vertex(g, 4)
    assert v in (0, 8)


def test_pseudo_peripheral_eccentricity_not_smaller():
    g = grid_graph(6, 3)
    start = 7  # interior-ish
    v = pseudo_peripheral_vertex(g, start)
    assert bfs_levels(g, v).max() >= bfs_levels(g, start).max()


def test_connected_components_single():
    g = grid_graph(3, 4)
    comp = connected_components(g)
    assert comp.max() == 0
    assert component_sizes(comp)[0] == 12


def test_connected_components_multiple():
    dense = np.zeros((6, 6))
    dense[0, 1] = dense[1, 0] = 1.0
    dense[2, 3] = dense[3, 2] = 1.0
    # 4, 5 isolated
    g = graph_from_matrix(csr_from_dense(dense))
    comp = connected_components(g)
    assert comp[0] == comp[1]
    assert comp[2] == comp[3]
    assert comp[0] != comp[2]
    assert len(set(comp.tolist())) == 4
    assert np.array_equal(component_sizes(comp), [2, 2, 1, 1])


def test_isolated_vertex_peripheral():
    dense = np.zeros((3, 3))
    g = graph_from_matrix(csr_from_dense(dense))
    assert pseudo_peripheral_vertex(g, 1) == 1
