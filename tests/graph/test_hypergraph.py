import numpy as np

from repro.graph import column_net_hypergraph
from repro.matrix import csr_from_dense

from ..conftest import random_csr


def test_column_net_structure():
    dense = np.array([
        [1.0, 0.0, 2.0],
        [0.0, 3.0, 4.0],
    ])
    h = column_net_hypergraph(csr_from_dense(dense))
    assert h.nvertices == 2
    assert h.nnets == 3
    assert h.npins == 4
    assert set(h.pins(0).tolist()) == {0}
    assert set(h.pins(1).tolist()) == {1}
    assert set(h.pins(2).tolist()) == {0, 1}


def test_dual_views_consistent(rng):
    a = random_csr(25, 120, rng, ncols=30)
    h = column_net_hypergraph(a)
    # pin (v in net e) must appear in both incidence views
    for e in range(h.nnets):
        for v in h.pins(e):
            assert e in h.nets_of(int(v))
    for v in range(h.nvertices):
        for e in h.nets_of(v):
            assert v in h.pins(int(e))


def test_net_sizes_match_column_counts(rng):
    a = random_csr(20, 100, rng, ncols=25)
    h = column_net_hypergraph(a)
    counts = np.bincount(a.colidx, minlength=25)
    assert np.array_equal(h.net_sizes(), counts)


def test_pin_count_equals_nnz(rng):
    a = random_csr(15, 70, rng)
    h = column_net_hypergraph(a)
    assert h.npins == a.nnz


def test_default_weights_are_unit(rng):
    a = random_csr(10, 40, rng)
    h = column_net_hypergraph(a)
    assert np.all(h.vwgt == 1)
    assert np.all(h.nwgt == 1)
