import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.graph import Graph, graph_from_matrix
from repro.matrix import csr_from_dense

from ..conftest import random_csr


def path_graph(n):
    """0-1-2-...-(n-1) as a Graph."""
    dense = np.zeros((n, n))
    for i in range(n - 1):
        dense[i, i + 1] = dense[i + 1, i] = 1.0
    return graph_from_matrix(csr_from_dense(dense))


def test_graph_from_symmetric_matrix():
    dense = np.array([[1.0, 2.0, 0.0], [2.0, 0.0, 3.0], [0.0, 3.0, 1.0]])
    g = graph_from_matrix(csr_from_dense(dense))
    assert g.nvertices == 3
    assert g.nedges == 2  # diagonal dropped
    assert set(g.neighbours(1).tolist()) == {0, 2}


def test_diagonal_dropped(rng):
    a = csr_from_dense(np.eye(5))
    g = graph_from_matrix(a)
    assert g.nedges == 0
    assert np.all(g.degrees() == 0)


def test_unsymmetric_matrix_symmetrized(rng):
    dense = np.zeros((3, 3))
    dense[0, 2] = 1.0  # only one triangle
    g = graph_from_matrix(csr_from_dense(dense))
    assert g.nedges == 1
    assert 0 in g.neighbours(2)


def test_unsymmetric_rejected_when_disallowed():
    dense = np.zeros((3, 3))
    dense[0, 2] = 1.0
    with pytest.raises(MatrixFormatError):
        graph_from_matrix(csr_from_dense(dense), symmetrize=False)


def test_rectangular_rejected(rng):
    a = random_csr(4, 8, rng, ncols=5)
    with pytest.raises(MatrixFormatError):
        graph_from_matrix(a)


def test_every_edge_stored_twice(rng):
    a = random_csr(30, 100, rng, symmetric=True)
    g = graph_from_matrix(a)
    # adjacency symmetric: v in N(u) iff u in N(v)
    for u in range(g.nvertices):
        for v in g.neighbours(u):
            assert u in g.neighbours(int(v))


def test_weighted_vertices(rng):
    a = random_csr(10, 50, rng)
    g = graph_from_matrix(a, weighted_vertices=True)
    assert np.array_equal(g.vwgt, np.maximum(a.row_lengths(), 1))


def test_degrees_match_adjacency(rng):
    g = path_graph(6)
    assert np.array_equal(g.degrees(), [1, 2, 2, 2, 2, 1])


def test_total_edge_weight():
    g = path_graph(5)
    assert g.total_edge_weight() == 4
    assert g.total_vertex_weight() == 5


def test_invalid_xadj_rejected():
    with pytest.raises(MatrixFormatError):
        Graph(np.array([0, 2, 1]), np.array([1, 0]))


def test_adjncy_out_of_range_rejected():
    with pytest.raises(MatrixFormatError):
        Graph(np.array([0, 1]), np.array([3]))


def test_degrees_memoised(rng):
    a = random_csr(25, 100, rng, symmetric=True)
    g = graph_from_matrix(a)
    deg = g.degrees()
    assert g.degrees() is deg
    assert not deg.flags.writeable
    assert np.array_equal(deg, np.diff(g.xadj))


def test_degree_cache_dropped_on_pickle(rng):
    import pickle

    g = graph_from_matrix(random_csr(25, 100, rng, symmetric=True))
    g.degrees()
    h = pickle.loads(pickle.dumps(g))
    assert getattr(h, "_cache_degrees", None) is None
    assert np.array_equal(h.degrees(), g.degrees())
