import numpy as np
import pytest

from repro.features import (
    adjacent_row_overlap,
    mean_column_span,
    row_length_entropy,
)
from repro.generators import banded_matrix, stencil_2d
from repro.matrix import coo_from_arrays, csr_from_coo, csr_from_dense, csr_identity

from ..conftest import random_csr


def empty_matrix(n=4):
    return csr_from_coo(coo_from_arrays(n, n, [], []))


def test_column_span_identity_zero():
    assert mean_column_span(csr_identity(5)) == 0.0


def test_column_span_known():
    dense = np.zeros((2, 10))
    dense[0, 1] = dense[0, 7] = 1.0   # span 6
    dense[1, 4] = 1.0                 # span 0
    assert mean_column_span(csr_from_dense(dense)) == pytest.approx(3.0)


def test_column_span_empty():
    assert mean_column_span(empty_matrix()) == 0.0


def test_column_span_drops_after_rcm():
    from repro.reorder import rcm_ordering

    a = stencil_2d(20, seed=0, scrambled=True)
    b = rcm_ordering(a).apply(a)
    assert mean_column_span(b) < mean_column_span(a)


def test_adjacent_overlap_banded_high():
    a = banded_matrix(200, 4, density=1.0, seed=0)
    b = banded_matrix(200, 4, density=1.0, seed=0, scrambled=True)
    assert adjacent_row_overlap(a) > 2 * adjacent_row_overlap(b)


def test_adjacent_overlap_identity_zero():
    assert adjacent_row_overlap(csr_identity(6)) == 0.0


def test_adjacent_overlap_bounds(rng):
    a = random_csr(50, 300, rng)
    v = adjacent_row_overlap(a)
    assert 0.0 <= v <= 1.0


def test_adjacent_overlap_sampling_deterministic(rng):
    a = random_csr(100, 500, rng)
    v1 = adjacent_row_overlap(a, sample=20, seed=1)
    v2 = adjacent_row_overlap(a, sample=20, seed=1)
    assert v1 == v2


def test_adjacent_overlap_single_row():
    a = csr_from_dense(np.ones((1, 3)))
    assert adjacent_row_overlap(a) == 0.0


def test_entropy_uniform_rows_zero():
    a = banded_matrix(100, 3, density=1.0, seed=0)
    # interior rows identical length; entropy small but boundary rows
    # differ -> compare against a skewed matrix
    from repro.generators import rmat_graph

    skewed = rmat_graph(8, seed=0)
    assert row_length_entropy(a) < row_length_entropy(skewed)


def test_entropy_identity_zero():
    assert row_length_entropy(csr_identity(8)) == 0.0


def test_entropy_empty():
    from repro.matrix import coo_from_arrays, csr_from_coo

    a = csr_from_coo(coo_from_arrays(0, 0, [], []))
    assert row_length_entropy(a) == 0.0


def test_gray_reduces_entropy_locally():
    """Gray's density grouping sorts rows by length: within any window
    the lengths become near-constant even if global entropy is equal."""
    from repro.reorder import gray_ordering

    from repro.generators import circuit_matrix

    a = circuit_matrix(600, seed=0)
    b = gray_ordering(a).apply(a)
    # global entropy unchanged (same multiset of lengths)
    assert row_length_entropy(b) == pytest.approx(row_length_entropy(a))
    # but adjacent length changes drop
    def changes(m):
        lengths = m.row_lengths()
        return int(np.count_nonzero(np.diff(lengths)))

    assert changes(b) <= changes(a)
