import numpy as np
import pytest

from repro.features import (
    bandwidth,
    collect_features,
    imbalance_factor,
    offdiagonal_nonzeros,
    profile,
)
from repro.generators import banded_matrix, stencil_2d
from repro.matrix import csr_from_dense, csr_identity, permute_symmetric

from ..conftest import random_csr


def test_bandwidth_diagonal_is_zero():
    assert bandwidth(csr_identity(5)) == 0


def test_bandwidth_known():
    dense = np.zeros((4, 4))
    dense[0, 3] = 1.0
    assert bandwidth(csr_from_dense(dense)) == 3


def test_bandwidth_empty():
    from repro.matrix import coo_from_arrays, csr_from_coo

    assert bandwidth(csr_from_coo(coo_from_arrays(3, 3, [], []))) == 0


def test_bandwidth_of_banded_matrix():
    a = banded_matrix(50, 4, density=1.0, seed=0)
    assert bandwidth(a) == 4


def test_profile_known():
    # row 0: leftmost 0 -> 0; row 1: leftmost 0 -> 1; row 2: leftmost 2 -> 0
    dense = np.array([
        [1.0, 0.0, 0.0],
        [1.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
    ])
    assert profile(csr_from_dense(dense)) == 1


def test_profile_clamps_upper_rows():
    dense = np.array([[0.0, 1.0], [0.0, 1.0]])
    # row 0: leftmost 1 > 0 -> clamp 0; row 1: leftmost 1 -> 0
    assert profile(csr_from_dense(dense)) == 0


def test_profile_identity_zero():
    assert profile(csr_identity(6)) == 0


def test_rcm_reduces_profile():
    from repro.reorder import rcm_ordering

    a = stencil_2d(16, seed=0, scrambled=True)
    r = rcm_ordering(a)
    assert profile(r.apply(a)) < profile(a)


def test_offdiag_block_diagonal_is_zero():
    # block diagonal matrix with 2 blocks of size 2
    dense = np.array([
        [1.0, 1.0, 0.0, 0.0],
        [1.0, 1.0, 0.0, 0.0],
        [0.0, 0.0, 1.0, 1.0],
        [0.0, 0.0, 1.0, 1.0],
    ])
    assert offdiagonal_nonzeros(csr_from_dense(dense), 2) == 0


def test_offdiag_counts_cross_block():
    dense = np.zeros((4, 4))
    dense[0, 3] = 1.0
    dense[3, 0] = 1.0
    assert offdiagonal_nonzeros(csr_from_dense(dense), 2) == 2


def test_offdiag_one_block_is_zero(rng):
    a = random_csr(20, 100, rng)
    assert offdiagonal_nonzeros(a, 1) == 0


def test_offdiag_invalid_blocks(rng):
    from repro.errors import MatrixFormatError

    a = random_csr(5, 10, rng)
    with pytest.raises(MatrixFormatError):
        offdiagonal_nonzeros(a, 0)


def test_offdiag_matches_edge_cut_of_row_split():
    # for a symmetric pattern with zero-free diagonal blocks of equal
    # size, offdiag == 2x edge cut of the contiguous partition
    from repro.graph import graph_from_matrix
    from repro.partition.metrics import edge_cut

    a = stencil_2d(12, seed=0, scrambled=True, spd=False)
    g = graph_from_matrix(a)
    k = 4
    bounds = np.linspace(0, a.nrows, k + 1).astype(np.int64)
    part = np.searchsorted(bounds, np.arange(a.nrows), side="right") - 1
    assert offdiagonal_nonzeros(a, k) == 2 * edge_cut(g, part)


def test_imbalance_uniform_is_one(rng):
    from repro.spmv import schedule_2d

    a = random_csr(64, 640, rng)
    assert imbalance_factor(schedule_2d(a, 8)) <= 1.02


def test_imbalance_factor_known():
    from repro.spmv.schedule import Schedule

    s = Schedule(kind="1d", nthreads=2,
                 entry_start=np.array([0, 30, 40]),
                 row_start=np.array([0, 5, 10]))
    assert imbalance_factor(s) == 30 / 20


def test_imbalance_more_threads_than_rows():
    # 3 balanced rows split over 8 threads: 5 shares are empty.  Those
    # threads are not part of the partition, so the factor must match
    # the 3-thread split instead of being diluted by the empty shares.
    from repro.features import imbalance_factor_1d
    from repro.spmv import schedule_1d

    dense = np.ones((3, 3))
    a = csr_from_dense(dense)
    assert imbalance_factor_1d(a, 8) == pytest.approx(1.0)
    assert imbalance_factor_1d(a, 8) == imbalance_factor_1d(a, 3)
    s = schedule_1d(a, 8)
    assert int(s.active_threads().sum()) == 3


def test_imbalance_empty_rows_keep_thread_active():
    # thread 1 owns rows 2..3 which are both empty: it stays in the
    # partition (0 nnz share), so max/mean = 4 / 2 = 2
    from repro.matrix import coo_from_arrays, csr_from_coo
    from repro.spmv import schedule_1d

    a = csr_from_coo(coo_from_arrays(
        4, 4, [0, 0, 1, 1], [0, 1, 0, 1]))
    s = schedule_1d(a, 2)
    assert list(s.active_threads()) == [True, True]
    assert imbalance_factor(s) == pytest.approx(2.0)


def test_imbalance_zero_nnz_matrix_is_balanced():
    from repro.features import imbalance_factor_1d
    from repro.matrix import coo_from_arrays, csr_from_coo

    a = csr_from_coo(coo_from_arrays(4, 4, [], []))
    assert imbalance_factor_1d(a, 8) == 1.0


def test_schedule_1d_more_threads_than_rows_covers_all_rows():
    from repro.spmv import schedule_1d

    dense = np.ones((3, 5))
    a = csr_from_dense(dense)
    s = schedule_1d(a, 8)
    assert int(s.row_start[-1]) == 3
    assert int(s.entry_start[-1]) == a.nnz
    assert int(s.nnz_per_thread().sum()) == a.nnz


def test_features_ignore_explicit_zeros():
    # an explicitly stored zero far off the diagonal must not widen the
    # band/envelope or count as a cut edge: the CSR path must agree
    # with the dense round trip (which drops exact zeros)
    from repro.matrix.csr import CSRMatrix

    a = CSRMatrix(4, 4,
                  np.array([0, 2, 3, 4, 5]),
                  np.array([0, 3, 1, 2, 3]),
                  np.array([1.0, 0.0, 1.0, 1.0, 1.0]))
    assert a.has_explicit_zeros()
    b = csr_from_dense(a.to_dense())
    assert bandwidth(a) == bandwidth(b) == 0
    assert profile(a) == profile(b)
    assert offdiagonal_nonzeros(a, 2) == offdiagonal_nonzeros(b, 2) == 0


def test_drop_explicit_zeros_roundtrip(rng):
    from repro.matrix.csr import CSRMatrix

    a = random_csr(12, 60, rng)
    values = a.values.copy()
    values[::4] = 0.0
    dirty = CSRMatrix(a.nrows, a.ncols, a.rowptr, a.colidx, values)
    clean = dirty.drop_explicit_zeros()
    assert not clean.has_explicit_zeros()
    assert np.array_equal(clean.to_dense(), dirty.to_dense())
    # clean matrices are returned as-is
    assert clean.drop_explicit_zeros() is clean


def test_collect_features(rng):
    a = random_csr(30, 120, rng)
    rec = collect_features(a, 4)
    assert rec.nrows == 30
    assert rec.nnz == a.nnz
    assert rec.bandwidth == bandwidth(a)
    assert rec.profile == profile(a)
    assert rec.offdiag_nnz == offdiagonal_nonzeros(a, 4)
    assert rec.imbalance_1d >= 1.0
    assert set(rec.as_dict()) == {
        "nrows", "ncols", "nnz", "bandwidth", "profile", "offdiag_nnz",
        "imbalance_1d"}


def test_features_invariant_under_identity_perm(rng):
    a = random_csr(25, 100, rng)
    b = permute_symmetric(a, np.arange(25))
    assert bandwidth(a) == bandwidth(b)
    assert profile(a) == profile(b)
    assert offdiagonal_nonzeros(a, 5) == offdiagonal_nonzeros(b, 5)
