"""Tests for the corpus registry and named stand-ins."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.generators import (
    build_corpus,
    corpus_names,
    named_matrix,
    split_corpus,
)
from repro.generators.suite import named_matrix_names
from repro.matrix import is_pattern_symmetric


def test_tiny_corpus_builds():
    corpus = build_corpus("tiny", seed=0)
    assert len(corpus) >= 25
    names = [e.name for e in corpus]
    assert len(set(names)) == len(names)  # unique names


def test_corpus_entries_square_and_nonempty():
    for e in build_corpus("tiny", seed=0):
        assert e.matrix.is_square
        assert e.nnz > 0
        assert e.nrows > 0


def test_corpus_deterministic():
    c1 = build_corpus("tiny", seed=7)
    c2 = build_corpus("tiny", seed=7)
    for a, b in zip(c1, c2):
        assert a.name == b.name
        assert np.array_equal(a.matrix.colidx, b.matrix.colidx)


def test_corpus_seed_changes_matrices():
    c1 = build_corpus("tiny", seed=1)
    c2 = build_corpus("tiny", seed=2)
    diffs = sum(
        not (a.matrix.nnz == b.matrix.nnz
             and np.array_equal(a.matrix.colidx, b.matrix.colidx))
        for a, b in zip(c1, c2))
    assert diffs > len(c1) // 2


def test_corpus_group_filter():
    corpus = build_corpus("tiny", seed=0, groups=("PDE",))
    assert all(e.group == "PDE" for e in corpus)
    assert len(corpus) >= 4


def test_corpus_empty_filter_rejected():
    with pytest.raises(GeneratorError):
        build_corpus("tiny", seed=0, groups=("NoSuchGroup",))


def test_unknown_tier_rejected():
    with pytest.raises(GeneratorError):
        build_corpus("gigantic")


def test_corpus_names_match_build():
    names = corpus_names("tiny")
    built = [e.name for e in build_corpus("tiny", seed=0)]
    assert names == built


def test_spd_entries_are_symmetric():
    for e in build_corpus("tiny", seed=0):
        if e.spd:
            assert is_pattern_symmetric(e.matrix), e.name


def test_all_named_matrices_build():
    for name in named_matrix_names():
        e = named_matrix(name, scale=0.25)
        assert e.nnz > 0, name
        assert e.matrix.is_square, name


def test_named_matrix_scale():
    small = named_matrix("europe_osm", scale=0.25)
    big = named_matrix("europe_osm", scale=0.5)
    assert big.nrows > small.nrows


def test_named_matrix_unknown_rejected():
    with pytest.raises(GeneratorError):
        named_matrix("not_a_matrix")


def test_named_matrix_deterministic():
    a = named_matrix("Freescale2", scale=0.25)
    b = named_matrix("Freescale2", scale=0.25)
    assert np.array_equal(a.matrix.colidx, b.matrix.colidx)


def test_figure1_and_table5_stand_ins_present():
    needed = {"Freescale2", "com-Amazon", "kmer_V1r", "delaunay_n24",
              "europe_osm", "Flan_1565", "HV15R", "indochina-2004",
              "kron_g500-logn21", "mycielskian19", "nlpkkt240",
              "vas_stokes_4M", "333SP", "nv2", "audikw_1"}
    assert needed <= set(named_matrix_names())


# ----------------------------------------------------------------------
# train/test splitting (advisor evaluation support)
# ----------------------------------------------------------------------
def test_split_is_disjoint_and_complete():
    corpus = build_corpus("tiny", seed=0)
    train, test = split_corpus(corpus, test_fraction=0.25, seed=0)
    train_names = {e.name for e in train}
    test_names = {e.name for e in test}
    assert not train_names & test_names
    assert train_names | test_names == {e.name for e in corpus}
    assert test


def test_split_is_deterministic():
    corpus = build_corpus("tiny", seed=0)
    a = split_corpus(corpus, test_fraction=0.3, seed=5)
    b = split_corpus(corpus, test_fraction=0.3, seed=5)
    assert [e.name for e in a[0]] == [e.name for e in b[0]]
    assert [e.name for e in a[1]] == [e.name for e in b[1]]
    c = split_corpus(corpus, test_fraction=0.3, seed=6)
    assert [e.name for e in c[1]] != [e.name for e in a[1]]


def test_split_is_stratified_by_group():
    corpus = build_corpus("tiny", seed=0)
    train, test = split_corpus(corpus, test_fraction=0.3, seed=0)
    train_groups = {e.group for e in train}
    sizes = {}
    for e in corpus:
        sizes[e.group] = sizes.get(e.group, 0) + 1
    # every family keeps at least one training member, and every
    # family with >= 2 members contributes to the test side
    assert train_groups == {e.group for e in corpus}
    test_groups = {e.group for e in test}
    for group, n in sizes.items():
        if n >= 2:
            assert group in test_groups


def test_split_preserves_corpus_order():
    corpus = build_corpus("tiny", seed=0)
    train, test = split_corpus(corpus, test_fraction=0.25, seed=3)
    order = {e.name: i for i, e in enumerate(corpus)}
    for part in (train, test):
        idx = [order[e.name] for e in part]
        assert idx == sorted(idx)


def test_split_rejects_bad_inputs():
    corpus = build_corpus("tiny", seed=0)
    with pytest.raises(GeneratorError):
        split_corpus([], 0.25)
    with pytest.raises(GeneratorError):
        split_corpus(corpus, 0.0)
    with pytest.raises(GeneratorError):
        split_corpus(corpus, 1.0)
