"""Unit tests for every synthetic matrix family."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.generators import (
    banded_matrix,
    cfd_blocks,
    circuit_matrix,
    fem_3d_blocks,
    fem_mesh_2d,
    kkt_matrix,
    kmer_graph,
    mycielskian_graph,
    powerlaw_graph,
    random_er,
    rmat_graph,
    road_network,
    stencil_2d,
    stencil_3d,
)
from repro.matrix import is_pattern_symmetric


SYMMETRIC_BUILDERS = [
    ("stencil2d", lambda: stencil_2d(8, seed=0)),
    ("stencil3d", lambda: stencil_3d(4, seed=0)),
    ("fem2d", lambda: fem_mesh_2d(120, seed=0)),
    ("fem3d", lambda: fem_3d_blocks(60, dofs=3, seed=0)),
    ("road", lambda: road_network(100, seed=0)),
    ("kmer", lambda: kmer_graph(150, seed=0)),
    ("rmat", lambda: rmat_graph(6, seed=0)),
    ("powerlaw", lambda: powerlaw_graph(150, m=3, seed=0)),
    ("banded", lambda: banded_matrix(80, 5, seed=0)),
    ("mycielskian", lambda: mycielskian_graph(4, seed=0)),
    ("kkt", lambda: kkt_matrix(100, seed=0)),
    ("er", lambda: random_er(100, 6.0, seed=0)),
    ("circuit", lambda: circuit_matrix(200, seed=0)),
    ("cfd", lambda: cfd_blocks(36, dofs=3, seed=0)),
]


@pytest.mark.parametrize("name,builder", SYMMETRIC_BUILDERS)
def test_pattern_symmetric(name, builder):
    a = builder()
    assert a.is_square
    assert is_pattern_symmetric(a), f"{name} should be pattern symmetric"


@pytest.mark.parametrize("name,builder", SYMMETRIC_BUILDERS)
def test_deterministic(name, builder):
    a, b = builder(), builder()
    assert np.array_equal(a.rowptr, b.rowptr)
    assert np.array_equal(a.colidx, b.colidx)
    assert np.array_equal(a.values, b.values)


def test_stencil_2d_interior_degree():
    a = stencil_2d(6, spd=True)
    # interior rows have 4 neighbours + diagonal
    lengths = a.row_lengths()
    assert lengths.max() == 5
    assert lengths.min() == 3  # corners: 2 neighbours + diagonal


def test_stencil_3d_interior_degree():
    a = stencil_3d(4, spd=True)
    assert a.row_lengths().max() == 7


def test_stencil_spd_is_diagonally_dominant():
    a = stencil_2d(6, spd=True)
    dense = a.to_dense()
    diag = np.abs(np.diag(dense))
    off = np.abs(dense).sum(axis=1) - diag
    assert np.all(diag >= off)  # weak dominance with positive boost
    eig = np.linalg.eigvalsh(dense)
    assert eig.min() > 0


def test_scrambled_stencil_has_larger_bandwidth():
    a = stencil_2d(12, seed=3, scrambled=False)
    b = stencil_2d(12, seed=3, scrambled=True)
    rows_a = a.row_of_entry()
    rows_b = b.row_of_entry()
    bw = lambda m, r: int(np.abs(r - m.colidx).max())
    assert bw(b, rows_b) > bw(a, rows_a)


def test_fem_3d_blocks_has_block_structure():
    a = fem_3d_blocks(40, dofs=3, seed=1)
    assert a.nrows == 120
    # every 3-row block of a node shares its column block pattern density
    lengths = a.row_lengths().reshape(-1, 3)
    assert np.all(np.abs(lengths - lengths.mean(axis=1, keepdims=True)) <= 1)


def test_cfd_rows_near_uniform():
    a = cfd_blocks(49, dofs=4, seed=0)
    lengths = a.row_lengths()
    # interior cells all have the same coupling size
    assert lengths.std() / lengths.mean() < 0.35


def test_road_network_low_degree():
    a = road_network(900, seed=2)
    mean_deg = a.nnz / a.nrows
    assert mean_deg < 4.5


def test_kmer_graph_degree_capped():
    a = kmer_graph(500, branch=0.05, seed=0)
    assert a.row_lengths().mean() < 4


def test_rmat_heavy_tail():
    a = rmat_graph(9, edge_factor=8, seed=1)
    lengths = np.sort(a.row_lengths())[::-1]
    # hubs: top row much heavier than median
    assert lengths[0] > 8 * max(np.median(lengths), 1)


def test_rmat_unsymmetric_mode():
    a = rmat_graph(7, seed=0, symmetric=False)
    assert not is_pattern_symmetric(a)


def test_rmat_bad_probs_rejected():
    with pytest.raises(ValueError):
        rmat_graph(5, probs=(0.5, 0.1, 0.1, 0.1))


def test_powerlaw_hub_exists():
    a = powerlaw_graph(400, m=4, seed=0)
    lengths = a.row_lengths()
    assert lengths.max() > 4 * np.median(lengths)


def test_powerlaw_clusters_reduce_offblock():
    plain = powerlaw_graph(600, m=4, clusters=0, seed=5, scrambled=False)
    clustered = powerlaw_graph(600, m=4, clusters=12, intra_frac=0.9,
                               seed=5, scrambled=False)
    assert clustered.is_square and plain.is_square


def test_banded_respects_bandwidth():
    a = banded_matrix(60, 4, density=1.0, seed=0)
    rows = a.row_of_entry()
    assert np.abs(rows - a.colidx).max() <= 4


def test_banded_rejects_bad_density():
    with pytest.raises(ValueError):
        banded_matrix(10, 2, density=0.0)


def test_mycielskian_size_recurrence():
    # n_{k+1} = 2 n_k + 1 starting from 2
    n = 2
    for k in range(1, 5):
        n = 2 * n + 1
        a = mycielskian_graph(k, seed=0)
        assert a.nrows == n


def test_mycielskian_triangle_free_small():
    a = mycielskian_graph(3, seed=0)
    d = (a.to_dense() != 0).astype(int)
    np.fill_diagonal(d, 0)
    # trace(A^3) counts triangles x6
    assert np.trace(d @ d @ d) == 0


def test_kkt_has_zero_corner_block():
    a = kkt_matrix(100, constraint_frac=0.3, seed=0, scrambled=False)
    side = int(np.sqrt(100))
    np_ = side * side
    dense = a.to_dense()
    corner = dense[np_:, np_:]
    assert np.all(corner == 0)


def test_circuit_has_rail_hubs():
    a = circuit_matrix(800, rail_rows=3, rail_fanout=0.05, seed=0,
                       scrambled=False)
    lengths = np.sort(a.row_lengths())
    assert lengths[-1] > 5 * np.median(lengths)


def test_er_average_degree():
    a = random_er(1000, 8.0, seed=0)
    assert 5.0 < a.nnz / a.nrows < 9.0


def test_er_unsymmetric():
    a = random_er(200, 6.0, symmetric=False, seed=0)
    assert not is_pattern_symmetric(a)


def test_bad_sizes_rejected():
    with pytest.raises(GeneratorError):
        stencil_2d(0)
    with pytest.raises(GeneratorError):
        kmer_graph(1)
    with pytest.raises(ValueError):
        road_network(100, keep=0.0)
    with pytest.raises(ValueError):
        random_er(10, 0.0)
