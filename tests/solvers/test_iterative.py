"""CG/Jacobi solver loops: convergence, history contract, typed errors."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.matrix.build import csr_from_dense
from repro.solvers import SOLVERS, cg, jacobi, seeded_rhs

SEED = 20260808


def _spd_matrix(n=40, density=0.15, seed=SEED):
    rng = np.random.default_rng(seed)
    d = rng.random((n, n)) * (rng.random((n, n)) < density)
    s = 0.5 * (d + d.T)
    np.fill_diagonal(s, s.diagonal() + np.abs(s).sum(axis=1) + 1.0)
    return csr_from_dense(s), s


@pytest.mark.parametrize("solver", ("cg", "jacobi"))
@pytest.mark.parametrize("kind,nthreads", [("1d", 1), ("1d", 3),
                                           ("2d", 2)])
def test_solver_matches_dense_solve(solver, kind, nthreads):
    a, s = _spd_matrix()
    b = seeded_rhs(a, seed=3)
    res = SOLVERS[solver](a, b, kind=kind, nthreads=nthreads)
    assert res.converged
    assert res.solver == solver
    assert res.kernel == kind and res.nthreads == nthreads
    np.testing.assert_allclose(res.x, np.linalg.solve(s, b),
                               rtol=1e-7, atol=1e-9)


@pytest.mark.parametrize("solver", ("cg", "jacobi"))
def test_history_contract(solver):
    a, _ = _spd_matrix()
    res = SOLVERS[solver](a)
    assert res.iterates.shape == (res.iterations + 1, a.nrows)
    assert res.residual_norms.shape == (res.iterations + 1,)
    np.testing.assert_array_equal(res.iterates[0], np.zeros(a.nrows))
    np.testing.assert_array_equal(res.iterates[-1], res.x)
    assert res.final_residual == res.residual_norms[-1]
    # norms head to convergence: the last is far below the first
    assert res.residual_norms[-1] < 1e-8 * res.residual_norms[0]


@pytest.mark.parametrize("solver", ("cg", "jacobi"))
def test_default_rhs_is_the_seeded_one(solver):
    a, _ = _spd_matrix()
    implicit = SOLVERS[solver](a, seed=5)
    explicit = SOLVERS[solver](a, seeded_rhs(a, seed=5))
    np.testing.assert_array_equal(implicit.x, explicit.x)
    np.testing.assert_array_equal(implicit.residual_norms,
                                  explicit.residual_norms)


@pytest.mark.parametrize("solver", ("cg", "jacobi"))
def test_zero_rhs_converges_instantly(solver):
    a, _ = _spd_matrix()
    res = SOLVERS[solver](a, np.zeros(a.nrows))
    assert res.converged and res.iterations == 0
    np.testing.assert_array_equal(res.x, np.zeros(a.nrows))


def test_maxiter_caps_without_convergence():
    a, _ = _spd_matrix()
    res = jacobi(a, maxiter=1, tol=1e-300)
    assert not res.converged and res.iterations == 1


def test_cg_rejects_indefinite_operator():
    neg = csr_from_dense(-np.eye(4))
    with pytest.raises(SolverError, match="positive definite"):
        cg(neg, np.ones(4))


def test_jacobi_rejects_zero_diagonal():
    dense = np.zeros((3, 3))
    dense[0, 1] = dense[1, 0] = dense[2, 2] = 1.0
    with pytest.raises(SolverError, match="diagonal"):
        jacobi(csr_from_dense(dense), np.ones(3))


@pytest.mark.parametrize("solver", ("cg", "jacobi"))
def test_typed_input_errors(solver):
    a, _ = _spd_matrix()
    rng = np.random.default_rng(SEED)
    rect = csr_from_dense(rng.random((3, 5)))
    with pytest.raises(SolverError, match="square"):
        SOLVERS[solver](rect)
    with pytest.raises(SolverError, match="shape"):
        SOLVERS[solver](a, np.ones(a.nrows + 1))
    bad = np.ones(a.nrows)
    bad[0] = np.nan
    with pytest.raises(SolverError, match="non-finite"):
        SOLVERS[solver](a, bad)


def test_solver_registry():
    assert set(SOLVERS) == {"cg", "jacobi"}
    assert SOLVERS["cg"] is cg and SOLVERS["jacobi"] is jacobi
