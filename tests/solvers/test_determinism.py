"""Cross-interpreter determinism of the solver loops.

Mirrors ``tests/reorder/test_fastpath_properties.py``: two *fresh*
interpreters with different ``PYTHONHASHSEED`` values must produce
bit-identical iterate histories and residual norms for CG and Jacobi
on a tiny corpus.  The solvers are pure numpy recurrences seeded
through ``seeded_rhs``; any hash-ordered container leaking into the
loop would show up here.
"""

import json
import os
import subprocess
import sys

SOLVER_CASES = (("cg", "1d", 1), ("cg", "2d", 3), ("jacobi", "1d", 2))

_CHILD_SCRIPT = """
import json, sys
import numpy as np
from repro.generators import fem_mesh_2d, stencil_2d
from repro.matrix.build import csr_from_dense
from repro.solvers import SOLVERS

def spd(a):
    d = a.to_dense()
    s = 0.5 * (d + d.T)
    np.fill_diagonal(s, s.diagonal() + np.abs(s).sum(axis=1) + 1.0)
    return csr_from_dense(s)

corpus = [("stencil", spd(stencil_2d(6, 5, seed=13))),
          ("fem", spd(fem_mesh_2d(40, seed=17)))]
out = {}
for mname, a in corpus:
    for solver, kind, nthreads in %r:
        res = SOLVERS[solver](a, seed=23, kind=kind, nthreads=nthreads)
        key = f"{mname}/{solver}/{kind}/t{nthreads}"
        out[key] = {
            "iterations": res.iterations,
            "converged": res.converged,
            "norms": res.residual_norms.tolist(),
            "iterates": res.iterates.tolist(),
        }
json.dump(out, sys.stdout)
"""


def _solve_under_hashseed(hashseed: str) -> dict:
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        __import__("repro").__file__)))
    env = dict(os.environ,
               PYTHONHASHSEED=hashseed,
               PYTHONPATH=src_root + os.pathsep
               + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT % (SOLVER_CASES,)],
        env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_solvers_deterministic_across_hash_seeds():
    a = _solve_under_hashseed("1")
    b = _solve_under_hashseed("2")
    assert set(a) == set(b) and len(a) == 2 * len(SOLVER_CASES)
    for key in a:
        assert a[key]["converged"] and b[key]["converged"], key
        assert a[key]["iterations"] == b[key]["iterations"], key
        # bit-identical histories: json round-trips floats exactly
        assert a[key]["norms"] == b[key]["norms"], (
            f"{key}: residual history depends on PYTHONHASHSEED")
        assert a[key]["iterates"] == b[key]["iterates"], (
            f"{key}: iterate history depends on PYTHONHASHSEED")
