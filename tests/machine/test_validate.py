"""Model-vs-exact-simulator validation (the substitution's own test)."""

import numpy as np
import pytest

from repro.errors import ArchitectureError
from repro.generators import (
    banded_matrix,
    fem_mesh_2d,
    kmer_graph,
    random_er,
    stencil_2d,
)
from repro.machine.validate import validate_x_traffic_model
from repro.reorder import compute_ordering


def test_rank_correlation_across_structures():
    """The model must rank matrices by x traffic like the simulator."""
    matrices = [
        banded_matrix(600, 6, density=1.0, seed=0),
        banded_matrix(600, 6, density=1.0, seed=0, scrambled=True),
        stencil_2d(24, seed=1),
        stencil_2d(24, seed=1, scrambled=True),
        random_er(600, 8.0, seed=2),
        kmer_graph(600, seed=3),
    ]
    report = validate_x_traffic_model(matrices, cache_lines=32)
    assert report.rank_correlation > 0.7


def test_rank_correlation_across_orderings():
    """Ordering comparisons on one matrix must agree with the simulator
    — that is precisely what the speedup studies rely on."""
    a = fem_mesh_2d(500, seed=4, scrambled=True)
    variants = [a]
    labels = ["original"]
    for o in ("RCM", "GP", "AMD", "Gray"):
        variants.append(compute_ordering(a, o, nparts=16).apply(a))
        labels.append(o)
    report = validate_x_traffic_model(variants, cache_lines=16,
                                      labels=labels)
    assert report.rank_correlation > 0.6
    # absolute level within a factor ~3 on average
    assert report.mean_abs_log_error < 1.2


def test_perfect_cache_fit_exactly_matched():
    """When everything fits, model loads == compulsory == exact misses."""
    a = banded_matrix(100, 3, density=1.0, seed=0)
    report = validate_x_traffic_model([a], cache_lines=1024)
    assert report.model_loads[0] == report.exact_misses[0]


def test_invalid_inputs_rejected():
    with pytest.raises(ArchitectureError):
        validate_x_traffic_model([], cache_lines=0)
    with pytest.raises(ArchitectureError):
        validate_x_traffic_model(["not a matrix"], cache_lines=8)


def test_report_fields():
    a = stencil_2d(10, seed=0)
    report = validate_x_traffic_model([a, a], cache_lines=8,
                                      labels=("a", "b"))
    assert report.labels == ("a", "b")
    assert report.model_loads.shape == (2,)
    # identical inputs -> identical outputs on both sides
    assert report.model_loads[0] == report.model_loads[1]
    assert report.exact_misses[0] == report.exact_misses[1]
