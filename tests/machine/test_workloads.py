"""The machine model's workload axis: scoring, batching, simulation."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.generators import fem_mesh_2d, stencil_2d
from repro.machine import (
    PerfModel,
    get_architecture,
    predict_many,
    predict_workload,
    simulate_many,
    simulate_measurement,
)
from repro.machine.bench import MeasurementRecord
from repro.machine.workloads import ITERATIONS, SPMM_VECTORS
from repro.matrix.build import csr_from_dense
from repro.spmv.schedule import schedule_1d

SEED = 20260808
ARCH = get_architecture("Milan B")


@pytest.fixture(scope="module")
def matrix():
    return stencil_2d(9, 8, seed=SEED)


@pytest.fixture(scope="module")
def spmv_pred(matrix):
    model = PerfModel(ARCH)
    return model.predict(matrix, schedule_1d(matrix, ARCH.threads))


def test_spmv_workload_is_the_identity(matrix, spmv_pred):
    wp = predict_workload(matrix, "spmv", ARCH, spmv_pred)
    assert wp.seconds == spmv_pred.seconds
    assert wp.gflops == spmv_pred.gflops
    assert wp.iterations == 1
    assert wp.spmv is spmv_pred


@pytest.mark.parametrize("solver", ("cg", "jacobi"))
def test_solver_workloads_scale_with_iterations(matrix, spmv_pred, solver):
    wp = predict_workload(matrix, solver, ARCH, spmv_pred)
    assert wp.iterations == ITERATIONS[solver]
    assert wp.seconds == pytest.approx(
        wp.iterations * wp.seconds_per_iteration)
    # the per-iteration time is the SpMV plus dense vector streams
    assert wp.seconds_per_iteration > spmv_pred.seconds
    # vector traffic dilutes the SpMV share, so solver Gflop/s differ
    # from the raw kernel's
    assert wp.gflops != spmv_pred.gflops


def test_cg_streams_more_vectors_than_jacobi(matrix, spmv_pred):
    cg = predict_workload(matrix, "cg", ARCH, spmv_pred)
    ja = predict_workload(matrix, "jacobi", ARCH, spmv_pred)
    assert cg.seconds_per_iteration > ja.seconds_per_iteration


def test_spgemm_scales_by_row_gather_intensity(matrix, spmv_pred):
    wp = predict_workload(matrix, "spgemm", ARCH, spmv_pred)
    from repro.spmv.products import spgemm_flops

    flops = spgemm_flops(matrix)
    intensity = max((flops / 2.0) / matrix.nnz, 1.0)
    assert wp.flops == flops
    assert wp.seconds == pytest.approx(spmv_pred.seconds * intensity)
    assert intensity > 1.0          # stencils square to >1 product/nnz


def test_spgemm_workload_rejects_rectangular(spmv_pred):
    rng = np.random.default_rng(SEED)
    rect = csr_from_dense(rng.random((4, 6)))
    with pytest.raises(ScheduleError, match="square"):
        predict_workload(rect, "spgemm", ARCH, spmv_pred)


def test_spmm_amortises_the_matrix_stream(matrix, spmv_pred):
    wp = predict_workload(matrix, "spmm", ARCH, spmv_pred)
    assert wp.flops == 2.0 * matrix.nnz * SPMM_VECTORS
    # k vectors never cost more than k independent SpMVs, and the
    # amortised matrix stream makes them strictly cheaper
    assert wp.seconds < SPMM_VECTORS * spmv_pred.seconds
    assert wp.seconds >= spmv_pred.seconds
    assert wp.gflops > spmv_pred.gflops


def test_unknown_workload_raises(matrix, spmv_pred):
    with pytest.raises(ScheduleError, match="unknown workload"):
        predict_workload(matrix, "gmres", ARCH, spmv_pred)


# ----------------------------------------------------------------------
# batched prediction and the measurement-shaped simulation
# ----------------------------------------------------------------------
def test_predict_many_legacy_keys_bit_identical(matrix):
    legacy = predict_many(matrix, architectures=[ARCH],
                          kernels=("1d",), nthreads=(4,))
    (key, pred), = legacy.items()
    assert key == (ARCH.name, "1d", 4)
    model = PerfModel(ARCH)
    direct = model.predict(matrix, schedule_1d(matrix, 4))
    assert pred.seconds == direct.seconds
    assert pred.gflops == direct.gflops


def test_predict_many_workload_axis(matrix):
    out = predict_many(matrix, architectures=[ARCH], kernels=("1d",),
                       nthreads=(4,), workloads=("spmv", "cg", "spmm"))
    assert set(out) == {(ARCH.name, "1d", 4, w)
                       for w in ("spmv", "cg", "spmm")}
    base = out[(ARCH.name, "1d", 4, "spmv")]
    assert out[(ARCH.name, "1d", 4, "cg")].seconds > base.seconds
    # every workload entry shares the same underlying SpMV prediction
    for wp in out.values():
        assert wp.spmv.seconds == base.spmv.seconds


def test_simulate_measurement_workload_specs(matrix):
    base = simulate_measurement(matrix, ARCH, "1d", matrix_name="m")
    cg = simulate_measurement(matrix, ARCH, "cg", matrix_name="m")
    merge = simulate_measurement(matrix, ARCH, "cg:merge",
                                 matrix_name="m")
    assert base.workload == "spmv"
    assert cg.workload == "cg" and cg.kernel == "cg"
    assert merge.kernel == "cg:merge"
    assert cg.seconds > base.seconds
    assert cg.gflops_mean != base.gflops_mean


def test_simulate_many_mixed_specs():
    recs = []
    for name, a in (("a", stencil_2d(6, 6, seed=SEED)),
                    ("b", fem_mesh_2d(30, seed=SEED))):
        recs.extend(simulate_many(a, architectures=[ARCH],
                                  kernels=("1d", "cg", "spmm:2d"),
                                  matrix_name=name))
    kernels = {r.kernel for r in recs}
    assert kernels == {"1d", "cg", "spmm:2d"}
    workloads = {r.kernel: r.workload for r in recs}
    assert workloads == {"1d": "spmv", "cg": "cg", "spmm:2d": "spmm"}


def test_measurement_record_journal_backward_compat(matrix):
    # journal replay builds records as MeasurementRecord(**data); old
    # journals lack the workload field, which must default to spmv
    fields = [f.name for f in dataclasses.fields(MeasurementRecord)]
    assert fields[-1] == "workload"
    rec = simulate_measurement(matrix, ARCH, "1d", matrix_name="m")
    old = dataclasses.asdict(rec)
    old.pop("workload")
    replayed = MeasurementRecord(**old)
    assert replayed.workload == "spmv"
    assert replayed.seconds == rec.seconds
