import pytest

from repro.errors import ArchitectureError
from repro.machine import TABLE2, architecture_names, get_architecture
from repro.machine.arch import Architecture


def test_eight_architectures():
    names = architecture_names()
    assert len(names) == 8
    assert names == ["Skylake", "Ice Lake", "Naples", "Rome", "Milan A",
                     "Milan B", "TX2", "Hi1620"]


def test_table2_core_counts():
    # paper Table 2 totals
    expected = {"Skylake": 32, "Ice Lake": 72, "Naples": 64, "Rome": 16,
                "Milan A": 48, "Milan B": 128, "TX2": 64, "Hi1620": 128}
    for name, cores in expected.items():
        assert get_architecture(name).cores == cores


def test_gp_parts_match_core_counts():
    # §3.3: partitioning into 16, 32, 48, 64, 72 or 128 parts
    parts = {get_architecture(n).gp_parts for n in architecture_names()}
    assert parts == {16, 32, 48, 64, 72, 128}


def test_milan_b_largest_llc():
    sizes = {n: get_architecture(n).l3_total for n in architecture_names()}
    assert max(sizes, key=sizes.get) == "Milan B"
    assert sizes["Milan B"] == 2 * 256 * 1024 * 1024  # 512 MiB total


def test_isas():
    assert get_architecture("TX2").isa == "ARMv8.1"
    assert get_architecture("Hi1620").isa == "ARMv8.2"
    assert get_architecture("Skylake").isa == "x86-64"


def test_per_thread_bandwidth_contention():
    a = get_architecture("Rome")
    assert a.per_thread_bandwidth(16) == pytest.approx(a.bandwidth / 16)
    assert a.per_thread_bandwidth(1) == pytest.approx(a.bandwidth)
    # more threads than cores cannot create bandwidth
    assert a.per_thread_bandwidth(64) == pytest.approx(a.bandwidth / 16)


def test_unknown_architecture():
    with pytest.raises(ArchitectureError):
        get_architecture("M1 Max")


def test_invalid_architecture_rejected():
    with pytest.raises(ArchitectureError):
        Architecture(name="bad", cpu="x", isa="x86-64", microarch="x",
                     sockets=2, cores=7, freq_ghz=1.0, l1d_per_core=1,
                     l2_per_core=1, l3_per_socket=1, bandwidth=1.0)
    with pytest.raises(ArchitectureError):
        Architecture(name="bad", cpu="x", isa="x86-64", microarch="x",
                     sockets=1, cores=4, freq_ghz=0.0, l1d_per_core=1,
                     l2_per_core=1, l3_per_socket=1, bandwidth=1.0)


def test_per_thread_cache_positive():
    for n in architecture_names():
        assert get_architecture(n).per_thread_cache() > 0
