import numpy as np
import pytest

from repro.errors import ArchitectureError
from repro.machine import LRUCache
from repro.machine.cache import simulate_x_misses


def test_basic_hit_miss():
    c = LRUCache(size=2 * 64, line_size=64, associativity=2)  # 2 lines
    assert not c.access(0)     # miss
    assert c.access(8)         # same line -> hit
    assert not c.access(64)    # second line -> miss
    assert c.access(0)         # still resident
    assert c.hits == 2 and c.misses == 2


def test_lru_eviction_order():
    # direct-mapped-free: one set, 2 ways
    c = LRUCache(size=2 * 64, line_size=64, associativity=2)
    c.access(0)      # line 0
    c.access(64)     # line 1
    c.access(0)      # touch line 0 (line 1 now LRU)
    c.access(128)    # evicts line 1
    assert c.access(0)          # line 0 still here
    assert not c.access(64)     # line 1 was evicted


def test_set_mapping():
    # 2 sets x 1 way: lines 0, 2 map to set 0; lines 1, 3 to set 1
    c = LRUCache(size=2 * 64, line_size=64, associativity=1)
    c.access(0)
    c.access(64)          # set 1, no conflict
    assert c.access(0)    # both resident
    c.access(128)         # conflicts with line 0 (set 0)
    assert not c.access(0)


def test_invalid_parameters():
    with pytest.raises(ArchitectureError):
        LRUCache(size=0)
    with pytest.raises(ArchitectureError):
        LRUCache(size=100, line_size=64, associativity=2)  # not divisible


def test_flush_and_reset():
    c = LRUCache(size=128, line_size=64, associativity=2)
    c.access(0)
    c.flush()
    assert not c.access(0)  # flushed
    c.reset_counters()
    assert c.hits == 0 and c.misses == 0


def test_access_many_counts_misses():
    c = LRUCache(size=4 * 64, line_size=64, associativity=4)
    misses = c.access_many([0, 64, 0, 128, 192, 256])
    assert misses == 5  # all distinct lines except the repeated 0


def test_simulate_x_misses_banded_vs_scattered(rng):
    """The exact simulator agrees with the model's qualitative claim:
    a banded matrix misses less on x than its scrambled version."""
    from repro.generators import banded_matrix

    a = banded_matrix(512, 6, density=1.0, seed=0)
    b = banded_matrix(512, 6, density=1.0, seed=0, scrambled=True)
    cache_a = LRUCache(size=32 * 64, line_size=64, associativity=8)
    cache_b = LRUCache(size=32 * 64, line_size=64, associativity=8)
    m_a = simulate_x_misses(a, cache_a)
    m_b = simulate_x_misses(b, cache_b)
    assert m_a < 0.5 * m_b


def test_model_tracks_exact_simulator_ranking():
    """Windowed model and exact LRU rank orderings identically on a
    band/scatter contrast (validation of the analytical substitution)."""
    from repro.generators import banded_matrix
    from repro.machine import PerfModel, get_architecture
    from repro.spmv import schedule_1d

    arch = get_architecture("Rome")
    model = PerfModel(arch)
    a = banded_matrix(1024, 8, density=0.8, seed=1)
    b = banded_matrix(1024, 8, density=0.8, seed=1, scrambled=True)
    # exact
    misses = []
    for m in (a, b):
        c = LRUCache(size=64 * 64, line_size=64, associativity=8)
        misses.append(simulate_x_misses(m, c))
    # model (single thread to mirror the sequential simulator)
    loads = [model._x_line_loads(m.colidx) for m in (a, b)]
    assert (misses[0] < misses[1]) == (loads[0] < loads[1])


# ----------------------------------------------------------------------
# vectorised fully-associative path vs per-access reference loop
# ----------------------------------------------------------------------
def _loop_replay(cache, addrs):
    """Force the per-access reference path regardless of geometry."""
    before = cache.misses
    for a in addrs:
        cache.access(int(a))
    return cache.misses - before


def _random_traces(rng):
    yield np.array([], dtype=np.int64)
    yield np.zeros(50, dtype=np.int64)
    for n, nlines in [(100, 2), (300, 10), (1000, 40), (2000, 500)]:
        yield rng.integers(0, nlines, n) * 64 + rng.integers(0, 8, n) * 8


def test_fully_assoc_fast_path_matches_loop(rng):
    for assoc in (1, 2, 8, 32):
        for addrs in _random_traces(rng):
            fast = LRUCache(size=assoc * 64, line_size=64,
                            associativity=assoc)
            ref = LRUCache(size=assoc * 64, line_size=64,
                           associativity=assoc)
            m_fast = fast.access_many(addrs)
            m_ref = _loop_replay(ref, addrs)
            assert m_fast == m_ref
            assert (fast.hits, fast.misses) == (ref.hits, ref.misses)
            # exact end-state equivalence: tags, recency and clock
            assert fast._sets[0] == ref._sets[0]
            assert fast._clock == ref._clock


def test_fully_assoc_fast_path_end_state_drives_future_accesses(rng):
    """After a vectorised replay, continued per-access use behaves as
    if the whole trace had gone through the loop."""
    addrs = rng.integers(0, 30, 500) * 64
    probe = rng.integers(0, 30, 100) * 64
    fast = LRUCache(size=8 * 64, line_size=64, associativity=8)
    ref = LRUCache(size=8 * 64, line_size=64, associativity=8)
    fast.access_many(addrs)
    _loop_replay(ref, addrs)
    for p in probe:
        assert fast.access(int(p)) == ref.access(int(p))


def test_warm_fully_assoc_cache_falls_back_to_loop(rng):
    """A non-empty fully-associative cache must not take the
    empty-start fast path (its hit pattern depends on the warm state)."""
    addrs = rng.integers(0, 20, 300) * 64
    warm_fast = LRUCache(size=4 * 64, line_size=64, associativity=4)
    warm_ref = LRUCache(size=4 * 64, line_size=64, associativity=4)
    warm_fast.access(0)
    warm_ref.access(0)
    assert warm_fast.access_many(addrs) == _loop_replay(warm_ref, addrs)
    assert warm_fast._sets[0] == warm_ref._sets[0]


def test_set_associative_access_many_unchanged(rng):
    """Multi-set geometries keep the exact per-access reference loop."""
    addrs = rng.integers(0, 64, 800) * 64
    c1 = LRUCache(size=16 * 64, line_size=64, associativity=4)  # 4 sets
    c2 = LRUCache(size=16 * 64, line_size=64, associativity=4)
    assert c1.access_many(addrs) == _loop_replay(c2, addrs)
    assert c1._sets == c2._sets
