import numpy as np
import pytest

from repro.errors import ArchitectureError
from repro.generators import random_er, stencil_2d
from repro.machine import NumaModel, PerfModel, get_architecture
from repro.reorder import gp_ordering
from repro.spmv import schedule_1d


@pytest.fixture(scope="module")
def milan():
    return get_architecture("Milan B")


@pytest.fixture(scope="module")
def scattered():
    return random_er(1500, 8.0, seed=0)


def test_local_only_matches_base_model(milan, scattered):
    base = PerfModel(milan)
    numa = NumaModel(milan, placement="local_only")
    s = schedule_1d(scattered, milan.threads)
    assert numa.predict(scattered, s).seconds == pytest.approx(
        base.predict(scattered, s).seconds)


def test_interleaved_slowest(milan, scattered):
    s = schedule_1d(scattered, milan.threads)
    times = {p: NumaModel(milan, placement=p).predict(
        scattered, s).seconds for p in
        ("local_only", "first_touch", "interleaved")}
    assert times["local_only"] <= times["first_touch"]
    assert times["first_touch"] <= times["interleaved"]


def test_first_touch_rewards_block_local_orderings(milan):
    """GP reordering concentrates each thread's x accesses in its own
    block, so first-touch NUMA hurts it less than the scattered
    original order (relative surcharge comparison)."""
    a = random_er(2000, 8.0, seed=1)
    r = gp_ordering(a, nparts=milan.gp_parts, seed=0)
    b = r.apply(a)
    s_a = schedule_1d(a, milan.threads)
    s_b = schedule_1d(b, milan.threads)
    local = NumaModel(milan, placement="local_only")
    ft = NumaModel(milan, placement="first_touch")
    surcharge_orig = (ft.predict(a, s_a).seconds
                      / local.predict(a, s_a).seconds)
    surcharge_gp = (ft.predict(b, s_b).seconds
                    / local.predict(b, s_b).seconds)
    assert surcharge_gp <= surcharge_orig + 1e-9


def test_single_socket_has_no_surcharge(scattered):
    rome = get_architecture("Rome")  # 1 socket
    s = schedule_1d(scattered, rome.threads)
    base = PerfModel(rome).predict(scattered, s).seconds
    ft = NumaModel(rome, placement="first_touch").predict(
        scattered, s).seconds
    assert ft == pytest.approx(base)


def test_invalid_placement_rejected(milan):
    with pytest.raises(ArchitectureError):
        NumaModel(milan, placement="magic")


def test_invalid_penalty_rejected(milan):
    with pytest.raises(ArchitectureError):
        NumaModel(milan, remote_penalty=0.5)


def test_remote_fraction_bounds(milan, scattered):
    m = NumaModel(milan, placement="first_touch")
    s = schedule_1d(scattered, milan.threads)
    for t in range(milan.threads):
        f = m._remote_fraction(scattered, s, t)
        assert 0.0 <= f <= 0.5
