"""Golden-equivalence suite for the batched prediction fast path.

The contract of the fast path (``ReuseStats`` + memoised schedules +
the vectorised all-threads pass) is **bit-identity**: every field of
every :class:`SpmvPrediction` must equal — with ``==``, not
``isclose`` — what the original per-cell, per-thread, per-window
``np.unique`` implementation (``fastpath=False`` on a fresh matrix
object) produces.  This is checked over a small corpus slice, every
ordering of the study, all eight Table 2 architectures and both
kernels, with GP recomputed per distinct ``gp_parts`` exactly as the
sweep engine groups it.
"""

import numpy as np
import pytest

from repro.generators.suite import build_corpus
from repro.machine.arch import TABLE2
from repro.machine.bench import simulate_measurement, simulate_many
from repro.machine.model import PerfModel, predict_many
from repro.matrix.csr import CSRMatrix
from repro.reorder.registry import ALL_ORDERINGS, compute_ordering
from repro.spmv.schedule import get_schedule, schedule_1d, schedule_2d

ARCHS = list(TABLE2.values())
#: small/fast corpus slice spanning the generator families
CASE_INDICES = (0, 8, 12, 23, 26, 31)


@pytest.fixture(scope="module")
def corpus_slice():
    corpus = build_corpus("tiny", seed=0)
    return [corpus[i] for i in CASE_INDICES]


def fresh_copy(a: CSRMatrix) -> CSRMatrix:
    """A new matrix object with no memoised caches attached."""
    return CSRMatrix(a.nrows, a.ncols, a.rowptr.copy(), a.colidx.copy(),
                     a.values.copy())


def reference_prediction(a, arch, kernel):
    """The legacy implementation: fresh matrix, no caches, per-window
    ``np.unique`` loop."""
    model = PerfModel(arch, fastpath=False)
    b = fresh_copy(a)
    schedule = (schedule_1d if kernel == "1d" else schedule_2d)(
        b, arch.threads)
    return model.predict(b, schedule)


def assert_same_prediction(fast, ref, context):
    assert fast.seconds == ref.seconds, context
    assert fast.x_line_loads == ref.x_line_loads, context
    assert fast.bytes_total == ref.bytes_total, context
    assert fast.gflops == ref.gflops, context
    assert fast.llc_residency == ref.llc_residency, context
    assert np.array_equal(fast.thread_seconds, ref.thread_seconds), context


def iter_variants(entry, seed=0):
    """(ordering-name, reordered matrix) pairs, with GP computed once
    per distinct gp_parts like the sweep engine does."""
    a = entry.matrix
    for name in ALL_ORDERINGS:
        if name == "original":
            yield name, fresh_copy(a)
        elif name == "GP":
            for nparts in sorted({arch.gp_parts for arch in ARCHS}):
                result = compute_ordering(a, name, nparts=nparts, seed=seed)
                yield f"GP@{nparts}", result.apply(a)
        else:
            result = compute_ordering(a, name, seed=seed)
            yield name, result.apply(a)


def test_predict_many_bit_identical_to_per_cell_predict(corpus_slice):
    for entry in corpus_slice:
        for ordering, b in iter_variants(entry):
            out = predict_many(b, ARCHS)
            assert set(out) == {(arch.name, kernel, arch.threads)
                                for arch in ARCHS for kernel in ("1d", "2d")}
            for arch in ARCHS:
                for kernel in ("1d", "2d"):
                    ref = reference_prediction(b, arch, kernel)
                    assert_same_prediction(
                        out[(arch.name, kernel, arch.threads)], ref,
                        (entry.name, ordering, arch.name, kernel))


def test_simulate_many_bit_identical_to_per_cell_records(corpus_slice):
    for entry in corpus_slice[:2]:
        b = fresh_copy(entry.matrix)
        fast = simulate_many(b, ARCHS, matrix_name=entry.name,
                             ordering_name="original")
        legacy = [simulate_measurement(fresh_copy(entry.matrix), arch,
                                       kernel, entry.name, "original",
                                       model=PerfModel(arch, fastpath=False))
                  for arch in ARCHS for kernel in ("1d", "2d")]
        assert fast == legacy


def test_predict_many_explicit_thread_counts(corpus_slice):
    entry = corpus_slice[0]
    b = fresh_copy(entry.matrix)
    out = predict_many(b, ARCHS[:2], kernels=("1d",), nthreads=(4, 16))
    for arch in ARCHS[:2]:
        for nt in (4, 16):
            model = PerfModel(arch, fastpath=False)
            c = fresh_copy(entry.matrix)
            ref = model.predict(c, schedule_1d(c, nt))
            assert_same_prediction(out[(arch.name, "1d", nt)], ref,
                                   (arch.name, nt))


def test_fastpath_ablation_models_stay_identical(corpus_slice):
    """The locality/imbalance ablation switches must not diverge
    between the fast and reference paths."""
    entry = corpus_slice[1]
    arch = ARCHS[0]
    for flags in ({"locality_term": False}, {"imbalance_term": False},
                  {"locality_term": False, "imbalance_term": False}):
        b = fresh_copy(entry.matrix)
        fast = PerfModel(arch, **flags).predict(
            b, get_schedule(b, "2d", arch.threads))
        c = fresh_copy(entry.matrix)
        ref = PerfModel(arch, fastpath=False, **flags).predict(
            c, schedule_2d(c, arch.threads))
        assert_same_prediction(fast, ref, flags)


def test_empty_and_tiny_matrices_agree():
    empty = CSRMatrix(3, 3, np.array([0, 0, 0, 0]), np.array([], dtype=int),
                      np.array([]))
    single = CSRMatrix(1, 1, np.array([0, 1]), np.array([0]),
                       np.array([1.0]))
    for a in (empty, single):
        for arch in ARCHS[:3]:
            for kernel in ("1d", "2d"):
                fast = PerfModel(arch).predict(
                    a, get_schedule(a, kernel, arch.threads))
                b = fresh_copy(a)
                sched = (schedule_1d if kernel == "1d" else schedule_2d)(
                    b, arch.threads)
                ref = PerfModel(arch, fastpath=False).predict(b, sched)
                assert_same_prediction(fast, ref, (a.nnz, arch.name, kernel))
