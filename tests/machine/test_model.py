import numpy as np
import pytest

from repro.generators import banded_matrix, circuit_matrix, stencil_2d
from repro.machine import PerfModel, get_architecture, simulate_measurement
from repro.machine.model import DEFAULT_CACHE_SCALE
from repro.matrix import tall_skinny_dense_csr
from repro.spmv import schedule_1d, schedule_2d

from ..conftest import random_csr


@pytest.fixture(scope="module")
def rome():
    return get_architecture("Rome")


def test_prediction_fields(rome, rng):
    a = random_csr(100, 800, rng)
    pred = PerfModel(rome).predict(a, schedule_1d(a, rome.threads))
    assert pred.seconds > 0
    assert pred.gflops > 0
    assert pred.thread_seconds.shape == (rome.threads,)
    assert 0.0 <= pred.llc_residency <= 1.0
    assert pred.seconds == pytest.approx(pred.thread_seconds.max())


def test_imbalanced_matrix_slower_1d(rome):
    """A hub row stretches the 1D time but not the 2D time."""
    model = PerfModel(rome)
    a = circuit_matrix(1500, rail_rows=2, rail_fanout=0.4, seed=0,
                       scrambled=False)
    t1 = model.predict(a, schedule_1d(a, rome.threads)).seconds
    t2 = model.predict(a, schedule_2d(a, rome.threads)).seconds
    assert t2 < t1


def test_locality_matters(rome):
    """Scrambling a banded matrix must slow the modelled SpMV."""
    model = PerfModel(rome)
    a = banded_matrix(3000, 10, seed=0)
    b = banded_matrix(3000, 10, seed=0, scrambled=True)
    ta = model.predict(a, schedule_1d(a, rome.threads)).seconds
    tb = model.predict(b, schedule_1d(b, rome.threads)).seconds
    assert ta < tb


def test_locality_ablation_removes_ordering_effect(rome):
    model = PerfModel(rome, locality_term=False)
    a = banded_matrix(2000, 8, seed=0)
    b = banded_matrix(2000, 8, seed=0, scrambled=True)
    ta = model.predict(a, schedule_1d(a, rome.threads)).seconds
    tb = model.predict(b, schedule_1d(b, rome.threads)).seconds
    # same nnz, same rows; only x locality differed
    assert ta == pytest.approx(tb, rel=0.05)


def test_imbalance_ablation(rome):
    model_imb = PerfModel(rome, imbalance_term=True)
    model_no = PerfModel(rome, imbalance_term=False)
    a = circuit_matrix(1500, rail_rows=2, rail_fanout=0.4, seed=0,
                       scrambled=False)
    s = schedule_1d(a, rome.threads)
    assert model_no.predict(a, s).seconds <= model_imb.predict(a, s).seconds


def test_more_threads_faster(rome):
    a = stencil_2d(60, seed=0)
    m = PerfModel(rome)
    t1 = m.predict(a, schedule_1d(a, 1)).seconds
    t16 = m.predict(a, schedule_1d(a, 16)).seconds
    assert t16 < t1


def test_dense_reference_hits_bandwidth_roof():
    """§4.2 calibration: the tall-skinny dense matrix must be DRAM
    bandwidth bound and achieve close to BANDWIDTH_EFFICIENCY."""
    from repro.machine.model import BANDWIDTH_EFFICIENCY, BYTES_PER_NNZ

    arch = get_architecture("Milan B")
    model = PerfModel(arch)
    from repro.machine.model import RESIDENCY_FLOOR

    a = tall_skinny_dense_csr(nrows=9600, ncols=400, seed=0)
    pred = model.predict(a, schedule_1d(a, arch.threads))
    assert pred.llc_residency <= RESIDENCY_FLOOR + 0.01
    achieved_bw = BYTES_PER_NNZ * a.nnz / pred.seconds
    assert achieved_bw > 0.5 * BANDWIDTH_EFFICIENCY * arch.bandwidth


def test_empty_matrix(rome):
    from repro.matrix import coo_from_arrays, csr_from_coo

    a = csr_from_coo(coo_from_arrays(10, 10, [], []))
    pred = PerfModel(rome).predict(a, schedule_1d(a, 4))
    assert pred.seconds > 0  # clamped, no division by zero
    assert pred.x_line_loads == 0


def test_cache_scale_default_reduces_capacity(rome):
    big = PerfModel(rome, cache_scale=1.0)
    small = PerfModel(rome, cache_scale=DEFAULT_CACHE_SCALE)
    assert small._l2_lines() <= big._l2_lines()


def test_simulate_measurement_record(rome, rng):
    a = random_csr(64, 512, rng)
    rec = simulate_measurement(a, rome, "1d", "m", "RCM")
    assert rec.architecture == "Rome"
    assert rec.kernel == "1d"
    assert rec.nthreads == rome.threads
    assert rec.nnz_min <= rec.nnz_mean <= rec.nnz_max
    assert rec.imbalance >= 1.0
    assert rec.gflops_mean < rec.gflops_max
    assert len(rec.row()) == 12


def test_simulate_measurement_2d_balanced(rome, rng):
    a = random_csr(64, 512, rng)
    rec = simulate_measurement(a, rome, "2d", "m", "o")
    assert rec.imbalance <= 1.1


def test_unknown_kernel_rejected(rome, rng):
    from repro.errors import ScheduleError

    a = random_csr(10, 30, rng)
    with pytest.raises(ScheduleError):
        simulate_measurement(a, rome, "3d")


def test_arm_slower_per_core():
    """ISA constants: ARM archs pay more cycles per nonzero (paper §4.3)."""
    a = stencil_2d(40, seed=0)
    tx2 = get_architecture("TX2")
    rome = get_architecture("Rome")
    # compare single-thread compute-bound runs (tiny matrix, 1 thread)
    t_arm = PerfModel(tx2).predict(a, schedule_1d(a, 1)).seconds
    t_x86 = PerfModel(rome).predict(a, schedule_1d(a, 1)).seconds
    assert t_arm > t_x86
