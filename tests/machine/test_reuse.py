"""Property tests for the reuse-distance sufficient statistics.

The fast path of the performance model rests on three identities; each
is checked here against the brute-force definition on random streams:

* ``distinct_count`` / ``windowed_distinct_loads`` must equal per-slice
  and per-window ``np.unique`` counts exactly (the model's predictions
  are asserted bit-identical downstream, so these must be too);
* ``stack_distances`` must equal the O(n²) distinct-values-between
  definition;
* :class:`ReuseStats` must memoise per matrix object and report its
  build/hit counters faithfully.
"""

import numpy as np
import pytest

from repro.machine.reuse import (
    COUNTERS,
    ReuseStats,
    counters_snapshot,
    distinct_count,
    prev_occurrence,
    stack_distances,
    windowed_distinct_loads,
)
from ..conftest import random_csr


def brute_prev(stream):
    out = np.full(len(stream), -1, dtype=np.int64)
    last = {}
    for i, v in enumerate(stream):
        if v in last:
            out[i] = last[v]
        last[v] = i
    return out


def random_streams(rng):
    """A spread of stream shapes: empty, constant, short, long, narrow
    and wide alphabets."""
    yield np.array([], dtype=np.int64)
    yield np.zeros(17, dtype=np.int64)
    yield np.arange(23, dtype=np.int64)
    for n, hi in [(1, 1), (2, 1), (50, 4), (200, 13), (1000, 50),
                  (1000, 700), (3000, 3)]:
        yield rng.integers(0, hi, n)


def test_prev_occurrence_matches_brute_force(rng):
    for stream in random_streams(rng):
        assert np.array_equal(prev_occurrence(stream), brute_prev(stream))


def test_distinct_count_matches_np_unique(rng):
    for stream in random_streams(rng):
        prev = prev_occurrence(stream)
        n = stream.size
        for lo, hi in [(0, n), (0, n // 2), (n // 3, n), (n // 4, 3 * n // 4)]:
            assert distinct_count(prev, lo, hi) == \
                np.unique(stream[lo:hi]).size


def test_windowed_distinct_loads_matches_np_unique_loop(rng):
    for stream in random_streams(rng):
        prev = prev_occurrence(stream)
        n = stream.size
        for window in (1, 3, 7, 64, max(n, 1)):
            for lo, hi in [(0, n), (n // 3, n)]:
                s = stream[lo:hi]
                expect = sum(int(np.unique(s[k:k + window]).size)
                             for k in range(0, s.size, window))
                got = windowed_distinct_loads(prev, window, lo, hi)
                assert got == expect, (n, window, lo, hi)


def test_windowed_distinct_loads_rejects_bad_window():
    with pytest.raises(ValueError):
        windowed_distinct_loads(np.array([-1, 0]), 0, 0, 2)


def brute_stack_distances(stream):
    out = np.full(len(stream), -1, dtype=np.int64)
    last = {}
    for i, v in enumerate(stream):
        if v in last:
            out[i] = len(set(stream[last[v] + 1:i]))
        last[v] = i
    return out


def test_stack_distances_match_brute_force(rng):
    for stream in random_streams(rng):
        got = stack_distances(prev_occurrence(stream))
        assert np.array_equal(got, brute_stack_distances(stream))


def test_reuse_stats_memoised_per_matrix(rng):
    a = random_csr(60, 300, rng)
    stats = ReuseStats.for_matrix(a)
    assert ReuseStats.for_matrix(a) is stats
    assert ReuseStats.for_matrix(random_csr(60, 300, rng)) is not stats


def test_reuse_stats_counters_track_builds_and_hits(rng):
    a = random_csr(60, 300, rng)
    stats = ReuseStats.for_matrix(a)
    before = counters_snapshot()
    p1 = stats.prev(8)
    mid = counters_snapshot()
    assert mid["reuse_builds"] == before["reuse_builds"] + 1
    assert mid["reuse_hits"] == before["reuse_hits"]
    p2 = stats.prev(8)
    after = counters_snapshot()
    assert p2 is p1
    assert after["reuse_builds"] == mid["reuse_builds"]
    assert after["reuse_hits"] == mid["reuse_hits"] + 1
    # a different line size is its own statistic, not a hit
    stats.prev(4)
    assert COUNTERS["reuse_builds"] == after["reuse_builds"] + 1


def test_reuse_stats_values(rng):
    a = random_csr(50, 400, rng)
    stats = ReuseStats.for_matrix(a)
    assert np.array_equal(stats.lines(8), a.colidx // 8)
    assert np.array_equal(stats.prev(8), brute_prev(a.colidx // 8))
    lengths = np.diff(a.rowptr)
    for lo, hi in [(0, a.nrows), (5, 20), (7, 8), (3, 3)]:
        expect = (int(np.count_nonzero(np.diff(lengths[lo:hi])))
                  if hi - lo >= 2 else 0)
        assert stats.row_change_count(lo, hi) == expect


def test_reuse_stats_dropped_on_pickle(rng):
    import pickle

    a = random_csr(30, 120, rng)
    ReuseStats.for_matrix(a).prepare()
    b = pickle.loads(pickle.dumps(a))
    assert getattr(b, ReuseStats._ATTR, None) is None
    assert np.array_equal(b.colidx, a.colidx)


def test_prepare_materialises_lazily_built_arrays(rng):
    a = random_csr(30, 120, rng)
    stats = ReuseStats.for_matrix(a).prepare(words_per_lines=(8, 4))
    assert set(stats._prev) == {8, 4}
    assert stats._row_change_prefix is not None
