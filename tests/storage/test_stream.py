"""Streaming generators: determinism, chunk invariance, structure."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.generators.stream import (stream_banded, stream_stencil2d,
                                     xl_recipes)
from repro.matrix.csr import CSRMatrix


def _assemble(nrows, ncols, chunks):
    lengths, cols, vals = [], [], []
    for row_lengths, colidx, values in chunks:
        lengths.append(row_lengths)
        cols.append(colidx)
        vals.append(values)
    rowptr = np.concatenate([[0], np.cumsum(np.concatenate(lengths))])
    return CSRMatrix(nrows=nrows, ncols=ncols, rowptr=rowptr,
                     colidx=np.concatenate(cols),
                     values=np.concatenate(vals))


def _dense(a):
    d = np.zeros((a.nrows, a.ncols))
    for r in range(a.nrows):
        s, e = int(a.rowptr[r]), int(a.rowptr[r + 1])
        d[r, a.colidx[s:e]] = a.values[s:e]
    return d


def test_banded_deterministic_and_chunk_invariant():
    a = _assemble(200, 200, stream_banded(200, 5, 0.6, seed=3,
                                          chunk_rows=7))
    b = _assemble(200, 200, stream_banded(200, 5, 0.6, seed=3,
                                          chunk_rows=200))
    np.testing.assert_array_equal(a.rowptr, b.rowptr)
    np.testing.assert_array_equal(a.colidx, b.colidx)
    np.testing.assert_array_equal(a.values, b.values)
    c = _assemble(200, 200, stream_banded(200, 5, 0.6, seed=4))
    assert not np.array_equal(a.colidx, c.colidx) or \
        not np.array_equal(a.values, c.values)


def test_banded_symmetric_spd_structure():
    a = _assemble(120, 120, stream_banded(120, 4, 0.5, seed=1))
    d = _dense(a)
    np.testing.assert_array_equal(d, d.T)  # exactly symmetric
    # band respected, diagonal always present and dominant
    i, j = np.nonzero(d)
    assert np.abs(i - j).max() <= 4
    diag = np.diag(d)
    assert (diag > 0).all()
    off = np.abs(d - np.diag(diag)).sum(axis=1)
    assert (diag > off).all()  # strict diagonal dominance -> SPD


def test_banded_density_bounds():
    full = _assemble(50, 50, stream_banded(50, 3, 1.0, seed=0))
    sparse = _assemble(50, 50, stream_banded(50, 3, 0.0, seed=0))
    assert sparse.nnz == 50  # diagonal only
    assert full.nnz > sparse.nnz
    with pytest.raises(GeneratorError):
        next(stream_banded(50, 3, 1.5))
    with pytest.raises(GeneratorError):
        next(stream_banded(0, 3))


def test_stencil_matches_reference():
    side = 6
    a = _assemble(side * side, side * side,
                  stream_stencil2d(side, chunk_rows=5))
    d = _dense(a)
    np.testing.assert_array_equal(d, d.T)
    assert (np.diag(d) == 4.0).all()
    # interior point has exactly 4 neighbours at -1
    p = (side // 2) * side + side // 2
    assert sorted(np.nonzero(d[p])[0]) == \
        [p - side, p - 1, p, p + 1, p + side]
    # corner has 2
    assert (d[0] != 0).sum() == 3


def test_xl_recipes_scale_and_size():
    recipes = xl_recipes()
    assert [r.name for r in recipes] == \
        ["banded_xl", "banded_xl2", "stencil_xl"]
    assert all(r.spd for r in recipes)
    # at a tiny scale the recipes still produce valid (small) matrices
    for r in recipes:
        nrows, ncols, chunks = r.make(0, 0.001)
        a = _assemble(nrows, ncols, chunks)
        assert a.nrows == nrows and a.nnz > 0
    # full-scale row counts imply >= 10^7 nnz without generating them
    nrows_full = [r.make(0, 1.0)[0] for r in recipes]
    assert nrows_full == [450_000, 300_000, 1_345_600]
