"""On-disk CSR format: writer atomicity, verification, memmap attach."""

import json
import os

import numpy as np
import pytest

from repro.errors import StorageError
from repro.matrix.csr import CSRMatrix
from repro.storage import format as fmt


@pytest.fixture(autouse=True)
def _fresh_attach_memo():
    fmt.detach_all()
    yield
    fmt.detach_all()


def _small():
    # 3x4, nnz 5, a row with zero entries included
    return CSRMatrix(nrows=3, ncols=4,
                     rowptr=np.array([0, 2, 2, 5]),
                     colidx=np.array([0, 3, 1, 2, 3]),
                     values=np.array([1.0, -2.0, 3.5, 0.25, 9.0]))


def _assert_equal(a, b):
    assert (a.nrows, a.ncols) == (b.nrows, b.ncols)
    np.testing.assert_array_equal(a.rowptr, b.rowptr)
    np.testing.assert_array_equal(a.colidx, b.colidx)
    np.testing.assert_array_equal(a.values, b.values)


def test_roundtrip_bit_exact(tmp_path):
    a = _small()
    path = str(tmp_path / "m")
    sig = fmt.write_matrix(path, a, meta={"name": "small"})
    b = fmt.open_matrix(path, verify="crc")
    _assert_equal(a, b)
    assert sig == fmt.matrix_signature(path)
    assert not b.values.flags.writeable


def test_chunked_write_matches_oneshot(tmp_path):
    """Appending row by row produces the same bytes — and therefore the
    same content address — as a single-chunk write."""
    a = _small()
    sig1 = fmt.write_matrix(str(tmp_path / "one"), a)
    with fmt.MatrixWriter(str(tmp_path / "many"), a.nrows, a.ncols) as w:
        for r in range(a.nrows):
            s, e = int(a.rowptr[r]), int(a.rowptr[r + 1])
            w.append_chunk([e - s], a.colidx[s:e], a.values[s:e])
        sig2 = w.commit()
    assert sig1 == sig2
    one = (tmp_path / "one" / "values.bin").read_bytes()
    many = (tmp_path / "many" / "values.bin").read_bytes()
    assert one == many


def test_content_address_ignores_meta(tmp_path):
    a = _small()
    sig1 = fmt.write_matrix(str(tmp_path / "m1"), a, meta={"x": 1})
    sig2 = fmt.write_matrix(str(tmp_path / "m2"), a, meta={"x": 2})
    assert sig1 == sig2
    a.values[0] += 1.0
    sig3 = fmt.write_matrix(str(tmp_path / "m3"), a)
    assert sig3 != sig1


def test_empty_matrix(tmp_path):
    a = CSRMatrix(nrows=2, ncols=2, rowptr=np.array([0, 0, 0]),
                  colidx=np.array([], dtype=np.int64),
                  values=np.array([], dtype=np.float64))
    path = str(tmp_path / "empty")
    fmt.write_matrix(path, a)
    b = fmt.open_matrix(path, verify="crc")
    _assert_equal(a, b)


@pytest.mark.parametrize("bad", [
    dict(row_lengths=[-1], colidx=[], values=[]),
    dict(row_lengths=[2], colidx=[0], values=[1.0]),          # shape
    dict(row_lengths=[1], colidx=[9], values=[1.0]),          # bounds
    dict(row_lengths=[2], colidx=[1, 1], values=[1.0, 2.0]),  # not increasing
])
def test_append_chunk_rejects_invalid(tmp_path, bad):
    with pytest.raises(StorageError):
        with fmt.MatrixWriter(str(tmp_path / "m"), 1, 4) as w:
            w.append_chunk(**bad)
    assert not os.path.exists(tmp_path / "m")


def test_commit_requires_all_rows(tmp_path):
    w = fmt.MatrixWriter(str(tmp_path / "m"), 3, 3)
    with w:
        w.append_chunk([1], [0], [1.0])
        with pytest.raises(StorageError, match="rows written"):
            w.commit()
        # complete the matrix so __exit__'s implicit commit succeeds
        w.append_chunk([1, 1], [1, 2], [1.0, 1.0])


def test_abort_leaves_nothing(tmp_path):
    path = str(tmp_path / "m")
    with pytest.raises(RuntimeError):
        with fmt.MatrixWriter(path, 2, 2) as w:
            w.append_chunk([1], [0], [1.0])
            raise RuntimeError("killed mid-write")
    assert list(tmp_path.iterdir()) == []  # neither final nor tmp dir


def test_header_is_the_commit_marker(tmp_path):
    """A directory without header.json is torn by definition."""
    a = _small()
    path = str(tmp_path / "m")
    fmt.write_matrix(path, a)
    os.remove(os.path.join(path, "header.json"))
    with pytest.raises(StorageError, match="torn or missing"):
        fmt.read_header(path)
    assert fmt.verify_matrix(path) != []


def test_verify_levels(tmp_path):
    a = _small()
    path = str(tmp_path / "m")
    fmt.write_matrix(path, a)
    assert fmt.verify_matrix(path, level="crc") == []

    # flip one byte: size still passes, crc fails
    vpath = os.path.join(path, "values.bin")
    with open(vpath, "r+b") as fh:
        fh.seek(3)
        b = fh.read(1)
        fh.seek(3)
        fh.write(bytes([b[0] ^ 0x40]))
    assert fmt.verify_matrix(path, level="size") == []
    problems = fmt.verify_matrix(path, level="crc")
    assert problems and "CRC" in problems[0]
    with pytest.raises(StorageError):
        fmt.open_matrix(path, verify="crc")

    # truncate: even the size level fails
    with open(vpath, "r+b") as fh:
        fh.truncate(8)
    assert fmt.verify_matrix(path, level="size") != []
    with pytest.raises(StorageError):
        fmt.open_matrix(path)


def test_verify_rejects_foreign_headers(tmp_path):
    path = tmp_path / "m"
    path.mkdir()
    (path / "header.json").write_text(json.dumps(
        {"format": "not-repro", "version": 1}))
    assert fmt.verify_matrix(str(path)) != []
    (path / "header.json").write_text(json.dumps(
        {"format": fmt.FORMAT_NAME, "version": fmt.FORMAT_VERSION + 1}))
    with pytest.raises(StorageError, match="version"):
        fmt.read_header(str(path))


def test_attach_memo(tmp_path):
    a = _small()
    path = str(tmp_path / "m")
    fmt.write_matrix(path, a)
    m1 = fmt.attach_matrix(path)
    m2 = fmt.attach_matrix(path)
    assert m1 is m2
    assert fmt.attached_count() == 1
    stats = fmt.attach_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    # mapped arrays are page cache, not resident heap
    assert stats["size_bytes"] == 0
    assert stats["mapped_bytes"] == (m1.rowptr.nbytes + m1.colidx.nbytes
                                     + m1.values.nbytes)
    fmt.detach_all()
    assert fmt.attached_count() == 0
