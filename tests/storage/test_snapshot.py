"""Corpus snapshots: torn-write recovery, spec gating, provenance.

The torn/truncated recovery tests are the dedicated coverage for the
mid-write-kill story: a snapshot killed between array flush and index
write is detected (CRC/size), quarantined — never deleted — and
regenerated deterministically to the same content address.
"""

import json
import os
import pickle

import numpy as np
import pytest

from repro.errors import StorageError
from repro.obs.metrics import REGISTRY
from repro.storage import (corpus_signature, ensure_corpus_snapshot,
                           open_corpus_snapshot)
from repro.storage import format as fmt

SPEC = dict(tier="tiny", limit=2, groups=("Banded",))


@pytest.fixture(autouse=True)
def _fresh_attach_memo():
    fmt.detach_all()
    yield
    fmt.detach_all()


def _ensure(path, seed=0, **over):
    spec = dict(SPEC)
    spec.update(over)
    return ensure_corpus_snapshot(str(path), seed=seed, **spec)


def _counter(name):
    return REGISTRY.counter(name).value


def test_build_then_reuse(tmp_path):
    snap = _ensure(tmp_path / "c")
    assert len(snap) == 2
    built0 = _counter("storage.snapshots_built")
    again = _ensure(tmp_path / "c")
    assert again.signature == snap.signature
    assert _counter("storage.snapshots_built") == built0  # nothing rebuilt


def test_entries_duck_type_corpus(tmp_path):
    from repro.generators import build_corpus

    snap = _ensure(tmp_path / "c")
    ref = build_corpus("tiny", seed=0, groups=("Banded",))[:2]
    for se, ce in zip(snap.entries, ref):
        assert (se.name, se.group, se.kind, se.spd) == \
            (ce.name, ce.group, ce.kind, ce.spd)
        assert (se.nrows, se.ncols, se.nnz) == \
            (ce.matrix.nrows, ce.matrix.ncols, ce.matrix.nnz)
        np.testing.assert_array_equal(se.matrix.values, ce.matrix.values)


def test_stored_entry_pickles_without_arrays(tmp_path):
    """Workers receive metadata only; arrays are memmapped on demand."""
    entry = _ensure(tmp_path / "c").entries[0]
    blob = pickle.dumps(entry)
    assert len(blob) < 4096
    clone = pickle.loads(blob)
    assert clone.storage_path == entry.storage_path
    np.testing.assert_array_equal(clone.matrix.values, entry.matrix.values)


def test_torn_matrix_quarantined_and_regenerated(tmp_path):
    """Killed mid-write: torn arrays + missing index.  The repair must
    quarantine (not delete) and converge to the clean address."""
    clean = _ensure(tmp_path / "clean")
    torn_dir = tmp_path / "torn"
    torn = _ensure(torn_dir)
    victim = torn.entries[0]
    vpath = os.path.join(victim.path, "values.bin")
    with open(vpath, "r+b") as fh:
        fh.truncate(os.path.getsize(vpath) // 2)
    os.remove(torn_dir / "corpus.json")

    quar0 = _counter("storage.snapshots_quarantined")
    repaired = ensure_corpus_snapshot(str(torn_dir), seed=0, **SPEC)
    assert repaired.signature == clean.signature
    assert _counter("storage.snapshots_quarantined") == quar0 + 1
    qdir = torn_dir / "_quarantine"
    assert qdir.is_dir() and len(list(qdir.iterdir())) == 1
    # the regenerated corpus passes full-CRC verification
    open_corpus_snapshot(str(torn_dir), verify="crc")


def test_bitrot_behind_valid_index_is_repaired(tmp_path):
    """A corrupt matrix *with* an intact index: the open fails, and
    re-ensuring falls through to per-matrix repair."""
    snap = _ensure(tmp_path / "c")
    vpath = os.path.join(snap.entries[1].path, "values.bin")
    with open(vpath, "r+b") as fh:
        fh.truncate(os.path.getsize(vpath) - 8)
    with pytest.raises(StorageError):
        open_corpus_snapshot(str(tmp_path / "c"))
    repaired = _ensure(tmp_path / "c")
    assert repaired.signature == snap.signature


def test_seed_change_rebuilds(tmp_path):
    old = _ensure(tmp_path / "c", seed=0)
    built0 = _counter("storage.snapshots_built")
    new = _ensure(tmp_path / "c", seed=1)
    assert new.signature != old.signature
    assert _counter("storage.snapshots_built") == built0 + 2
    fresh = _ensure(tmp_path / "fresh", seed=1)
    assert new.signature == fresh.signature


def test_replaced_matrix_behind_index_detected(tmp_path):
    """Swapping a matrix directory without updating the index must not
    open cleanly — the recomputed address exposes the swap."""
    snap = _ensure(tmp_path / "c")
    other = _ensure(tmp_path / "other", seed=3)
    import shutil
    victim = snap.entries[0]
    shutil.rmtree(victim.path)
    shutil.copytree(other.entries[0].path, victim.path)
    with pytest.raises(StorageError, match="content address"):
        open_corpus_snapshot(str(tmp_path / "c"))


def test_corpus_signature_matches_open(tmp_path):
    snap = _ensure(tmp_path / "c")
    assert corpus_signature(str(tmp_path / "c")) == snap.signature


def test_open_rejects_non_snapshot(tmp_path):
    with pytest.raises(StorageError, match="not a corpus snapshot"):
        open_corpus_snapshot(str(tmp_path))
    (tmp_path / "corpus.json").write_text(json.dumps({"format": "nope"}))
    with pytest.raises(StorageError):
        open_corpus_snapshot(str(tmp_path))


# ----------------------------------------------------------------------
# manifest provenance (repro report --check)
# ----------------------------------------------------------------------
def test_report_flags_snapshot_mismatch(tmp_path):
    from repro.obs.report import _check_snapshot_provenance

    snap = _ensure(tmp_path / "c")
    record = {"path": str(tmp_path / "c"), "signature": snap.signature}

    assert _check_snapshot_provenance({"config": {}}) == []
    assert _check_snapshot_provenance({"config": {"snapshot": record}}) == []
    incomplete = _check_snapshot_provenance(
        {"config": {"snapshot": {"path": record["path"]}}})
    assert incomplete and "incomplete" in incomplete[0]

    # rebuild under a different seed: recorded address goes stale
    _ensure(tmp_path / "c", seed=9)
    problems = _check_snapshot_provenance({"config": {"snapshot": record}})
    assert problems and "content address" in problems[0]

    gone = _check_snapshot_provenance({"config": {"snapshot": {
        "path": str(tmp_path / "missing"), "signature": "feed"}}})
    assert gone and "unreadable" in gone[0]
