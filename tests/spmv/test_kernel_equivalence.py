"""Kernel-equivalence tests: the 1D row-split and 2D nonzero-split
SpMV kernels must match a dense numpy reference to 1e-12 under every
ordering's permutation.

The per-kernel tests exercise each kernel against ``matvec`` on the
natural order; this suite instead permutes the matrix with every
registered ordering first, which catches off-by-one errors in how a
permutation is applied (PAPᵀ vs PA, new-to-old vs old-to-new) that
identity-order tests can never see: the reordered SpMV result, scattered
back through the permutation, must equal the dense product on the
original matrix.
"""

import numpy as np
import pytest

from repro.generators import fem_mesh_2d, powerlaw_graph, stencil_2d
from repro.reorder import compute_ordering
from repro.reorder.registry import ORDERING_FUNCS
from repro.spmv import schedule_1d, schedule_2d
from repro.spmv.kernels import spmv_1d, spmv_2d
from repro.util.rng import as_rng

SEED = 411
TOL = 1e-12
ALL_REGISTERED = tuple(ORDERING_FUNCS)

MATRICES = [
    ("stencil", stencil_2d(8, 5, seed=SEED)),
    ("fem", fem_mesh_2d(36, seed=SEED)),
    ("powerlaw", powerlaw_graph(40, m=3, seed=SEED)),
]


def _dense_reference(a, x):
    return a.to_dense() @ x


@pytest.mark.parametrize("ordering", ALL_REGISTERED)
@pytest.mark.parametrize("name,a", MATRICES, ids=[m[0] for m in MATRICES])
@pytest.mark.parametrize("nthreads", (1, 3, 8))
def test_kernels_match_dense_reference_under_permutation(
        name, a, ordering, nthreads):
    r = compute_ordering(a, ordering, nparts=4, seed=SEED)
    b = r.apply(a)
    rng = as_rng(SEED)
    x = rng.standard_normal(a.ncols)
    y_ref = _dense_reference(a, x)

    if r.symmetric:
        # PAPᵀ: feed the permuted input, un-permute the output
        xb = x[r.perm]
        expect = y_ref[r.perm]
    else:
        # PA (row-only, e.g. Gray): columns keep their meaning
        xb = x
        expect = y_ref[r.perm]

    y1 = spmv_1d(b, xb, schedule_1d(b, nthreads))
    y2 = spmv_2d(b, xb, schedule_2d(b, nthreads))
    np.testing.assert_allclose(y1, expect, rtol=0.0, atol=TOL)
    np.testing.assert_allclose(y2, expect, rtol=0.0, atol=TOL)


@pytest.mark.parametrize("name,a", MATRICES, ids=[m[0] for m in MATRICES])
def test_1d_and_2d_agree_with_each_other(name, a):
    """Both kernels are exact: they must agree to the same tolerance
    with each other, not just with the reference."""
    rng = as_rng(SEED + 1)
    x = rng.standard_normal(a.ncols)
    for nthreads in (1, 2, 5):
        y1 = spmv_1d(a, x, schedule_1d(a, nthreads))
        y2 = spmv_2d(a, x, schedule_2d(a, nthreads))
        np.testing.assert_allclose(y1, y2, rtol=0.0, atol=TOL)
