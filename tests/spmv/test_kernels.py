import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.generators import circuit_matrix, rmat_graph, stencil_2d
from repro.spmv import schedule_1d, schedule_2d, spmv, spmv_1d, spmv_2d

from ..conftest import random_csr


@pytest.mark.parametrize("nthreads", [1, 3, 8, 32])
@pytest.mark.parametrize("kind", ["1d", "2d"])
def test_kernels_match_scipy(rng, nthreads, kind):
    a = random_csr(60, 400, rng)
    x = rng.standard_normal(60)
    y = spmv(a, x, kind=kind, nthreads=nthreads)
    assert np.allclose(y, a.to_scipy() @ x)


def test_kernels_match_each_other(rng):
    a = random_csr(80, 600, rng)
    x = rng.standard_normal(80)
    y1 = spmv(a, x, kind="1d", nthreads=7)
    y2 = spmv(a, x, kind="2d", nthreads=7)
    assert np.allclose(y1, y2)


def test_2d_partial_rows_exact():
    # craft a matrix where one dense row straddles many 2D boundaries
    a = circuit_matrix(300, rail_rows=1, rail_fanout=0.5, seed=0,
                       scrambled=False)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(a.ncols)
    for nthreads in (2, 5, 16, 64):
        y = spmv_2d(a, x, schedule_2d(a, nthreads))
        assert np.allclose(y, a.to_scipy() @ x), nthreads


def test_empty_rows_handled(rng):
    from repro.matrix import coo_from_arrays, csr_from_coo

    a = csr_from_coo(coo_from_arrays(10, 10, [0, 9], [3, 4], [1.0, 2.0]))
    x = np.ones(10)
    for kind in ("1d", "2d"):
        y = spmv(a, x, kind=kind, nthreads=4)
        assert y[0] == 1.0 and y[9] == 2.0
        assert np.all(y[1:9] == 0)


def test_kernel_kind_mismatch(rng):
    a = random_csr(10, 30, rng)
    x = np.zeros(10)
    with pytest.raises(ScheduleError):
        spmv_1d(a, x, schedule_2d(a, 2))
    with pytest.raises(ScheduleError):
        spmv_2d(a, x, schedule_1d(a, 2))


def test_bad_x_shape(rng):
    a = random_csr(10, 30, rng)
    with pytest.raises(ScheduleError):
        spmv(a, np.zeros(11), kind="1d", nthreads=2)


def test_unknown_kind(rng):
    a = random_csr(10, 30, rng)
    with pytest.raises(ScheduleError):
        spmv(a, np.zeros(10), kind="3d")


def test_rectangular_matrix(rng):
    a = random_csr(20, 100, rng, ncols=35)
    x = rng.standard_normal(35)
    y = spmv(a, x, kind="2d", nthreads=4)
    assert np.allclose(y, a.to_scipy() @ x)


def test_kernels_on_generated_families(rng):
    for a in (stencil_2d(8, seed=1), rmat_graph(6, seed=1)):
        x = rng.standard_normal(a.ncols)
        assert np.allclose(spmv(a, x, "1d", 5), a.to_scipy() @ x)
        assert np.allclose(spmv(a, x, "2d", 5), a.to_scipy() @ x)
