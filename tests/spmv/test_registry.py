"""The single-source kernel/workload registry and its spec grammar."""

import pytest

from repro.errors import ScheduleError
from repro.spmv.registry import (
    DEFAULT_KERNEL,
    DEFAULT_WORKLOAD,
    KERNEL_KINDS,
    KERNELS,
    WORKLOADS,
    is_workload_spec,
    resolve_workload,
)


def test_vocabulary():
    assert KERNELS == ("1d", "2d")
    assert KERNEL_KINDS == ("1d", "2d", "merge")
    assert WORKLOADS == ("spmv", "cg", "jacobi", "spgemm", "spmm")
    assert DEFAULT_WORKLOAD == "spmv"
    assert DEFAULT_KERNEL == "1d"


@pytest.mark.parametrize("spec,expected", [
    ("1d", ("spmv", "1d")),
    ("2d", ("spmv", "2d")),
    ("merge", ("spmv", "merge")),
    ("cg", ("cg", "1d")),
    ("spgemm", ("spgemm", "1d")),
    ("jacobi:2d", ("jacobi", "2d")),
    ("cg:merge", ("cg", "merge")),
])
def test_resolve_workload_grammar(spec, expected):
    assert resolve_workload(spec) == expected


@pytest.mark.parametrize("spec", ["", "nope", "cg:3d", "spmv:xx",
                                  "cg:jacobi", ":1d"])
def test_resolve_workload_rejects_unknown_specs(spec):
    with pytest.raises(ScheduleError):
        resolve_workload(spec)


def test_is_workload_spec():
    assert is_workload_spec("cg")
    assert is_workload_spec("spgemm:2d")
    assert not is_workload_spec("1d")
    assert not is_workload_spec("merge")


def test_protocol_and_featurizer_share_the_registry():
    # the satellite bugfix: one vocabulary, imported everywhere —
    # the serving protocol and the advisor featurizer must not carry
    # their own kernel tuples
    import importlib

    # importlib sidesteps the package attribute of the same name (the
    # re-exported featurize() function shadows the submodule)
    featurize_mod = importlib.import_module("repro.advisor.featurize")
    from repro.serve import protocol

    assert protocol.KERNELS is KERNELS
    assert protocol.WORKLOADS is WORKLOADS
    assert featurize_mod.KERNELS is KERNELS
    assert featurize_mod.WORKLOADS is WORKLOADS
