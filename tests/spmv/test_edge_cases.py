"""Kernel edge-case audit: zero rows, zero RHS, rectangles, bad input.

Regression tests for the edge cases the kernels must either handle
with well-defined results or reject with a typed ``repro.errors``
exception — never silent NaNs.
"""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.matrix.build import csr_from_dense
from repro.matrix.csr import CSRMatrix
from repro.spmv import spmv

SEED = 20260808
KINDS = ("1d", "2d", "merge")


def _zero_row_matrix():
    dense = np.zeros((6, 6))
    dense[0, 1] = 2.0
    dense[3, 0] = -1.0
    dense[3, 5] = 4.0          # rows 1, 2, 4, 5 are empty
    return csr_from_dense(dense)


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("nthreads", (1, 4, 9))
def test_zero_row_matrix_gives_zero_outputs(kind, nthreads):
    a = _zero_row_matrix()
    x = np.arange(1.0, 7.0)
    y = spmv(a, x, kind, nthreads)
    np.testing.assert_allclose(y, a.to_dense() @ x,
                               rtol=1e-12, atol=0.0)
    assert y[1] == 0.0 and y[2] == 0.0 and y[4] == 0.0 and y[5] == 0.0


@pytest.mark.parametrize("kind", KINDS)
def test_fully_empty_matrix(kind):
    a = csr_from_dense(np.zeros((5, 5)))
    y = spmv(a, np.ones(5), kind, 3)
    np.testing.assert_array_equal(y, np.zeros(5))


@pytest.mark.parametrize("kind", KINDS)
def test_all_zero_rhs_is_exactly_zero(kind):
    rng = np.random.default_rng(SEED)
    a = csr_from_dense(rng.random((7, 7)) * (rng.random((7, 7)) < 0.5))
    y = spmv(a, np.zeros(7), kind, 2)
    np.testing.assert_array_equal(y, np.zeros(7))


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("shape", ((3, 7), (7, 3)))
def test_rectangular_matrix_matches_dense(kind, shape):
    rng = np.random.default_rng(SEED)
    a = csr_from_dense(rng.random(shape) * (rng.random(shape) < 0.5))
    x = rng.standard_normal(shape[1])
    np.testing.assert_allclose(spmv(a, x, kind, 2), a.to_dense() @ x,
                               rtol=1e-12, atol=1e-14)


def test_wrong_length_x_raises_typed_error():
    a = _zero_row_matrix()
    with pytest.raises(ScheduleError, match="shape"):
        spmv(a, np.ones(a.ncols + 1))


def test_non_finite_x_raises_and_names_the_index():
    a = _zero_row_matrix()
    x = np.ones(a.ncols)
    x[3] = np.inf
    with pytest.raises(ScheduleError, match="index 3"):
        spmv(a, x)


def test_non_convertible_x_raises_typed_error():
    a = _zero_row_matrix()
    with pytest.raises(ScheduleError, match="not convertible"):
        spmv(a, ["a"] * a.ncols)


def test_non_finite_stored_values_raise_typed_error():
    a = CSRMatrix(2, 2, np.array([0, 1, 2]), np.array([0, 1]),
                  np.array([1.0, np.nan]))
    with pytest.raises(ScheduleError, match="non-finite"):
        spmv(a, np.ones(2))
    # the finiteness verdict is memoised on the matrix: still raises
    with pytest.raises(ScheduleError, match="non-finite"):
        spmv(a, np.ones(2), "2d", 2)


def test_finite_values_memo_does_not_leak_through_pickle():
    import pickle

    a = _zero_row_matrix()
    spmv(a, np.ones(a.ncols))                   # warms _cache_* memos
    b = pickle.loads(pickle.dumps(a))
    assert not hasattr(b, "_cache_values_finite")
    np.testing.assert_array_equal(spmv(b, np.ones(6)),
                                  spmv(a, np.ones(6)))
