"""Tests for the merge-based schedule and kernel."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.features import imbalance_factor
from repro.generators import circuit_matrix, kmer_graph, stencil_2d
from repro.spmv import schedule_1d, schedule_2d, schedule_merge, spmv, spmv_2d

from ..conftest import random_csr


@pytest.mark.parametrize("nthreads", [1, 3, 8, 32])
def test_merge_kernel_matches_scipy(rng, nthreads):
    a = random_csr(60, 400, rng)
    x = rng.standard_normal(60)
    y = spmv(a, x, kind="merge", nthreads=nthreads)
    assert np.allclose(y, a.to_scipy() @ x)


def test_merge_schedule_covers_everything(rng):
    a = random_csr(50, 250, rng)
    s = schedule_merge(a, 7)
    assert s.entry_start[0] == 0
    assert s.entry_start[-1] == a.nnz
    assert s.row_start[-1] == a.nrows
    assert int(s.nnz_per_thread().sum()) == a.nnz


def test_merge_balances_path_not_just_nnz():
    # a matrix with many empty rows: 2D gives one thread all the row
    # overhead; merge splits rows + nnz jointly
    from repro.matrix import coo_from_arrays, csr_from_coo

    n = 1000
    # 10 dense-ish rows at the start, 990 empty rows
    rows = np.repeat(np.arange(10), 50)
    cols = np.tile(np.arange(50), 10)
    a = csr_from_coo(coo_from_arrays(n, n, rows, cols))
    sm = schedule_merge(a, 4)
    s2 = schedule_2d(a, 4)
    rows_merge = np.diff(sm.row_start)
    rows_2d = np.diff(s2.row_start)
    # merge spreads the empty-row overhead; 2D dumps it on one thread
    assert rows_merge.max() < rows_2d.max()


def test_merge_nnz_balance_on_skewed_matrix():
    a = circuit_matrix(800, rail_rows=3, rail_fanout=0.3, seed=0,
                       scrambled=False)
    s = schedule_merge(a, 16)
    assert imbalance_factor(s) < 1.3


def test_merge_path_boundaries_consistent(rng):
    a = random_csr(40, 200, rng)
    s = schedule_merge(a, 5)
    for t in range(5):
        # diagonal identity: rows consumed + entries consumed = d
        d = (t * (a.nrows + a.nnz)) // 5
        assert int(s.row_start[t] + s.entry_start[t]) == d


def test_merge_kernel_accepts_only_partial_row_schedules(rng):
    a = random_csr(10, 40, rng)
    x = np.zeros(10)
    with pytest.raises(ScheduleError):
        spmv_2d(a, x, schedule_1d(a, 2))
    # merge schedules run through the 2D kernel
    y = spmv_2d(a, x, schedule_merge(a, 2))
    assert y.shape == (10,)


def test_merge_on_low_degree_graph(rng):
    a = kmer_graph(400, seed=1)
    x = rng.standard_normal(a.ncols)
    assert np.allclose(spmv(a, x, "merge", 16), a.to_scipy() @ x)


def test_merge_with_model():
    from repro.machine import PerfModel, get_architecture

    arch = get_architecture("Rome")
    a = stencil_2d(30, seed=0)
    pred = PerfModel(arch).predict(a, schedule_merge(a, arch.threads))
    assert pred.seconds > 0
