"""Property-based tests for schedules and kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix import coo_from_arrays, csr_from_coo
from repro.spmv import schedule_1d, schedule_2d, spmv


@st.composite
def csr_and_threads(draw, max_n=50, max_nnz=250):
    n = draw(st.integers(min_value=1, max_value=max_n))
    nnz = draw(st.integers(min_value=0, max_value=max_nnz))
    nthreads = draw(st.integers(min_value=1, max_value=32))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    return csr_from_coo(coo_from_arrays(n, n, rows, cols, vals)), nthreads


@given(csr_and_threads())
@settings(max_examples=50, deadline=None)
def test_schedules_cover_every_entry_exactly_once(data):
    a, nthreads = data
    for builder in (schedule_1d, schedule_2d):
        s = builder(a, nthreads)
        assert s.entry_start[0] == 0
        assert s.entry_start[-1] == a.nnz
        assert int(s.nnz_per_thread().sum()) == a.nnz


@given(csr_and_threads())
@settings(max_examples=50, deadline=None)
def test_2d_schedule_balanced(data):
    a, nthreads = data
    s = schedule_2d(a, nthreads)
    per = s.nnz_per_thread()
    assert per.max() - per.min() <= 1


@given(csr_and_threads())
@settings(max_examples=40, deadline=None)
def test_kernels_agree_with_reference(data):
    a, nthreads = data
    rng = np.random.default_rng(1)
    x = rng.standard_normal(a.ncols)
    expected = a.matvec(x)
    assert np.allclose(spmv(a, x, "1d", nthreads), expected)
    assert np.allclose(spmv(a, x, "2d", nthreads), expected)


@given(csr_and_threads())
@settings(max_examples=30, deadline=None)
def test_1d_boundaries_align_with_rows(data):
    a, nthreads = data
    s = schedule_1d(a, nthreads)
    # every 1D entry boundary is a row boundary
    assert np.all(np.isin(s.entry_start, a.rowptr))
