"""SpGEMM and SpMM against dense oracles, plus their typed failures."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.matrix.build import csr_from_dense
from repro.generators import fem_mesh_2d, stencil_2d
from repro.spmv import spgemm, spgemm_flops, spmm

SEED = 20260808


def _matrices():
    return [
        ("stencil", stencil_2d(7, 6, seed=SEED)),
        ("fem", fem_mesh_2d(50, seed=SEED + 1)),
    ]


MATRICES = _matrices()
IDS = [m[0] for m in MATRICES]


@pytest.mark.parametrize("name,a", MATRICES, ids=IDS)
def test_spgemm_squares_matrix_matches_dense(name, a):
    c = spgemm(a)
    d = a.to_dense()
    np.testing.assert_allclose(c.to_dense(), d @ d,
                               rtol=1e-10, atol=1e-12)


def test_spgemm_general_product_matches_dense():
    rng = np.random.default_rng(SEED)
    a = csr_from_dense(rng.random((5, 7)) * (rng.random((5, 7)) < 0.4))
    b = csr_from_dense(rng.random((7, 4)) * (rng.random((7, 4)) < 0.4))
    c = spgemm(a, b)
    assert c.shape == (5, 4)
    np.testing.assert_allclose(c.to_dense(), a.to_dense() @ b.to_dense(),
                               rtol=1e-10, atol=1e-12)


def test_spgemm_rejects_rectangular_square_and_dim_mismatch():
    rng = np.random.default_rng(SEED)
    rect = csr_from_dense(rng.random((3, 5)))
    with pytest.raises(ScheduleError, match="square"):
        spgemm(rect)
    other = csr_from_dense(rng.random((4, 4)))
    with pytest.raises(ScheduleError, match="inner dimensions"):
        spgemm(rect, other)  # 3x5 times 4x4


def test_spgemm_empty_operand_gives_empty_product():
    empty = csr_from_dense(np.zeros((4, 4)))
    c = spgemm(empty)
    assert c.nnz == 0
    assert c.shape == (4, 4)
    assert spgemm_flops(empty) == 0.0


def test_spgemm_flops_counts_partial_products():
    a = MATRICES[0][1]
    b_row_len = np.diff(a.rowptr)
    expected = 2.0 * float(b_row_len[a.colidx].sum())
    assert spgemm_flops(a) == expected
    assert spgemm_flops(a) >= 2.0 * a.nnz  # diagonal present in stencils


def test_spgemm_is_deterministic():
    a = MATRICES[1][1]
    c1, c2 = spgemm(a), spgemm(a)
    np.testing.assert_array_equal(c1.values, c2.values)
    np.testing.assert_array_equal(c1.colidx, c2.colidx)
    np.testing.assert_array_equal(c1.rowptr, c2.rowptr)


@pytest.mark.parametrize("kind", ("1d", "2d", "merge"))
@pytest.mark.parametrize("nthreads", (1, 3, 8))
@pytest.mark.parametrize("name,a", MATRICES, ids=IDS)
def test_spmm_matches_dense_block_product(name, a, kind, nthreads):
    rng = np.random.default_rng(SEED)
    x = rng.standard_normal((a.ncols, 4))
    y = spmm(a, x, kind, nthreads)
    np.testing.assert_allclose(y, a.to_dense() @ x,
                               rtol=1e-10, atol=1e-12)


def test_spmm_rectangular_matrix():
    rng = np.random.default_rng(SEED)
    a = csr_from_dense(rng.random((3, 7)) * (rng.random((3, 7)) < 0.5))
    x = rng.standard_normal((7, 2))
    y = spmm(a, x)
    assert y.shape == (3, 2)
    np.testing.assert_allclose(y, a.to_dense() @ x,
                               rtol=1e-10, atol=1e-12)


def test_spmm_rejects_bad_blocks():
    a = MATRICES[0][1]
    rng = np.random.default_rng(SEED)
    with pytest.raises(ScheduleError, match="shape"):
        spmm(a, rng.standard_normal(a.ncols))          # 1-D, not a block
    with pytest.raises(ScheduleError, match="shape"):
        spmm(a, rng.standard_normal((a.ncols + 1, 2)))  # wrong row count
    bad = rng.standard_normal((a.ncols, 2))
    bad[1, 1] = np.nan
    with pytest.raises(ScheduleError, match="non-finite"):
        spmm(a, bad)
    with pytest.raises(ScheduleError, match="kernel kind"):
        spmm(a, rng.standard_normal((a.ncols, 2)), kind="3d")


def test_spmm_single_column_matches_spmv():
    from repro.spmv import spmv

    a = MATRICES[0][1]
    rng = np.random.default_rng(SEED)
    x = rng.standard_normal(a.ncols)
    y = spmm(a, x[:, None], "1d", 2)
    np.testing.assert_array_equal(y[:, 0], spmv(a, x, "1d", 2))
