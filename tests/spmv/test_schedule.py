import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.generators import circuit_matrix, stencil_2d
from repro.spmv import schedule_1d, schedule_2d

from ..conftest import random_csr


@pytest.mark.parametrize("nthreads", [1, 2, 7, 16])
def test_1d_covers_all_rows(rng, nthreads):
    a = random_csr(50, 300, rng)
    s = schedule_1d(a, nthreads)
    assert s.row_start[0] == 0
    assert s.row_start[-1] == a.nrows
    assert s.entry_start[-1] == a.nnz
    assert s.nnz_per_thread().sum() == a.nnz


@pytest.mark.parametrize("nthreads", [1, 2, 7, 16])
def test_2d_covers_all_entries(rng, nthreads):
    a = random_csr(50, 300, rng)
    s = schedule_2d(a, nthreads)
    assert s.entry_start[0] == 0
    assert s.entry_start[-1] == a.nnz
    assert s.nnz_per_thread().sum() == a.nnz


def test_1d_rows_evenly_split(rng):
    a = random_csr(64, 200, rng)
    s = schedule_1d(a, 8)
    rows_per = np.diff(s.row_start)
    assert rows_per.max() - rows_per.min() <= 1


def test_2d_nnz_evenly_split(rng):
    a = random_csr(64, 512, rng)
    s = schedule_2d(a, 8)
    per = s.nnz_per_thread()
    assert per.max() - per.min() <= 1


def test_2d_balances_skewed_matrix():
    from repro.features import imbalance_factor

    a = circuit_matrix(600, rail_rows=4, rail_fanout=0.3, seed=0,
                       scrambled=False)
    s1 = schedule_1d(a, 16)
    s2 = schedule_2d(a, 16)
    assert imbalance_factor(s2) < imbalance_factor(s1)
    assert imbalance_factor(s2) < 1.1


def test_1d_imbalance_on_dense_row():
    a = circuit_matrix(600, rail_rows=2, rail_fanout=0.4, seed=0,
                       scrambled=False)
    from repro.features import imbalance_factor_1d

    assert imbalance_factor_1d(a, 16) > 1.5


def test_invalid_nthreads(rng):
    a = random_csr(10, 20, rng)
    with pytest.raises(ScheduleError):
        schedule_1d(a, 0)
    with pytest.raises(ScheduleError):
        schedule_2d(a, 0)


def test_more_threads_than_rows():
    a = stencil_2d(3, seed=0)  # 9 rows
    s = schedule_1d(a, 32)
    assert s.nnz_per_thread().sum() == a.nnz
    s2 = schedule_2d(a, 32)
    assert s2.nnz_per_thread().sum() == a.nnz


def test_2d_row_start_points_into_matrix(rng):
    a = random_csr(40, 160, rng)
    s = schedule_2d(a, 6)
    rows = a.row_of_entry()
    for t in range(6):
        lo, hi = s.thread_entry_range(t)
        if lo < hi:
            assert rows[lo] == s.row_start[t]


def test_schedule_validation():
    from repro.spmv.schedule import Schedule

    with pytest.raises(ScheduleError):
        Schedule(kind="1d", nthreads=2,
                 entry_start=np.array([0, 5]),  # wrong length
                 row_start=np.array([0, 1, 2]))
    with pytest.raises(ScheduleError):
        Schedule(kind="1d", nthreads=1,
                 entry_start=np.array([1, 5]),  # must start at 0
                 row_start=np.array([0, 2]))


def test_get_schedule_memoises_per_matrix(rng):
    from repro.spmv.schedule import COUNTERS, get_schedule

    a = random_csr(40, 200, rng)
    before = dict(COUNTERS)
    s1 = get_schedule(a, "1d", 4)
    assert COUNTERS["schedule_builds"] == before["schedule_builds"] + 1
    assert get_schedule(a, "1d", 4) is s1
    assert COUNTERS["schedule_hits"] == before["schedule_hits"] + 1
    # a different kind or thread count is its own cache entry
    s2 = get_schedule(a, "2d", 4)
    s3 = get_schedule(a, "1d", 8)
    assert s2 is not s1 and s3 is not s1
    # cached schedule equals a direct build
    direct = schedule_1d(a, 4)
    assert np.array_equal(s1.entry_start, direct.entry_start)
    assert np.array_equal(s1.row_start, direct.row_start)
    # the cache is per matrix object
    b = random_csr(40, 200, rng)
    assert get_schedule(b, "1d", 4) is not s1


def test_get_schedule_unknown_kind(rng):
    from repro.spmv.schedule import get_schedule

    a = random_csr(10, 30, rng)
    with pytest.raises(ScheduleError):
        get_schedule(a, "3d", 4)


def test_schedule_cache_not_pickled(rng):
    import pickle

    from repro.spmv.schedule import get_schedule

    a = random_csr(20, 80, rng)
    get_schedule(a, "1d", 4)
    b = pickle.loads(pickle.dumps(a))
    assert getattr(b, "_cache_schedules", None) is None
