import numpy as np
import pytest

from repro.errors import MatrixFormatError, ReproError
from repro.util import (
    Timer,
    as_rng,
    check_index_array,
    check_positive,
    check_square,
    format_boxplot_rows,
    format_table,
    require,
    spawn_rng,
    time_call,
)


def test_as_rng_from_int_deterministic():
    a = as_rng(7).integers(0, 1000, 5)
    b = as_rng(7).integers(0, 1000, 5)
    assert np.array_equal(a, b)


def test_as_rng_passthrough():
    rng = np.random.default_rng(1)
    assert as_rng(rng) is rng


def test_spawn_rng_independent():
    rng = as_rng(3)
    children = spawn_rng(rng, 3)
    draws = [c.integers(0, 10**9) for c in children]
    assert len(set(draws)) == 3


def test_spawn_rng_negative_rejected():
    with pytest.raises(ValueError):
        spawn_rng(as_rng(0), -1)


def test_timer_measures():
    with Timer() as t:
        sum(range(10000))
    assert t.elapsed > 0


def test_time_call_returns_result_and_best():
    result, best = time_call(lambda: 42, repeats=3)
    assert result == 42
    assert best >= 0


def test_time_call_rejects_zero_repeats():
    with pytest.raises(ValueError):
        time_call(lambda: 0, repeats=0)


def test_require_raises_repro_errors_only():
    with pytest.raises(TypeError):
        require(False, ValueError, "nope")
    with pytest.raises(MatrixFormatError):
        require(False, MatrixFormatError, "bad")
    require(True, MatrixFormatError, "fine")


def test_check_positive():
    assert check_positive("x", 3) == 3
    with pytest.raises(ReproError):
        check_positive("x", 0)


def test_check_square():
    check_square(4, 4)
    with pytest.raises(ReproError):
        check_square(3, 4)


def test_check_index_array_converts_dtype():
    arr = check_index_array("a", np.array([0, 1], dtype=np.int32), 2)
    assert arr.dtype == np.int64


def test_check_index_array_rejects_out_of_range():
    with pytest.raises(MatrixFormatError):
        check_index_array("a", np.array([0, 5]), 3)


def test_format_table_alignment():
    out = format_table(["name", "v"], [["a", 1.5], ["bb", 2.0]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "1.500" in out
    assert lines[0].startswith("name")


def test_format_table_width_mismatch():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_format_boxplot_rows():
    out = format_boxplot_rows(
        ["RCM", "GP"],
        [[0.5, 0.8, 1.0, 1.2, 1.5], [0.7, 1.0, 1.2, 1.4, 2.0]],
        lower=0.0, upper=2.0)
    assert "RCM" in out and "GP" in out
    assert "med=1.00" in out


def test_format_boxplot_mismatched_lengths():
    with pytest.raises(ValueError):
        format_boxplot_rows(["a"], [], 0, 1)
