"""Tests for the extension orderings (CM, GPS, SFC, TSP, SBD)."""

import numpy as np
import pytest

from repro.features import bandwidth, offdiagonal_nonzeros, profile
from repro.generators import fem_mesh_2d, random_er, stencil_2d
from repro.matrix import csr_from_dense
from repro.reorder import (
    EXTRA_ORDERINGS,
    cm_ordering,
    compute_ordering,
    gps_ordering,
    rcm_ordering,
    sbd_ordering,
    sfc_ordering,
    tsp_ordering,
)


@pytest.fixture(scope="module")
def scrambled_mesh():
    return fem_mesh_2d(400, seed=9, scrambled=True)


@pytest.mark.parametrize("name", EXTRA_ORDERINGS)
def test_extras_are_valid_permutations(name, scrambled_mesh):
    r = compute_ordering(scrambled_mesh, name)
    assert sorted(r.perm.tolist()) == list(range(scrambled_mesh.nrows))


def test_cm_is_reverse_of_rcm(scrambled_mesh):
    cm = cm_ordering(scrambled_mesh)
    rcm = rcm_ordering(scrambled_mesh)
    assert np.array_equal(cm.perm[::-1], rcm.perm)
    assert cm.algorithm == "CM"
    assert cm.symmetric


def test_cm_same_bandwidth_as_rcm(scrambled_mesh):
    cm_b = cm_ordering(scrambled_mesh).apply(scrambled_mesh)
    rcm_b = rcm_ordering(scrambled_mesh).apply(scrambled_mesh)
    assert bandwidth(cm_b) == bandwidth(rcm_b)


def test_gps_reduces_bandwidth(scrambled_mesh):
    r = gps_ordering(scrambled_mesh)
    assert bandwidth(r.apply(scrambled_mesh)) < \
        0.5 * bandwidth(scrambled_mesh)


def test_gps_reduces_profile(scrambled_mesh):
    r = gps_ordering(scrambled_mesh)
    assert profile(r.apply(scrambled_mesh)) < profile(scrambled_mesh)


def test_gps_handles_disconnected():
    dense = np.zeros((8, 8))
    dense[0, 1] = dense[1, 0] = 1.0
    dense[4, 5] = dense[5, 4] = 1.0
    r = gps_ordering(csr_from_dense(dense))
    assert sorted(r.perm.tolist()) == list(range(8))


def test_sfc_improves_locality_on_mesh(scrambled_mesh):
    r = sfc_ordering(scrambled_mesh)
    b = r.apply(scrambled_mesh)
    assert offdiagonal_nonzeros(b, 16) < \
        offdiagonal_nonzeros(scrambled_mesh, 16)


def test_sfc_morton_interleave():
    from repro.reorder.sfc import morton_interleave

    # (x=1, y=0) -> key 1; (0, 1) -> 2; (1, 1) -> 3; (2, 0) -> 4
    keys = morton_interleave(np.array([1, 0, 1, 2]),
                             np.array([0, 1, 1, 0]))
    assert keys.tolist() == [1, 2, 3, 4]


def test_tsp_is_row_only(scrambled_mesh):
    r = tsp_ordering(scrambled_mesh, seed=0)
    assert not r.symmetric


def test_tsp_improves_consecutive_row_sharing():
    a = stencil_2d(14, seed=1, scrambled=True)
    r = tsp_ordering(a, seed=0)

    def tour_sharing(m, order):
        total = 0
        for i in range(len(order) - 1):
            ci, _ = m.row_slice(int(order[i]))
            cj, _ = m.row_slice(int(order[i + 1]))
            total += np.intersect1d(ci, cj).size
        return total

    identity = np.arange(a.nrows)
    assert tour_sharing(a, r.perm) > tour_sharing(a, identity)


def test_sbd_valid_two_sided(scrambled_mesh):
    r = sbd_ordering(scrambled_mesh, seed=0)
    assert sorted(r.row_perm.tolist()) == list(range(scrambled_mesh.nrows))
    assert sorted(r.col_perm.tolist()) == list(range(scrambled_mesh.ncols))
    b = r.apply(scrambled_mesh)
    assert b.nnz == scrambled_mesh.nnz


def test_sbd_improves_block_locality(scrambled_mesh):
    r = sbd_ordering(scrambled_mesh, seed=0)
    b = r.apply(scrambled_mesh)
    assert offdiagonal_nonzeros(b, 8) < \
        offdiagonal_nonzeros(scrambled_mesh, 8)


def test_sbd_preserves_values(scrambled_mesh):
    r = sbd_ordering(scrambled_mesh, seed=0)
    b = r.apply(scrambled_mesh)
    assert np.allclose(np.sort(b.values),
                       np.sort(scrambled_mesh.values))


def test_sbd_rejects_empty():
    from repro.errors import ReorderingError
    from repro.matrix import coo_from_arrays, csr_from_coo

    with pytest.raises(ReorderingError):
        sbd_ordering(csr_from_coo(coo_from_arrays(0, 0, [], [])))


def test_extras_on_random_graph():
    a = random_er(150, 6.0, seed=2)
    for name in EXTRA_ORDERINGS:
        r = compute_ordering(a, name)
        assert r.n == 150, name
