"""Golden fast ⇄ reference equivalence harness (PR 7 tentpole).

The reordering hot paths were rewritten on bulk numpy/list primitives
with a hard promise: **permutation-exact** agreement with the scalar
implementations they replaced.  This harness pins that promise over
the full ``tiny`` generator corpus — every square matrix, all six
paper orderings, ``np.array_equal`` on the permutation itself.

The scalar originals stay importable as ``*_reference`` twins (see
docs/correctness.md); they are the slow side of every assertion here,
so this file doubles as the guarantee that they never bit-rot.

Run standalone with::

    PYTHONPATH=src python -m pytest tests/reorder/test_vectorized_equivalence.py

Kernel-level twins (BFS levels, FM refinement, matchings) are pinned
at the bottom — the ordering-level checks would already catch their
divergence, but a direct comparison localises a failure to the stage
that broke.
"""

import numpy as np
import pytest

from repro.generators import fem_mesh_2d
from repro.generators.suite import build_corpus
from repro.graph.adjacency import Graph, graph_from_matrix
from repro.reorder.amd import amd_ordering, amd_ordering_reference
from repro.reorder.gp import gp_ordering, gp_ordering_reference
from repro.reorder.gray import gray_ordering, gray_ordering_reference
from repro.reorder.hp import hp_ordering, hp_ordering_reference
from repro.reorder.nd import nd_ordering, nd_ordering_reference
from repro.reorder.rcm import rcm_ordering, rcm_ordering_reference
from repro.util.rng import as_rng

SEED = 0
NPARTS = 4  # keeps GP/HP reference runtime CI-cheap

#: (name, fast entry point, always-scalar reference twin)
PAIRS = (
    ("RCM", rcm_ordering, rcm_ordering_reference),
    ("AMD", amd_ordering, amd_ordering_reference),
    ("Gray", gray_ordering, gray_ordering_reference),
    ("ND", lambda a: nd_ordering(a, seed=SEED),
     lambda a: nd_ordering_reference(a, seed=SEED)),
    ("GP", lambda a: gp_ordering(a, nparts=NPARTS, seed=SEED),
     lambda a: gp_ordering_reference(a, nparts=NPARTS, seed=SEED)),
    ("HP", lambda a: hp_ordering(a, nparts=NPARTS, seed=SEED),
     lambda a: hp_ordering_reference(a, nparts=NPARTS, seed=SEED)),
)

CORPUS = [(e.name, e.matrix) for e in build_corpus("tiny", seed=SEED)
          if e.matrix.is_square]


@pytest.mark.parametrize("ordering,fast_fn,ref_fn", PAIRS,
                         ids=[p[0] for p in PAIRS])
@pytest.mark.parametrize("name,matrix", CORPUS,
                         ids=[c[0] for c in CORPUS])
def test_fast_permutation_is_bit_identical(name, matrix, ordering,
                                           fast_fn, ref_fn):
    fast = fast_fn(matrix)
    ref = ref_fn(matrix)
    assert fast.symmetric == ref.symmetric
    np.testing.assert_array_equal(
        fast.perm, ref.perm,
        err_msg=f"{ordering} fast path diverged from the scalar "
                f"reference on {name}")


# ----------------------------------------------------------------------
# kernel-level twins: localise a divergence to the stage that broke
# ----------------------------------------------------------------------
def _bench_graph() -> Graph:
    return graph_from_matrix(fem_mesh_2d(300, seed=5, scrambled=True))


def test_bfs_levels_kernel_matches_reference():
    from repro.graph.bfs import bfs_levels_fast, bfs_levels_reference

    g = _bench_graph()
    for start in (0, g.nvertices // 2, g.nvertices - 1):
        np.testing.assert_array_equal(bfs_levels_fast(g, start),
                                      bfs_levels_reference(g, start))


def test_fm_refinement_kernel_matches_reference():
    from repro.partition.fm import (fm_refine_bisection,
                                    fm_refine_bisection_reference)

    g = _bench_graph()
    rng = as_rng(SEED)
    side = (rng.random(g.nvertices) < 0.5).astype(np.int64)
    target0 = int(g.total_vertex_weight()) // 2
    got = fm_refine_bisection(g, side, target0)
    want = fm_refine_bisection_reference(g, side, target0)
    np.testing.assert_array_equal(got, want)


def test_matching_kernels_match_reference():
    from repro.partition.matching import (
        heavy_edge_matching, heavy_edge_matching_reference,
        matching_to_coarse_map, matching_to_coarse_map_reference)

    g = _bench_graph()
    got = heavy_edge_matching(g, rng=as_rng(SEED))
    want = heavy_edge_matching_reference(g, rng=as_rng(SEED))
    np.testing.assert_array_equal(got, want)
    cmap_f, n_f = matching_to_coarse_map(got)
    cmap_r, n_r = matching_to_coarse_map_reference(want)
    assert n_f == n_r
    np.testing.assert_array_equal(cmap_f, cmap_r)


def test_hypergraph_kernels_match_reference():
    from repro.graph.hypergraph import column_net_hypergraph
    from repro.hpartition.coarsen import (
        heavy_connectivity_matching, heavy_connectivity_matching_reference)
    from repro.hpartition.fm import (fm_refine_cutnet,
                                     fm_refine_cutnet_reference)
    from repro.hpartition.initial import (
        greedy_grow_hbisection, greedy_grow_hbisection_reference)

    h = column_net_hypergraph(fem_mesh_2d(300, seed=5, scrambled=True))
    np.testing.assert_array_equal(
        heavy_connectivity_matching(h, rng=as_rng(SEED)),
        heavy_connectivity_matching_reference(h, rng=as_rng(SEED)))
    target0 = int(h.vwgt.sum()) // 2
    np.testing.assert_array_equal(
        greedy_grow_hbisection(h, target0, seed_vertex=0),
        greedy_grow_hbisection_reference(h, target0, seed_vertex=0))
    rng = as_rng(SEED)
    side = (rng.random(h.nvertices) < 0.5).astype(np.int64)
    np.testing.assert_array_equal(
        fm_refine_cutnet(h, side, target0),
        fm_refine_cutnet_reference(h, side, target0))
