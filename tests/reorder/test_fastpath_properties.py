"""Property-based tests for the vectorised reordering fast paths.

Deterministically seeded (no hypothesis dependency), following the
``tests/reorder/test_perm_properties.py`` convention.  Three property
families, aimed specifically at the bugs a vectorisation rewrite can
introduce:

* **bijection** — every fast-path permutation is a true bijection of
  row indices (a dropped or duplicated index is the classic bulk-
  primitive off-by-one);
* **direction sensitivity** — the applied matrix equals the dense
  oracle gather ``A[perm][:, perm]`` (symmetric) / ``A[perm, :]``
  (row-only).  A swapped new-to-old vs old-to-new convention survives
  a round-trip test but not this one;
* **cross-interpreter determinism** — two *fresh* interpreters with
  different ``PYTHONHASHSEED`` values produce byte-identical
  permutations.  The scalar references iterated Python sets in places
  (hash-order dependent on paper); the fast paths must stay a pure
  function of the matrix and the seed, not of hash randomisation.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.generators import (
    banded_matrix,
    circuit_matrix,
    fem_mesh_2d,
    powerlaw_graph,
    stencil_2d,
)
from repro.reorder import compute_ordering
from repro.util.rng import as_rng

SEED = 20260808
FASTPATH_ORDERINGS = ("RCM", "AMD", "Gray", "ND", "GP", "HP")


def _corpus():
    rng = as_rng(SEED)

    def child_seed():
        return int(rng.integers(0, 2**31 - 1))

    return [
        ("stencil", stencil_2d(8, 7, seed=child_seed())),
        ("fem", fem_mesh_2d(60, seed=child_seed())),
        ("powerlaw", powerlaw_graph(56, m=3, seed=child_seed())),
        ("banded", banded_matrix(48, bandwidth=5, seed=child_seed())),
        ("circuit", circuit_matrix(52, nblocks=5, seed=child_seed())),
    ]


CORPUS = _corpus()


@pytest.mark.parametrize("ordering", FASTPATH_ORDERINGS)
@pytest.mark.parametrize("family,matrix", CORPUS,
                         ids=[c[0] for c in CORPUS])
def test_fastpath_perm_is_bijection(family, matrix, ordering):
    perm = compute_ordering(matrix, ordering, nparts=4, seed=SEED).perm
    assert perm.shape == (matrix.nrows,)
    counts = np.bincount(perm, minlength=matrix.nrows)
    assert np.all(counts == 1), f"{ordering} perm is not a bijection"


@pytest.mark.parametrize("ordering", FASTPATH_ORDERINGS)
@pytest.mark.parametrize("family,matrix", CORPUS,
                         ids=[c[0] for c in CORPUS])
def test_fastpath_apply_matches_dense_gather(family, matrix, ordering):
    result = compute_ordering(matrix, ordering, nparts=4, seed=SEED)
    dense = matrix.to_dense()
    want = (dense[result.perm][:, result.perm] if result.symmetric
            else dense[result.perm, :])
    got = result.apply(matrix).to_dense()
    np.testing.assert_array_equal(
        got, want,
        err_msg=f"{ordering} apply() disagrees with the dense gather "
                "oracle (permutation direction?)")


# ----------------------------------------------------------------------
# determinism across interpreters with different hash seeds
# ----------------------------------------------------------------------
_CHILD_SCRIPT = """
import json, sys
from repro.generators import fem_mesh_2d
from repro.reorder import compute_ordering

a = fem_mesh_2d(90, seed=7, scrambled=True)
out = {}
for name in %r:
    out[name] = compute_ordering(a, name, nparts=4, seed=11).perm.tolist()
json.dump(out, sys.stdout)
"""


def _perms_under_hashseed(hashseed: str) -> dict:
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        __import__("repro").__file__)))
    env = dict(os.environ,
               PYTHONHASHSEED=hashseed,
               PYTHONPATH=src_root + os.pathsep
               + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT % (FASTPATH_ORDERINGS,)],
        env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_fastpath_deterministic_across_hash_seeds():
    a = _perms_under_hashseed("1")
    b = _perms_under_hashseed("2")
    assert set(a) == set(FASTPATH_ORDERINGS)
    for name in FASTPATH_ORDERINGS:
        assert a[name] == b[name], (
            f"{name} permutation depends on PYTHONHASHSEED — a hash-"
            "ordered container leaked into the fast path")
