import numpy as np
import pytest

from repro.errors import PermutationError
from repro.reorder import OrderingResult, identity_ordering

from ..conftest import random_csr


def test_identity_ordering_is_noop(rng):
    a = random_csr(20, 80, rng)
    result = identity_ordering(20)
    assert result.algorithm == "original"
    assert np.allclose(result.apply(a).to_dense(), a.to_dense())


def test_symmetric_apply(rng):
    a = random_csr(15, 60, rng)
    p = rng.permutation(15)
    r = OrderingResult("test", p, symmetric=True)
    assert np.allclose(r.apply(a).to_dense(), a.to_dense()[np.ix_(p, p)])


def test_row_only_apply(rng):
    a = random_csr(15, 60, rng)
    p = rng.permutation(15)
    r = OrderingResult("test", p, symmetric=False)
    assert np.allclose(r.apply(a).to_dense(), a.to_dense()[p, :])


def test_invalid_perm_rejected():
    with pytest.raises(PermutationError):
        OrderingResult("bad", np.array([0, 0, 1]), symmetric=True)
    with pytest.raises(PermutationError):
        OrderingResult("bad", np.array([0, 3]), symmetric=True)


def test_with_time():
    r = OrderingResult("x", np.arange(4), True)
    r2 = r.with_time(1.5)
    assert r2.seconds == 1.5
    assert np.array_equal(r2.perm, r.perm)


def test_n_property():
    assert identity_ordering(7).n == 7
