"""Property-based permutation tests for every registered ordering.

Deterministically seeded through :func:`repro.util.rng.as_rng` (no
hypothesis dependency): each property is checked for every ordering in
the registry over a small multi-family corpus, so a new ordering
implementation is automatically held to the same invariants:

* the result is a true permutation — bijective, length ``nrows``;
* applying it preserves the nonzero multiset (values, and row-length
  distribution for symmetric orderings);
* a follow-up identity pass is a no-op (idempotence of application).
"""

import numpy as np
import pytest

from repro.generators import (
    banded_matrix,
    circuit_matrix,
    fem_mesh_2d,
    powerlaw_graph,
    random_er,
    stencil_2d,
)
from repro.reorder import compute_ordering
from repro.reorder.perm import identity_ordering
from repro.reorder.registry import ORDERING_FUNCS
from repro.util.rng import as_rng

SEED = 20260806
ALL_REGISTERED = tuple(ORDERING_FUNCS)


def _corpus():
    """One small matrix per structural family (seeded, deterministic)."""
    rng = as_rng(SEED)

    def child_seed():
        return int(rng.integers(0, 2**31 - 1))

    return [
        ("stencil", stencil_2d(7, 6, seed=child_seed())),
        ("fem", fem_mesh_2d(40, seed=child_seed())),
        ("powerlaw", powerlaw_graph(48, m=3, seed=child_seed())),
        ("er", random_er(36, avg_degree=5.0, seed=child_seed())),
        ("banded", banded_matrix(32, bandwidth=4, seed=child_seed())),
        ("circuit", circuit_matrix(44, nblocks=5, seed=child_seed())),
    ]


CORPUS = _corpus()


@pytest.mark.parametrize("ordering", ALL_REGISTERED)
@pytest.mark.parametrize("family,matrix", CORPUS,
                         ids=[c[0] for c in CORPUS])
def test_result_is_true_permutation(family, matrix, ordering):
    r = compute_ordering(matrix, ordering, nparts=4, seed=SEED)
    assert r.perm.shape == (matrix.nrows,)
    assert r.perm.dtype == np.int64
    # bijective onto range(n): every row index appears exactly once
    assert np.array_equal(np.sort(r.perm), np.arange(matrix.nrows))


@pytest.mark.parametrize("ordering", ALL_REGISTERED)
@pytest.mark.parametrize("family,matrix", CORPUS,
                         ids=[c[0] for c in CORPUS])
def test_application_preserves_nonzero_multiset(family, matrix, ordering):
    r = compute_ordering(matrix, ordering, nparts=4, seed=SEED)
    b = r.apply(matrix)
    assert b.nnz == matrix.nnz
    assert b.shape == matrix.shape
    assert np.allclose(np.sort(b.values), np.sort(matrix.values))
    if r.symmetric:
        # PAPᵀ permutes rows and columns together: the row-length
        # multiset survives even though individual rows move
        assert (sorted(b.row_lengths().tolist())
                == sorted(matrix.row_lengths().tolist()))


@pytest.mark.parametrize("ordering", ALL_REGISTERED)
@pytest.mark.parametrize("family,matrix", CORPUS,
                         ids=[c[0] for c in CORPUS])
def test_identity_pass_is_idempotent(family, matrix, ordering):
    r = compute_ordering(matrix, ordering, nparts=4, seed=SEED)
    b = r.apply(matrix)
    c = identity_ordering(b.nrows).apply(b)
    assert np.array_equal(c.rowptr, b.rowptr)
    assert np.array_equal(c.colidx, b.colidx)
    assert np.array_equal(c.values, b.values)


@pytest.mark.parametrize("ordering", ALL_REGISTERED)
def test_ordering_is_deterministic_under_a_fixed_seed(ordering):
    _, matrix = CORPUS[0]
    r1 = compute_ordering(matrix, ordering, nparts=4, seed=SEED)
    r2 = compute_ordering(matrix, ordering, nparts=4, seed=SEED)
    assert np.array_equal(r1.perm, r2.perm)
