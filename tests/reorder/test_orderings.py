"""Behavioural tests for all six reordering algorithms."""

import numpy as np
import pytest

from repro.generators import (
    banded_matrix,
    circuit_matrix,
    fem_mesh_2d,
    random_er,
    stencil_2d,
)
from repro.matrix import csr_from_dense, is_pattern_symmetric
from repro.reorder import (
    ALL_ORDERINGS,
    amd_ordering,
    compute_ordering,
    gp_ordering,
    gray_ordering,
    hp_ordering,
    nd_ordering,
    rcm_ordering,
)

from ..conftest import random_csr


def bandwidth(a):
    if a.nnz == 0:
        return 0
    return int(np.abs(a.row_of_entry() - a.colidx).max())


@pytest.fixture(scope="module")
def scrambled_mesh():
    return fem_mesh_2d(500, seed=3, scrambled=True)


@pytest.mark.parametrize("name", ALL_ORDERINGS)
def test_every_ordering_is_valid_permutation(name, scrambled_mesh):
    r = compute_ordering(scrambled_mesh, name, nparts=8)
    assert r.n == scrambled_mesh.nrows
    assert sorted(r.perm.tolist()) == list(range(scrambled_mesh.nrows))


@pytest.mark.parametrize("name", ["RCM", "AMD", "ND", "GP", "HP"])
def test_symmetric_orderings_flagged(name, scrambled_mesh):
    assert compute_ordering(scrambled_mesh, name, nparts=8).symmetric


def test_gray_is_row_only(scrambled_mesh):
    assert not compute_ordering(scrambled_mesh, "Gray").symmetric


@pytest.mark.parametrize("name", ["RCM", "AMD", "ND", "GP", "HP", "Gray"])
def test_orderings_work_on_unsymmetric_patterns(name, rng):
    a = random_er(150, 6.0, symmetric=False, seed=4)
    r = compute_ordering(a, name, nparts=4)
    assert sorted(r.perm.tolist()) == list(range(a.nrows))


def test_unknown_ordering_rejected(scrambled_mesh):
    from repro.errors import ReorderingError

    with pytest.raises(ReorderingError):
        compute_ordering(scrambled_mesh, "SuperSort")


def test_ordering_records_time(scrambled_mesh):
    assert compute_ordering(scrambled_mesh, "RCM").seconds >= 0


# --- RCM -------------------------------------------------------------
def test_rcm_reduces_bandwidth_dramatically(scrambled_mesh):
    r = rcm_ordering(scrambled_mesh)
    assert bandwidth(r.apply(scrambled_mesh)) < 0.3 * bandwidth(scrambled_mesh)


def test_rcm_on_path_is_near_optimal():
    # a shuffled path graph has bandwidth 1 under the right order
    n = 50
    dense = np.zeros((n, n))
    for i in range(n - 1):
        dense[i, i + 1] = dense[i + 1, i] = 1.0
    a = csr_from_dense(dense)
    from repro.matrix import permute_symmetric

    shuffled = permute_symmetric(a, np.random.default_rng(0).permutation(n))
    r = rcm_ordering(shuffled)
    assert bandwidth(r.apply(shuffled)) == 1


def test_rcm_handles_disconnected():
    dense = np.zeros((6, 6))
    dense[0, 1] = dense[1, 0] = 1.0
    dense[3, 4] = dense[4, 3] = 1.0
    r = rcm_ordering(csr_from_dense(dense))
    assert sorted(r.perm.tolist()) == list(range(6))


def test_rcm_deterministic(scrambled_mesh):
    r1 = rcm_ordering(scrambled_mesh)
    r2 = rcm_ordering(scrambled_mesh)
    assert np.array_equal(r1.perm, r2.perm)


# --- AMD -------------------------------------------------------------
def test_amd_greedy_plus_postorder_invariants():
    # the final AMD perm is a postorder of its elimination tree, so the
    # first pivot is an etree leaf; and AMD must reduce fill vs original
    a = stencil_2d(8, seed=0)
    r = amd_ordering(a)
    from repro.cholesky import elimination_tree, fill_ratio
    from repro.matrix import permute_symmetric

    b = permute_symmetric(a.pattern_only(), r.perm)
    parent = elimination_tree(b)
    assert 0 not in parent  # first vertex is a leaf (no children)
    assert fill_ratio(a, r) <= fill_ratio(a)


def test_amd_eliminates_chain_cheaply():
    # a path graph eliminated by minimum degree produces no fill; AMD
    # must pick endpoints (degree 1) early, never a middle vertex first
    n = 30
    dense = np.zeros((n, n))
    for i in range(n - 1):
        dense[i, i + 1] = dense[i + 1, i] = 1.0
    r = amd_ordering(csr_from_dense(dense))
    assert r.perm[0] in (0, n - 1)


def test_amd_valid_on_dense_block():
    a = csr_from_dense(np.ones((12, 12)))
    r = amd_ordering(a)
    assert sorted(r.perm.tolist()) == list(range(12))


# --- ND --------------------------------------------------------------
def test_nd_separator_goes_last():
    # on a scrambled grid, the last vertices of the ND order form a
    # separator: removing them must disconnect the rest into >= 2 parts
    a = stencil_2d(12, seed=5, scrambled=True)
    r = nd_ordering(a, leaf_size=16)
    n = a.nrows
    kept = r.perm[: n - max(4, n // 12)]
    import networkx as nx

    dense = a.to_dense() != 0
    gx = nx.from_numpy_array(dense)
    sub = gx.subgraph(kept.tolist())
    assert nx.number_connected_components(sub) >= 2


def test_nd_deterministic(scrambled_mesh):
    r1 = nd_ordering(scrambled_mesh, seed=1)
    r2 = nd_ordering(scrambled_mesh, seed=1)
    assert np.array_equal(r1.perm, r2.perm)


# --- GP / HP ---------------------------------------------------------
def test_gp_groups_partition_blocks(scrambled_mesh):
    from repro.graph import graph_from_matrix
    from repro.partition import partition_graph

    g = graph_from_matrix(scrambled_mesh)
    part = partition_graph(g, 8, rng=np.random.default_rng(0))
    # the grouping permutation must make part ids contiguous blocks
    from repro.reorder.gp import perm_from_parts

    p2 = perm_from_parts(part)
    blocks = part[p2]
    assert np.all(np.diff(blocks) >= 0)


def test_gp_reduces_offdiagonal_nonzeros(scrambled_mesh):
    r = gp_ordering(scrambled_mesh, nparts=8, seed=0)
    b = r.apply(scrambled_mesh)
    nblocks = 8
    size = (scrambled_mesh.nrows + nblocks - 1) // nblocks

    def offdiag(m):
        rows = m.row_of_entry()
        return int(np.sum((rows // size) != (m.colidx // size)))

    assert offdiag(b) < 0.7 * offdiag(scrambled_mesh)


def test_gp_nparts_capped_at_n():
    a = stencil_2d(3, seed=0)
    r = gp_ordering(a, nparts=1000, seed=0)
    assert r.n == a.nrows


def test_hp_valid_and_symmetric(scrambled_mesh):
    r = hp_ordering(scrambled_mesh, nparts=8, seed=0)
    assert r.symmetric
    assert sorted(r.perm.tolist()) == list(range(scrambled_mesh.nrows))


def test_hp_rejects_rectangular(rng):
    from repro.errors import ReorderingError

    a = random_csr(10, 30, rng, ncols=12)
    with pytest.raises(ReorderingError):
        hp_ordering(a)


# --- Gray ------------------------------------------------------------
def test_gray_dense_rows_first():
    a = circuit_matrix(400, rail_rows=3, rail_fanout=0.2, seed=0,
                       scrambled=False)
    r = gray_ordering(a)
    lengths = a.row_lengths()
    ndense = int((lengths > 20).sum())
    assert ndense > 0
    # the first ndense rows of the new order are exactly the dense rows
    assert set(r.perm[:ndense].tolist()) == set(
        np.flatnonzero(lengths > 20).tolist())
    # and they are sorted by descending density
    dl = lengths[r.perm[:ndense]]
    assert np.all(np.diff(dl) <= 0)


def test_gray_rank_is_gray_code_inverse():
    from repro.reorder.gray import gray_rank

    # gray code of i is i ^ (i >> 1); rank must invert it
    i = np.arange(1 << 10)
    gray = i ^ (i >> 1)
    assert np.array_equal(gray_rank(gray, bits=16), i)


def test_gray_bitmaps():
    from repro.reorder.gray import row_bitmaps

    dense = np.zeros((2, 16))
    dense[0, 0] = 1.0   # section 0
    dense[1, 15] = 1.0  # section 15
    bm = row_bitmaps(csr_from_dense(dense), bits=16)
    assert bm[0] == 1
    assert bm[1] == 1 << 15


def test_gray_groups_similar_sparse_rows():
    # rows with identical bitmaps must end up adjacent
    a = banded_matrix(100, 3, density=1.0, seed=0)
    r = gray_ordering(a)
    from repro.reorder.gray import gray_rank, row_bitmaps

    bm = row_bitmaps(a)
    ranks = gray_rank(bm[r.perm])
    assert np.all(np.diff(ranks) >= 0)  # sorted by gray rank
