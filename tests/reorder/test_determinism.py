"""Every reorderer is deterministic for a fixed seed *across processes*.

The in-process half of this property lives in the permutation check
suite (``ordering-deterministic-for-seed``); it cannot catch
nondeterminism seeded by interpreter state, such as iteration order of
a hash-randomised ``dict``/``set`` leaking into a tie-break.  Here two
fresh interpreters with *different* ``PYTHONHASHSEED`` values compute
every registered ordering on the same fixed-seed matrix; the
permutations must agree bit for bit.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

_SCRIPT = r"""
import json, sys
from repro.generators import build_corpus
from repro.reorder import registry

entry = build_corpus("tiny", seed=0)[0]
out = {}
for name in registry.ALL_ORDERINGS + registry.EXTRA_ORDERINGS:
    result = registry.compute_ordering(entry.matrix, name, nparts=4, seed=0)
    out[name] = result.perm.tolist()
json.dump(out, sys.stdout)
"""


def _perms_in_subprocess(hashseed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT], env=env, capture_output=True,
        text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.slow
def test_orderings_deterministic_across_processes():
    first = _perms_in_subprocess("1")
    second = _perms_in_subprocess("2")
    assert first.keys() == second.keys()
    diff = [name for name in first if first[name] != second[name]]
    assert not diff, (
        f"orderings {diff} differ between two interpreters with "
        "different PYTHONHASHSEED — a hash-randomised container leaks "
        "into the permutation")


@pytest.mark.slow
def test_orderings_stable_rerun_same_process_env():
    first = _perms_in_subprocess("7")
    second = _perms_in_subprocess("7")
    assert first == second
