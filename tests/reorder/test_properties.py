"""Property-based tests: every ordering is a valid permutation on
arbitrary random matrices, and structural invariants hold."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import bandwidth, profile
from repro.matrix import coo_from_arrays, csr_from_coo
from repro.reorder import compute_ordering
from repro.reorder.gray import gray_rank


@st.composite
def random_square_csr(draw, max_n=40, max_nnz=160):
    n = draw(st.integers(min_value=2, max_value=max_n))
    nnz = draw(st.integers(min_value=1, max_value=max_nnz))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    return csr_from_coo(coo_from_arrays(n, n, rows, cols, vals))


@given(random_square_csr(),
       st.sampled_from(["RCM", "AMD", "ND", "GP", "HP", "Gray"]))
@settings(max_examples=40, deadline=None)
def test_ordering_is_permutation(a, name):
    r = compute_ordering(a, name, nparts=4)
    assert sorted(r.perm.tolist()) == list(range(a.nrows))


@given(random_square_csr())
@settings(max_examples=25, deadline=None)
def test_symmetric_ordering_preserves_nnz_and_values(a):
    r = compute_ordering(a, "RCM")
    b = r.apply(a)
    assert b.nnz == a.nnz
    assert np.allclose(np.sort(b.values), np.sort(a.values))


@given(random_square_csr())
@settings(max_examples=25, deadline=None)
def test_gray_preserves_row_multiset(a):
    r = compute_ordering(a, "Gray")
    b = r.apply(a)
    assert sorted(b.row_lengths().tolist()) == \
        sorted(a.row_lengths().tolist())


@given(random_square_csr())
@settings(max_examples=20, deadline=None)
def test_spmv_invariant_under_symmetric_reordering(a):
    """PAPᵀ (Px) = P(Ax): reordering must not change SpMV semantics."""
    r = compute_ordering(a, "RCM")
    b = r.apply(a)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(a.ncols)
    y_direct = a.matvec(x)
    y_permuted = b.matvec(x[r.perm])
    assert np.allclose(y_permuted, y_direct[r.perm])


@given(st.integers(1, 1 << 16 - 1))
@settings(max_examples=60, deadline=None)
def test_gray_rank_roundtrip(i):
    gray = i ^ (i >> 1)
    assert int(gray_rank(np.array([gray]), bits=16)[0]) == i


@given(random_square_csr())
@settings(max_examples=20, deadline=None)
def test_features_nonnegative_under_any_ordering(a):
    for name in ("RCM", "Gray"):
        b = compute_ordering(a, name).apply(a)
        assert bandwidth(b) >= 0
        assert profile(b) >= 0
