import numpy as np
import pytest

from repro.matrix import csr_from_dense, is_pattern_symmetric, symmetrize_pattern

from ..conftest import random_csr


def test_symmetric_pattern_detected():
    a = csr_from_dense(np.array([[1.0, 2.0], [3.0, 0.0]]))
    assert is_pattern_symmetric(a)  # values differ but pattern symmetric


def test_asymmetric_pattern_detected():
    a = csr_from_dense(np.array([[1.0, 2.0], [0.0, 1.0]]))
    assert not is_pattern_symmetric(a)


def test_rectangular_never_symmetric(rng):
    a = random_csr(5, 10, rng, ncols=6)
    assert not is_pattern_symmetric(a)


def test_symmetrize_produces_symmetric_pattern(rng):
    a = random_csr(30, 100, rng)
    s = symmetrize_pattern(a)
    assert is_pattern_symmetric(s)


def test_symmetrize_is_union_of_patterns(rng):
    a = random_csr(20, 60, rng)
    s = symmetrize_pattern(a)
    da = a.to_dense() != 0
    ds = s.to_dense() != 0
    assert np.array_equal(ds, da | da.T)


def test_symmetrize_idempotent(rng):
    a = random_csr(20, 60, rng)
    s1 = symmetrize_pattern(a)
    s2 = symmetrize_pattern(s1)
    assert np.array_equal(s1.colidx, s2.colidx)
    assert np.array_equal(s1.rowptr, s2.rowptr)


def test_symmetrize_rejects_rectangular(rng):
    a = random_csr(5, 10, rng, ncols=6)
    with pytest.raises(ValueError):
        symmetrize_pattern(a)


def test_symmetrize_values_are_unit(rng):
    a = random_csr(10, 30, rng)
    s = symmetrize_pattern(a)
    assert np.all(s.values == 1.0)
