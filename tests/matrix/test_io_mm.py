import io

import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.matrix import read_matrix_market, write_matrix_market

from ..conftest import random_csr


def roundtrip(a):
    buf = io.StringIO()
    write_matrix_market(a, buf)
    buf.seek(0)
    return read_matrix_market(buf)


def test_roundtrip_random(rng):
    a = random_csr(20, 80, rng, ncols=30)
    b = roundtrip(a)
    assert b.shape == a.shape
    assert np.allclose(a.to_dense(), b.to_dense())


def test_roundtrip_empty():
    from repro.matrix import coo_from_arrays, csr_from_coo

    a = csr_from_coo(coo_from_arrays(3, 3, [], []))
    b = roundtrip(a)
    assert b.nnz == 0 and b.shape == (3, 3)


def test_read_pattern_matrix():
    text = """%%MatrixMarket matrix coordinate pattern general
3 3 2
1 2
3 1
"""
    a = read_matrix_market(text)
    assert a.nnz == 2
    assert a.to_dense()[0, 1] == 1.0
    assert a.to_dense()[2, 0] == 1.0


def test_read_symmetric_expands():
    text = """%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 5.0
2 1 2.0
3 2 4.0
"""
    a = read_matrix_market(text)
    dense = a.to_dense()
    assert dense[0, 0] == 5.0
    assert dense[1, 0] == 2.0 and dense[0, 1] == 2.0
    assert dense[2, 1] == 4.0 and dense[1, 2] == 4.0
    assert a.nnz == 5


def test_read_skew_symmetric():
    text = """%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
"""
    a = read_matrix_market(text)
    dense = a.to_dense()
    assert dense[1, 0] == 3.0 and dense[0, 1] == -3.0


def test_read_with_comments():
    text = """%%MatrixMarket matrix coordinate real general
% a comment
% another comment
2 2 1
1 2 7.0
"""
    a = read_matrix_market(text)
    assert a.to_dense()[0, 1] == 7.0


def test_complex_rejected():
    text = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"
    with pytest.raises(MatrixFormatError):
        read_matrix_market(text)


def test_bad_banner_rejected():
    with pytest.raises(MatrixFormatError):
        read_matrix_market("%%NotMM matrix coordinate real general\n1 1 0\n")


def test_array_format_rejected():
    with pytest.raises(MatrixFormatError):
        read_matrix_market("%%MatrixMarket matrix array real general\n1 1\n")


def test_entry_count_mismatch_rejected():
    text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
    with pytest.raises(MatrixFormatError):
        read_matrix_market(text)


def test_integer_field():
    text = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 3\n"
    a = read_matrix_market(text)
    assert a.to_dense()[0, 1] == 3.0


def test_file_roundtrip(tmp_path, rng):
    a = random_csr(10, 40, rng)
    path = tmp_path / "m.mtx"
    write_matrix_market(a, path)
    b = read_matrix_market(path)
    assert np.allclose(a.to_dense(), b.to_dense())
