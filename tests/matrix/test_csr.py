import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.matrix import CSRMatrix, coo_from_arrays, csr_from_coo, csr_from_dense, csr_identity

from ..conftest import random_csr


def test_from_coo_sorts_and_dedups(rng):
    coo = coo_from_arrays(3, 3, [2, 0, 0, 2], [0, 2, 2, 0], [1.0, 1.0, 2.0, 3.0])
    a = csr_from_coo(coo)
    assert a.nnz == 2
    dense = a.to_dense()
    assert dense[0, 2] == 3.0
    assert dense[2, 0] == 4.0


def test_matches_scipy_on_random(rng):
    a = random_csr(60, 400, rng)
    sp = a.to_scipy()
    assert np.allclose(a.to_dense(), sp.toarray())


def test_matvec_matches_scipy(rng):
    a = random_csr(50, 300, rng, ncols=70)
    x = rng.standard_normal(70)
    assert np.allclose(a.matvec(x), a.to_scipy() @ x)


def test_matvec_shape_check(rng):
    a = random_csr(5, 10, rng)
    with pytest.raises(MatrixFormatError):
        a.matvec(np.zeros(6))


def test_row_lengths_and_row_of_entry(rng):
    a = random_csr(30, 120, rng)
    lengths = a.row_lengths()
    assert lengths.sum() == a.nnz
    rows = a.row_of_entry()
    assert np.array_equal(np.bincount(rows, minlength=30), lengths)


def test_transpose_roundtrip(rng):
    a = random_csr(25, 100, rng, ncols=40)
    t = a.transpose()
    assert t.shape == (40, 25)
    assert np.allclose(t.to_dense(), a.to_dense().T)
    assert np.allclose(t.transpose().to_dense(), a.to_dense())


def test_diagonal(rng):
    a = csr_from_dense(np.array([[1.0, 2.0], [0.0, 5.0]]))
    assert np.array_equal(a.diagonal(), [1.0, 5.0])


def test_diagonal_with_missing_entries():
    a = csr_from_dense(np.array([[0.0, 2.0], [3.0, 0.0]]))
    assert np.array_equal(a.diagonal(), [0.0, 0.0])


def test_identity():
    eye = csr_identity(4)
    assert np.allclose(eye.to_dense(), np.eye(4))


def test_pattern_only(rng):
    a = random_csr(10, 40, rng)
    p = a.pattern_only()
    assert np.all(p.values == 1.0)
    assert np.array_equal(p.colidx, a.colidx)


def test_unsorted_columns_rejected():
    with pytest.raises(MatrixFormatError):
        CSRMatrix(2, 3, np.array([0, 2, 2]), np.array([2, 1]),
                  np.array([1.0, 2.0]))


def test_duplicate_columns_in_row_rejected():
    with pytest.raises(MatrixFormatError):
        CSRMatrix(1, 3, np.array([0, 2]), np.array([1, 1]),
                  np.array([1.0, 2.0]))


def test_bad_rowptr_rejected():
    with pytest.raises(MatrixFormatError):
        CSRMatrix(2, 2, np.array([0, 2, 1]), np.array([0, 1]),
                  np.array([1.0, 2.0]))


def test_rowptr_must_start_at_zero():
    with pytest.raises(MatrixFormatError):
        CSRMatrix(1, 2, np.array([1, 2]), np.array([0]), np.array([1.0]))


def test_row_slice(rng):
    a = csr_from_dense(np.array([[0.0, 1.0, 2.0], [3.0, 0.0, 0.0]]))
    cols, vals = a.row_slice(0)
    assert np.array_equal(cols, [1, 2])
    assert np.array_equal(vals, [1.0, 2.0])


def test_csr_from_dense_tolerance():
    a = csr_from_dense(np.array([[1e-12, 1.0]]), tol=1e-9)
    assert a.nnz == 1


def test_to_coo_roundtrip(rng):
    a = random_csr(20, 80, rng)
    b = csr_from_coo(a.to_coo())
    assert np.allclose(a.to_dense(), b.to_dense())


def test_row_of_entry_memoised(rng):
    a = random_csr(30, 120, rng)
    rows = a.row_of_entry()
    assert a.row_of_entry() is rows
    assert not rows.flags.writeable
    expect = np.repeat(np.arange(a.nrows), np.diff(a.rowptr))
    assert np.array_equal(rows, expect)


def test_memoised_caches_dropped_on_pickle(rng):
    import pickle

    a = random_csr(30, 120, rng)
    a.row_of_entry()
    b = pickle.loads(pickle.dumps(a))
    assert getattr(b, "_cache_row_of_entry", None) is None
    assert np.array_equal(b.row_of_entry(), a.row_of_entry())
