import numpy as np
import pytest

from repro.errors import PermutationError
from repro.matrix import permute_csr, permute_rows, permute_symmetric
from repro.matrix.permute import invert_permutation

from ..conftest import random_csr


def test_symmetric_permutation_matches_dense(rng):
    a = random_csr(30, 150, rng)
    p = rng.permutation(30)
    pa = permute_symmetric(a, p)
    assert np.allclose(pa.to_dense(), a.to_dense()[np.ix_(p, p)])


def test_row_permutation_matches_dense(rng):
    a = random_csr(30, 150, rng, ncols=45)
    p = rng.permutation(30)
    pa = permute_rows(a, p)
    assert np.allclose(pa.to_dense(), a.to_dense()[p, :])


def test_two_sided_permutation_matches_dense(rng):
    a = random_csr(20, 100, rng, ncols=35)
    rp = rng.permutation(20)
    cp = rng.permutation(35)
    pa = permute_csr(a, rp, cp)
    assert np.allclose(pa.to_dense(), a.to_dense()[np.ix_(rp, cp)])


def test_identity_permutation_is_noop(rng):
    a = random_csr(25, 90, rng)
    p = np.arange(25)
    assert np.allclose(permute_symmetric(a, p).to_dense(), a.to_dense())
    assert np.allclose(permute_rows(a, p).to_dense(), a.to_dense())


def test_inverse_permutation_undoes(rng):
    a = random_csr(25, 90, rng)
    p = rng.permutation(25)
    back = permute_symmetric(permute_symmetric(a, p), invert_permutation(p))
    assert np.allclose(back.to_dense(), a.to_dense())


def test_invert_permutation_involution(rng):
    p = rng.permutation(50)
    assert np.array_equal(invert_permutation(invert_permutation(p)), p)


def test_wrong_length_rejected(rng):
    a = random_csr(10, 30, rng)
    with pytest.raises(PermutationError):
        permute_symmetric(a, np.arange(9))


def test_non_bijection_rejected(rng):
    a = random_csr(10, 30, rng)
    p = np.zeros(10, dtype=np.int64)
    with pytest.raises(PermutationError):
        permute_rows(a, p)


def test_out_of_range_rejected(rng):
    a = random_csr(10, 30, rng)
    p = np.arange(10)
    p[0] = 10
    with pytest.raises(PermutationError):
        permute_rows(a, p)


def test_symmetric_requires_square(rng):
    a = random_csr(10, 30, rng, ncols=12)
    with pytest.raises(PermutationError):
        permute_symmetric(a, np.arange(10))


def test_row_permutation_preserves_row_contents(rng):
    a = random_csr(15, 60, rng)
    p = rng.permutation(15)
    pa = permute_rows(a, p)
    for new_row in range(15):
        cols, vals = pa.row_slice(new_row)
        ocols, ovals = a.row_slice(int(p[new_row]))
        assert np.array_equal(cols, ocols)
        assert np.array_equal(vals, ovals)
