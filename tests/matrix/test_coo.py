import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.matrix import COOMatrix, coo_from_arrays


def test_basic_construction():
    m = coo_from_arrays(3, 4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
    assert m.shape == (3, 4)
    assert m.nnz == 3
    assert m.values.dtype == np.float64
    assert m.row.dtype == np.int64


def test_pattern_values_default_to_one():
    m = coo_from_arrays(2, 2, [0, 1], [1, 0])
    assert np.array_equal(m.values, [1.0, 1.0])


def test_out_of_range_row_rejected():
    with pytest.raises(MatrixFormatError):
        coo_from_arrays(2, 2, [0, 2], [0, 1], [1.0, 1.0])


def test_out_of_range_col_rejected():
    with pytest.raises(MatrixFormatError):
        coo_from_arrays(2, 2, [0, 1], [0, -1], [1.0, 1.0])


def test_length_mismatch_rejected():
    with pytest.raises(MatrixFormatError):
        COOMatrix(2, 2, np.array([0]), np.array([0, 1]), np.array([1.0, 2.0]))


def test_float_indices_rejected():
    with pytest.raises(MatrixFormatError):
        COOMatrix(2, 2, np.array([0.0, 1.0]), np.array([0, 1]),
                  np.array([1.0, 2.0]))


def test_transpose_swaps_coordinates():
    m = coo_from_arrays(2, 3, [0, 1], [2, 0], [5.0, 7.0])
    t = m.transpose()
    assert t.shape == (3, 2)
    assert np.array_equal(t.row, m.col)
    assert np.array_equal(t.col, m.row)


def test_to_dense_sums_duplicates():
    m = coo_from_arrays(2, 2, [0, 0], [1, 1], [1.5, 2.5])
    dense = m.to_dense()
    assert dense[0, 1] == 4.0


def test_empty_matrix():
    m = coo_from_arrays(0, 0, [], [])
    assert m.nnz == 0
    assert m.to_dense().shape == (0, 0)


def test_with_values_preserves_pattern():
    m = coo_from_arrays(2, 2, [0, 1], [1, 0], [1.0, 2.0])
    m2 = m.with_values(np.array([9.0, 8.0]))
    assert np.array_equal(m2.row, m.row)
    assert np.array_equal(m2.values, [9.0, 8.0])


def test_negative_dimensions_rejected():
    with pytest.raises(MatrixFormatError):
        COOMatrix(-1, 2, np.array([], dtype=np.int64),
                  np.array([], dtype=np.int64), np.array([]))
