"""Property-based tests for the matrix substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix import coo_from_arrays, csr_from_coo, permute_symmetric
from repro.matrix.permute import invert_permutation


@st.composite
def coo_triplets(draw, max_n=30, max_nnz=120):
    n = draw(st.integers(min_value=1, max_value=max_n))
    nnz = draw(st.integers(min_value=0, max_value=max_nnz))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz))
    vals = draw(st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=nnz, max_size=nnz))
    return n, np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64), \
        np.array(vals)


@given(coo_triplets())
@settings(max_examples=60, deadline=None)
def test_csr_roundtrip_preserves_dense(data):
    n, rows, cols, vals = data
    coo = coo_from_arrays(n, n, rows, cols, vals)
    a = csr_from_coo(coo)
    assert np.allclose(a.to_dense(), coo.to_dense())


@given(coo_triplets())
@settings(max_examples=60, deadline=None)
def test_csr_invariants(data):
    n, rows, cols, vals = data
    a = csr_from_coo(coo_from_arrays(n, n, rows, cols, vals))
    assert a.rowptr[0] == 0
    assert a.rowptr[-1] == a.nnz
    assert np.all(np.diff(a.rowptr) >= 0)
    for i in range(n):
        c, _ = a.row_slice(i)
        assert np.all(np.diff(c) > 0)


@given(coo_triplets(), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_symmetric_permutation_roundtrip(data, seed):
    n, rows, cols, vals = data
    a = csr_from_coo(coo_from_arrays(n, n, rows, cols, vals))
    p = np.random.default_rng(seed).permutation(n)
    back = permute_symmetric(permute_symmetric(a, p), invert_permutation(p))
    assert np.allclose(back.to_dense(), a.to_dense())


@given(coo_triplets())
@settings(max_examples=40, deadline=None)
def test_matvec_linear(data):
    n, rows, cols, vals = data
    a = csr_from_coo(coo_from_arrays(n, n, rows, cols, vals))
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    left = a.matvec(2.0 * x + y)
    right = 2.0 * a.matvec(x) + a.matvec(y)
    assert np.allclose(left, right)


@given(st.integers(1, 40), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_invert_permutation_is_inverse(n, seed):
    p = np.random.default_rng(seed).permutation(n)
    inv = invert_permutation(p)
    assert np.array_equal(p[inv], np.arange(n))
    assert np.array_equal(inv[p], np.arange(n))
