import pytest

from repro.advisor import Advisor, AdvisorModel
from repro.advisor.cache import LRUCache
from repro.errors import AdvisorError


def test_untrained_model_rejected():
    with pytest.raises(AdvisorError):
        Advisor(AdvisorModel())


def test_advise_returns_ranked_advice(advisor, corpus, arch):
    e = corpus[0]
    ranked = advisor.advise(e.matrix, arch, "1d", matrix_name=e.name)
    assert {a.ordering for a in ranked} == set(advisor.model.orderings)
    top2 = advisor.advise(e.matrix, arch, "1d", matrix_name=e.name, top=2)
    assert top2 == ranked[:2]


def test_advise_is_deterministic(advisor, corpus, arch):
    e = corpus[1]
    first = advisor.advise(e.matrix, arch, "2d", matrix_name=e.name)
    assert advisor.advise(e.matrix, arch, "2d", matrix_name=e.name) == first


def test_caches_hit_on_repeat_requests(model, corpus, arch):
    advisor = Advisor(model)
    e = corpus[2]
    advisor.advise(e.matrix, arch, "1d", matrix_name=e.name)
    assert advisor.stats["advice"]["hits"] == 0
    advisor.advise(e.matrix, arch, "1d", matrix_name=e.name)
    assert advisor.stats["advice"]["hits"] == 1
    # same matrix, other kernel: advice missed, features reused
    advisor.advise(e.matrix, arch, "2d", matrix_name=e.name)
    assert advisor.stats["features"]["hits"] >= 1
    advisor.clear_caches()
    assert advisor.stats["advice"]["size"] == 0


def test_iteration_budget_changes_cache_key(model, corpus, arch):
    advisor = Advisor(model)
    e = corpus[0]
    free = advisor.advise(e.matrix, arch, "1d", matrix_name=e.name)
    gated = advisor.advise(e.matrix, arch, "1d", matrix_name=e.name,
                           iterations=1e-9)
    assert gated[0].ordering == "original"
    assert gated != free or free[0].ordering == "original"


def test_advise_many_matches_single_requests(advisor, corpus, arch):
    entries = corpus[:4]
    batch = advisor.advise_many(entries, arch, "1d", max_workers=4)
    assert len(batch) == len(entries)
    for e, ranked in zip(entries, batch):
        assert ranked == advisor.advise(e.matrix, arch, "1d",
                                        matrix_name=e.name)


def test_advise_many_accepts_bare_matrices(advisor, corpus, arch):
    mats = [e.matrix for e in corpus[:2]]
    names = [e.name for e in corpus[:2]]
    batch = advisor.advise_many(mats, arch, "1d", names=names)
    assert len(batch) == 2
    assert advisor.advise_many([], arch) == []


def test_advise_many_reuses_instance_pool(model, corpus, arch):
    """The reusable pool is created once, survives repeated batches,
    and close() tears it down; max_workers still forces a one-off."""
    advisor = Advisor(model, workers=2)
    try:
        assert advisor._pool is None          # lazy until first batch
        advisor.advise_many(corpus[:2], arch, "1d")
        pool = advisor._pool
        assert pool is not None
        advisor.advise_many(corpus[:2], arch, "2d")
        assert advisor._pool is pool          # same pool, not per-call
        # an explicit max_workers bypasses the instance pool
        advisor.advise_many(corpus[:2], arch, "1d", max_workers=1)
        assert advisor._pool is pool
    finally:
        advisor.close()
    assert advisor._pool is None
    advisor.close()                           # idempotent


def test_advise_many_after_close_recreates_pool(model, corpus, arch):
    advisor = Advisor(model, workers=1)
    advisor.advise_many(corpus[:1], arch, "1d")
    advisor.close()
    batch = advisor.advise_many(corpus[:2], arch, "1d")
    assert len(batch) == 2
    advisor.close()


def test_advisor_context_manager_closes_pool(model, corpus, arch):
    with Advisor(model, workers=2) as advisor:
        advisor.advise_many(corpus[:2], arch, "1d")
        assert advisor._pool is not None
    assert advisor._pool is None


def test_lru_cache_evicts_and_counts():
    c = LRUCache(capacity=2)
    c.put("a", 1)
    c.put("b", 2)
    assert c.get("a") == 1          # refreshes "a"
    c.put("c", 3)                   # evicts "b"
    assert c.get("b") is None
    assert c.get_or_compute("d", lambda: 4) == 4
    s = c.stats
    assert s["evictions"] >= 1
    assert s["hits"] == 1 and s["misses"] == 2
    assert s["size"] == 2 and s["capacity"] == 2
    with pytest.raises(AdvisorError):
        LRUCache(capacity=0)
