"""Shared fixtures for the advisor tests.

One small corpus, one architecture and one sweep-backed dataset are
built per module; the ordering subset keeps the reordering pass fast
while still giving the learner several labels to choose between.
"""

from __future__ import annotations

import pytest

from repro.advisor import Advisor, AdvisorModel, build_dataset
from repro.generators import build_corpus
from repro.harness import OrderingCache
from repro.machine import get_architecture

ORDERINGS = ("RCM", "GP", "Gray")


@pytest.fixture(scope="module")
def arch():
    return get_architecture("Rome")


@pytest.fixture(scope="module")
def corpus():
    return build_corpus("tiny", seed=0)


@pytest.fixture(scope="module")
def ordering_cache():
    return OrderingCache()


@pytest.fixture(scope="module")
def dataset(corpus, arch, ordering_cache):
    return build_dataset(corpus[:8], [arch], orderings=ORDERINGS,
                         cache=ordering_cache, seed=0)


@pytest.fixture(scope="module")
def model(dataset):
    return AdvisorModel(k=3).fit(dataset)


@pytest.fixture(scope="module")
def advisor(model):
    return Advisor(model)
