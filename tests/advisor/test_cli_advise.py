import json

import pytest

from repro.harness.cli import main
from repro.matrix import write_matrix_market


@pytest.fixture
def mtx_file(tmp_path, rng):
    from ..conftest import random_csr

    a = random_csr(60, 400, rng, symmetric=True)
    path = tmp_path / "m.mtx"
    write_matrix_market(a, path)
    return str(path)


def test_advise_trains_and_ranks(mtx_file, capsys):
    assert main(["advise", mtx_file, "--arch", "Rome",
                 "--train-limit", "4", "--orderings", "RCM,Gray"]) == 0
    out = capsys.readouterr().out
    assert "trained on" in out
    assert "ranked orderings" in out
    assert "RCM" in out and "original" in out


def test_advise_saves_and_loads_model(mtx_file, tmp_path, capsys):
    model_path = str(tmp_path / "advisor.json")
    assert main(["advise", mtx_file, "--arch", "Rome",
                 "--train-limit", "4", "--orderings", "RCM,Gray",
                 "--model", model_path]) == 0
    assert "saved model" in capsys.readouterr().out
    with open(model_path) as f:
        assert json.load(f)["version"] == 2  # workload one-hot block
    # second invocation loads instead of retraining
    assert main(["advise", mtx_file, "--arch", "Rome",
                 "--model", model_path, "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "loaded model" in out
    assert "trained on" not in out


def test_advise_named_standin(capsys):
    assert main(["advise", "Freescale2", "--arch", "Rome",
                 "--scale", "0.1", "--train-limit", "3",
                 "--orderings", "RCM,Gray", "--iterations", "1e-9"]) == 0
    out = capsys.readouterr().out
    assert "keep the natural order" in out


def test_advise_rejects_unknown_input():
    with pytest.raises(SystemExit):
        main(["advise", "no_such_matrix_anywhere", "--arch", "Rome"])
