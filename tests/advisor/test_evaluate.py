import pytest

from repro.advisor import Advisor, AdvisorModel, evaluate_advisor
from repro.errors import AdvisorError
from repro.generators import split_corpus

from .conftest import ORDERINGS


@pytest.fixture(scope="module")
def report(corpus, arch, ordering_cache, dataset):
    # train on the first eight matrices (the shared dataset fixture),
    # evaluate on four unseen ones from the same corpus
    advisor = Advisor(AdvisorModel(k=3).fit(dataset))
    return evaluate_advisor(advisor, corpus[8:12], [arch],
                            orderings=ORDERINGS, cache=ordering_cache,
                            seed=0)


def test_report_shape(report):
    assert report.cases == 4 * 2
    assert 0.0 <= report.top1_accuracy <= 1.0
    assert 0.0 <= report.within_5pct <= 1.0
    assert report.top1_accuracy <= report.within_5pct
    assert sum(report.picks.values()) == report.cases


def test_oracle_bounds_everything(report):
    # the oracle includes "original", so its geomean is >= 1 and no
    # policy can beat it
    assert report.geomean_oracle >= 1.0
    assert report.geomean_advisor <= report.geomean_oracle + 1e-12
    assert report.geomean_rcm <= report.geomean_oracle + 1e-12
    assert report.geomean_natural == 1.0
    assert 0.0 < report.fraction_of_oracle <= 1.0 + 1e-12


def test_report_rows_render(report):
    rows = report.rows()
    assert [r[0] for r in rows] == ["oracle-best", "advisor",
                                    "always-RCM", "natural order"]
    assert rows[0][2] == 1.0


def test_split_feeds_evaluation(corpus):
    train, test = split_corpus(corpus, test_fraction=0.25, seed=7)
    train_names = {e.name for e in train}
    assert all(e.name not in train_names for e in test)


def test_empty_evaluation_rejected(advisor, arch):
    with pytest.raises(AdvisorError):
        evaluate_advisor(advisor, [], [arch])
