import numpy as np
import pytest

from repro.advisor import build_dataset
from repro.advisor.featurize import FEATURE_NAMES
from repro.errors import AdvisorError

from .conftest import ORDERINGS


def test_row_count(dataset, corpus, arch):
    # 8 matrices x 1 arch x 2 kernels
    assert len(dataset) == 8 * 2


def test_rows_cover_both_kernels(dataset):
    kernels = {(r.matrix, r.kernel) for r in dataset}
    matrices = {r.matrix for r in dataset}
    assert len(kernels) == 2 * len(matrices)


def test_speedups_include_baseline(dataset):
    for row in dataset:
        assert row.speedups["original"] == 1.0
        assert set(row.speedups) == {"original", *ORDERINGS}


def test_best_matches_speedups(dataset):
    for row in dataset:
        assert row.best in row.speedups
        assert row.best_speedup == row.speedups[row.best]
        assert row.best_speedup == max(row.speedups.values())
        assert row.best_speedup >= 1.0  # "original" is always a candidate


def test_features_shape_and_finiteness(dataset):
    for row in dataset:
        assert row.features.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(row.features))


def test_kernel_flag_differs_between_kernels(dataset):
    idx = FEATURE_NAMES.index("kernel_2d")
    by_kernel = {}
    for row in dataset:
        by_kernel.setdefault(row.kernel, row.features[idx])
    assert by_kernel["1d"] == 0.0
    assert by_kernel["2d"] == 1.0


def test_reorder_costs_and_taxonomy(dataset):
    classes = set()
    for row in dataset:
        assert set(row.reorder_seconds) == set(ORDERINGS)
        assert all(s >= 0 for s in row.reorder_seconds.values())
        assert row.spmv_seconds > 0
        classes.add(row.taxonomy_class)
        assert 0 <= row.taxonomy_class <= 6
    assert classes - {0}  # at least one row got a real §4.4 class


def test_empty_corpus_rejected(arch):
    with pytest.raises(AdvisorError):
        build_dataset([], [arch])


def test_dataset_reuses_ordering_cache(corpus, arch, ordering_cache):
    # the module fixtures already swept these matrices; replaying the
    # dataset build through the same cache must not recompute orderings
    before = ordering_cache.stats["misses"]
    build_dataset(corpus[:2], [arch], orderings=ORDERINGS,
                  cache=ordering_cache, seed=0)
    assert ordering_cache.stats["misses"] == before
    assert ordering_cache.stats["hits"] > 0
