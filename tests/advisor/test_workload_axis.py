"""The workload dimension through featurizer, dataset, model, service."""

import numpy as np
import pytest

from repro.advisor.featurize import (
    FEATURE_NAMES,
    WORKLOAD_FEATURE_NAMES,
    featurize,
    workload_features,
)
from repro.advisor.dataset import build_dataset
from repro.advisor.model import MODEL_VERSION, AdvisorModel
from repro.advisor.service import Advisor
from repro.advisor.train import train_model
from repro.errors import AdvisorError
from repro.generators.suite import build_corpus
from repro.machine.arch import get_architecture

SEED = 20260808
ARCH = get_architecture("Milan B")


@pytest.fixture(scope="module")
def corpus():
    return build_corpus("tiny", seed=0)[:3]


def test_feature_layout_has_the_workload_block():
    assert WORKLOAD_FEATURE_NAMES == (
        "workload_cg", "workload_jacobi", "workload_spgemm",
        "workload_spmm")
    assert FEATURE_NAMES[-4:] == WORKLOAD_FEATURE_NAMES


def test_workload_one_hot():
    np.testing.assert_array_equal(workload_features("spmv"),
                                  np.zeros(4))
    np.testing.assert_array_equal(workload_features("jacobi"),
                                  [0.0, 1.0, 0.0, 0.0])
    with pytest.raises(AdvisorError, match="unknown workload"):
        workload_features("gmres")


def test_featurize_defaults_to_the_spmv_base_level(corpus):
    a = corpus[0].matrix
    base = featurize(a, ARCH, "1d")
    explicit = featurize(a, ARCH, "1d", "spmv")
    np.testing.assert_array_equal(base, explicit)
    cg = featurize(a, ARCH, "1d", "cg")
    np.testing.assert_array_equal(base[:-4], cg[:-4])
    assert cg[-4] == 1.0 and base[-4] == 0.0


def test_dataset_rows_resolve_workload_specs(corpus):
    rows = build_dataset(corpus, [ARCH], kernels=("1d", "2d", "cg:2d"),
                         seed=0)
    by_kernel = {}
    for r in rows:
        by_kernel.setdefault(r.kernel, []).append(r)
    assert set(by_kernel) == {"1d", "2d", "cg:2d"}
    for r in by_kernel["1d"] + by_kernel["2d"]:
        assert r.workload == "spmv"
        np.testing.assert_array_equal(r.features[-4:], np.zeros(4))
    for r in by_kernel["cg:2d"]:
        assert r.workload == "cg"
        assert r.features[-4] == 1.0
        kernel_2d_idx = FEATURE_NAMES.index("kernel_2d")
        assert r.features[kernel_2d_idx] == 1.0


def test_model_version_guards_the_new_layout(corpus):
    model = train_model(corpus=corpus, architectures=[ARCH], seed=0)
    data = model.to_json()
    assert data["version"] == MODEL_VERSION == 2
    assert "workloads" in data["trained_on"]
    data["version"] = 1
    with pytest.raises(AdvisorError, match="version"):
        AdvisorModel.from_json(data)


def test_advise_caches_per_workload(corpus):
    model = train_model(corpus=corpus, architectures=[ARCH],
                        kernels=("1d", "2d", "cg"), seed=0)
    advisor = Advisor(model)
    a, name = corpus[0].matrix, corpus[0].name
    spmv = advisor.advise(a, ARCH, kernel="1d", matrix_name=name)
    cg = advisor.advise(a, ARCH, kernel="1d", matrix_name=name,
                        workload="cg")
    # distinct cache entries: one advice list per workload level
    assert advisor.stats["advice"]["misses"] >= 2
    again = advisor.advise(a, ARCH, kernel="1d", matrix_name=name,
                           workload="cg")
    assert [a_.row() for a_ in again] == [a_.row() for a_ in cg]
    assert advisor.stats["advice"]["hits"] >= 1
    assert {x.ordering for x in spmv} == {x.ordering for x in cg}


def test_advise_many_threads_workload_through(corpus):
    model = train_model(corpus=corpus, architectures=[ARCH],
                        kernels=("1d", "2d", "jacobi"), seed=0)
    with Advisor(model) as advisor:
        batched = advisor.advise_many(corpus, ARCH, kernel="1d",
                                      workload="jacobi")
        singles = [advisor.advise(e.matrix, ARCH, kernel="1d",
                                  matrix_name=e.name, workload="jacobi")
                   for e in corpus]
    assert len(batched) == len(corpus)
    for got, want in zip(batched, singles):
        assert [a_.row() for a_ in got] == [a_.row() for a_ in want]
