import numpy as np
import pytest

from repro.advisor import MODEL_VERSION, Advice, AdvisorModel
from repro.advisor.featurize import FEATURE_NAMES
from repro.errors import AdvisorError


def test_untrained_model_refuses_to_predict():
    m = AdvisorModel()
    with pytest.raises(AdvisorError):
        m.predict_ranked(np.zeros(len(FEATURE_NAMES)))
    with pytest.raises(AdvisorError):
        m.to_json()


def test_fit_requires_rows():
    with pytest.raises(AdvisorError):
        AdvisorModel().fit([])


def test_ranked_output_is_complete_and_sorted(model, dataset):
    ranked = model.predict_ranked(dataset[0].features)
    speedups = [a.predicted_speedup for a in ranked]
    assert speedups == sorted(speedups, reverse=True)
    assert {a.ordering for a in ranked} == set(model.orderings)
    assert all(isinstance(a, Advice) for a in ranked)
    assert all(0.0 <= a.confidence <= 1.0 + 1e-12 for a in ranked)


def test_prediction_is_deterministic(model, dataset):
    x = dataset[3].features
    first = model.predict_ranked(x, nnz=dataset[3].nnz)
    for _ in range(3):
        assert model.predict_ranked(x, nnz=dataset[3].nnz) == first


def test_json_round_trip_is_identical(model, tmp_path):
    d = model.to_json()
    m2 = AdvisorModel.from_json(d)
    assert m2.to_json() == d
    path = tmp_path / "model.json"
    model.save(path)
    m3 = AdvisorModel.load(path)
    assert m3.to_json() == d


def test_round_tripped_model_predicts_identically(model, dataset, tmp_path):
    path = tmp_path / "model.json"
    model.save(path)
    m2 = AdvisorModel.load(path)
    for row in dataset[:4]:
        assert m2.predict_ranked(row.features) == \
            model.predict_ranked(row.features)


def test_version_mismatch_rejected(model):
    d = model.to_json()
    d["version"] = MODEL_VERSION + 1
    with pytest.raises(AdvisorError):
        AdvisorModel.from_json(d)


def test_feature_layout_mismatch_rejected(model):
    d = model.to_json()
    d["feature_names"] = ["mystery"] * len(d["feature_names"])
    with pytest.raises(AdvisorError):
        AdvisorModel.from_json(d)


def test_unseen_family_falls_back_gracefully(model):
    # a feature vector far outside anything in the training corpus:
    # the model must not crash, must return a full ranked list, and
    # must signal low confidence (the neighbour vote carries none)
    x = np.full(len(FEATURE_NAMES), 1e6)
    ranked = model.predict_ranked(x)
    assert {a.ordering for a in ranked} == set(model.orderings)
    assert all(a.confidence == 0.0 for a in ranked)
    assert all(np.isfinite(a.predicted_speedup) for a in ranked)


def test_break_even_returns_natural_order(model, dataset):
    # with (almost) no SpMV iterations ahead, no reordering can ever
    # amortize its cost: "keep natural order" must win
    row = max(dataset, key=lambda r: r.best_speedup)
    ranked = model.predict_ranked(row.features, nnz=row.nnz,
                                  iterations=1e-9)
    assert ranked[0].ordering == "original"
    # with an unbounded budget the gate never demotes the top pick
    free = model.predict_ranked(row.features, nnz=row.nnz,
                                iterations=float("inf"))
    ungated = model.predict_ranked(row.features)
    assert free == ungated


def test_wrong_feature_width_rejected(model):
    with pytest.raises(AdvisorError):
        model.predict_ranked(np.zeros(3))
