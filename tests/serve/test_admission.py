"""Token bucket + admission controller, with a deterministic clock."""

from __future__ import annotations

import pytest

from repro.serve import AdmissionController, Rejection, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def test_bucket_starts_full_and_drains():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
    assert [bucket.try_acquire() for _ in range(4)] \
        == [True, True, True, False]


def test_bucket_refills_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
    assert bucket.try_acquire() and bucket.try_acquire()
    assert not bucket.try_acquire()
    clock.advance(0.5)           # 0.5s * 2 tokens/s = 1 token back
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_bucket_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
    clock.advance(100.0)
    assert bucket.tokens == pytest.approx(2.0)


def test_retry_after_names_the_exact_wait():
    clock = FakeClock()
    bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
    assert bucket.try_acquire()
    # empty; one token takes 1/4 s at 4 tokens/s
    assert bucket.retry_after_s() == pytest.approx(0.25)


def test_bucket_validates_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.0)


# ----------------------------------------------------------------------
# the controller
# ----------------------------------------------------------------------
def test_per_client_isolation():
    """A greedy client exhausts only its own bucket."""
    clock = FakeClock()
    ctl = AdmissionController(rate=1.0, burst=2.0, max_queue_depth=100,
                              clock=clock)
    assert ctl.admit("greedy", 0) is None
    assert ctl.admit("greedy", 0) is None
    rej = ctl.admit("greedy", 0)
    assert isinstance(rej, Rejection)
    assert rej.reason == "rate_limited" and rej.http_status == 429
    assert rej.retry_after_ms > 0
    # the polite client is untouched
    assert ctl.admit("polite", 0) is None


def test_queue_depth_shed():
    ctl = AdmissionController(rate=None, burst=1.0, max_queue_depth=4)
    assert ctl.admit("c", 3) is None
    rej = ctl.admit("c", 4)
    assert rej is not None and rej.reason == "queue_full"
    assert rej.http_status == 429 and rej.retry_after_ms > 0


def test_rate_none_disables_rate_limiting():
    ctl = AdmissionController(rate=None, max_queue_depth=10)
    assert all(ctl.admit("hammer", 0) is None for _ in range(1000))


def test_bucket_eviction_caps_client_table():
    clock = FakeClock()
    ctl = AdmissionController(rate=1.0, burst=1.0, max_queue_depth=10,
                              max_clients=3, clock=clock)
    for i in range(10):
        ctl.admit(f"c{i}", 0)
    assert ctl.clients == 3


def test_controller_validates_queue_depth():
    with pytest.raises(ValueError):
        AdmissionController(max_queue_depth=0)
