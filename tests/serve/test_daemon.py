"""End-to-end daemon tests: real sockets, concurrent clients.

The contract under test is the acceptance bar of the serving
subsystem: batched responses are *bit-identical* to direct
``Advisor.advise`` answers, SIGTERM drains instead of dropping,
admission rejects carry the structured schema, and ``/metricsz``
exposes the SLO quantities.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import ServeClient, ServeConfig, start_in_thread
from repro.serve.protocol import advice_to_wire

from .conftest import ARCH_NAME


def open_daemon(advisor, corpus, **overrides):
    config = ServeConfig(port=0, rate=None, **overrides)
    return start_in_thread(advisor, corpus, config)


def direct_answers(oracle, corpus, arch):
    """id -> wire-format advice straight from the library path."""
    return {e.name: advice_to_wire(
        oracle.advise(e.matrix, arch, matrix_name=e.name))
        for e in corpus}


def test_concurrent_clients_get_bit_identical_answers(
        advisor, oracle, corpus, arch):
    expected = direct_answers(oracle, corpus, arch)
    with open_daemon(advisor, corpus, max_batch=8,
                     linger_ms=10.0) as handle:

        def one_client(i: int):
            with ServeClient("127.0.0.1", handle.port,
                             timeout=10.0) as client:
                entry = corpus[i % len(corpus)]
                status, body = client.advise(
                    entry.name, arch=ARCH_NAME, request_id=i,
                    client=f"t{i % 3}")
                return entry.name, status, body

        with ThreadPoolExecutor(max_workers=12) as pool:
            outcomes = list(pool.map(one_client, range(24)))

    for name, status, body in outcomes:
        assert status == 200
        assert body["status"] == "ok"
        # floats round-trip exactly through JSON: equality here is
        # bit-identity with the direct library call
        assert body["advice"] == expected[name]
        assert body["batch_size"] >= 1
        assert body["queue_ms"] >= 0.0


def test_response_echoes_id_and_honors_top(advisor, corpus):
    with open_daemon(advisor, corpus) as handle:
        with ServeClient("127.0.0.1", handle.port) as client:
            status, body = client.advise(
                corpus[0].name, arch=ARCH_NAME,
                request_id="req-00042", top=1)
    assert status == 200
    assert body["id"] == "req-00042"
    assert len(body["advice"]) == 1


def test_error_responses(advisor, corpus):
    with open_daemon(advisor, corpus) as handle:
        with ServeClient("127.0.0.1", handle.port) as client:
            status, body = client.advise("no-such-matrix")
            assert status == 404
            assert body["status"] == "error"
            assert body["reason"] == "unknown_matrix"

            status, body = client.advise(corpus[0].name,
                                         arch="No Such Arch")
            assert status == 400 and body["reason"] == "unknown_arch"

            status, body = client.request(
                "POST", "/advise", {"matrix": corpus[0].name,
                                    "bogus_key": 1})
            assert status == 400 and body["reason"] == "bad_request"

            status, body = client.request("GET", "/nope")
            assert status == 404 and body["reason"] == "unknown_route"

            status, body = client.request("GET", "/advise")
            assert status == 405


def test_healthz_and_metricsz_schema(advisor, corpus):
    with open_daemon(advisor, corpus, max_batch=4,
                     linger_ms=2.0) as handle:
        with ServeClient("127.0.0.1", handle.port) as client:
            for i in range(6):
                status, _ = client.advise(corpus[i % len(corpus)].name,
                                          arch=ARCH_NAME)
                assert status == 200

            health = client.healthz()
            assert health["status"] == "ok"
            assert health["corpus"] == len(corpus)
            assert health["uptime_seconds"] >= 0

            metrics = client.metricsz()

    slo = metrics["slo"]
    assert slo["requests"] >= 6 and slo["responses"] >= 6
    lat = slo["latency_ms"]
    for key in ("count", "mean", "p50", "p95", "p99", "max"):
        assert key in lat
    assert 0 <= lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
    batch = slo["batch"]
    assert batch["batches"] >= 1
    assert batch["mean_size"] >= 1.0
    assert batch["histogram"]["bounds"] == [1, 2, 4, 8, 16, 32, 64,
                                            128, 256]
    assert sum(batch["histogram"]["counts"]) == batch["batches"]
    shed = slo["shed"]
    assert set(shed) == {"rate_limited", "queue_full", "draining"}
    assert "queue_wait_ms" in slo
    # raw registry entries ride along for repro.obs tooling
    assert any(name.startswith("serve.") for name in metrics["metrics"])
    assert "advisor" in metrics
    # the whole payload is JSON-serialisable (it travelled over HTTP)
    json.dumps(metrics)


def test_admission_reject_schema_and_isolation(advisor, corpus):
    """An exhausted client gets the structured 429; others sail on."""
    with start_in_thread(
            advisor, corpus,
            ServeConfig(port=0, rate=0.001, burst=2.0)) as handle:
        with ServeClient("127.0.0.1", handle.port) as client:
            statuses = []
            for i in range(4):
                status, body = client.advise(
                    corpus[0].name, arch=ARCH_NAME, client="greedy",
                    request_id=i)
                statuses.append((status, body))
            # bucket burst is 2: the tail of the run is rejected
            oks = [s for s, _ in statuses if s == 200]
            rejects = [(s, b) for s, b in statuses if s != 200]
            assert len(oks) == 2 and len(rejects) == 2
            for status, body in rejects:
                assert status == 429
                assert body["status"] == "rejected"
                assert body["reason"] == "rate_limited"
                assert body["code"] == 429
                assert body["retry_after_ms"] > 0
            # a different client identity is not throttled
            status, body = client.advise(corpus[1].name,
                                         arch=ARCH_NAME,
                                         client="polite")
            assert status == 200

            metrics = client.metricsz()
            assert metrics["slo"]["shed"]["rate_limited"] == 2


def test_sigterm_drains_inflight_requests(advisor, oracle, corpus,
                                          arch):
    """SIGTERM mid-burst: queued requests still answered bit-identically,
    the daemon exits, and late requests cannot connect."""
    expected = direct_answers(oracle, corpus, arch)
    outcomes = []
    errors = []

    async def scenario() -> None:
        from repro.serve.daemon import AdvisorDaemon

        daemon = AdvisorDaemon(
            advisor, corpus,
            ServeConfig(port=0, rate=None, max_batch=8,
                        linger_ms=30.0, drain_timeout=5.0))
        await daemon.start()
        daemon.install_signal_handlers()
        port = daemon.port

        def client_burst() -> None:
            try:
                with ServeClient("127.0.0.1", port,
                                 timeout=10.0) as client:
                    for i in range(6):
                        entry = corpus[i % len(corpus)]
                        outcomes.append(
                            (entry.name,
                             *client.advise(entry.name,
                                            arch=ARCH_NAME)))
            except Exception as e:  # noqa: BLE001 - recorded for assert
                errors.append(e)

        burst = threading.Thread(target=client_burst)
        burst.start()
        # SIGTERM lands while the burst is in flight (linger 30ms keeps
        # requests queued); the handler runs on this main thread
        asyncio.get_running_loop().call_later(
            0.05, signal.raise_signal, signal.SIGTERM)
        await daemon.serve_forever()
        burst.join(10.0)

    asyncio.run(scenario())
    assert not errors, f"drain dropped a client: {errors[:1]}"
    assert len(outcomes) == 6
    for name, status, body in outcomes:
        # every request got a real answer (drained) or a structured
        # draining reject — never a dropped connection
        if status == 200:
            assert body["advice"] == expected[name]
        else:
            assert status == 503 and body["reason"] == "draining"
    # at least the first request predates the SIGTERM and must be served
    assert outcomes[0][1] == 200


def test_port_zero_picks_a_free_port(advisor, corpus):
    with open_daemon(advisor, corpus) as a, \
            open_daemon(advisor, corpus) as b:
        assert a.port != b.port
        assert ServeClient("127.0.0.1", a.port).healthz()["status"] \
            == "ok"


def test_startup_rejects_unknown_default_arch(advisor, corpus):
    from repro.serve.daemon import AdvisorDaemon

    with pytest.raises(Exception, match="[Aa]rch"):
        AdvisorDaemon(advisor, corpus,
                      ServeConfig(default_arch="Quantum Z"))
