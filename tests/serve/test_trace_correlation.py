"""Cross-process trace correlation: every client request span must
transitively parent the daemon's request/queue/advisor spans.

The daemon runs in a thread here, so client and server share one
tracer buffer — the link checks below are exactly what
``repro perf merge-trace`` + ``repro report --check`` validate when
the two halves run in separate processes.
"""

from __future__ import annotations

import pytest

from repro.obs import trace as trace_mod
from repro.obs.report import validate_links
from repro.serve import ServeClient, ServeConfig, start_in_thread
from repro.serve.loadgen import generate_trace, replay
from repro.serve.protocol import ProtocolError, parse_advise_request

from .conftest import ARCH_NAME


@pytest.fixture(autouse=True)
def clean_tracer():
    trace_mod.TRACER.clear()
    yield
    trace_mod.disable()
    trace_mod.TRACER.clear()


def open_daemon(advisor, corpus, **overrides):
    config = ServeConfig(port=0, rate=None, **overrides)
    return start_in_thread(advisor, corpus, config)


# ----------------------------------------------------------------------
# protocol: the trace context rides the request envelope
# ----------------------------------------------------------------------
def _wire(payload: dict) -> bytes:
    import json

    return json.dumps(payload).encode()


def test_trace_context_parsed_from_wire():
    req = parse_advise_request(_wire({
        "matrix": "m", "trace": {"trace_id": "req-1",
                                 "parent_id": "abc"}}))
    assert req.trace_id == "req-1" and req.parent_id == "abc"
    assert req.span_id is None  # assigned server-side


def test_trace_context_optional_and_validated():
    assert parse_advise_request(_wire({"matrix": "m"})).trace_id is None
    with pytest.raises(ProtocolError):
        parse_advise_request(_wire({"matrix": "m",
                                    "trace": "not-a-dict"}))
    with pytest.raises(ProtocolError):
        parse_advise_request(_wire({"matrix": "m",
                                    "trace": {"trace_id": 7}}))
    with pytest.raises(ProtocolError):
        parse_advise_request(_wire({"matrix": "m",
                                    "trace": {"span_id": "mine"}}))


# ----------------------------------------------------------------------
# end to end: loadgen -> daemon -> batcher -> advisor
# ----------------------------------------------------------------------
def _events_by_name(events):
    out: dict = {}
    for ev in events:
        out.setdefault(ev["name"], []).append(ev)
    return out


@pytest.mark.slow
def test_request_spans_transitively_parent_server_work(
        advisor, corpus, corpus_names):
    trace_mod.enable()
    with open_daemon(advisor, corpus, max_batch=8,
                     linger_ms=5.0) as handle:
        sched = generate_trace(corpus_names, n=12, seed=3, rate=500.0)
        report = replay(sched, port=handle.port, arch=ARCH_NAME,
                        timeout=10.0)
    assert report.transport_failures == 0
    assert report.ok == len(sched)

    events = trace_mod.TRACER.events()
    by_name = _events_by_name(events)
    for name in ("loadgen.request", "serve.request", "serve.queued",
                 "advisor.request"):
        assert len(by_name.get(name, [])) == len(sched), name

    # structurally valid links: no orphans, children inside parents
    assert validate_links(events) == []

    # the client's trace ids and the server's agree one for one
    client_tids = {ev["args"]["trace_id"]
                   for ev in by_name["loadgen.request"]}
    server_tids = {ev["args"]["trace_id"]
                   for ev in by_name["serve.request"]}
    assert client_tids == server_tids and len(client_tids) == len(sched)

    # serve.request records the client span as its remote parent
    client_sids = {ev["args"]["span_id"]
                   for ev in by_name["loadgen.request"]}
    assert {ev["args"]["remote_parent"]
            for ev in by_name["serve.request"]} == client_sids

    # queue and advisor spans chain to their serve.request span
    serve_sids = {ev["args"]["span_id"]
                  for ev in by_name["serve.request"]}
    parents = {ev["args"]["parent_id"] for ev in by_name["serve.queued"]}
    assert parents <= serve_sids
    by_id = {ev["args"]["span_id"]: ev for ev in events
             if ev.get("args", {}).get("span_id")}

    def root_of(ev):
        seen = 0
        while ev["args"].get("parent_id") and seen < 10:
            ev = by_id[ev["args"]["parent_id"]]
            seen += 1
        return ev

    for ev in by_name["advisor.request"]:
        assert root_of(ev)["name"] == "serve.request"


@pytest.mark.slow
def test_metricsz_exposes_tracer_stats(advisor, corpus):
    trace_mod.enable()
    with open_daemon(advisor, corpus) as handle:
        with ServeClient("127.0.0.1", handle.port,
                         timeout=10.0) as client:
            client.advise(corpus[0].name, arch=ARCH_NAME)
            metrics = client.metricsz()
    tr = metrics["trace"]
    assert tr["enabled"] is True
    assert tr["buffered_events"] > 0
    assert tr["dropped_events"] == 0
    assert set(tr) >= {"enabled", "buffered_events", "max_events",
                       "dropped_events"}


@pytest.mark.slow
def test_tracing_disabled_leaves_wire_and_spans_unchanged(
        advisor, corpus):
    assert not trace_mod.is_enabled()
    with open_daemon(advisor, corpus) as handle:
        with ServeClient("127.0.0.1", handle.port,
                         timeout=10.0) as client:
            status, body = client.advise(corpus[0].name, arch=ARCH_NAME)
            metrics = client.metricsz()
    assert status == 200 and body["status"] == "ok"
    assert trace_mod.TRACER.events() == []
    assert metrics["trace"]["enabled"] is False
