"""Unit tests of the micro-batching queue (no daemon, fake flush)."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import MicroBatcher


def run(coro):
    return asyncio.run(coro)


async def _echo_flush(payloads):
    return [f"r:{p}" for p in payloads]


def test_concurrent_submits_coalesce_into_one_batch():
    """N submits that are all pending when the drain loop wakes ride
    one flush call."""
    batches = []

    async def flush(payloads):
        batches.append(list(payloads))
        return payloads

    async def main():
        batcher = MicroBatcher(flush, max_batch=16, max_linger_ms=50.0)
        batcher.start()
        results = await asyncio.gather(
            *(batcher.submit(i) for i in range(10)))
        await batcher.close()
        return results

    results = run(main())
    assert [r for r, _ in results] == list(range(10))
    # every request reports the size of the batch that carried it
    assert {size for _, size in results} == {10}
    assert len(batches) == 1 and sorted(batches[0]) == list(range(10))


def test_max_batch_splits_oversized_bursts():
    sizes = []

    async def flush(payloads):
        sizes.append(len(payloads))
        return payloads

    async def main():
        batcher = MicroBatcher(flush, max_batch=4, max_linger_ms=50.0)
        batcher.start()
        await asyncio.gather(*(batcher.submit(i) for i in range(10)))
        await batcher.close()

    run(main())
    assert sum(sizes) == 10
    assert max(sizes) <= 4


def test_linger_bounds_added_latency():
    """A lone request is flushed after ~linger, not held forever."""

    async def main():
        batcher = MicroBatcher(_echo_flush, max_batch=64,
                               max_linger_ms=20.0)
        batcher.start()
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        result, size = await batcher.submit("solo")
        elapsed = loop.time() - t0
        await batcher.close()
        return result, size, elapsed

    result, size, elapsed = run(main())
    assert result == "r:solo" and size == 1
    assert elapsed < 5.0  # linger is 20ms; generous CI margin


def test_flush_exception_fails_the_batch_not_the_batcher():
    calls = {"n": 0}

    async def flaky(payloads):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("batch exploded")
        return payloads

    async def main():
        batcher = MicroBatcher(flaky, max_batch=8, max_linger_ms=5.0)
        batcher.start()
        with pytest.raises(RuntimeError, match="batch exploded"):
            await batcher.submit("a")
        # the drain loop survived and serves the next request
        result, _ = await batcher.submit("b")
        await batcher.close()
        return result

    assert run(main()) == "b"


def test_wrong_result_count_fails_the_batch():
    async def short(payloads):
        return payloads[:-1]

    async def main():
        batcher = MicroBatcher(short, max_batch=8, max_linger_ms=5.0)
        batcher.start()
        with pytest.raises(RuntimeError, match="results"):
            await batcher.submit("a")
        await batcher.close()

    run(main())


def test_close_drains_queued_requests():
    """close() answers what is already queued instead of dropping it."""

    async def main():
        batcher = MicroBatcher(_echo_flush, max_batch=4,
                               max_linger_ms=200.0)
        batcher.start()
        pending = [asyncio.ensure_future(batcher.submit(i))
                   for i in range(6)]
        await asyncio.sleep(0)       # let the submissions enqueue
        await batcher.close()
        return await asyncio.gather(*pending)

    results = run(main())
    assert [r for r, _ in results] == [f"r:{i}" for i in range(6)]


def test_submit_after_close_raises():
    async def main():
        batcher = MicroBatcher(_echo_flush)
        batcher.start()
        await batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            await batcher.submit("late")

    run(main())


def test_depth_reflects_queued_requests():
    async def main():
        batcher = MicroBatcher(_echo_flush, max_batch=4,
                               max_linger_ms=50.0)
        # not started: submissions pile up in the queue
        pending = []
        async def enqueue():
            pending.append(asyncio.ensure_future(batcher.submit(1)))
            await asyncio.sleep(0)
        await enqueue()
        await enqueue()
        depth = batcher.depth
        batcher.start()
        await batcher.close()
        await asyncio.gather(*pending)
        return depth

    assert run(main()) == 2


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        MicroBatcher(_echo_flush, max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(_echo_flush, max_linger_ms=-1.0)
