"""Shared fixtures for the serving tests.

One small corpus and one trained model per session (training runs a
real sweep and dominates test time); each test that needs a daemon
boots its own on a free port via :func:`repro.serve.start_in_thread`
so admission/batching knobs can differ per test.
"""

from __future__ import annotations

import pytest

from repro.advisor import Advisor, train_model
from repro.generators import build_corpus
from repro.machine import get_architecture

ORDERINGS = ("RCM", "Gray")
ARCH_NAME = "Rome"


@pytest.fixture(scope="session")
def corpus():
    return build_corpus("tiny", seed=0)[:6]


@pytest.fixture(scope="session")
def corpus_names(corpus):
    return [e.name for e in corpus]


@pytest.fixture(scope="session")
def arch():
    return get_architecture(ARCH_NAME)


@pytest.fixture(scope="session")
def model(corpus, arch):
    return train_model(corpus=corpus[:4], architectures=[arch],
                       orderings=ORDERINGS, seed=0)


@pytest.fixture()
def advisor(model):
    adv = Advisor(model, workers=2)
    yield adv
    adv.close()


@pytest.fixture(scope="session")
def oracle(model):
    """A *separate* advisor instance: the unbatched reference answers
    must not share caches with the daemon under test."""
    return Advisor(model)
