"""Trace generation determinism + open-loop replay integration."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.serve import ServeConfig, generate_trace, replay, start_in_thread

from .conftest import ARCH_NAME


def test_same_seed_same_trace(corpus_names):
    a = generate_trace(corpus_names, n=200, seed=7)
    b = generate_trace(corpus_names, n=200, seed=7)
    assert a == b


def test_different_seed_different_trace(corpus_names):
    a = generate_trace(corpus_names, n=200, seed=7)
    b = generate_trace(corpus_names, n=200, seed=8)
    assert a != b


def test_trace_shape(corpus_names):
    trace = generate_trace(corpus_names, n=100, seed=0, clients=3)
    assert len(trace) == 100
    assert [r.id for r in trace] == list(range(100))
    # arrival times strictly increase (exponential gaps are positive)
    times = [r.t for r in trace]
    assert all(t1 > t0 for t0, t1 in zip(times, times[1:]))
    assert {r.client for r in trace} <= {"c0", "c1", "c2"}
    assert set(r.matrix for r in trace) <= set(corpus_names)
    d = trace[0].to_dict()
    assert set(d) == {"id", "t", "matrix", "client"}


def test_zipf_popularity_skews_to_head(corpus_names):
    """Rank-1 matrices must dominate under a steep zipf exponent."""
    trace = generate_trace(corpus_names, n=2000, seed=1, zipf_s=2.0)
    counts = Counter(r.matrix for r in trace)
    head = counts[corpus_names[0]]
    tail = counts[corpus_names[-1]]
    assert head > tail
    assert head > len(trace) / len(corpus_names)  # above uniform share


def test_burst_factor_compresses_the_schedule(corpus_names):
    steady = generate_trace(corpus_names, n=500, seed=3, rate=100.0,
                            burst_factor=1.0)
    bursty = generate_trace(corpus_names, n=500, seed=3, rate=100.0,
                            burst_factor=8.0, burst_duty=1.0)
    # burst_duty=1.0 means the whole schedule runs at 8x rate
    assert bursty[-1].t == pytest.approx(steady[-1].t / 8.0)


def test_generate_trace_validates_arguments(corpus_names):
    with pytest.raises(ValueError):
        generate_trace([], n=10)
    with pytest.raises(ValueError):
        generate_trace(corpus_names, n=0)
    with pytest.raises(ValueError):
        generate_trace(corpus_names, n=10, rate=0.0)
    with pytest.raises(ValueError):
        generate_trace(corpus_names, n=10, burst_duty=0.0)


def test_replay_against_live_daemon(advisor, corpus, corpus_names):
    trace = generate_trace(corpus_names, n=40, seed=5, rate=400.0)
    config = ServeConfig(port=0, rate=None, max_batch=16,
                         linger_ms=5.0)
    with start_in_thread(advisor, corpus, config) as handle:
        report = replay(trace, port=handle.port, arch=ARCH_NAME)
    assert report.requests == 40
    assert report.transport_failures == 0
    assert report.answered == 40
    assert report.ok == 40
    assert len(report.responses) == 40
    assert report.latency_ms["p50"] <= report.latency_ms["p99"]
    assert report.achieved_rps > 0
    d = report.to_dict()
    assert d["ok"] == 40 and d["mean_batch_size"] >= 1.0
    assert "ok=40" in report.render()


def test_replay_counts_rejections(advisor, corpus, corpus_names):
    """A starved token bucket shows up as structured rejects, not
    transport failures."""
    trace = generate_trace(corpus_names, n=30, seed=5, rate=2000.0,
                           clients=1)
    config = ServeConfig(port=0, rate=0.001, burst=3.0)
    with start_in_thread(advisor, corpus, config) as handle:
        report = replay(trace, port=handle.port, arch=ARCH_NAME)
    assert report.transport_failures == 0
    assert report.answered == 30
    assert report.ok == 3
    assert report.rejected.get("rate_limited") == 27
    assert "rate_limited=27" in report.render()
