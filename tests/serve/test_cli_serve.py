"""CLI registration: serve/loadgen subcommands + error listing."""

from __future__ import annotations

import json

import pytest

from repro.harness.cli import build_parser, main
from repro.serve import ServeConfig, start_in_thread

from .conftest import ARCH_NAME


def test_serve_and_loadgen_are_registered():
    parser = build_parser()
    assert "serve" in parser.commands
    assert "loadgen" in parser.commands
    args = parser.parse_args(["serve", "--port", "0", "--rate", "0"])
    assert args.port == 0 and args.rate == 0.0
    args = parser.parse_args(["loadgen", "--requests", "5"])
    assert args.requests == 5


def test_unknown_command_lists_registered_commands(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["definitely-not-a-command"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "registered commands:" in err
    for name in ("advise", "check", "loadgen", "serve", "sweep"):
        assert name in err


def test_loadgen_cli_against_live_daemon(advisor, corpus, tmp_path,
                                         capsys):
    json_path = tmp_path / "loadgen.json"
    config = ServeConfig(port=0, rate=None)
    with start_in_thread(advisor, corpus, config) as handle:
        rc = main(["loadgen", "--port", str(handle.port),
                   "--matrices", ",".join(e.name for e in corpus),
                   "--requests", "20", "--rate", "500",
                   "--arch", ARCH_NAME, "--seed", "3",
                   "--json", str(json_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "loadgen: 20 request(s)" in out
    report = json.loads(json_path.read_text())
    assert report["ok"] + sum(report["rejected"].values()) == 20
    assert report["transport_failures"] == 0


def test_loadgen_cli_reports_unreachable_daemon(capsys):
    rc = main(["loadgen", "--port", "1", "--matrices", "m",
               "--requests", "2", "--rate", "1000",
               "--timeout", "0.5"])
    assert rc == 1
    assert "transport_failures=2" in capsys.readouterr().out
