"""The advise protocol's workload key and its validation."""

import json

import pytest

from repro.serve.protocol import ProtocolError, parse_advise_request
from repro.spmv.registry import KERNELS as REGISTRY_KERNELS
from repro.spmv.registry import WORKLOADS as REGISTRY_WORKLOADS


def _parse(payload, peer="peer"):
    return parse_advise_request(json.dumps(payload).encode(), peer=peer)


def test_workload_defaults_to_spmv():
    req = _parse({"matrix": "m"})
    assert req.workload == "spmv"


@pytest.mark.parametrize("workload", ("cg", "jacobi", "spgemm", "spmm"))
def test_valid_workloads_accepted(workload):
    req = _parse({"matrix": "m", "workload": workload, "kernel": "2d"})
    assert req.workload == workload
    assert req.kernel == "2d"


def test_unknown_workload_rejected():
    with pytest.raises(ProtocolError, match="'workload' must be one of"):
        _parse({"matrix": "m", "workload": "gmres"})


def test_non_string_workload_rejected():
    with pytest.raises(ProtocolError, match="workload"):
        _parse({"matrix": "m", "workload": 7})


def test_protocol_vocabulary_is_the_registry():
    # the satellite bugfix: no more protocol-local KERNELS literal
    from repro.serve import protocol

    assert protocol.KERNELS is REGISTRY_KERNELS
    assert protocol.WORKLOADS is REGISTRY_WORKLOADS
