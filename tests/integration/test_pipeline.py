"""End-to-end integration tests: the full study pipeline on one matrix.

These exercise every layer together — generator → graph → partitioner →
ordering → permutation → schedule → kernel → model → analysis — the way
the benchmark harness composes them, but at unit-test scale with strong
cross-layer assertions.
"""

import numpy as np
import pytest

from repro.analysis import geomean
from repro.features import collect_features, offdiagonal_nonzeros
from repro.generators import fem_mesh_2d
from repro.machine import PerfModel, get_architecture, simulate_measurement
from repro.reorder import ALL_ORDERINGS, compute_ordering
from repro.spmv import schedule_1d, schedule_2d, spmv_1d, spmv_2d


@pytest.fixture(scope="module")
def matrix():
    return fem_mesh_2d(700, seed=11, scrambled=True)


@pytest.fixture(scope="module")
def arch():
    return get_architecture("Ice Lake")


@pytest.fixture(scope="module")
def orderings(matrix, arch):
    return {name: compute_ordering(matrix, name, nparts=arch.gp_parts)
            for name in ALL_ORDERINGS}


def test_numerics_survive_every_ordering(matrix, orderings):
    """SpMV on the reordered matrix must equal the permuted original
    result, for every ordering and both kernels."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal(matrix.ncols)
    y_ref = matrix.matvec(x)
    for name, r in orderings.items():
        b = r.apply(matrix)
        if r.symmetric:
            xb = x[r.perm]
            expected = y_ref[r.perm]
        else:
            xb = x
            expected = y_ref[r.perm]
        y1 = spmv_1d(b, xb, schedule_1d(b, 8))
        y2 = spmv_2d(b, xb, schedule_2d(b, 8))
        assert np.allclose(y1, expected), name
        assert np.allclose(y2, expected), name


def test_gp_wins_via_offdiag_mechanism(matrix, arch, orderings):
    """The causal chain of finding 5: GP lowers off-diagonal nonzeros,
    and the model converts that into the best 1D speedup."""
    base_off = offdiagonal_nonzeros(matrix, arch.threads)
    base = simulate_measurement(matrix, arch, "1d", "m", "original")
    results = {}
    offs = {}
    for name, r in orderings.items():
        if name == "original":
            continue
        b = r.apply(matrix)
        offs[name] = offdiagonal_nonzeros(b, arch.threads)
        rec = simulate_measurement(b, arch, "1d", "m", name)
        results[name] = rec.gflops_max / base.gflops_max
    assert offs["GP"] < base_off
    assert offs["GP"] == min(offs.values())
    assert results["GP"] >= max(v for k, v in results.items()
                                if k != "GP") * 0.9


def test_feature_record_consistency(matrix, arch, orderings):
    rec_before = collect_features(matrix, arch.threads)
    b = orderings["RCM"].apply(matrix)
    rec_after = collect_features(b, arch.threads)
    assert rec_after.nnz == rec_before.nnz
    assert rec_after.bandwidth < rec_before.bandwidth
    assert rec_after.profile < rec_before.profile


def test_speedup_pipeline_deterministic(matrix, arch):
    """The full pipeline must be reproducible end to end."""
    def run():
        r = compute_ordering(matrix, "GP", nparts=arch.gp_parts, seed=5)
        b = r.apply(matrix)
        model = PerfModel(arch)
        return model.predict(b, schedule_1d(b, arch.threads)).seconds

    assert run() == run()


def test_geomean_of_identity_is_one(matrix, arch):
    base = simulate_measurement(matrix, arch, "1d", "m", "original")
    again = simulate_measurement(matrix, arch, "1d", "m", "original")
    assert geomean([again.gflops_max / base.gflops_max]) == 1.0
