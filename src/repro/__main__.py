"""``python -m repro`` — command-line interface."""

import sys

from .harness.cli import main

sys.exit(main())
