"""The multilevel bisection driver: coarsen → initial → refine upward."""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph.adjacency import Graph
from ..util.rng import as_rng
from .coarsen import coarsen_hierarchy
from .fm import refine_or_keep
from .initial import initial_bisection


def bisect(g: Graph, target0: int | None = None, tol: float = 0.05,
           rng=None, refine: bool = True, min_coarse: int = 64) -> np.ndarray:
    """Bisect ``g`` into sides 0/1 with side 0 holding ~``target0`` weight.

    Parameters
    ----------
    target0:
        Vertex weight assigned to side 0 (default: half the total).
    refine:
        Disable to skip FM refinement (ablation knob — DESIGN.md §5.5).

    Returns an ``int64`` side array of 0s and 1s.
    """
    total = g.total_vertex_weight()
    if target0 is None:
        target0 = total // 2
    if not (0 <= target0 <= total):
        raise PartitionError(
            f"target0={target0} outside [0, {total}]")
    rng = as_rng(rng)
    if g.nvertices <= 1:
        return np.zeros(g.nvertices, dtype=np.int64)
    levels = coarsen_hierarchy(g, min_vertices=min_coarse, rng=rng)
    side = initial_bisection(levels[-1].graph, target0, rng=rng)
    if refine:
        side = refine_or_keep(levels[-1].graph, side, target0, tol=tol)
    # project back through the hierarchy
    for level in reversed(levels[:-1]):
        side = side[level.cmap]
        if refine:
            side = refine_or_keep(level.graph, side, target0, tol=tol)
    return side
