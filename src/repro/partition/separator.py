"""Vertex separators for nested dissection.

ND needs a small *vertex* set whose removal disconnects the graph.  We
derive one from a multilevel edge bisection: the cut edges form a
bipartite boundary graph, and any vertex cover of those edges is a
separator.  We use the standard greedy cover (repeatedly take the
boundary vertex covering the most uncovered cut edges), which in
practice tracks the minimum cover closely and is what early ND codes
did before liu-style refinement.
"""

from __future__ import annotations

import numpy as np

from ..graph.adjacency import Graph
from ..util.rng import as_rng
from .multilevel import bisect


def separator_from_bisection(g: Graph, side: np.ndarray) -> np.ndarray:
    """Greedy vertex cover of the cut edges of a bisection.

    Returns a boolean mask over vertices marking the separator.
    """
    n = g.nvertices
    src = np.repeat(np.arange(n, dtype=np.int64), g.degrees())
    cut = side[src] != side[g.adjncy]
    cu = src[cut]
    cv = g.adjncy[cut]
    # undirected cut edges appear twice; keep u < v once
    once = cu < cv
    cu, cv = cu[once], cv[once]
    in_sep = np.zeros(n, dtype=bool)
    if cu.size == 0:
        return in_sep
    # the one-sided boundary of the side with fewer boundary vertices is
    # always a cover; it is also the fallback when the cut is too large
    # for the O(|sep| * |cut|) greedy loop to be worthwhile
    bnd_u = np.unique(cu)
    bnd_v = np.unique(cv)
    one_sided = bnd_u if bnd_u.size <= bnd_v.size else bnd_v
    if cu.size > 5000:
        in_sep[one_sided] = True
        return in_sep
    alive = np.ones(cu.size, dtype=bool)
    picked = []
    # greedy: repeatedly pick the endpoint covering most alive edges
    while alive.any():
        counts = np.bincount(
            np.concatenate([cu[alive], cv[alive]]), minlength=n)
        v = int(np.argmax(counts))
        picked.append(v)
        alive &= (cu != v) & (cv != v)
    if len(picked) <= one_sided.size:
        in_sep[picked] = True
    else:
        in_sep[one_sided] = True
    return in_sep


def vertex_separator(g: Graph, tol: float = 0.2, rng=None) -> tuple:
    """Compute (side_a, side_b, separator) index arrays for ``g``.

    ``side_a``/``side_b`` are the two halves with separator vertices
    removed.  The wider balance tolerance (vs partitioning) follows ND
    practice — separator size matters more than exact balance.
    """
    rng = as_rng(rng)
    n = g.nvertices
    if n <= 1:
        return (np.arange(n, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64))
    side = bisect(g, tol=tol, rng=rng)
    in_sep = separator_from_bisection(g, side)
    a = np.flatnonzero((side == 0) & ~in_sep)
    b = np.flatnonzero((side == 1) & ~in_sep)
    sep = np.flatnonzero(in_sep)
    return a, b, sep
