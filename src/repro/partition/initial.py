"""Initial bisection of the coarsest graph.

Two methods are tried and the better (feasible, lower-cut) bisection
wins — the same portfolio approach METIS takes:

* **Greedy graph growing**: BFS a region from a pseudo-peripheral
  vertex until it holds the target weight.  Run from a few different
  seeds.
* **Spectral bisection**: split at the median of the Fiedler vector of
  the graph Laplacian.  The coarsest graph is small (≤ a few hundred
  vertices) so a dense symmetric eigensolve is cheap and robust.
"""

from __future__ import annotations

import numpy as np

from ..graph.adjacency import Graph
from ..graph.bfs import bfs_levels
from ..graph.peripheral import pseudo_peripheral_vertex
from ..util.rng import as_rng
from .metrics import edge_cut


def greedy_grow_bisection(g: Graph, target0: int, seed_vertex: int) -> np.ndarray:
    """Grow side 0 from ``seed_vertex`` until it holds ~``target0`` weight.

    Vertices are absorbed in BFS order; leftover unreachable vertices are
    assigned to the lighter side.
    """
    n = g.nvertices
    side = np.ones(n, dtype=np.int64)
    levels = bfs_levels(g, seed_vertex)
    # BFS order: by level, stable
    reached = np.flatnonzero(levels >= 0)
    order = reached[np.argsort(levels[reached], kind="stable")]
    acc = 0
    taken = 0
    for v in order:
        if acc >= target0:
            break
        side[v] = 0
        acc += int(g.vwgt[v])
        taken += 1
    # unreachable vertices: dump on the lighter side
    unreached = np.flatnonzero(levels < 0)
    if unreached.size:
        w0 = acc
        total = g.total_vertex_weight()
        for v in unreached:
            if w0 < total - w0:
                side[v] = 0
                w0 += int(g.vwgt[v])
    return side


def spectral_bisection(g: Graph, target0: int) -> np.ndarray:
    """Split at the weighted median of the Fiedler vector.

    Dense eigensolve — only call on coarse graphs.  Disconnected graphs
    are handled because the second-smallest eigenvector then encodes a
    component indicator, which is a zero-cut split.
    """
    n = g.nvertices
    if n <= 2:
        side = np.zeros(n, dtype=np.int64)
        if n == 2:
            side[1] = 1
        return side
    lap = np.zeros((n, n))
    src = np.repeat(np.arange(n, dtype=np.int64), g.degrees())
    np.add.at(lap, (src, g.adjncy), -g.ewgt.astype(np.float64))
    deg = -lap.sum(axis=1)
    lap[np.arange(n), np.arange(n)] = deg
    _, vecs = np.linalg.eigh(lap)
    fiedler = vecs[:, 1]
    order = np.argsort(fiedler, kind="stable")
    side = np.ones(n, dtype=np.int64)
    acc = 0
    for v in order:
        if acc >= target0:
            break
        side[v] = 0
        acc += int(g.vwgt[v])
    return side


def initial_bisection(g: Graph, target0: int, rng=None,
                      ntrials: int = 4) -> np.ndarray:
    """Portfolio initial bisection: best of greedy seeds + spectral."""
    rng = as_rng(rng)
    n = g.nvertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    candidates = []
    seeds = set()
    start = int(rng.integers(0, n))
    seeds.add(pseudo_peripheral_vertex(g, start))
    for _ in range(ntrials - 1):
        seeds.add(int(rng.integers(0, n)))
    for s in seeds:
        candidates.append(greedy_grow_bisection(g, target0, s))
    if n <= 600:  # dense eigensolve cost cap
        candidates.append(spectral_bisection(g, target0))
    total = g.total_vertex_weight()

    def score(side):
        w0 = int(g.vwgt[side == 0].sum())
        # infeasibility penalty: distance from target dominates the cut
        imbalance = abs(w0 - target0) / max(total, 1)
        return (round(imbalance * 20), edge_cut(g, side))

    return min(candidates, key=score)
