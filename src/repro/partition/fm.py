"""Fiduccia–Mattheyses boundary refinement for bisections.

One FM pass tentatively moves every movable boundary vertex once, in
order of decreasing gain (cut-weight reduction), then rolls back to the
best prefix that kept the balance feasible.  Passes repeat until a pass
yields no improvement.  A lazy max-heap stands in for the classical
gain-bucket structure — same semantics, simpler code, and fast enough
in Python because only boundary vertices ever enter the heap.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph.adjacency import Graph
from .metrics import edge_cut


def _gains(g: Graph, side: np.ndarray) -> np.ndarray:
    """gain[v] = (cut weight removed) - (cut weight added) if v moved."""
    src = np.repeat(np.arange(g.nvertices, dtype=np.int64), g.degrees())
    external = np.zeros(g.nvertices, dtype=np.int64)
    internal = np.zeros(g.nvertices, dtype=np.int64)
    cut = side[src] != side[g.adjncy]
    np.add.at(external, src[cut], g.ewgt[cut])
    np.add.at(internal, src[~cut], g.ewgt[~cut])
    return external - internal


def fm_refine_bisection(g: Graph, side: np.ndarray, target0: int,
                        tol: float = 0.05, max_passes: int = 4,
                        max_moves_per_pass: int | None = None) -> np.ndarray:
    """Refine a bisection in place-semantics (returns a new array).

    Parameters
    ----------
    target0:
        Desired total vertex weight of side 0; side 1 gets the rest.
    tol:
        Allowed relative deviation of side 0's weight from ``target0``
        (widened by the heaviest vertex so a feasible state always
        exists even with chunky weights).
    """
    side = np.asarray(side, dtype=np.int64).copy()
    n = g.nvertices
    if n == 0:
        return side
    total = g.total_vertex_weight()
    heaviest = int(g.vwgt.max(initial=1))
    slack = max(int(tol * total), heaviest)
    lo0, hi0 = target0 - slack, target0 + slack
    if max_moves_per_pass is None:
        max_moves_per_pass = n

    xadj, adjncy, ewgt, vwgt = g.xadj, g.adjncy, g.ewgt, g.vwgt

    for _ in range(max_passes):
        gain = _gains(g, side)
        w0 = int(vwgt[side == 0].sum())
        locked = np.zeros(n, dtype=bool)
        stamp = np.zeros(n, dtype=np.int64)
        heap = []
        # seed with boundary vertices only
        src = np.repeat(np.arange(n, dtype=np.int64), g.degrees())
        boundary = np.unique(src[side[src] != side[adjncy]])
        for v in boundary:
            heapq.heappush(heap, (-int(gain[v]), int(stamp[v]), int(v)))
        moves = []  # vertices in move order
        cum = 0
        best_cum = 0
        best_len = 0
        nmoves = 0
        # give up a pass after this many moves without a new best prefix
        stall_limit = 100 + n // 8
        while heap and nmoves < max_moves_per_pass:
            if len(moves) - best_len > stall_limit:
                break
            negg, st, v = heapq.heappop(heap)
            if locked[v] or st != stamp[v]:
                continue
            vw = int(vwgt[v])
            if side[v] == 0:
                new_w0 = w0 - vw
            else:
                new_w0 = w0 + vw
            # feasibility: don't leave the balance window unless we are
            # already outside it and the move shrinks the violation
            dev_now = max(w0 - hi0, lo0 - w0, 0)
            dev_new = max(new_w0 - hi0, lo0 - new_w0, 0)
            if dev_new > 0 and dev_new >= dev_now:
                locked[v] = True  # can't move this pass
                continue
            # execute move
            old = int(side[v])
            side[v] = 1 - old
            w0 = new_w0
            locked[v] = True
            cum += int(gain[v])
            nmoves += 1
            # update neighbour gains
            for idx in range(int(xadj[v]), int(xadj[v + 1])):
                u = int(adjncy[idx])
                if locked[u]:
                    continue
                w = int(ewgt[idx])
                if side[u] == old:
                    gain[u] += 2 * w
                else:
                    gain[u] -= 2 * w
                stamp[u] += 1
                heapq.heappush(heap, (-int(gain[u]), int(stamp[u]), u))
            moves.append(v)
            feasible = lo0 <= w0 <= hi0
            if cum > best_cum and feasible:
                best_cum = cum
                best_len = len(moves)
        # roll back past the best prefix
        for v in moves[best_len:]:
            side[v] = 1 - side[v]
        if best_cum <= 0:
            break
    return side


def refine_or_keep(g: Graph, side: np.ndarray, target0: int,
                   tol: float = 0.05, max_passes: int = 4) -> np.ndarray:
    """FM-refine and keep whichever of (input, refined) has smaller cut
    among feasible candidates.  Defensive wrapper used by the multilevel
    driver so refinement can never make the final answer worse."""
    refined = fm_refine_bisection(g, side, target0, tol=tol,
                                  max_passes=max_passes)
    if edge_cut(g, refined) <= edge_cut(g, side):
        return refined
    return np.asarray(side, dtype=np.int64)
