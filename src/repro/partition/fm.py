"""Fiduccia–Mattheyses boundary refinement for bisections.

One FM pass tentatively moves every movable boundary vertex once, in
order of decreasing gain (cut-weight reduction), then rolls back to the
best prefix that kept the balance feasible.  Passes repeat until a pass
yields no improvement.  A lazy max-heap stands in for the classical
gain-bucket structure — same semantics, simpler code, and fast enough
in Python because only boundary vertices ever enter the heap.

The fast path keeps the identical heap discipline (all heap tuples are
distinct, so the pop sequence is a pure function of the pushed
multiset) but runs the move loop on plain Python lists — the reference
spends most of its time boxing numpy int64 scalars in the per-neighbour
gain updates.  Pass-level bulk work (initial gains, boundary seeding)
stays vectorised.  :func:`fm_refine_bisection` dispatches on
:func:`repro.util.fastpath.fast_enabled`;
:func:`fm_refine_bisection_reference` is the scalar original.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph.adjacency import Graph
from ..util.fastpath import fast_enabled
from .metrics import edge_cut

#: gain delta applied to an unlocked neighbour when a vertex changes
#: side: 2×(edge weight) — once for the cut edge (dis)appearing, once
#: for the internal edge doing the opposite.  The mutation smoke
#: patches this to 0 to simulate a dropped-gain-update bug.
NEIGHBOR_GAIN_STEP = 2


def _gains(g: Graph, side: np.ndarray) -> np.ndarray:
    """gain[v] = (cut weight removed) - (cut weight added) if v moved."""
    src = np.repeat(np.arange(g.nvertices, dtype=np.int64), g.degrees())
    external = np.zeros(g.nvertices, dtype=np.int64)
    internal = np.zeros(g.nvertices, dtype=np.int64)
    cut = side[src] != side[g.adjncy]
    np.add.at(external, src[cut], g.ewgt[cut])
    np.add.at(internal, src[~cut], g.ewgt[~cut])
    return external - internal


def fm_refine_bisection(g: Graph, side: np.ndarray, target0: int,
                        tol: float = 0.05, max_passes: int = 4,
                        max_moves_per_pass: int | None = None) -> np.ndarray:
    """Refine a bisection in place-semantics (returns a new array).

    Parameters
    ----------
    target0:
        Desired total vertex weight of side 0; side 1 gets the rest.
    tol:
        Allowed relative deviation of side 0's weight from ``target0``
        (widened by the heaviest vertex so a feasible state always
        exists even with chunky weights).
    """
    if not fast_enabled():
        return fm_refine_bisection_reference(
            g, side, target0, tol=tol, max_passes=max_passes,
            max_moves_per_pass=max_moves_per_pass)
    side = np.asarray(side, dtype=np.int64).copy()
    n = g.nvertices
    if n == 0:
        return side
    total = g.total_vertex_weight()
    heaviest = int(g.vwgt.max(initial=1))
    slack = max(int(tol * total), heaviest)
    lo0, hi0 = target0 - slack, target0 + slack
    if max_moves_per_pass is None:
        max_moves_per_pass = n

    xadj_l = g.xadj.tolist()
    adj_l = g.adjncy.tolist()
    ew_l = g.ewgt.tolist()
    vw_l = g.vwgt.tolist()
    heappush, heappop = heapq.heappush, heapq.heappop
    stall_limit = 100 + n // 8
    # heap entries are (-gain, stamp, v) packed into one int:
    # ((-gain)*S + stamp)*n + v.  A vertex's stamp bumps at most once
    # per *moved* neighbour and movers lock, so stamp <= degree < S —
    # the packed ints compare exactly like the reference's tuples
    # (python floor division keeps the decode exact for negative keys)
    S = int(g.degrees().max(initial=0)) + 1
    Sn = S * n

    for _ in range(max_passes):
        gain = _gains(g, side).tolist()
        w0 = int(g.vwgt[side == 0].sum())
        src = np.repeat(np.arange(n, dtype=np.int64), g.degrees())
        boundary = np.unique(src[side[src] != side[g.adjncy]])
        side_l = side.tolist()
        locked = bytearray(n)
        stamp = [0] * n
        # all keys are distinct (vertex id tie-break), so heapify of
        # the seed list pops in the same order as sequential pushes
        heap = [-gain[v] * Sn + v for v in boundary.tolist()]
        heapq.heapify(heap)
        moves = []
        cum = 0
        best_cum = 0
        best_len = 0
        nmoves = 0
        dev_now = max(w0 - hi0, lo0 - w0, 0)
        while heap and nmoves < max_moves_per_pass:
            if len(moves) - best_len > stall_limit:
                break
            key = heappop(heap)
            v = key % n
            if locked[v] or (key // n) % S != stamp[v]:
                continue
            vw = vw_l[v]
            old = side_l[v]
            new_w0 = w0 - vw if old == 0 else w0 + vw
            # feasibility: don't leave the balance window unless we are
            # already outside it and the move shrinks the violation
            dev_new = max(new_w0 - hi0, lo0 - new_w0, 0)
            if dev_new > 0 and dev_new >= dev_now:
                locked[v] = 1  # can't move this pass
                continue
            # execute move
            side_l[v] = 1 - old
            w0 = new_w0
            dev_now = dev_new
            locked[v] = 1
            cum += gain[v]
            nmoves += 1
            # update neighbour gains
            step = NEIGHBOR_GAIN_STEP
            for idx in range(xadj_l[v], xadj_l[v + 1]):
                u = adj_l[idx]
                if locked[u]:
                    continue
                if side_l[u] == old:
                    gain[u] += step * ew_l[idx]
                else:
                    gain[u] -= step * ew_l[idx]
                su = stamp[u] + 1
                stamp[u] = su
                heappush(heap, (-gain[u] * S + su) * n + u)
            moves.append(v)
            if cum > best_cum and lo0 <= w0 <= hi0:
                best_cum = cum
                best_len = len(moves)
        # roll back past the best prefix
        for v in moves[best_len:]:
            side_l[v] = 1 - side_l[v]
        side = np.array(side_l, dtype=np.int64)
        if best_cum <= 0:
            break
    return side


def fm_refine_bisection_reference(
        g: Graph, side: np.ndarray, target0: int, tol: float = 0.05,
        max_passes: int = 4,
        max_moves_per_pass: int | None = None) -> np.ndarray:
    """Scalar reference FM (pre-vectorisation implementation)."""
    side = np.asarray(side, dtype=np.int64).copy()
    n = g.nvertices
    if n == 0:
        return side
    total = g.total_vertex_weight()
    heaviest = int(g.vwgt.max(initial=1))
    slack = max(int(tol * total), heaviest)
    lo0, hi0 = target0 - slack, target0 + slack
    if max_moves_per_pass is None:
        max_moves_per_pass = n

    xadj, adjncy, ewgt, vwgt = g.xadj, g.adjncy, g.ewgt, g.vwgt

    for _ in range(max_passes):
        gain = _gains(g, side)
        w0 = int(vwgt[side == 0].sum())
        locked = np.zeros(n, dtype=bool)
        stamp = np.zeros(n, dtype=np.int64)
        heap = []
        # seed with boundary vertices only
        src = np.repeat(np.arange(n, dtype=np.int64), g.degrees())
        boundary = np.unique(src[side[src] != side[adjncy]])
        for v in boundary:
            heapq.heappush(heap, (-int(gain[v]), int(stamp[v]), int(v)))
        moves = []  # vertices in move order
        cum = 0
        best_cum = 0
        best_len = 0
        nmoves = 0
        # give up a pass after this many moves without a new best prefix
        stall_limit = 100 + n // 8
        while heap and nmoves < max_moves_per_pass:
            if len(moves) - best_len > stall_limit:
                break
            negg, st, v = heapq.heappop(heap)
            if locked[v] or st != stamp[v]:
                continue
            vw = int(vwgt[v])
            if side[v] == 0:
                new_w0 = w0 - vw
            else:
                new_w0 = w0 + vw
            # feasibility: don't leave the balance window unless we are
            # already outside it and the move shrinks the violation
            dev_now = max(w0 - hi0, lo0 - w0, 0)
            dev_new = max(new_w0 - hi0, lo0 - new_w0, 0)
            if dev_new > 0 and dev_new >= dev_now:
                locked[v] = True  # can't move this pass
                continue
            # execute move
            old = int(side[v])
            side[v] = 1 - old
            w0 = new_w0
            locked[v] = True
            cum += int(gain[v])
            nmoves += 1
            # update neighbour gains
            for idx in range(int(xadj[v]), int(xadj[v + 1])):
                u = int(adjncy[idx])
                if locked[u]:
                    continue
                w = int(ewgt[idx])
                if side[u] == old:
                    gain[u] += 2 * w
                else:
                    gain[u] -= 2 * w
                stamp[u] += 1
                heapq.heappush(heap, (-int(gain[u]), int(stamp[u]), u))
            moves.append(v)
            feasible = lo0 <= w0 <= hi0
            if cum > best_cum and feasible:
                best_cum = cum
                best_len = len(moves)
        # roll back past the best prefix
        for v in moves[best_len:]:
            side[v] = 1 - side[v]
        if best_cum <= 0:
            break
    return side


def refine_or_keep(g: Graph, side: np.ndarray, target0: int,
                   tol: float = 0.05, max_passes: int = 4) -> np.ndarray:
    """FM-refine and keep whichever of (input, refined) has smaller cut
    among feasible candidates.  Defensive wrapper used by the multilevel
    driver so refinement can never make the final answer worse."""
    refined = fm_refine_bisection(g, side, target0, tol=tol,
                                  max_passes=max_passes)
    if edge_cut(g, refined) <= edge_cut(g, side):
        return refined
    return np.asarray(side, dtype=np.int64)
