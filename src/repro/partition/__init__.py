"""Multilevel graph partitioner — our from-scratch METIS substitute.

Implements the multilevel paradigm of Karypis & Kumar [SISC 1998] that
the paper's GP and ND orderings rely on:

1. **Coarsening** (:mod:`.matching`, :mod:`.coarsen`): heavy-edge
   matching contracts the graph until it is small.
2. **Initial partitioning** (:mod:`.initial`): greedy graph growing and
   dense spectral bisection on the coarsest graph; best cut wins.
3. **Uncoarsening + refinement** (:mod:`.fm`): the partition is
   projected back level by level and improved with boundary
   Fiduccia–Mattheyses passes.

k-way partitions are produced by recursive bisection
(:mod:`.recursive`), with target weights split proportionally so any k
is supported.  Vertex separators for nested dissection are derived from
edge cuts in :mod:`.separator`.
"""

from .metrics import edge_cut, partition_balance, partition_weights
from .multilevel import bisect
from .recursive import partition_graph
from .separator import vertex_separator

__all__ = [
    "edge_cut",
    "partition_balance",
    "partition_weights",
    "bisect",
    "partition_graph",
    "vertex_separator",
]
