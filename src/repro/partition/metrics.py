"""Partition quality metrics: edge cut and balance.

The edge-cut objective is the one the study uses for GP (§3.3), and —
via the off-diagonal nonzero count — the matrix feature that best
predicts SpMV performance (§4.5, key finding 5).
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph.adjacency import Graph


def _check_assignment(g: Graph, part: np.ndarray) -> np.ndarray:
    part = np.asarray(part, dtype=np.int64)
    if part.shape != (g.nvertices,):
        raise PartitionError(
            f"assignment length {part.size} != nvertices {g.nvertices}")
    if part.size and part.min() < 0:
        raise PartitionError("negative part ids in assignment")
    return part


def edge_cut(g: Graph, part: np.ndarray) -> int:
    """Total weight of edges whose endpoints lie in different parts."""
    part = _check_assignment(g, part)
    src = np.repeat(np.arange(g.nvertices, dtype=np.int64), g.degrees())
    cut_mask = part[src] != part[g.adjncy]
    return int(g.ewgt[cut_mask].sum()) // 2  # each cut edge counted twice


def partition_weights(g: Graph, part: np.ndarray, nparts: int) -> np.ndarray:
    """Total vertex weight per part (length ``nparts``)."""
    part = _check_assignment(g, part)
    if part.size and part.max() >= nparts:
        raise PartitionError(
            f"part id {int(part.max())} out of range for nparts={nparts}")
    w = np.zeros(nparts, dtype=np.int64)
    np.add.at(w, part, g.vwgt)
    return w


def partition_balance(g: Graph, part: np.ndarray, nparts: int) -> float:
    """Max part weight over average part weight (1.0 = perfectly balanced).

    Same definition as the paper's load-imbalance factor, applied to the
    partition instead of the SpMV thread schedule.
    """
    w = partition_weights(g, part, nparts)
    avg = w.sum() / max(nparts, 1)
    if avg == 0:
        return 1.0
    return float(w.max() / avg)
