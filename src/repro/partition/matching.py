"""Heavy-edge matching for multilevel coarsening.

Karypis & Kumar's HEM visits vertices in random order and matches each
unmatched vertex with its unmatched neighbour of maximal edge weight.
Heavier edges collapse first, so their weight disappears from the
coarse graph and cannot contribute to any coarse cut — the property
that makes multilevel edge-cut partitioning work.

The visit loop is inherently sequential (each match constrains the
next), so the fast path keeps the loop but runs it on plain Python
lists with a first-maximum scan — ``np.argmax`` over a masked slice
boxes several numpy scalars per vertex and dominates the runtime on
the small graphs coarsening produces.  Tie-breaking is identical:
the first neighbour (adjacency order) attaining the maximal weight
wins, exactly as ``argmax`` resolves ties.
"""

from __future__ import annotations

import numpy as np

from ..graph.adjacency import Graph
from ..util.fastpath import fast_enabled
from ..util.rng import as_rng

UNMATCHED = -1


def heavy_edge_matching(g: Graph, rng=None) -> np.ndarray:
    """Return ``match`` with ``match[v]`` = partner of v (or v itself).

    Unmatchable vertices (no unmatched neighbour) are matched to
    themselves, so ``match`` always defines a valid contraction with
    every coarse vertex holding one or two fine vertices.
    """
    if not fast_enabled():
        return heavy_edge_matching_reference(g, rng=rng)
    rng = as_rng(rng)
    n = g.nvertices
    order = rng.permutation(n).tolist()
    match = [UNMATCHED] * n
    xadj = g.xadj.tolist()
    adjncy = g.adjncy.tolist()
    ewgt = g.ewgt.tolist()
    for v in order:
        if match[v] != UNMATCHED:
            continue
        best = UNMATCHED
        best_w = -1
        for idx in range(xadj[v], xadj[v + 1]):
            u = adjncy[idx]
            if u == v or match[u] != UNMATCHED:
                continue
            w = ewgt[idx]
            if w > best_w:  # first maximum wins, like np.argmax
                best_w = w
                best = u
        if best != UNMATCHED:
            match[v] = best
            match[best] = v
        else:
            match[v] = v
    return np.array(match, dtype=np.int64)


def heavy_edge_matching_reference(g: Graph, rng=None) -> np.ndarray:
    """Numpy-slice reference HEM (pre-fast-path implementation)."""
    rng = as_rng(rng)
    n = g.nvertices
    match = np.full(n, UNMATCHED, dtype=np.int64)
    order = rng.permutation(n)
    xadj, adjncy, ewgt = g.xadj, g.adjncy, g.ewgt
    for v in order:
        if match[v] != UNMATCHED:
            continue
        lo, hi = xadj[v], xadj[v + 1]
        nbrs = adjncy[lo:hi]
        weights = ewgt[lo:hi]
        free = match[nbrs] == UNMATCHED
        # exclude self-loops (shouldn't exist, but be safe)
        free &= nbrs != v
        if np.any(free):
            cand = nbrs[free]
            u = int(cand[np.argmax(weights[free])])
            match[v] = u
            match[u] = v
        else:
            match[v] = v
    return match


def random_matching(g: Graph, rng=None) -> np.ndarray:
    """Weight-oblivious matching; used as an ablation baseline."""
    rng = as_rng(rng)
    n = g.nvertices
    match = np.full(n, UNMATCHED, dtype=np.int64)
    order = rng.permutation(n)
    xadj, adjncy = g.xadj, g.adjncy
    for v in order:
        if match[v] != UNMATCHED:
            continue
        nbrs = adjncy[xadj[v]:xadj[v + 1]]
        free = nbrs[(match[nbrs] == UNMATCHED) & (nbrs != v)]
        if free.size:
            u = int(free[rng.integers(0, free.size)])
            match[v] = u
            match[u] = v
        else:
            match[v] = v
    return match


def matching_to_coarse_map(match: np.ndarray) -> tuple:
    """Convert a matching into (cmap, ncoarse).

    ``cmap[v]`` is the coarse vertex holding fine vertex v; pairs share a
    coarse vertex.  Coarse ids are assigned in increasing order of the
    smaller fine id, so the map is deterministic given the matching.
    """
    if not fast_enabled():
        return matching_to_coarse_map_reference(match)
    match = np.asarray(match, dtype=np.int64)
    n = match.size
    # the smaller fine id of each pair (or a self-match) is the
    # representative; ids in increasing representative order
    reps = np.flatnonzero(np.arange(n, dtype=np.int64) <= match)
    ids = np.arange(reps.size, dtype=np.int64)
    cmap = np.full(n, -1, dtype=np.int64)
    cmap[reps] = ids
    cmap[match[reps]] = ids
    return cmap, int(reps.size)


def matching_to_coarse_map_reference(match: np.ndarray) -> tuple:
    """Scalar reference for :func:`matching_to_coarse_map`."""
    n = match.size
    cmap = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if cmap[v] >= 0:
            continue
        u = match[v]
        cmap[v] = next_id
        if u != v:
            cmap[u] = next_id
        next_id += 1
    return cmap, next_id
