"""Heavy-edge matching for multilevel coarsening.

Karypis & Kumar's HEM visits vertices in random order and matches each
unmatched vertex with its unmatched neighbour of maximal edge weight.
Heavier edges collapse first, so their weight disappears from the
coarse graph and cannot contribute to any coarse cut — the property
that makes multilevel edge-cut partitioning work.
"""

from __future__ import annotations

import numpy as np

from ..graph.adjacency import Graph
from ..util.rng import as_rng

UNMATCHED = -1


def heavy_edge_matching(g: Graph, rng=None) -> np.ndarray:
    """Return ``match`` with ``match[v]`` = partner of v (or v itself).

    Unmatchable vertices (no unmatched neighbour) are matched to
    themselves, so ``match`` always defines a valid contraction with
    every coarse vertex holding one or two fine vertices.
    """
    rng = as_rng(rng)
    n = g.nvertices
    match = np.full(n, UNMATCHED, dtype=np.int64)
    order = rng.permutation(n)
    xadj, adjncy, ewgt = g.xadj, g.adjncy, g.ewgt
    for v in order:
        if match[v] != UNMATCHED:
            continue
        lo, hi = xadj[v], xadj[v + 1]
        nbrs = adjncy[lo:hi]
        weights = ewgt[lo:hi]
        free = match[nbrs] == UNMATCHED
        # exclude self-loops (shouldn't exist, but be safe)
        free &= nbrs != v
        if np.any(free):
            cand = nbrs[free]
            u = int(cand[np.argmax(weights[free])])
            match[v] = u
            match[u] = v
        else:
            match[v] = v
    return match


def random_matching(g: Graph, rng=None) -> np.ndarray:
    """Weight-oblivious matching; used as an ablation baseline."""
    rng = as_rng(rng)
    n = g.nvertices
    match = np.full(n, UNMATCHED, dtype=np.int64)
    order = rng.permutation(n)
    xadj, adjncy = g.xadj, g.adjncy
    for v in order:
        if match[v] != UNMATCHED:
            continue
        nbrs = adjncy[xadj[v]:xadj[v + 1]]
        free = nbrs[(match[nbrs] == UNMATCHED) & (nbrs != v)]
        if free.size:
            u = int(free[rng.integers(0, free.size)])
            match[v] = u
            match[u] = v
        else:
            match[v] = v
    return match


def matching_to_coarse_map(match: np.ndarray) -> tuple:
    """Convert a matching into (cmap, ncoarse).

    ``cmap[v]`` is the coarse vertex holding fine vertex v; pairs share a
    coarse vertex.  Coarse ids are assigned in increasing order of the
    smaller fine id, so the map is deterministic given the matching.
    """
    n = match.size
    cmap = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if cmap[v] >= 0:
            continue
        u = match[v]
        cmap[v] = next_id
        if u != v:
            cmap[u] = next_id
        next_id += 1
    return cmap, next_id
