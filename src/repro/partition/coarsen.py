"""Graph contraction for the multilevel hierarchy."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.adjacency import Graph
from .matching import heavy_edge_matching, matching_to_coarse_map


@dataclass(frozen=True)
class Level:
    """One level of the coarsening hierarchy.

    ``cmap`` maps this level's (fine) vertices to the next coarser
    level's vertices; the coarsest level has ``cmap=None``.
    """

    graph: Graph
    cmap: np.ndarray | None


def contract(g: Graph, cmap: np.ndarray, ncoarse: int) -> Graph:
    """Contract ``g`` according to ``cmap``.

    Vertex weights are summed into coarse vertices; parallel edges merge
    with summed weights; self-loops (intra-pair edges) vanish.  All
    heavy lifting is numpy sort/reduce — no Python loop over edges.
    """
    src = np.repeat(np.arange(g.nvertices, dtype=np.int64), g.degrees())
    cu = cmap[src]
    cv = cmap[g.adjncy]
    keep = cu != cv
    cu, cv, w = cu[keep], cv[keep], g.ewgt[keep]
    # merge parallel edges
    order = np.lexsort((cv, cu))
    cu, cv, w = cu[order], cv[order], w[order]
    if cu.size:
        is_first = np.empty(cu.size, dtype=bool)
        is_first[0] = True
        is_first[1:] = (cu[1:] != cu[:-1]) | (cv[1:] != cv[:-1])
        starts = np.flatnonzero(is_first)
        cu = cu[starts]
        cv = cv[starts]
        w = np.add.reduceat(w, starts)
    xadj = np.zeros(ncoarse + 1, dtype=np.int64)
    np.add.at(xadj, cu + 1, 1)
    np.cumsum(xadj, out=xadj)
    vwgt = np.zeros(ncoarse, dtype=np.int64)
    np.add.at(vwgt, cmap, g.vwgt)
    return Graph(xadj, cv, vwgt=vwgt, ewgt=w)


def coarsen_hierarchy(g: Graph, min_vertices: int = 64,
                      max_levels: int = 40, rng=None) -> list:
    """Build the hierarchy [finest, ..., coarsest] of :class:`Level`.

    Coarsening stops when the graph is small enough, the level budget is
    exhausted, or a level fails to shrink by at least ~10 % (matching
    degenerates on star-like graphs — grinding on would waste time
    without helping the initial partition).
    """
    levels = []
    current = g
    for _ in range(max_levels):
        if current.nvertices <= min_vertices:
            break
        match = heavy_edge_matching(current, rng=rng)
        cmap, ncoarse = matching_to_coarse_map(match)
        if ncoarse > 0.9 * current.nvertices:
            break
        coarse = contract(current, cmap, ncoarse)
        levels.append(Level(graph=current, cmap=cmap))
        current = coarse
    levels.append(Level(graph=current, cmap=None))
    return levels
