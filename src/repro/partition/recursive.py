"""k-way partitioning by recursive bisection.

METIS's recursive-bisection mode: split k into ⌈k/2⌉ + ⌊k/2⌋, bisect
with proportional target weights, and recurse on the two induced
subgraphs.  Any k ≥ 1 is supported (the paper partitions into 16…128
parts to match core counts, §3.3).
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph.adjacency import Graph
from ..util.rng import as_rng
from .multilevel import bisect


def induced_subgraph(g: Graph, vertices: np.ndarray) -> tuple:
    """Subgraph induced by ``vertices``; returns (subgraph, local→global).

    Edges leaving the vertex set are dropped (they are already paid for
    in the parent cut).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    n = g.nvertices
    local = np.full(n, -1, dtype=np.int64)
    local[vertices] = np.arange(vertices.size, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), g.degrees())
    keep = (local[src] >= 0) & (local[g.adjncy] >= 0)
    su = local[src[keep]]
    sv = local[g.adjncy[keep]]
    w = g.ewgt[keep]
    order = np.lexsort((sv, su))
    su, sv, w = su[order], sv[order], w[order]
    xadj = np.zeros(vertices.size + 1, dtype=np.int64)
    np.add.at(xadj, su + 1, 1)
    np.cumsum(xadj, out=xadj)
    sub = Graph(xadj, sv, vwgt=g.vwgt[vertices].copy(), ewgt=w)
    return sub, vertices


def partition_graph(g: Graph, nparts: int, tol: float = 0.05, rng=None,
                    refine: bool = True) -> np.ndarray:
    """Partition ``g`` into ``nparts`` parts; returns the part id per vertex.

    Part ids are contiguous in the recursion order, so grouping vertices
    by part id yields the GP ordering directly (paper §2.1.3: rows and
    columns grouped by assigned part).
    """
    if nparts < 1:
        raise PartitionError(f"nparts must be >= 1, got {nparts}")
    rng = as_rng(rng)
    part = np.zeros(g.nvertices, dtype=np.int64)
    _recurse(g, np.arange(g.nvertices, dtype=np.int64), nparts, 0, part,
             tol, rng, refine)
    return part


def _recurse(g: Graph, global_ids: np.ndarray, nparts: int, base: int,
             part: np.ndarray, tol: float, rng, refine: bool) -> None:
    if nparts == 1 or g.nvertices == 0:
        part[global_ids] = base
        return
    k0 = (nparts + 1) // 2
    k1 = nparts - k0
    total = g.total_vertex_weight()
    target0 = int(round(total * k0 / nparts))
    side = bisect(g, target0=target0, tol=tol, rng=rng, refine=refine)
    left = np.flatnonzero(side == 0)
    right = np.flatnonzero(side == 1)
    # degenerate bisection guard: force a weight split so recursion
    # always terminates with nonempty parts where possible
    if left.size == 0 or right.size == 0:
        order = np.argsort(g.vwgt, kind="stable")[::-1]
        half = g.nvertices // 2
        left = order[:half]
        right = order[half:]
    sub0, glob0 = induced_subgraph(g, left)
    sub1, glob1 = induced_subgraph(g, right)
    _recurse(sub0, global_ids[glob0], k0, base, part, tol, rng, refine)
    _recurse(sub1, global_ids[glob1], k1, base + k0, part, tol, rng, refine)
