"""Preferential-attachment power-law graphs (web/social, indochina-like).

Barabási–Albert-style attachment produces hubs and strong community-free
heavy tails.  Web crawls like ``indochina-2004`` additionally contain
host-local clusters; the ``clusters`` parameter mixes in block-local
edges to reproduce that (these clusters are exactly what GP recovers).
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from ._common import check_size, scramble, symmetric_from_edges


def powerlaw_graph(nnodes: int, m: int = 4, clusters: int = 0,
                   intra_frac: float = 0.5, seed=0,
                   scrambled: bool = True) -> CSRMatrix:
    """Preferential-attachment graph with optional host-like clusters.

    Parameters
    ----------
    m:
        Edges added per new vertex (BA parameter).
    clusters:
        If > 0, vertices are assigned to this many clusters and a
        fraction ``intra_frac`` of each vertex's edges is redirected to a
        random member of its own cluster.
    """
    nnodes = check_size("nnodes", nnodes, 4)
    m = check_size("m", m)
    rng = as_rng(seed)
    # vectorised BA: target of each new edge sampled from the endpoint
    # pool (repeated-endpoint trick gives preferential attachment)
    seeds = min(m + 1, nnodes)
    pool = [np.arange(seeds, dtype=np.int64)]
    pool_size = seeds
    us, vs = [], []
    for v in range(seeds, nnodes):
        flat = np.concatenate(pool) if len(pool) > 1 else pool[0]
        pool = [flat]
        targets = flat[rng.integers(0, pool_size, m)]
        targets = np.unique(targets)
        us.append(np.full(targets.size, v, dtype=np.int64))
        vs.append(targets)
        pool.append(targets)
        pool.append(np.full(targets.size + 1, v, dtype=np.int64))
        pool_size += 2 * targets.size + 1
    u = np.concatenate(us) if us else np.empty(0, dtype=np.int64)
    v = np.concatenate(vs) if vs else np.empty(0, dtype=np.int64)
    if clusters > 0 and u.size:
        cluster_of = rng.integers(0, clusters, nnodes)
        redirect = rng.uniform(size=u.size) < intra_frac
        # redirect edge target to a random vertex of u's cluster
        members_sorted = np.argsort(cluster_of, kind="stable").astype(np.int64)
        starts = np.searchsorted(cluster_of[members_sorted],
                                 np.arange(clusters + 1))
        cu = cluster_of[u[redirect]]
        lo = starts[cu]
        hi = starts[cu + 1]
        width = np.maximum(hi - lo, 1)
        pick = lo + (rng.uniform(size=lo.size) * width).astype(np.int64)
        v = v.copy()
        v[redirect] = members_sorted[np.minimum(pick, starts[-1] - 1)]
    a = symmetric_from_edges(nnodes, u, v, rng)
    if scrambled:
        a = scramble(a, rng)
    return a
