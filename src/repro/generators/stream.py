"""Streaming generator drivers for the out-of-core corpus tier.

The tiers in :mod:`repro.generators.suite` build each matrix fully in
RAM, which caps the corpus at ~10⁶ nnz per process.  The drivers here
produce CSR rows **chunk by chunk** — ``(row_lengths, colidx, values)``
triples ready for :class:`repro.storage.format.MatrixWriter` — so a
10⁷–10⁸-nnz matrix is generated and persisted with a working set of
one chunk.

Streaming requires every row to be computable locally, so instead of
drawing edges from a shared RNG stream (order-dependent), presence and
value of an entry ``(i, j)`` come from a counter-based hash of the
*unordered* pair ``{i, j}`` plus the seed: ``hash(min, max, seed)``.
Both triangles see the same draw, which keeps the matrices exactly
symmetric — same trick as counter-based RNGs (Philox et al.), here a
vectorised splitmix64 finaliser.  Diagonal dominance mirrors
:func:`repro.generators._common.symmetric_from_edges`: the diagonal is
always present with value ``1 + row_degree``, so the SPD tag holds.

Chunk boundaries never change the bytes written (chunks are plain
appends), so any chunk size produces the identical file and the
identical content address.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeneratorError
from ..util.validate import check_positive, require

__all__ = ["stream_banded", "stream_stencil2d", "StreamRecipe",
           "xl_recipes", "STREAM_CHUNK_ROWS"]

#: default rows per yielded chunk (a memory knob only — the on-disk
#: bytes and content address are chunking-invariant).
STREAM_CHUNK_ROWS = 65536

_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_GOLD = np.uint64(0x9E3779B97F4A7C15)


def _mix(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser (uint64 in, uint64 out)."""
    x = (x ^ (x >> np.uint64(30))) * _M1
    x = (x ^ (x >> np.uint64(27))) * _M2
    return x ^ (x >> np.uint64(31))


def _hash01(lo: np.ndarray, hi: np.ndarray, seed: int,
            salt: int) -> np.ndarray:
    """Deterministic uniform draw in [0, 1) per unordered index pair."""
    key = np.uint64((int(seed) * 0x9E3779B97F4A7C15
                     + int(salt) * 0xD1B54A32D192ED03)
                    & 0xFFFFFFFFFFFFFFFF)
    x = ((lo.astype(np.uint64) + np.uint64(1)) * _GOLD
         ^ hi.astype(np.uint64)) ^ key
    return (_mix(x) >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def stream_banded(n: int, bandwidth: int, density: float = 0.5,
                  seed: int = 0, chunk_rows: int = STREAM_CHUNK_ROWS):
    """Yield chunks of a symmetric banded SPD matrix of order ``n``.

    Off-diagonal ``(i, j)`` with ``|i - j| <= bandwidth`` is present
    with probability ``density`` (hash-decided, symmetric); the
    diagonal is always present with value ``1 + row_degree``.
    """
    check_positive("n", n, GeneratorError)
    check_positive("bandwidth", bandwidth, GeneratorError)
    check_positive("chunk_rows", chunk_rows, GeneratorError)
    require(0.0 <= density <= 1.0, GeneratorError,
            f"density must be in [0, 1], got {density}")
    offsets = np.arange(-bandwidth, bandwidth + 1, dtype=np.int64)
    diag_slot = bandwidth  # offsets[diag_slot] == 0
    for r0 in range(0, n, chunk_rows):
        r1 = min(r0 + chunk_rows, n)
        i = np.arange(r0, r1, dtype=np.int64)[:, None]
        j = i + offsets[None, :]
        valid = (j >= 0) & (j < n)
        lo = np.minimum(i, j)
        hi = np.maximum(i, j)
        present = valid & (_hash01(lo, hi, seed, 0) < density)
        present[:, diag_slot] = True
        vals = 2.0 * _hash01(lo, hi, seed, 1) - 1.0
        row_lengths = present.sum(axis=1).astype(np.int64)
        # diagonal dominance: 1 + number of off-diagonal entries
        vals[:, diag_slot] = 1.0 + (row_lengths - 1)
        yield row_lengths, j[present], vals[present]


def stream_stencil2d(side: int, chunk_rows: int = STREAM_CHUNK_ROWS):
    """Yield chunks of the 5-point Laplacian stencil on a
    ``side x side`` grid (order ``side**2``, SPD, purely structural:
    diagonal 4, neighbours -1)."""
    check_positive("side", side, GeneratorError)
    check_positive("chunk_rows", chunk_rows, GeneratorError)
    n = side * side
    offsets = np.array([-side, -1, 0, 1, side], dtype=np.int64)
    for r0 in range(0, n, chunk_rows):
        r1 = min(r0 + chunk_rows, n)
        p = np.arange(r0, r1, dtype=np.int64)[:, None]
        r, c = p // side, p % side
        j = p + offsets[None, :]
        present = np.ones((r1 - r0, 5), dtype=bool)
        present[:, 0] = (r > 0).ravel()
        present[:, 1] = (c > 0).ravel()
        present[:, 3] = (c < side - 1).ravel()
        present[:, 4] = (r < side - 1).ravel()
        vals = np.full((r1 - r0, 5), -1.0)
        vals[:, 2] = 4.0
        yield (present.sum(axis=1).astype(np.int64),
               j[present], vals[present])


@dataclass(frozen=True)
class StreamRecipe:
    """One matrix of the streamed ``xl`` tier.

    ``make(seed, scale)`` returns ``(nrows, ncols, chunks)`` where
    ``chunks`` is an iterator of ``MatrixWriter.append_chunk`` triples.
    ``scale`` multiplies the row count, so the same recipes serve the
    10⁷ CI tier (scale 1) and a 10⁸ local tier (scale ~10).
    """

    name: str
    group: str
    kind: str
    spd: bool
    tags: tuple
    make: object  # Callable[[int, float], tuple]


def _banded_recipe(name, n, bandwidth, density):
    def make(seed: int, scale: float):
        rows = max(int(n * scale), bandwidth + 1)
        return rows, rows, stream_banded(rows, bandwidth, density,
                                         seed=seed)
    return StreamRecipe(name=name, group="Banded", kind="banded",
                        spd=True, tags=("xl", "streamed"), make=make)


def _stencil_recipe(name, side):
    def make(seed: int, scale: float):
        s = max(int(side * np.sqrt(scale)), 2)
        return s * s, s * s, stream_stencil2d(s)
    return StreamRecipe(name=name, group="Stencil", kind="stencil2d",
                        spd=True, tags=("xl", "streamed"), make=make)


def xl_recipes() -> tuple:
    """The streamed corpus tier: ~1.6x10⁷ nnz at ``scale=1``.

    banded_xl   450k rows, full 15-wide band      ~6.8e6 nnz
    banded_xl2  300k rows, 9-wide band, d=0.9     ~2.5e6 nnz
    stencil_xl  1160x1160 5-point grid            ~6.7e6 nnz
    """
    return (
        _banded_recipe("banded_xl", 450_000, 7, 1.0),
        _banded_recipe("banded_xl2", 300_000, 4, 0.9),
        _stencil_recipe("stencil_xl", 1160),
    )
