"""Regular PDE stencil matrices (5-point 2D, 7-point 3D).

These are the archetypal "already well ordered" matrices: the natural
row-major numbering of a grid yields a narrow band, so reordering
typically gives little or nothing (paper Class 4 behaviour when the
matrix fits cache).  With ``scrambled=True`` the native order is
destroyed, producing the case where bandwidth-reducing orderings shine.
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from ._common import check_size, scramble, symmetric_from_edges


def _grid_edges_2d(nx: int, ny: int):
    """Undirected edges of an nx-by-ny 4-neighbour grid."""
    idx = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    right_u = idx[:, :-1].ravel()
    right_v = idx[:, 1:].ravel()
    down_u = idx[:-1, :].ravel()
    down_v = idx[1:, :].ravel()
    return np.concatenate([right_u, down_u]), np.concatenate([right_v, down_v])


def stencil_2d(nx: int, ny: int | None = None, seed=0,
               scrambled: bool = False, spd: bool = True) -> CSRMatrix:
    """5-point Laplacian-like stencil on an ``nx`` × ``ny`` grid.

    ``spd=True`` adds a diagonally dominant diagonal so the matrix is
    symmetric positive definite (usable by the Cholesky experiments).
    """
    nx = check_size("nx", nx)
    ny = nx if ny is None else check_size("ny", ny)
    rng = as_rng(seed)
    u, v = _grid_edges_2d(nx, ny)
    a = symmetric_from_edges(nx * ny, u, v, rng,
                             diag_boost=1.0 if spd else 0.0)
    if scrambled:
        a = scramble(a, rng)
    return a


def stencil_3d(nx: int, ny: int | None = None, nz: int | None = None, seed=0,
               scrambled: bool = False, spd: bool = True) -> CSRMatrix:
    """7-point stencil on an ``nx`` × ``ny`` × ``nz`` grid."""
    nx = check_size("nx", nx)
    ny = nx if ny is None else check_size("ny", ny)
    nz = nx if nz is None else check_size("nz", nz)
    rng = as_rng(seed)
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    pairs = [
        (idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()),
        (idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()),
        (idx[:-1, :, :].ravel(), idx[1:, :, :].ravel()),
    ]
    u = np.concatenate([p[0] for p in pairs])
    v = np.concatenate([p[1] for p in pairs])
    a = symmetric_from_edges(nx * ny * nz, u, v, rng,
                             diag_boost=1.0 if spd else 0.0)
    if scrambled:
        a = scramble(a, rng)
    return a
