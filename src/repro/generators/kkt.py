"""KKT saddle-point matrices (nlpkkt240-like).

Interior-point optimisation produces 2×2 block systems
``[[H, Jᵀ], [J, 0]]`` where H is a PDE-like Hessian and J a constraint
Jacobian.  The native ordering interleaves primal and dual variables in
problem order; bandwidth is moderate but the zero (2,2) block makes the
structure distinctive.
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..matrix.build import coo_from_arrays, csr_from_coo
from ..util.rng import as_rng
from ._common import check_size, scramble
from .stencil import _grid_edges_2d


def kkt_matrix(nprimal: int, constraint_frac: float = 0.4, seed=0,
               scrambled: bool = False) -> CSRMatrix:
    """Symmetric KKT system with a grid-structured Hessian block.

    ``nprimal`` is rounded to a square grid; the Jacobian couples each
    constraint to a handful of nearby primal variables.
    """
    nprimal = check_size("nprimal", nprimal, 9)
    if not (0.0 < constraint_frac < 1.0):
        raise ValueError(
            f"constraint_frac must be in (0, 1), got {constraint_frac}")
    rng = as_rng(seed)
    side = max(3, int(np.sqrt(nprimal)))
    np_ = side * side
    nc = max(1, int(constraint_frac * np_))
    n = np_ + nc
    # Hessian block: 5-point stencil + diagonal
    hu, hv = _grid_edges_2d(side, side)
    rows = [hu, hv, np.arange(np_, dtype=np.int64)]
    cols = [hv, hu, np.arange(np_, dtype=np.int64)]
    vals = [rng.uniform(-1, 1, hu.size)]
    vals.append(vals[0])
    vals.append(np.full(np_, 4.0) + rng.uniform(0, 1, np_))
    # Jacobian: constraint c touches 3 consecutive primal vars at a
    # random anchor (local constraints, like discretised equalities)
    anchors = rng.integers(0, max(np_ - 3, 1), nc)
    width = 3
    ju = (np_ + np.repeat(np.arange(nc, dtype=np.int64), width))
    jv = (anchors[:, None] + np.arange(width)[None, :]).ravel()
    jvals = rng.uniform(-1, 1, ju.size)
    rows += [ju, jv]
    cols += [jv, ju]
    vals += [jvals, jvals]
    a = csr_from_coo(coo_from_arrays(
        n, n, np.concatenate(rows), np.concatenate(cols),
        np.concatenate(vals)))
    if scrambled:
        a = scramble(a, rng)
    return a
