"""Road-network surrogate (europe_osm-like).

Road networks are near-planar, have tiny average degree (~2.1 for OSM
extracts), long paths, and huge diameter.  We build one as a jittered
2-D lattice with most lattice edges kept (local roads), a sprinkling of
edges removed (rivers/terrain), and degree-2 chain subdivision to
reproduce the long-path character.  The native SuiteSparse order of
such matrices is geographic and moderately local; ``scrambled`` controls
whether we keep that or randomise.
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from ._common import check_size, scramble, symmetric_from_edges
from .stencil import _grid_edges_2d


def road_network(nnodes: int, keep: float = 0.85, subdivide: float = 0.5,
                 seed=0, scrambled: bool = True) -> CSRMatrix:
    """Road-network-like symmetric pattern matrix with ~2·keep avg degree.

    Parameters
    ----------
    nnodes:
        Approximate vertex count (rounded to a square grid, then grown by
        subdivision).
    keep:
        Fraction of lattice edges retained.
    subdivide:
        Fraction of retained edges split by inserting a degree-2 vertex,
        which stretches paths exactly like road polylines do.
    """
    nnodes = check_size("nnodes", nnodes, 9)
    if not (0.0 < keep <= 1.0):
        raise ValueError(f"keep must be in (0, 1], got {keep}")
    if not (0.0 <= subdivide <= 1.0):
        raise ValueError(f"subdivide must be in [0, 1], got {subdivide}")
    rng = as_rng(seed)
    side = max(3, int(np.sqrt(nnodes)))
    u, v = _grid_edges_2d(side, side)
    mask = rng.uniform(size=u.size) < keep
    u, v = u[mask], v[mask]
    n = side * side
    # subdivide a fraction of edges with fresh mid-vertices
    split = rng.uniform(size=u.size) < subdivide
    mid = np.arange(int(split.sum()), dtype=np.int64) + n
    keep_u, keep_v = u[~split], v[~split]
    su, sv = u[split], v[split]
    u = np.concatenate([keep_u, su, mid])
    v = np.concatenate([keep_v, mid, sv])
    n += mid.size
    a = symmetric_from_edges(n, u, v, rng, diag_boost=0.0)
    if scrambled:
        a = scramble(a, rng)
    return a
