"""Circuit-simulation matrices (Freescale2-like, semiconductor group).

Post-layout circuit matrices are unsymmetric-in-values but nearly
pattern-symmetric, extremely sparse (2–5 nnz/row), and consist of large
weakly-connected subcircuits joined by a power/clock network: a few
rows (supply rails) touch a large share of all columns.  These dense
rows are what make the 1D row split catastrophically imbalanced and
give GP its largest wins (paper Fig. 1, Freescale2 row).
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from ._common import check_size, scramble, symmetric_from_edges


def circuit_matrix(n: int, nblocks: int = 50, rail_rows: int = 4,
                   rail_fanout: float = 0.02, seed=0,
                   scrambled: bool = True) -> CSRMatrix:
    """Blocked subcircuits plus a few high-fanout rail rows.

    Parameters
    ----------
    nblocks:
        Number of subcircuits; intra-block connectivity is a sparse ring
        + chords, inter-block connectivity near zero.
    rail_rows:
        Number of power-rail vertices, each connected to
        ``rail_fanout``·n random vertices.
    """
    n = check_size("n", n, 16)
    nblocks = check_size("nblocks", min(nblocks, n // 4))
    rng = as_rng(seed)
    block_of = np.sort(rng.integers(0, nblocks, n - rail_rows))
    # intra-block ring + random chords
    us, vs = [], []
    start = 0
    for b in range(nblocks):
        size = int(np.sum(block_of == b))
        if size < 2:
            start += size
            continue
        members = np.arange(start, start + size, dtype=np.int64)
        us.append(members[:-1])
        vs.append(members[1:])
        nchords = size // 2
        us.append(members[rng.integers(0, size, nchords)])
        vs.append(members[rng.integers(0, size, nchords)])
        start += size
    # rails: high fanout rows at the end
    fan = max(1, int(rail_fanout * n))
    for r in range(rail_rows):
        rail = n - rail_rows + r
        targets = rng.integers(0, n - rail_rows, fan)
        us.append(np.full(fan, rail, dtype=np.int64))
        vs.append(targets.astype(np.int64))
    u = np.concatenate(us)
    v = np.concatenate(vs)
    a = symmetric_from_edges(n, u, v, rng, diag_boost=1.0)
    if scrambled:
        a = scramble(a, rng, fraction=0.6)
    return a
