"""k-mer graph surrogate (kmer_V1r-like, GenBank group).

De Bruijn/k-mer graphs from genome sequencing have very low, almost
constant degree (≤ 2·alphabet), essentially no geometric locality in
their native order, and massive vertex counts.  Structurally they
behave like a sparse random graph whose edges are drawn from long
chains with occasional branches — the worst case for every reordering
(the paper's Table 5 shows kmer_V1r with the most extreme reordering
costs).
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from ._common import check_size, scramble, symmetric_from_edges


def kmer_graph(nnodes: int, branch: float = 0.08, seed=0,
               scrambled: bool = True) -> CSRMatrix:
    """Chain-with-branches graph: degree ≈ 2, rare degree-3/4 branch points.

    Built as a random permutation chain (each vertex linked to a
    successor) plus ``branch``·n random extra edges.  The native order is
    the *hash order* of the k-mers, i.e. random — hence ``scrambled``
    defaults to True and the chain structure is invisible in the pattern
    until a reordering recovers it.
    """
    nnodes = check_size("nnodes", nnodes, 4)
    if branch < 0:
        raise ValueError(f"branch must be >= 0, got {branch}")
    rng = as_rng(seed)
    chain = rng.permutation(nnodes).astype(np.int64)
    u = chain[:-1]
    v = chain[1:]
    nextra = int(branch * nnodes)
    if nextra:
        eu = rng.integers(0, nnodes, nextra)
        ev = rng.integers(0, nnodes, nextra)
        u = np.concatenate([u, eu])
        v = np.concatenate([v, ev])
    a = symmetric_from_edges(nnodes, u, v, rng)
    if scrambled:
        a = scramble(a, rng)
    return a
