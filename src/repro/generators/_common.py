"""Shared helpers for matrix generators."""

from __future__ import annotations

import numpy as np

from ..errors import GeneratorError
from ..matrix.build import coo_from_arrays, csr_from_coo
from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng


def symmetric_from_edges(n: int, u: np.ndarray, v: np.ndarray,
                         rng, diag_boost: float = 0.0,
                         values: np.ndarray | None = None) -> CSRMatrix:
    """Assemble a symmetric CSR matrix from undirected edge lists.

    Each edge (u, v) contributes entries at (u, v) and (v, u) with the
    same random value.  With ``diag_boost > 0`` a full diagonal is added
    with values ``diag_boost + row_degree`` — this makes the matrix
    symmetric *positive definite* by diagonal dominance, which the
    Cholesky fill experiments (paper §4.6) require.
    """
    rng = as_rng(rng)
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    mask = u != v
    u, v = u[mask], v[mask]
    if values is None:
        values = rng.uniform(-1.0, 1.0, u.size)
    rows = np.concatenate([u, v])
    cols = np.concatenate([v, u])
    vals = np.concatenate([values, values])
    if diag_boost > 0.0:
        deg = np.bincount(rows, minlength=n)
        rows = np.concatenate([rows, np.arange(n, dtype=np.int64)])
        cols = np.concatenate([cols, np.arange(n, dtype=np.int64)])
        vals = np.concatenate([vals, diag_boost + deg.astype(np.float64)])
    return csr_from_coo(coo_from_arrays(n, n, rows, cols, vals))


def unsymmetric_from_entries(nrows: int, ncols: int, r: np.ndarray,
                             c: np.ndarray, rng,
                             values: np.ndarray | None = None) -> CSRMatrix:
    """Assemble a general CSR matrix from raw (row, col) entries."""
    rng = as_rng(rng)
    r = np.asarray(r, dtype=np.int64)
    c = np.asarray(c, dtype=np.int64)
    if values is None:
        values = rng.uniform(-1.0, 1.0, r.size)
    return csr_from_coo(coo_from_arrays(nrows, ncols, r, c, values))


def check_size(name: str, value: int, minimum: int = 1) -> int:
    if value < minimum:
        raise GeneratorError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def scramble(a: CSRMatrix, rng, fraction: float = 1.0) -> CSRMatrix:
    """Apply a random symmetric permutation to destroy any native order.

    SuiteSparse matrices arrive in application order, which is often
    already quite good (the paper notes many matrices "already have an
    efficient ordering").  ``fraction < 1`` permutes only a random subset
    of indices, modelling a partially scrambled native order.
    """
    from ..matrix.permute import permute_symmetric

    rng = as_rng(rng)
    n = a.nrows
    if fraction >= 1.0:
        perm = rng.permutation(n)
    else:
        k = int(n * fraction)
        perm = np.arange(n, dtype=np.int64)
        if k >= 2:
            idx = rng.choice(n, size=k, replace=False)
            perm[idx] = perm[rng.permutation(idx)]
    return permute_symmetric(a, perm)
