"""Banded matrices with controllable bandwidth and fill density.

These model problems that arrive pre-ordered (e.g. 1-D discretisations
or matrices already RCM'd by their producers) — the case where further
reordering mostly cannot help and may hurt (paper Class 4/6).
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from ._common import check_size, scramble, symmetric_from_edges


def banded_matrix(n: int, bandwidth: int, density: float = 0.5, seed=0,
                  scrambled: bool = False, spd: bool = True) -> CSRMatrix:
    """Symmetric banded matrix: entries within ``bandwidth`` of the
    diagonal, each present with probability ``density``."""
    n = check_size("n", n, 2)
    bandwidth = check_size("bandwidth", bandwidth)
    if not (0.0 < density <= 1.0):
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = as_rng(seed)
    bw = min(bandwidth, n - 1)
    # candidate superdiagonal entries (i, i+d) for d in 1..bw
    us, vs = [], []
    for d in range(1, bw + 1):
        i = np.arange(n - d, dtype=np.int64)
        keep = rng.uniform(size=i.size) < density
        us.append(i[keep])
        vs.append(i[keep] + d)
    u = np.concatenate(us) if us else np.empty(0, dtype=np.int64)
    v = np.concatenate(vs) if vs else np.empty(0, dtype=np.int64)
    a = symmetric_from_edges(n, u, v, rng, diag_boost=1.0 if spd else 0.0)
    if scrambled:
        a = scramble(a, rng)
    return a
