"""Synthetic sparse-matrix generators — the SuiteSparse stand-in corpus.

The paper evaluates on 490 matrices from the SuiteSparse Matrix
Collection.  That data is not available offline, so this subpackage
generates matrices spanning the same structural families the collection
covers (and from which the paper's named examples are drawn):

======================  =======================================  =====================
family                  generator                                SuiteSparse exemplars
======================  =======================================  =====================
2D/3D PDE stencils      :func:`stencil_2d` / :func:`stencil_3d`  nlpkkt*, 333SP-ish
finite-element meshes   :func:`fem_mesh_2d`, :func:`fem_3d_blocks`  audikw_1, Flan_1565
road networks           :func:`road_network`                     europe_osm
k-mer / random sparse   :func:`kmer_graph`                       kmer_V1r
power-law (web/social)  :func:`rmat_graph`, :func:`powerlaw_graph`  kron_g500, indochina
banded / pre-ordered    :func:`banded_matrix`                    pre-RCM'd problems
Mycielskian              :func:`mycielskian_graph`               mycielskian19
saddle-point (KKT)      :func:`kkt_matrix`                       nlpkkt240
Erdős–Rényi             :func:`random_er`                        uniform random baselines
circuit/semiconductor   :func:`circuit_matrix`                   Freescale2
CFD block rows          :func:`cfd_blocks`                       HV15R
======================  =======================================  =====================

All generators take a ``seed`` and are deterministic given it.
:mod:`repro.generators.suite` assembles the named corpus used by the
benchmark harness, including per-name stand-ins for the matrices the
paper calls out in Figures 1 & 4 and Table 5.
"""

from .stencil import stencil_2d, stencil_3d
from .fem import fem_mesh_2d, fem_3d_blocks
from .roadnet import road_network
from .kmer import kmer_graph
from .rmat import rmat_graph
from .powerlaw import powerlaw_graph
from .banded import banded_matrix
from .mycielskian import mycielskian_graph
from .kkt import kkt_matrix
from .randomer import random_er
from .circuit import circuit_matrix
from .cfd import cfd_blocks
from .suite import (
    CorpusEntry,
    build_corpus,
    corpus_names,
    named_matrix,
    split_corpus,
)

__all__ = [
    "stencil_2d",
    "stencil_3d",
    "fem_mesh_2d",
    "fem_3d_blocks",
    "road_network",
    "kmer_graph",
    "rmat_graph",
    "powerlaw_graph",
    "banded_matrix",
    "mycielskian_graph",
    "kkt_matrix",
    "random_er",
    "circuit_matrix",
    "cfd_blocks",
    "CorpusEntry",
    "build_corpus",
    "named_matrix",
    "corpus_names",
    "split_corpus",
]
