"""Mycielskian graphs (mycielskian19-like).

The Mycielskian construction doubles a graph while raising its chromatic
number and keeping it triangle-free.  Iterating from a small seed graph
produces dense-ish, highly irregular adjacency patterns with no useful
geometry — the paper's Table 5 includes mycielskian19, whose GP
reordering time is notoriously bad relative to its size.
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from ._common import check_size, scramble, symmetric_from_edges


def mycielskian_graph(iterations: int, seed=0,
                      scrambled: bool = False) -> CSRMatrix:
    """Iterated Mycielskian starting from a single edge (K2).

    Vertex count is ``3·2^(iterations) - 1`` roughly; each iteration maps
    a graph (V, E) to vertices V ∪ V' ∪ {w} with edges E, {u'v : uv ∈ E}
    and {v'w : v' ∈ V'}.
    """
    iterations = check_size("iterations", iterations)
    u = np.array([0], dtype=np.int64)
    v = np.array([1], dtype=np.int64)
    n = 2
    for _ in range(iterations):
        # copies: vertex i -> shadow n + i; apex: 2n
        su = np.concatenate([u, n + u, n + v])
        sv = np.concatenate([v, v, u])
        apex_u = np.full(n, 2 * n, dtype=np.int64)
        apex_v = n + np.arange(n, dtype=np.int64)
        u = np.concatenate([su, apex_u])
        v = np.concatenate([sv, apex_v])
        n = 2 * n + 1
    rng = as_rng(seed)
    a = symmetric_from_edges(n, u, v, rng)
    if scrambled:
        a = scramble(a, rng)
    return a
