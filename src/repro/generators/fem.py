"""Finite-element-like mesh matrices.

Structural mechanics matrices such as ``audikw_1`` or ``Flan_1565``
come from 3-D solid meshes with several degrees of freedom per node:
they have small dense blocks, moderate and fairly uniform row degrees,
and good locality under mesh-aware ordering.  We model this as a random
Delaunay-flavoured planar/volumetric mesh with a ``dofs``-way block
expansion of every node.
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from ._common import check_size, scramble, symmetric_from_edges


def _proximity_edges(points: np.ndarray, k: int, rng) -> tuple:
    """k-nearest-neighbour edges over random points (mesh surrogate).

    A true Delaunay triangulation would need scipy.spatial; kNN over the
    same point cloud has the same local-connectivity statistics, which is
    what matters for reordering behaviour.
    """
    n = points.shape[0]
    # grid-bucketed kNN to avoid O(n^2): bucket side chosen so that a
    # neighbourhood of 3x3 buckets holds ~>= k points on average
    target = max(k * 3, 9)
    nbuckets = max(1, int(np.sqrt(n / target)))
    ij = np.minimum((points * nbuckets).astype(np.int64), nbuckets - 1)
    bucket = ij[:, 0] * nbuckets + ij[:, 1]
    order = np.argsort(bucket, kind="stable")
    us, vs = [], []
    starts = np.searchsorted(bucket[order], np.arange(nbuckets * nbuckets + 1))
    for bx in range(nbuckets):
        for by in range(nbuckets):
            members = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    x, y = bx + dx, by + dy
                    if 0 <= x < nbuckets and 0 <= y < nbuckets:
                        b = x * nbuckets + y
                        members.append(order[starts[b]:starts[b + 1]])
            local = np.concatenate(members)
            centre = order[starts[bx * nbuckets + by]:
                           starts[bx * nbuckets + by + 1]]
            if centre.size == 0 or local.size < 2:
                continue
            d = np.linalg.norm(
                points[centre][:, None, :] - points[local][None, :, :], axis=2)
            kk = min(k + 1, local.size)
            nearest = np.argpartition(d, kk - 1, axis=1)[:, :kk]
            for row, c in enumerate(centre):
                for j in nearest[row]:
                    other = local[j]
                    if other != c:
                        us.append(c)
                        vs.append(other)
    return np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64)


def fem_mesh_2d(nnodes: int, k: int = 6, seed=0,
                scrambled: bool = False) -> CSRMatrix:
    """Planar mesh matrix: kNN graph over random 2-D points, SPD values."""
    nnodes = check_size("nnodes", nnodes, 4)
    rng = as_rng(seed)
    pts = rng.uniform(size=(nnodes, 2))
    u, v = _proximity_edges(pts, k, rng)
    a = symmetric_from_edges(nnodes, u, v, rng, diag_boost=1.0)
    if scrambled:
        a = scramble(a, rng)
    return a


def fem_3d_blocks(nnodes: int, dofs: int = 3, k: int = 8, seed=0,
                  scrambled: bool = False) -> CSRMatrix:
    """Solid-mechanics surrogate: mesh nodes expanded to ``dofs`` DOFs.

    Every mesh edge (i, j) becomes a dense ``dofs`` × ``dofs`` coupling
    block, reproducing the small-dense-block structure of matrices like
    audikw_1 (3 displacement DOFs per node).
    """
    nnodes = check_size("nnodes", nnodes, 4)
    dofs = check_size("dofs", dofs)
    rng = as_rng(seed)
    pts = rng.uniform(size=(nnodes, 2))
    u, v = _proximity_edges(pts, k, rng)
    # full dofs x dofs block: cartesian product of dof offsets per edge
    offs = np.arange(dofs, dtype=np.int64)
    uu = (u[:, None, None] * dofs + offs[None, :, None]).ravel()
    vv = (v[:, None, None] * dofs + offs[None, None, :]).ravel()
    a = symmetric_from_edges(nnodes * dofs, uu, vv, rng, diag_boost=1.0)
    if scrambled:
        a = scramble(a, rng)
    return a
