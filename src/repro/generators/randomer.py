"""Erdős–Rényi random matrices — the no-structure baseline.

Uniform random patterns have no ordering-recoverable locality at all:
every reordering should be roughly neutral-to-harmful on them (they
populate the slowdown tails of the paper's Figure 2 boxplots).
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from ._common import check_size, symmetric_from_edges, unsymmetric_from_entries


def random_er(n: int, avg_degree: float = 8.0, symmetric: bool = True,
              seed=0) -> CSRMatrix:
    """Erdős–Rényi G(n, m) with m ≈ avg_degree·n/2 undirected edges."""
    n = check_size("n", n, 2)
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be positive, got {avg_degree}")
    rng = as_rng(seed)
    m = int(avg_degree * n / 2)
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)
    if symmetric:
        return symmetric_from_edges(n, u, v, rng)
    mask = u != v
    return unsymmetric_from_entries(n, n, u[mask], v[mask], rng)
