"""CFD-style matrices with uniform dense block rows (HV15R-like).

Cell-centred finite-volume CFD matrices couple each cell to its face
neighbours with a dense ``dofs`` × ``dofs`` block (5 conservation
variables for 3-D Navier–Stokes ⇒ HV15R's characteristic ~50 nnz/row,
near-uniform).  Uniform row lengths make the 1D split naturally
balanced — the paper's Class 4 exemplar.
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from ._common import check_size, scramble, symmetric_from_edges
from .stencil import _grid_edges_2d


def cfd_blocks(ncells: int, dofs: int = 5, seed=0,
               scrambled: bool = False) -> CSRMatrix:
    """Structured-mesh finite-volume matrix with dense DOF blocks."""
    ncells = check_size("ncells", ncells, 4)
    dofs = check_size("dofs", dofs)
    rng = as_rng(seed)
    side = max(2, int(np.sqrt(ncells)))
    u, v = _grid_edges_2d(side, side)
    offs = np.arange(dofs, dtype=np.int64)
    uu = (u[:, None, None] * dofs + offs[None, :, None]).ravel()
    vv = (v[:, None, None] * dofs + offs[None, None, :]).ravel()
    # intra-cell dense block (excluding diagonal, added by diag_boost)
    cells = np.arange(side * side, dtype=np.int64)
    iu = (cells[:, None, None] * dofs + offs[None, :, None]).ravel()
    iv = (cells[:, None, None] * dofs + offs[None, None, :]).ravel()
    mask = iu != iv
    uu = np.concatenate([uu, iu[mask]])
    vv = np.concatenate([vv, iv[mask]])
    a = symmetric_from_edges(side * side * dofs, uu, vv, rng, diag_boost=1.0)
    if scrambled:
        a = scramble(a, rng)
    return a
