"""R-MAT / Kronecker graph generator (kron_g500-logn21-like).

The Graph500 generator draws each edge by recursively descending a 2×2
probability matrix (a, b; c, d).  The result is a heavy-tailed degree
distribution with a few massive hub rows — the structure responsible
for the extreme 1D load imbalance the paper analyses (Class 5).
"""

from __future__ import annotations

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from ._common import check_size, scramble, symmetric_from_edges

GRAPH500_PROBS = (0.57, 0.19, 0.19, 0.05)


def rmat_graph(scale: int, edge_factor: int = 8,
               probs: tuple = GRAPH500_PROBS, seed=0,
               symmetric: bool = True, scrambled: bool = True) -> CSRMatrix:
    """R-MAT graph with ``2**scale`` vertices and ``edge_factor``·n edges.

    ``symmetric=False`` keeps the raw directed edges, producing an
    unsymmetric pattern (exercising the A+Aᵀ symmetrisation path of the
    symmetric orderings, §3.3).
    """
    scale = check_size("scale", scale)
    edge_factor = check_size("edge_factor", edge_factor)
    a_p, b_p, c_p, _ = probs
    if not np.isclose(sum(probs), 1.0):
        raise ValueError(f"probs must sum to 1, got {probs}")
    rng = as_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.uniform(size=m)
        go_right = (r >= a_p) & (r < a_p + b_p)
        go_down = (r >= a_p + b_p) & (r < a_p + b_p + c_p)
        go_diag = r >= a_p + b_p + c_p
        src = (src << 1) | (go_down | go_diag)
        dst = (dst << 1) | (go_right | go_diag)
    if symmetric:
        return _finish(n, src, dst, rng, scrambled, sym=True)
    return _finish(n, src, dst, rng, scrambled, sym=False)


def _finish(n, src, dst, rng, scrambled, sym):
    if sym:
        a = symmetric_from_edges(n, src, dst, rng)
        if scrambled:
            a = scramble(a, rng)
        return a
    from ._common import unsymmetric_from_entries

    mask = src != dst
    a = unsymmetric_from_entries(n, n, src[mask], dst[mask], rng)
    if scrambled:
        from ..matrix.permute import permute_symmetric

        a = permute_symmetric(a, rng.permutation(n))
    return a
