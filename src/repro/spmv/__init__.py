"""CSR SpMV kernels and thread schedules (paper §3.1).

Two shared-memory parallel kernels over CSR:

* **1D algorithm** — rows split into equal-sized contiguous blocks, one
  per thread (OpenMP static row split).  Simple, but imbalanced when
  nonzeros are unevenly distributed over rows.
* **2D algorithm** — matrix *nonzeros* split evenly; threads may own
  partial rows at their boundaries, handled with per-thread partial
  sums exactly like the paper's race-free implementation.
* **merge-based** (:func:`schedule_merge`) — the full Merrill–Garland
  split the paper's 2D kernel simplifies: the combined path of row
  boundaries and nonzeros is split evenly, so row-loop overhead is
  balanced too.

This being a pure-Python reproduction, the kernels execute the thread
segments sequentially but with bit-identical work division; the timing
comes from :mod:`repro.machine`, not the wall clock.
"""

from .registry import (
    DEFAULT_KERNEL,
    DEFAULT_WORKLOAD,
    KERNEL_KINDS,
    KERNELS,
    WORKLOADS,
    is_workload_spec,
    resolve_workload,
)
from .schedule import Schedule, schedule_1d, schedule_2d, schedule_merge
from .kernels import spmv, spmv_1d, spmv_2d
from .products import spgemm, spgemm_flops, spmm

__all__ = [
    "DEFAULT_KERNEL",
    "DEFAULT_WORKLOAD",
    "KERNEL_KINDS",
    "KERNELS",
    "WORKLOADS",
    "Schedule",
    "is_workload_spec",
    "resolve_workload",
    "schedule_1d",
    "schedule_2d",
    "schedule_merge",
    "spgemm",
    "spgemm_flops",
    "spmm",
    "spmv",
    "spmv_1d",
    "spmv_2d",
]
