"""Sparse products beyond single-vector SpMV: SpGEMM and SpMM.

The paper scores reorderings on one SpMV iteration; ROADMAP item 2
adds the two product workloads whose reordering story differs:

* :func:`spgemm` — C = A·B over CSR (default B = A, the A² kernel the
  SpGEMM reordering literature studies).  Each nonzero ``(i, k)`` of A
  gathers row ``k`` of B, so the column-access locality that the
  machine model's x-gather window measures for SpMV governs the
  B-row gather stream here — which is exactly how the workload scoring
  (:mod:`repro.machine.workloads`) reuses the SpMV prediction.
* :func:`spmm` — Y = A·X for a dense block X of ``k`` vectors.  The
  matrix is streamed once for all ``k`` columns, so the relative cost
  of the streamed CSR arrays is amortised while gathers and compute
  scale with ``k``.

Both are executed with vectorised numpy and deterministic reduction
order (sorted segments + ``reduceat`` / ``np.add.at``), so repeated
runs — and runs under different ``PYTHONHASHSEED`` — are bit-identical,
matching the repository-wide determinism contract.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScheduleError
from ..matrix.csr import CSRMatrix
from .kernels import _check_values
from .schedule import schedule_1d, schedule_2d, schedule_merge


def _coalesce(nrows: int, ncols: int, rows: np.ndarray, cols: np.ndarray,
              vals: np.ndarray) -> CSRMatrix:
    """Sum duplicate (row, col) products into one CSR entry.

    The expansion phase of SpGEMM emits one partial product per
    (A-entry, B-entry) pair; several pairs can land on the same output
    coordinate and must be summed.  Sorting by (row, col) and reducing
    each run keeps the summation order deterministic.
    """
    if rows.size == 0:
        return CSRMatrix(nrows, ncols,
                         np.zeros(nrows + 1, dtype=np.int64),
                         np.zeros(0, dtype=np.int64), np.zeros(0))
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    # run boundaries of equal (row, col) pairs
    first = np.ones(rows.size, dtype=bool)
    first[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
    starts = np.flatnonzero(first)
    out_rows = rows[starts]
    out_cols = cols[starts]
    out_vals = np.add.reduceat(vals, starts)
    rowptr = np.zeros(nrows + 1, dtype=np.int64)
    np.add.at(rowptr, out_rows + 1, 1)
    np.cumsum(rowptr, out=rowptr)
    return CSRMatrix(nrows, ncols, rowptr, out_cols.astype(np.int64),
                     out_vals)


def spgemm(a: CSRMatrix, b: CSRMatrix | None = None) -> CSRMatrix:
    """C = A·B in CSR (default ``b=None`` computes A·A).

    Fully vectorised expand–sort–reduce SpGEMM: partial products are
    materialised with a segment-gather (``repeat`` + ``cumsum`` index
    arithmetic), then coalesced by :func:`_coalesce`.  Deterministic;
    explicit zeros in the inputs produce explicit zeros in the output,
    consistent with the CSR container's semantics elsewhere.
    """
    if b is None:
        if not a.is_square:
            raise ScheduleError(
                f"spgemm(A) squares A, which needs a square matrix; "
                f"got {a.nrows}x{a.ncols}")
        b = a
    if a.ncols != b.nrows:
        raise ScheduleError(
            f"spgemm: inner dimensions differ ({a.nrows}x{a.ncols} times "
            f"{b.nrows}x{b.ncols})")
    _check_values(a)
    _check_values(b)
    if a.nnz == 0 or b.nnz == 0:
        return _coalesce(a.nrows, b.ncols, np.zeros(0, dtype=np.int64),
                         np.zeros(0, dtype=np.int64), np.zeros(0))
    b_row_len = np.diff(b.rowptr)
    counts = b_row_len[a.colidx]          # B-row length per A entry
    total = int(counts.sum())
    if total == 0:
        return _coalesce(a.nrows, b.ncols, np.zeros(0, dtype=np.int64),
                         np.zeros(0, dtype=np.int64), np.zeros(0))
    # position of each partial product inside its A-entry's segment
    seg_end = np.cumsum(counts)
    seg_start = seg_end - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(seg_start, counts)
    b_idx = np.repeat(b.rowptr[a.colidx], counts) + within
    rows = np.repeat(a.row_of_entry(), counts)
    cols = b.colidx[b_idx]
    vals = np.repeat(a.values, counts) * b.values[b_idx]
    return _coalesce(a.nrows, b.ncols, rows, cols, vals)


def spgemm_flops(a: CSRMatrix, b: CSRMatrix | None = None) -> float:
    """Floating-point operations of :func:`spgemm` (2 per partial
    product) — the work term the machine model scores."""
    if b is None:
        b = a
    if a.nnz == 0 or b.nnz == 0:
        return 0.0
    return float(2.0 * np.diff(b.rowptr)[a.colidx].sum())


def _check_xblock(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    try:
        x = np.asarray(x, dtype=np.float64)
    except (TypeError, ValueError) as e:
        raise ScheduleError(f"X is not convertible to float64: {e}") \
            from None
    if x.ndim != 2 or x.shape[0] != a.ncols or x.shape[1] < 1:
        raise ScheduleError(
            f"X has shape {x.shape}, expected ({a.ncols}, k>=1)")
    if x.size and not np.all(np.isfinite(x)):
        raise ScheduleError(
            "X contains non-finite values; SpMM would silently "
            "produce NaNs")
    return x


def spmm(a: CSRMatrix, x: np.ndarray, kind: str = "1d",
         nthreads: int = 1) -> np.ndarray:
    """Y = A·X for a dense ``(ncols, k)`` block X.

    Mirrors the scheduled SpMV kernels' work division exactly: threads
    own the same entry ranges as :func:`~repro.spmv.kernels.spmv_1d` /
    ``spmv_2d`` would, with the 2D/merge boundary rows combined through
    per-thread partial sums — only each product is a length-``k`` row
    vector instead of a scalar.
    """
    if kind == "1d":
        schedule = schedule_1d(a, nthreads)
    elif kind == "2d":
        schedule = schedule_2d(a, nthreads)
    elif kind == "merge":
        schedule = schedule_merge(a, nthreads)
    else:
        raise ScheduleError(f"unknown kernel kind {kind!r}")
    x = _check_xblock(a, x)
    _check_values(a)
    y = np.zeros((a.nrows, x.shape[1]))
    rows_all = a.row_of_entry()
    boundary_contrib = []
    for t in range(schedule.nthreads):
        lo, hi = schedule.thread_entry_range(t)
        if lo == hi:
            continue
        seg_rows = rows_all[lo:hi]
        products = a.values[lo:hi, None] * x[a.colidx[lo:hi], :]
        if kind == "1d":
            np.add.at(y, seg_rows, products)
            continue
        first_row = int(seg_rows[0])
        last_row = int(seg_rows[-1])
        interior = (seg_rows != first_row) & (seg_rows != last_row)
        np.add.at(y, seg_rows[interior], products[interior])
        boundary_contrib.append(
            (first_row, products[seg_rows == first_row].sum(axis=0)))
        if last_row != first_row:
            boundary_contrib.append(
                (last_row, products[seg_rows == last_row].sum(axis=0)))
    for row, val in boundary_contrib:
        y[row] += val
    return y
