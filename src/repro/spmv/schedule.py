"""Thread work division for the 1D and 2D CSR SpMV algorithms."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ScheduleError
from ..matrix.csr import CSRMatrix
from ..obs.metrics import REGISTRY, CounterView
from ..util.validate import require


@dataclass(frozen=True)
class Schedule:
    """A static thread schedule over a CSR matrix.

    Thread ``t`` owns the half-open entry range
    ``[entry_start[t], entry_start[t+1])`` of the CSR arrays.  For the
    1D schedule the boundaries coincide with row starts; for the 2D
    schedule they may fall inside a row (partial rows).

    Attributes
    ----------
    kind:
        ``"1d"`` or ``"2d"``.
    nthreads:
        Number of threads.
    entry_start:
        ``int64`` array of length ``nthreads + 1``.
    row_start:
        Row containing the first entry of each thread's range (length
        ``nthreads + 1``; the final element is ``nrows``).
    """

    kind: str
    nthreads: int
    entry_start: np.ndarray
    row_start: np.ndarray

    def __post_init__(self) -> None:
        require(self.nthreads >= 1, ScheduleError,
                f"nthreads must be >= 1, got {self.nthreads}")
        es = np.asarray(self.entry_start, dtype=np.int64)
        rs = np.asarray(self.row_start, dtype=np.int64)
        require(es.shape == (self.nthreads + 1,), ScheduleError,
                "entry_start must have length nthreads+1")
        require(rs.shape == (self.nthreads + 1,), ScheduleError,
                "row_start must have length nthreads+1")
        require(es[0] == 0, ScheduleError, "entry_start[0] must be 0")
        require(bool(np.all(np.diff(es) >= 0)), ScheduleError,
                "entry ranges must be non-decreasing")
        require(bool(np.all(np.diff(rs) >= 0)), ScheduleError,
                "row ranges must be non-decreasing")
        object.__setattr__(self, "entry_start", es)
        object.__setattr__(self, "row_start", rs)

    def nnz_per_thread(self) -> np.ndarray:
        """Entries owned by each thread (length ``nthreads``)."""
        return np.diff(self.entry_start)

    def active_threads(self) -> np.ndarray:
        """Boolean mask (length ``nthreads``) of threads owning at least
        one row or one entry.

        When ``nthreads > nrows`` the static splits leave trailing
        threads with empty shares; those are not part of the actual
        thread partition and must not enter partition statistics such
        as the imbalance factor.  A thread owning only *empty* rows is
        still active — its share of the row partition is real, its
        work just happens to be zero.
        """
        return (np.diff(self.row_start) > 0) | (np.diff(self.entry_start) > 0)

    def thread_entry_range(self, t: int) -> tuple:
        return int(self.entry_start[t]), int(self.entry_start[t + 1])


def schedule_1d(a: CSRMatrix, nthreads: int) -> Schedule:
    """Equal *row* split: thread t gets rows [t·M/T, (t+1)·M/T).

    This is what ``#pragma omp for schedule(static)`` over the row loop
    produces (paper §3.1).
    """
    if nthreads < 1:
        raise ScheduleError(f"nthreads must be >= 1, got {nthreads}")
    bounds = np.linspace(0, a.nrows, nthreads + 1).astype(np.int64)
    entry_start = a.rowptr[bounds]
    return Schedule(kind="1d", nthreads=nthreads,
                    entry_start=entry_start, row_start=bounds)


def schedule_merge(a: CSRMatrix, nthreads: int) -> Schedule:
    """Merge-based split (Merrill & Garland [PPoPP 2016], paper §3.1).

    The paper's 2D kernel is "a simplified version of the merge-based
    SpMV kernel": where 2D balances *nonzeros* only, merge-based
    balances the combined merge path of row boundaries and nonzeros
    (length ``nrows + nnz``), so threads with many empty/short rows get
    proportionally fewer nonzeros.  Each thread's split point is found
    by binary search on the merge-path diagonal.
    """
    if nthreads < 1:
        raise ScheduleError(f"nthreads must be >= 1, got {nthreads}")
    m, nnz = a.nrows, a.nnz
    total = m + nnz
    entry_start = np.zeros(nthreads + 1, dtype=np.int64)
    row_start = np.zeros(nthreads + 1, dtype=np.int64)
    rowptr = a.rowptr
    for t in range(1, nthreads):
        d = (t * total) // nthreads
        lo, hi = max(0, d - nnz), min(d, m)
        # consume a row-end (A-step) while rowptr[i+1] <= d-1-i
        while lo < hi:
            mid = (lo + hi) // 2
            if rowptr[mid + 1] <= d - 1 - mid:
                lo = mid + 1
            else:
                hi = mid
        row_start[t] = lo
        entry_start[t] = d - lo
    row_start[nthreads] = m
    entry_start[nthreads] = nnz
    return Schedule(kind="merge", nthreads=nthreads,
                    entry_start=entry_start, row_start=row_start)


_BUILDS = REGISTRY.counter("schedule.builds")
_HITS = REGISTRY.counter("schedule.hits")

#: live view over the registry's schedule-cache counters under their
#: legacy key names; the sweep engine snapshots them around each task
#: and reports the delta in sweep_metrics.json.
COUNTERS = CounterView({"schedule_builds": _BUILDS,
                        "schedule_hits": _HITS})


def counters_snapshot() -> dict:
    """A plain-dict copy of the current counter values."""
    return dict(COUNTERS)


def get_schedule(a: CSRMatrix, kind: str, nthreads: int) -> Schedule:
    """Memoised :func:`schedule_1d` / :func:`schedule_2d` /
    :func:`schedule_merge` per (matrix, kind, nthreads).

    A sweep evaluates the same matrix under eight architectures whose
    core counts overlap, and the performance model is deterministic in
    (kind, nthreads), so identical schedules were being rebuilt per
    cell.  The cache lives on the matrix object itself (dropped by
    ``CSRMatrix.__getstate__`` on pickling, so worker fan-out does not
    ship it) and schedules are immutable, so sharing is safe.
    """
    cache = getattr(a, "_cache_schedules", None)
    if cache is None:
        cache = {}
        object.__setattr__(a, "_cache_schedules", cache)
    key = (kind, int(nthreads))
    schedule = cache.get(key)
    if schedule is not None:
        _HITS.inc()
        return schedule
    if kind == "1d":
        schedule = schedule_1d(a, nthreads)
    elif kind == "2d":
        schedule = schedule_2d(a, nthreads)
    elif kind == "merge":
        schedule = schedule_merge(a, nthreads)
    else:
        raise ScheduleError(f"unknown kernel {kind!r}")
    cache[key] = schedule
    _BUILDS.inc()
    return schedule


def schedule_2d(a: CSRMatrix, nthreads: int) -> Schedule:
    """Equal *nonzero* split: thread t gets entries [t·K/T, (t+1)·K/T).

    Boundary rows are shared between adjacent threads (partial rows);
    ``row_start[t]`` records the row containing each thread's first
    entry so kernels can reconstruct the row structure locally.
    """
    if nthreads < 1:
        raise ScheduleError(f"nthreads must be >= 1, got {nthreads}")
    entry_start = np.linspace(0, a.nnz, nthreads + 1).astype(np.int64)
    # row containing entry e: last row whose rowptr <= e
    row_start = np.searchsorted(a.rowptr, entry_start, side="right") - 1
    row_start = np.minimum(row_start, a.nrows)
    row_start[-1] = a.nrows
    row_start[0] = 0
    return Schedule(kind="2d", nthreads=nthreads,
                    entry_start=entry_start, row_start=row_start)
