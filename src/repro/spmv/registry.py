"""The single source of truth for kernel and workload vocabularies.

Before this module existed, ``serve/protocol.py`` and
``advisor/featurize.py`` each carried their own ``KERNELS = ("1d",
"2d")`` literal — a latent drift bug: adding a kernel to one left the
serve protocol and the featurizer silently disagreeing about what a
valid request looks like.  Every layer now imports from here.

Three vocabularies:

* :data:`KERNELS` — the schedule kinds the *advisor* models (the
  paper's 1D row split and 2D nonzero split).
* :data:`KERNEL_KINDS` — every schedule kind the SpMV dispatcher
  accepts (adds the merge-based split, which the advisor treats as a
  2D variant and does not model separately).
* :data:`WORKLOADS` — what is *executed per scheduled iteration*: a
  single SpMV (the paper's setting), a CG or Jacobi solver loop
  (hundreds of SpMVs on one reordered matrix), SpGEMM (A·A) or SpMM
  (one matrix times several dense vectors).

A **workload spec** is the string the sweep/measurement kernel axis
carries: either a bare kernel kind (``"1d"`` — plain SpMV, backward
compatible), a bare workload name (``"cg"`` — defaults to the 1D
schedule), or ``"workload:kind"`` (``"cg:2d"``).
:func:`resolve_workload` normalises all three forms.
"""

from __future__ import annotations

from ..errors import ScheduleError

#: kernels the advisor/protocol accept (the paper's two algorithms)
KERNELS = ("1d", "2d")

#: every schedule kind the SpMV dispatcher accepts
KERNEL_KINDS = ("1d", "2d", "merge")

#: workloads the machine model can score on a scheduled matrix
WORKLOADS = ("spmv", "cg", "jacobi", "spgemm", "spmm")

#: the backward-compatible default: one SpMV iteration
DEFAULT_WORKLOAD = "spmv"

#: schedule kind a bare workload name resolves to
DEFAULT_KERNEL = "1d"


def resolve_workload(spec: str) -> tuple:
    """Normalise a workload spec to ``(workload, kernel_kind)``.

    ``"1d"`` → ``("spmv", "1d")`` (plain SpMV, the historical kernel
    axis); ``"cg"`` → ``("cg", "1d")``; ``"spgemm:2d"`` →
    ``("spgemm", "2d")``.  Raises :class:`ScheduleError` on anything
    else, naming both vocabularies.
    """
    if not isinstance(spec, str):
        raise ScheduleError(
            f"workload spec must be a string, got {type(spec).__name__}")
    if spec in KERNEL_KINDS:
        return DEFAULT_WORKLOAD, spec
    workload, _, kind = spec.partition(":")
    kind = kind or DEFAULT_KERNEL
    if workload not in WORKLOADS:
        raise ScheduleError(
            f"unknown kernel/workload spec {spec!r}; expected a kernel "
            f"kind {KERNEL_KINDS}, a workload {WORKLOADS}, or "
            f"'workload:kind'")
    if kind not in KERNEL_KINDS:
        raise ScheduleError(
            f"unknown schedule kind {kind!r} in spec {spec!r}; "
            f"expected one of {KERNEL_KINDS}")
    return workload, kind


def is_workload_spec(spec) -> bool:
    """True iff ``spec`` resolves to something other than plain SpMV
    on a bare kernel kind (i.e. needs the workload scoring path)."""
    try:
        workload, _ = resolve_workload(spec)
    except ScheduleError:
        return False
    return workload != DEFAULT_WORKLOAD
