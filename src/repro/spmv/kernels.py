"""Numerically exact execution of the scheduled SpMV kernels.

Each thread's segment is executed as vectorised numpy over its own
entry range, mirroring the work division of the parallel kernels
exactly.  The 2D kernel reproduces the paper's special handling of
first/last partial rows: each thread computes partial sums for its
boundary rows privately and the contributions are combined afterwards,
the same scheme the OpenMP implementation uses to avoid write races.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScheduleError
from ..matrix.csr import CSRMatrix
from .schedule import Schedule, schedule_1d, schedule_2d


def _check_x(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Validate the input vector: shape ``(ncols,)`` and finite.

    Solver loops (:mod:`repro.solvers`) run hundreds of SpMVs on one
    matrix; a NaN/inf that slips into ``x`` would otherwise propagate
    silently through every later iterate and stall convergence with no
    indication of where it entered.  Rejecting it here turns that
    debugging session into a typed error at the first bad call.
    """
    try:
        x = np.asarray(x, dtype=np.float64)
    except (TypeError, ValueError) as e:
        raise ScheduleError(f"x is not convertible to float64: {e}") \
            from None
    if x.shape != (a.ncols,):
        raise ScheduleError(f"x has shape {x.shape}, expected ({a.ncols},)")
    if x.size and not np.all(np.isfinite(x)):
        bad = int(np.flatnonzero(~np.isfinite(x))[0])
        raise ScheduleError(
            f"x contains a non-finite value at index {bad} "
            f"({x[bad]!r}); SpMV would silently produce NaNs")
    return x


def _check_values(a: CSRMatrix) -> None:
    """Reject matrices carrying non-finite stored values.

    The result is memoised on the matrix object (CSR arrays are
    immutable by convention, and ``CSRMatrix.__getstate__`` drops
    ``_cache_*`` attributes on pickling), so a solver loop pays the
    scan once, not once per iteration.
    """
    ok = getattr(a, "_cache_values_finite", None)
    if ok is None:
        ok = bool(a.nnz == 0 or np.all(np.isfinite(a.values)))
        object.__setattr__(a, "_cache_values_finite", ok)
    if not ok:
        bad = int(np.flatnonzero(~np.isfinite(a.values))[0])
        raise ScheduleError(
            f"matrix stores a non-finite value at entry {bad} "
            f"({a.values[bad]!r}); SpMV would silently produce NaNs")


def spmv_1d(a: CSRMatrix, x: np.ndarray, schedule: Schedule) -> np.ndarray:
    """y = A·x with the row-split 1D schedule."""
    if schedule.kind != "1d":
        raise ScheduleError(f"expected a 1d schedule, got {schedule.kind!r}")
    x = _check_x(a, x)
    _check_values(a)
    y = np.zeros(a.nrows)
    rows_all = a.row_of_entry()
    for t in range(schedule.nthreads):
        lo, hi = schedule.thread_entry_range(t)
        if lo == hi:
            continue
        seg_rows = rows_all[lo:hi]
        products = a.values[lo:hi] * x[a.colidx[lo:hi]]
        # each row belongs to exactly one thread in the 1D split
        np.add.at(y, seg_rows, products)
    return y


def spmv_2d(a: CSRMatrix, x: np.ndarray, schedule: Schedule) -> np.ndarray:
    """y = A·x with a nonzero-split (2D) or merge-based schedule.

    Both schedules allow partial rows at thread boundaries, so they
    share the same race-free kernel structure."""
    if schedule.kind not in ("2d", "merge"):
        raise ScheduleError(
            f"expected a 2d or merge schedule, got {schedule.kind!r}")
    x = _check_x(a, x)
    _check_values(a)
    y = np.zeros(a.nrows)
    rows_all = a.row_of_entry()
    # per-thread partial sums for boundary rows, combined at the end —
    # this is the race-avoidance structure of the parallel kernel
    boundary_contrib = []
    for t in range(schedule.nthreads):
        lo, hi = schedule.thread_entry_range(t)
        if lo == hi:
            continue
        seg_rows = rows_all[lo:hi]
        products = a.values[lo:hi] * x[a.colidx[lo:hi]]
        first_row = int(seg_rows[0])
        last_row = int(seg_rows[-1])
        interior = (seg_rows != first_row) & (seg_rows != last_row)
        np.add.at(y, seg_rows[interior], products[interior])
        fsum = float(products[seg_rows == first_row].sum())
        boundary_contrib.append((first_row, fsum))
        if last_row != first_row:
            lsum = float(products[seg_rows == last_row].sum())
            boundary_contrib.append((last_row, lsum))
    for row, val in boundary_contrib:
        y[row] += val
    return y


def spmv(a: CSRMatrix, x: np.ndarray, kind: str = "1d",
         nthreads: int = 1) -> np.ndarray:
    """Convenience wrapper: build the schedule and run the kernel."""
    if kind == "1d":
        return spmv_1d(a, x, schedule_1d(a, nthreads))
    if kind == "2d":
        return spmv_2d(a, x, schedule_2d(a, nthreads))
    if kind == "merge":
        from .schedule import schedule_merge

        return spmv_2d(a, x, schedule_merge(a, nthreads))
    raise ScheduleError(f"unknown kernel kind {kind!r}")
