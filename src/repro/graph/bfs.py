"""Breadth-first search over CSR adjacency, vectorised per level.

BFS is the workhorse of both RCM (level-structure ordering) and the
pseudo-peripheral vertex finder.  Each frontier expansion is a single
fancy-indexing gather over the CSR arrays followed by a uniqueness
filter, so the cost is O(nnz) numpy work rather than a Python loop per
edge.
"""

from __future__ import annotations

import numpy as np

from .adjacency import Graph


def bfs_levels(g: Graph, start: int) -> np.ndarray:
    """Return the BFS level of every vertex from ``start``.

    Unreachable vertices get level ``-1``.
    """
    n = g.nvertices
    if not (0 <= start < n):
        raise IndexError(f"start vertex {start} out of range [0, {n})")
    level = np.full(n, -1, dtype=np.int64)
    level[start] = 0
    frontier = np.array([start], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        # gather all neighbours of the frontier in one shot
        counts = g.xadj[frontier + 1] - g.xadj[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(counts[:-1]))), counts)
        nbrs = g.adjncy[np.repeat(g.xadj[frontier], counts) + offsets]
        nbrs = np.unique(nbrs)
        nbrs = nbrs[level[nbrs] < 0]
        if nbrs.size == 0:
            break
        level[nbrs] = depth
        frontier = nbrs
    return level


def bfs_order(g: Graph, start: int, sort_by_degree: bool = True) -> np.ndarray:
    """Return vertices of ``start``'s component in BFS visit order.

    With ``sort_by_degree`` (the Cuthill–McKee rule), vertices within
    each level are visited in ascending degree order, with ties broken
    by the order their parents were visited — the classical CM queue
    discipline approximated level-by-level (exact per-parent ordering
    differs only in tie-breaking and does not change the bandwidth
    guarantees the ordering is used for).
    """
    level = bfs_levels(g, start)
    reached = np.flatnonzero(level >= 0)
    deg = g.degrees()
    if sort_by_degree:
        order = reached[np.lexsort((deg[reached], level[reached]))]
    else:
        order = reached[np.argsort(level[reached], kind="stable")]
    return order
