"""Breadth-first search over CSR adjacency, vectorised per level.

BFS is the workhorse of both RCM (level-structure ordering) and the
pseudo-peripheral vertex finder.  Two implementations live here:

* :func:`bfs_levels_reference` — the original per-level gather that
  deduplicates with ``np.unique`` *before* dropping already-visited
  vertices (one avoidable O(total log total) sort over the whole
  frontier expansion).
* :func:`bfs_levels_fast` — gathers through a memoised padded
  adjacency table (one 2-D fancy index per level, no per-level
  cumsum/repeat offset arithmetic), filters visited vertices *before*
  deduplicating, and switches to a level-mark scan instead of a sort
  once the candidate set is large.

Both return the identical level array — levels are a unique function
of the graph — and :func:`bfs_levels` dispatches between them on
:func:`repro.util.fastpath.fast_enabled`.
"""

from __future__ import annotations

import numpy as np

from ..util.fastpath import fast_enabled
from .adjacency import Graph

#: padded adjacency is only materialised when the padding waste is
#: bounded: n*maxdeg may exceed the edge count by at most this factor
_PAD_WASTE_FACTOR = 4


def bfs_levels(g: Graph, start: int) -> np.ndarray:
    """Return the BFS level of every vertex from ``start``.

    Unreachable vertices get level ``-1``.
    """
    if fast_enabled():
        return bfs_levels_fast(g, start)
    return bfs_levels_reference(g, start)


def bfs_levels_reference(g: Graph, start: int) -> np.ndarray:
    """Scalar-idiom reference BFS (pre-fast-path implementation)."""
    n = g.nvertices
    if not (0 <= start < n):
        raise IndexError(f"start vertex {start} out of range [0, {n})")
    level = np.full(n, -1, dtype=np.int64)
    level[start] = 0
    frontier = np.array([start], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        # gather all neighbours of the frontier in one shot
        counts = g.xadj[frontier + 1] - g.xadj[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(counts[:-1]))), counts)
        nbrs = g.adjncy[np.repeat(g.xadj[frontier], counts) + offsets]
        nbrs = np.unique(nbrs)
        nbrs = nbrs[level[nbrs] < 0]
        if nbrs.size == 0:
            break
        level[nbrs] = depth
        frontier = nbrs
    return level


def _padded_adjacency(g: Graph):
    """``(n, maxdeg)`` adjacency table padded with ``-1``, memoised on
    the graph; ``None`` when padding would waste too much memory."""
    cached = getattr(g, "_cache_padded_adj", False)
    if cached is not False:
        return cached
    n = g.nvertices
    deg = g.degrees()
    maxdeg = int(deg.max(initial=0))
    if maxdeg == 0 or n * maxdeg > max(_PAD_WASTE_FACTOR * g.adjncy.size, 64):
        pad = None
    else:
        pad = np.full((n, maxdeg), -1, dtype=np.int64)
        cols = (np.arange(g.adjncy.size, dtype=np.int64)
                - np.repeat(g.xadj[:-1], deg))
        pad[np.repeat(np.arange(n, dtype=np.int64), deg), cols] = g.adjncy
        pad.flags.writeable = False
    object.__setattr__(g, "_cache_padded_adj", pad)
    return pad


def bfs_levels_fast(g: Graph, start: int) -> np.ndarray:
    """Vectorised BFS levels; bit-identical to the reference.

    The level array carries one extra sentinel slot at index ``n`` so
    the ``-1`` padding of the adjacency table indexes it (python's
    negative indexing) and is filtered by the same visited test — one
    boolean pass per level instead of three.
    """
    n = g.nvertices
    if not (0 <= start < n):
        raise IndexError(f"start vertex {start} out of range [0, {n})")
    level = np.full(n + 1, -1, dtype=np.int64)
    level[n] = 0  # sentinel: the -1 padding resolves here, non-negative
    level[start] = 0
    pad = _padded_adjacency(g)
    frontier = np.array([start], dtype=np.int64)
    depth = 0
    # at small n a full mark-and-scan per level beats sorting for
    # uniqueness; at large n only do it for large candidate sets
    always_scan = n <= (1 << 16)
    scan_threshold = n >> 3
    body = level[:n]
    while True:
        depth += 1
        if pad is not None:
            cand = pad[frontier].ravel()
        else:
            counts = g.xadj[frontier + 1] - g.xadj[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.concatenate(([0], np.cumsum(counts[:-1]))), counts)
            cand = g.adjncy[np.repeat(g.xadj[frontier], counts) + offsets]
        cand = cand[level[cand] < 0]
        if cand.size == 0:
            break
        if always_scan or cand.size > scan_threshold:
            level[cand] = depth
            frontier = np.flatnonzero(body == depth)
        else:
            frontier = np.unique(cand)
            level[frontier] = depth
    return body


def bfs_order(g: Graph, start: int, sort_by_degree: bool = True) -> np.ndarray:
    """Return vertices of ``start``'s component in BFS visit order.

    With ``sort_by_degree`` (the Cuthill–McKee rule), vertices within
    each level are visited in ascending degree order, with ties broken
    by the order their parents were visited — the classical CM queue
    discipline approximated level-by-level (exact per-parent ordering
    differs only in tie-breaking and does not change the bandwidth
    guarantees the ordering is used for).
    """
    level = bfs_levels(g, start)
    reached = np.flatnonzero(level >= 0)
    deg = g.degrees()
    if sort_by_degree:
        order = reached[np.lexsort((deg[reached], level[reached]))]
    else:
        order = reached[np.argsort(level[reached], kind="stable")]
    return order
