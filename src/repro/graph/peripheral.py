"""George–Liu pseudo-peripheral vertex finder.

RCM quality depends on starting the BFS from a vertex of (near-)maximal
eccentricity.  The George–Liu algorithm [George & Liu 1979] iterates:
root an initial level structure at any vertex, then re-root at a
minimum-degree vertex of the deepest level, repeating while the
eccentricity grows.
"""

from __future__ import annotations

import numpy as np

from .adjacency import Graph
from .bfs import bfs_levels


def pseudo_peripheral_vertex(g: Graph, start: int, max_iter: int = 10) -> int:
    """Return a pseudo-peripheral vertex of ``start``'s component.

    ``max_iter`` bounds the re-rooting loop; George–Liu converges in a
    handful of iterations on real meshes, and the bound guarantees
    termination on adversarial graphs.
    """
    deg = g.degrees()
    root = int(start)
    level = bfs_levels(g, root)
    ecc = int(level.max(initial=0))
    for _ in range(max_iter):
        last = np.flatnonzero(level == ecc)
        if last.size == 0:  # isolated vertex
            return root
        candidate = int(last[np.argmin(deg[last])])
        cand_level = bfs_levels(g, candidate)
        cand_ecc = int(cand_level.max(initial=0))
        if cand_ecc <= ecc:
            return candidate if cand_ecc == ecc else root
        root, level, ecc = candidate, cand_level, cand_ecc
    return root


def pseudo_peripheral_with_levels(g: Graph, start: int,
                                  max_iter: int = 10):
    """George–Liu returning ``(vertex, level array of that vertex)``.

    Picks the same vertex as :func:`pseudo_peripheral_vertex` (levels
    are a unique function of the root, so re-rooting decisions agree),
    and hands back the final level structure so callers like RCM skip
    one redundant BFS per component.
    """
    deg = g.degrees()
    root = int(start)
    level = bfs_levels(g, root)
    ecc = int(level.max(initial=0))
    for _ in range(max_iter):
        last = np.flatnonzero(level == ecc)
        if last.size == 0:  # isolated vertex
            return root, level
        candidate = int(last[np.argmin(deg[last])])
        cand_level = bfs_levels(g, candidate)
        cand_ecc = int(cand_level.max(initial=0))
        if cand_ecc <= ecc:
            if cand_ecc == ecc:
                return candidate, cand_level
            return root, level
        root, level, ecc = candidate, cand_level, cand_ecc
    return root, level
