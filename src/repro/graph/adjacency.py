"""Undirected graph in CSR adjacency form.

The graph is stored exactly like a pattern-symmetric CSR matrix with the
diagonal removed: ``xadj``/``adjncy`` in METIS terminology.  Vertex and
edge weights are carried as separate arrays so the multilevel partitioner
can coarsen them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import MatrixFormatError
from ..matrix.csr import CSRMatrix
from ..matrix.symmetry import is_pattern_symmetric, symmetrize_pattern
from ..util.validate import require


@dataclass(frozen=True)
class Graph:
    """Undirected graph with CSR adjacency.

    Attributes
    ----------
    xadj:
        ``int64`` array of length ``nvertices + 1``: neighbour list of
        vertex ``v`` is ``adjncy[xadj[v]:xadj[v+1]]``.
    adjncy:
        Flattened neighbour lists; every undirected edge appears twice.
    vwgt:
        Vertex weights (``int64``).  The study uses unweighted graphs
        (balancing rows, §3.3), so these default to 1, but the coarsening
        machinery needs real weights.
    ewgt:
        Edge weights aligned with ``adjncy``; defaults to 1 and
        accumulates multiplicities during coarsening.
    """

    xadj: np.ndarray
    adjncy: np.ndarray
    vwgt: np.ndarray = field(default=None)
    ewgt: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        xadj = np.asarray(self.xadj, dtype=np.int64)
        adjncy = np.asarray(self.adjncy, dtype=np.int64)
        require(xadj.ndim == 1 and xadj.size >= 1, MatrixFormatError,
                "xadj must be a 1-D array of length nvertices+1")
        require(xadj[0] == 0 and bool(np.all(np.diff(xadj) >= 0)),
                MatrixFormatError, "xadj must be monotone starting at 0")
        require(adjncy.shape == (int(xadj[-1]),), MatrixFormatError,
                "adjncy length must equal xadj[-1]")
        n = xadj.size - 1
        if adjncy.size:
            require(int(adjncy.min()) >= 0 and int(adjncy.max()) < n,
                    MatrixFormatError, "adjncy entries out of range")
        vwgt = (np.ones(n, dtype=np.int64) if self.vwgt is None
                else np.asarray(self.vwgt, dtype=np.int64))
        ewgt = (np.ones(adjncy.size, dtype=np.int64) if self.ewgt is None
                else np.asarray(self.ewgt, dtype=np.int64))
        require(vwgt.shape == (n,), MatrixFormatError,
                "vwgt must have one weight per vertex")
        require(ewgt.shape == adjncy.shape, MatrixFormatError,
                "ewgt must align with adjncy")
        object.__setattr__(self, "xadj", xadj)
        object.__setattr__(self, "adjncy", adjncy)
        object.__setattr__(self, "vwgt", vwgt)
        object.__setattr__(self, "ewgt", ewgt)

    @property
    def nvertices(self) -> int:
        return self.xadj.size - 1

    @property
    def nedges(self) -> int:
        """Number of undirected edges (each stored twice in adjncy)."""
        return self.adjncy.size // 2

    def degrees(self) -> np.ndarray:
        """Vertex degrees, memoised on first call (read-only array).

        Every BFS of the RCM/GPS/peripheral machinery re-derived this
        from ``xadj``; the adjacency is immutable, so one shared copy
        serves them all.
        """
        cached = getattr(self, "_cache_degrees", None)
        if cached is None:
            cached = np.diff(self.xadj)
            cached.flags.writeable = False
            object.__setattr__(self, "_cache_degrees", cached)
        return cached

    def __getstate__(self) -> dict:
        """Drop memoised derivatives from the pickled state."""
        return {k: v for k, v in self.__dict__.items()
                if not k.startswith("_cache_")}

    def neighbours(self, v: int) -> np.ndarray:
        return self.adjncy[self.xadj[v]:self.xadj[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        return self.ewgt[self.xadj[v]:self.xadj[v + 1]]

    def total_vertex_weight(self) -> int:
        return int(self.vwgt.sum())

    def total_edge_weight(self) -> int:
        """Sum of undirected edge weights (each edge counted once)."""
        return int(self.ewgt.sum()) // 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.nvertices}, m={self.nedges})"


def graph_from_matrix(a: CSRMatrix, symmetrize: bool = True,
                      weighted_vertices: bool = False) -> Graph:
    """Build the undirected graph of a square sparse matrix.

    Off-diagonal nonzeros become edges; the diagonal is dropped.  If the
    pattern is unsymmetric and ``symmetrize`` is set, ``A + Aᵀ`` is used
    (paper §3.3); otherwise an unsymmetric pattern raises.

    ``weighted_vertices=True`` weights each vertex by the nonzero count
    of its row in the *original* matrix, the alternative balance
    criterion discussed (and not used) in §3.3.
    """
    if not a.is_square:
        raise MatrixFormatError("graph construction requires a square matrix")
    pattern = a
    if not is_pattern_symmetric(a):
        if not symmetrize:
            raise MatrixFormatError(
                "matrix pattern is unsymmetric; pass symmetrize=True")
        pattern = symmetrize_pattern(a)
    rows = pattern.row_of_entry()
    off = rows != pattern.colidx
    rows = rows[off]
    cols = pattern.colidx[off]
    xadj = np.zeros(pattern.nrows + 1, dtype=np.int64)
    np.add.at(xadj, rows + 1, 1)
    np.cumsum(xadj, out=xadj)
    vwgt = None
    if weighted_vertices:
        vwgt = np.maximum(a.row_lengths(), 1)
    return Graph(xadj, cols.copy(), vwgt=vwgt)
