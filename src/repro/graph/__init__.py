"""Graph substrate used by the reordering algorithms.

A structurally symmetric sparse matrix corresponds to an undirected
graph whose vertices are rows/columns and whose edges are off-diagonal
nonzeros (paper §2.1).  This subpackage provides that adjacency view
plus the traversals the orderings are built from: BFS levels, the
George–Liu pseudo-peripheral vertex finder, connected components, and
the column-net hypergraph model used by hypergraph partitioning.
"""

from .adjacency import Graph, graph_from_matrix
from .bfs import bfs_levels, bfs_order
from .peripheral import pseudo_peripheral_vertex
from .components import connected_components
from .hypergraph import Hypergraph, column_net_hypergraph

__all__ = [
    "Graph",
    "graph_from_matrix",
    "bfs_levels",
    "bfs_order",
    "pseudo_peripheral_vertex",
    "connected_components",
    "Hypergraph",
    "column_net_hypergraph",
]
