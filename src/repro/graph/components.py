"""Connected components via repeated frontier BFS.

Reordering algorithms must handle disconnected matrices (common in
SuiteSparse graph instances): each ordering processes components one by
one, and the partitioners must not assume connectivity either.
"""

from __future__ import annotations

import numpy as np

from .adjacency import Graph
from .bfs import bfs_levels


def connected_components(g: Graph) -> np.ndarray:
    """Label every vertex with its component id (0-based, dense).

    Components are numbered in order of their smallest vertex id, so the
    labelling is deterministic.
    """
    n = g.nvertices
    comp = np.full(n, -1, dtype=np.int64)
    next_id = 0
    cursor = 0
    while True:
        unassigned = np.flatnonzero(comp[cursor:] < 0)
        if unassigned.size == 0:
            break
        seed = cursor + int(unassigned[0])
        cursor = seed  # every vertex before seed is assigned
        level = bfs_levels(g, seed)
        comp[level >= 0] = next_id
        next_id += 1
    return comp


def component_sizes(comp: np.ndarray) -> np.ndarray:
    """Histogram of component labels produced by
    :func:`connected_components`."""
    if comp.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(comp).astype(np.int64)
