"""Column-net hypergraph model (paper §3.3, PaToH's model).

In the column-net model of a sparse matrix, every *row* is a vertex and
every *column* is a net (hyperedge) connecting the rows that have a
nonzero in that column.  Partitioning rows while minimising the cut-net
metric then minimises the number of columns whose nonzeros are split
across parts — which is why HP correlates with the off-diagonal
nonzero-segment count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import MatrixFormatError
from ..matrix.csr import CSRMatrix
from ..util.validate import require


@dataclass(frozen=True)
class Hypergraph:
    """Hypergraph in dual CSR form (pins by net, nets by vertex).

    Attributes
    ----------
    nvertices, nnets:
        Counts of vertices and nets.
    net_ptr, net_pins:
        CSR of nets: pins of net ``e`` are
        ``net_pins[net_ptr[e]:net_ptr[e+1]]`` (vertex ids).
    vtx_ptr, vtx_nets:
        The transposed incidence: nets containing vertex ``v``.
    vwgt:
        Vertex weights (rows balanced ⇒ unit weights, §3.3).
    nwgt:
        Net weights (unit for the cut-net metric used in the study).
    """

    nvertices: int
    nnets: int
    net_ptr: np.ndarray
    net_pins: np.ndarray
    vtx_ptr: np.ndarray
    vtx_nets: np.ndarray
    vwgt: np.ndarray = field(default=None)
    nwgt: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        net_ptr = np.asarray(self.net_ptr, dtype=np.int64)
        vtx_ptr = np.asarray(self.vtx_ptr, dtype=np.int64)
        net_pins = np.asarray(self.net_pins, dtype=np.int64)
        vtx_nets = np.asarray(self.vtx_nets, dtype=np.int64)
        require(net_ptr.shape == (self.nnets + 1,), MatrixFormatError,
                "net_ptr must have length nnets+1")
        require(vtx_ptr.shape == (self.nvertices + 1,), MatrixFormatError,
                "vtx_ptr must have length nvertices+1")
        require(net_pins.size == vtx_nets.size, MatrixFormatError,
                "pin count mismatch between the two incidence views")
        vwgt = (np.ones(self.nvertices, dtype=np.int64) if self.vwgt is None
                else np.asarray(self.vwgt, dtype=np.int64))
        nwgt = (np.ones(self.nnets, dtype=np.int64) if self.nwgt is None
                else np.asarray(self.nwgt, dtype=np.int64))
        require(vwgt.shape == (self.nvertices,), MatrixFormatError,
                "vwgt must have one entry per vertex")
        require(nwgt.shape == (self.nnets,), MatrixFormatError,
                "nwgt must have one entry per net")
        object.__setattr__(self, "net_ptr", net_ptr)
        object.__setattr__(self, "net_pins", net_pins)
        object.__setattr__(self, "vtx_ptr", vtx_ptr)
        object.__setattr__(self, "vtx_nets", vtx_nets)
        object.__setattr__(self, "vwgt", vwgt)
        object.__setattr__(self, "nwgt", nwgt)

    @property
    def npins(self) -> int:
        return int(self.net_pins.size)

    def pins(self, e: int) -> np.ndarray:
        return self.net_pins[self.net_ptr[e]:self.net_ptr[e + 1]]

    def nets_of(self, v: int) -> np.ndarray:
        return self.vtx_nets[self.vtx_ptr[v]:self.vtx_ptr[v + 1]]

    def net_sizes(self) -> np.ndarray:
        return np.diff(self.net_ptr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Hypergraph(v={self.nvertices}, nets={self.nnets}, "
                f"pins={self.npins})")


def column_net_hypergraph(a: CSRMatrix) -> Hypergraph:
    """Build the column-net hypergraph of ``a``.

    Vertices = rows; nets = columns; pins = nonzeros.  The matrix's CSR
    arrays already are the vertex-to-net incidence; the net-to-pin view
    is obtained by a counting sort over columns.
    """
    rows = a.row_of_entry()
    order = np.argsort(a.colidx, kind="stable")
    net_pins = rows[order]
    net_ptr = np.zeros(a.ncols + 1, dtype=np.int64)
    np.add.at(net_ptr, a.colidx + 1, 1)
    np.cumsum(net_ptr, out=net_ptr)
    return Hypergraph(
        nvertices=a.nrows,
        nnets=a.ncols,
        net_ptr=net_ptr,
        net_pins=net_pins,
        vtx_ptr=a.rowptr.copy(),
        vtx_nets=a.colidx.copy(),
    )
