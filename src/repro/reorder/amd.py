"""Approximate minimum degree ordering (paper §2.1.2).

A quotient-graph minimum-degree implementation in the style of
Amestoy, Davis & Duff [TOMS 2004]:

* Eliminated pivots become **elements**; a variable's adjacency is the
  union of its remaining variable neighbours and the variables of its
  elements, tracked without ever materialising fill edges.
* Degrees are **approximated** from above by
  ``d(v) ≈ |A(v)| + Σ_{e ∈ E(v)} |L(e)|`` — the bound AMD uses instead
  of the exact (expensive) union size.  This is what makes the
  algorithm near-linear in practice.
* **Element absorption**: when pivot p's element list includes an old
  element e, e's variables are folded into L(p) and e disappears, so
  element lists stay short.
* **Mass elimination**: variables whose adjacency becomes exactly
  {p's element} are eliminated together with p — they would be chosen
  next anyway.
* **Assembly-tree postordering**: like SuiteSparse AMD, the raw
  elimination order is postprocessed by a depth-first postorder of its
  elimination tree.  Postordering does not change the fill (it is an
  equivalent reordering of the same etree) but clusters each subtree's
  variables contiguously, which is where AMD orderings get the data
  locality the paper observes.

Supervariable (indistinguishable-node) detection is omitted; it is an
optimisation that changes runtime, not the ordering quality class.

The fast path (:func:`amd_ordering` with
:func:`repro.util.fastpath.fast_enabled`) keeps the reference's exact
quotient-graph set operations — the mass-elimination output order
depends on set iteration order, so the operation sequence must be
byte-for-byte the same — but replaces the two per-pivot O(|E(v)|)
degree recomputations with incrementally maintained element-size sums,
and moves all bookkeeping (alive flags, approximate degrees) off numpy
scalars onto plain Python lists.  Element sets only ever shrink at
their creation-time mass discard, so ``Σ (|L(e)|−1)`` can be carried
per variable and patched in O(1) when elements are absorbed or lose
mass-eliminated members.  The postorder chain is rebuilt from the
already-symmetrised ordering graph (one vectorised edge-relabel pass
instead of symmetrise → permute → CSR rebuild).
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.fastpath import fast_enabled, reference_mode
from .base import complete_partial_order, ordering_graph
from .perm import OrderingResult

#: element-size discount applied to surviving variables of an element
#: that just mass-eliminated ``dm`` members; the reference recomputes
#: degrees from live element sizes, so the discount must be exactly 1
#: (the mutation smoke patches this to 0 to simulate a stale-degree bug)
AMD_MASS_DISCOUNT = 1

#: above this vertex count pivot selection falls back from the O(n)
#: argmin scan to the reference's lazy heap (identical pivot sequence)
_AMD_ARGMIN_LIMIT = 1 << 14


def amd_ordering(a: CSRMatrix) -> OrderingResult:
    """Compute the AMD ordering (symmetric permutation)."""
    if not fast_enabled():
        return amd_ordering_reference(a)
    t0 = time.perf_counter()
    g = ordering_graph(a)
    order = _amd_eliminate_fast(g)
    perm = complete_partial_order(order, g.nvertices)
    perm = _postorder_elimination_fast(g, perm)
    return OrderingResult("AMD", perm, symmetric=True,
                          seconds=time.perf_counter() - t0)


def _amd_eliminate_fast(g) -> np.ndarray:
    """Quotient-graph elimination; byte-identical order to the reference.

    The set operation sequence mirrors :func:`amd_ordering_reference`
    exactly (same constructions, same update order) because the output
    order of mass-eliminated variables follows set iteration order.
    Only the degree arithmetic differs: ``esum[v]`` carries
    ``Σ_{e ∈ E(v)} (|L(e)| − 1)`` incrementally instead of recomputing
    it from the live element sets at every touch.
    """
    n = g.nvertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    xl = g.xadj.tolist()
    al = g.adjncy.tolist()
    var_adj = [set(al[xl[v]:xl[v + 1]]) for v in range(n)]
    elem_of = [set() for _ in range(n)]   # elements adjacent to variable
    elem_vars: dict = {}                  # element id -> set of variables
    alive = bytearray(b"\x01") * n
    esize = [0] * n                       # |L(e)| for live elements
    esum = [0] * n                        # Σ (|L(e)|-1) over elem_of[v]
    approx_deg = [len(s) for s in var_adj]
    # pivot selection is min over alive v of (approx_deg[v], v).  The
    # reference's lazy heap realises exactly that (every alive vertex
    # always has its current entry in the heap; stale entries are
    # skipped), so an argmin over a composite (deg, id) key array picks
    # the identical pivot sequence.  The O(n) scan per pivot wins below
    # ~16k vertices; beyond that fall back to the lazy heap.
    use_heap = n > _AMD_ARGMIN_LIMIT
    if use_heap:
        heap = [(approx_deg[v], v) for v in range(n)]
        heapq.heapify(heap)
        heappop, heappush = heapq.heappop, heapq.heappush
        key = None
    else:
        key = (np.array(approx_deg, dtype=np.int64) * n
               + np.arange(n, dtype=np.int64))
    dead_key = np.iinfo(np.int64).max
    order = []
    remaining = n
    while remaining:
        if use_heap:
            while True:
                d, p = heappop(heap)
                if alive[p] and d == approx_deg[p]:
                    break
        else:
            p = int(key.argmin())
            key[p] = dead_key
        # eliminate p: L(p) = A(p) ∪ (∪ L(e) for e ∈ E(p)) minus dead
        lp = set(v for v in var_adj[p] if alive[v])
        for e in elem_of[p]:
            lp.update(v for v in elem_vars[e] if alive[v])
            del elem_vars[e]  # absorption: e folds into p
        lp.discard(p)
        alive[p] = 0
        order.append(p)
        remaining -= 1
        if not lp:
            continue
        absorbed = set(elem_of[p])
        elem_vars[p] = lp
        sz1 = len(lp) - 1  # every member's contribution of element p
        mass = []
        for v in lp:
            # v's element lists lose absorbed elements, gain p
            ev = elem_of[v]
            if absorbed:
                rem = ev & absorbed
                if rem:
                    ev -= rem
                    s = esum[v] + len(rem)
                    for e in rem:
                        s -= esize[e]
                    esum[v] = s
            ev.add(p)
            # remove p and L(p) members from v's variable adjacency:
            # those connections now flow through element p
            va = var_adj[v]
            va.discard(p)
            va -= lp
            # mass elimination: v adjacent only through element p
            if not va and len(ev) == 1:
                mass.append(v)
                continue
            es = esum[v] + sz1
            esum[v] = es
            nd = len(va) + es
            approx_deg[v] = nd
            if use_heap:
                heappush(heap, (nd, v))
            else:
                key[v] = nd * n + v
        esize[p] = sz1 + 1
        if mass:
            lpv = elem_vars[p]
            for m in mass:
                alive[m] = 0
                order.append(m)
                lpv.discard(m)
                if not use_heap:
                    key[m] = dead_key
            remaining -= len(mass)
            # p just shrank: patch the carried sums of its survivors
            # (the reference reads live |L(p)| on the next touch; it
            # does not repush, so approx_deg stays stale here too)
            dm = len(mass) * AMD_MASS_DISCOUNT
            esize[p] -= len(mass)
            if dm:
                for v in lpv:
                    esum[v] -= dm
    return np.array(order, dtype=np.int64)


def _postorder_elimination_fast(g, perm: np.ndarray) -> np.ndarray:
    """Postorder the elimination tree of the permuted pattern.

    Equivalent to :func:`_postorder_elimination`: the etree consults
    only the strict lower triangle of the permuted symmetrised pattern,
    which is exactly the edge set of ``g`` relabelled through ``perm``
    — no symmetrise / permute / CSR rebuild needed.
    """
    from ..matrix.permute import invert_permutation

    n = g.nvertices
    if n == 0:
        return perm
    inv = invert_permutation(perm)
    src = np.repeat(np.arange(n, dtype=np.int64), g.degrees())
    ri = inv[src]
    ci = inv[g.adjncy]
    keep = ci < ri
    ri = ri[keep]
    ci = ci[keep]
    grouped = np.argsort(ri, kind="stable")
    cols = ci[grouped].tolist()
    rowptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(ri, minlength=n), out=rowptr[1:])
    rp = rowptr.tolist()
    # Liu's etree with path compression (order-independent result)
    parent = [-1] * n
    ancestor = [-1] * n
    for i in range(n):
        for idx in range(rp[i], rp[i + 1]):
            k = cols[idx]
            while True:
                r = ancestor[k]
                ancestor[k] = i
                if r == -1:
                    parent[k] = i
                    break
                if r == i:
                    break
                k = r
    return perm[_postorder_forest_fast(parent)]


def _postorder_forest_fast(parent: list) -> np.ndarray:
    """DFS postorder of a parent forest; children and roots ascending.

    Matches :func:`repro.cholesky.postorder.etree_postorder` (a stable
    argsort of the parent array yields children grouped per parent in
    ascending id order, which is the reference's visit order).
    """
    pa = np.asarray(parent, dtype=np.int64)
    n = pa.size
    grouped = np.argsort(pa, kind="stable")
    nroots = int(np.searchsorted(pa[grouped], 0))
    children = grouped[nroots:].tolist()
    head = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(pa + 1, minlength=n + 1)[1:], out=head[1:])
    head = head.tolist()
    post = np.empty(n, dtype=np.int64)
    out = 0
    for root in grouped[:nroots].tolist():
        stack = [(root, 0)]
        while stack:
            v, ci = stack.pop()
            lo = head[v]
            if ci < head[v + 1] - lo:
                stack.append((v, ci + 1))
                stack.append((children[lo + ci], 0))
            else:
                post[out] = v
                out += 1
    if out != n:  # pragma: no cover - etree parents are always > child
        from ..errors import CholeskyError
        raise CholeskyError("parent array contains a cycle")
    return post


def amd_ordering_reference(a: CSRMatrix) -> OrderingResult:
    """Scalar reference AMD (pre-vectorisation implementation)."""
    t0 = time.perf_counter()
    with reference_mode():
        g = ordering_graph(a)
        n = g.nvertices
        # variable adjacency (sets of variable ids) and element lists
        var_adj = [set(g.neighbours(v).tolist()) for v in range(n)]
        elem_of = [set() for _ in range(n)]  # elements adjacent to variable
        elem_vars: dict = {}                 # element id -> set of variables
        alive = np.ones(n, dtype=bool)
        approx_deg = np.array([len(s) for s in var_adj], dtype=np.int64)
        heap = [(int(approx_deg[v]), v) for v in range(n)]
        heapq.heapify(heap)
        order = []

        while heap:
            d, p = heapq.heappop(heap)
            if not alive[p] or d != approx_deg[p]:
                continue
            # eliminate p: L(p) = A(p) ∪ (∪ L(e) for e ∈ E(p)) minus dead
            lp = set(v for v in var_adj[p] if alive[v])
            for e in elem_of[p]:
                lp.update(v for v in elem_vars[e] if alive[v])
                del elem_vars[e]  # absorption: e folds into p
            lp.discard(p)
            alive[p] = False
            order.append(p)
            if not lp:
                continue
            absorbed = set(elem_of[p])
            elem_vars[p] = lp
            mass = []
            for v in lp:
                # v's element lists lose absorbed elements, gain p
                elem_of[v] -= absorbed
                elem_of[v].add(p)
                # remove p and L(p) members from v's variable adjacency:
                # those connections now flow through element p
                var_adj[v].discard(p)
                var_adj[v] -= lp
                # mass elimination: v adjacent only through element p
                if not var_adj[v] and elem_of[v] == {p}:
                    mass.append(v)
                    continue
                nd = len(var_adj[v])
                for e in elem_of[v]:
                    nd += len(elem_vars[e]) - 1
                approx_deg[v] = nd
                heapq.heappush(heap, (nd, v))
            for v in mass:
                alive[v] = False
                order.append(v)
                elem_vars[p].discard(v)
        perm = complete_partial_order(np.array(order, dtype=np.int64), n)
        perm = _postorder_elimination(a, perm)
    return OrderingResult("AMD", perm, symmetric=True,
                          seconds=time.perf_counter() - t0)


def _postorder_elimination(a: CSRMatrix, perm: np.ndarray) -> np.ndarray:
    """Postorder the elimination tree of A permuted by ``perm``.

    Returns the composed permutation.  Falls back to ``perm`` unchanged
    if the etree cannot be built (defensive; the symmetrised pattern
    always admits one).
    """
    from ..cholesky.etree import elimination_tree
    from ..cholesky.postorder import etree_postorder
    from ..matrix.permute import permute_symmetric
    from ..matrix.symmetry import is_pattern_symmetric, symmetrize_pattern

    pattern = a if is_pattern_symmetric(a) else symmetrize_pattern(a)
    permuted = permute_symmetric(pattern.pattern_only(), perm)
    parent = elimination_tree(permuted)
    post = etree_postorder(parent)
    return perm[post]
