"""Approximate minimum degree ordering (paper §2.1.2).

A quotient-graph minimum-degree implementation in the style of
Amestoy, Davis & Duff [TOMS 2004]:

* Eliminated pivots become **elements**; a variable's adjacency is the
  union of its remaining variable neighbours and the variables of its
  elements, tracked without ever materialising fill edges.
* Degrees are **approximated** from above by
  ``d(v) ≈ |A(v)| + Σ_{e ∈ E(v)} |L(e)|`` — the bound AMD uses instead
  of the exact (expensive) union size.  This is what makes the
  algorithm near-linear in practice.
* **Element absorption**: when pivot p's element list includes an old
  element e, e's variables are folded into L(p) and e disappears, so
  element lists stay short.
* **Mass elimination**: variables whose adjacency becomes exactly
  {p's element} are eliminated together with p — they would be chosen
  next anyway.
* **Assembly-tree postordering**: like SuiteSparse AMD, the raw
  elimination order is postprocessed by a depth-first postorder of its
  elimination tree.  Postordering does not change the fill (it is an
  equivalent reordering of the same etree) but clusters each subtree's
  variables contiguously, which is where AMD orderings get the data
  locality the paper observes.

Supervariable (indistinguishable-node) detection is omitted; it is an
optimisation that changes runtime, not the ordering quality class.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from ..matrix.csr import CSRMatrix
from .base import complete_partial_order, ordering_graph
from .perm import OrderingResult


def amd_ordering(a: CSRMatrix) -> OrderingResult:
    """Compute the AMD ordering (symmetric permutation)."""
    t0 = time.perf_counter()
    g = ordering_graph(a)
    n = g.nvertices
    # variable adjacency (sets of variable ids) and element lists
    var_adj = [set(g.neighbours(v).tolist()) for v in range(n)]
    elem_of = [set() for _ in range(n)]   # elements adjacent to variable
    elem_vars: dict = {}                  # element id -> set of variables
    alive = np.ones(n, dtype=bool)
    approx_deg = np.array([len(s) for s in var_adj], dtype=np.int64)
    heap = [(int(approx_deg[v]), v) for v in range(n)]
    heapq.heapify(heap)
    order = []

    def current_degree(v: int) -> int:
        d = len(var_adj[v])
        for e in elem_of[v]:
            d += len(elem_vars[e]) - 1  # exclude v itself
        return d

    while heap:
        d, p = heapq.heappop(heap)
        if not alive[p] or d != approx_deg[p]:
            continue
        # eliminate p: L(p) = A(p) ∪ (∪ L(e) for e ∈ E(p)) minus dead
        lp = set(v for v in var_adj[p] if alive[v])
        for e in elem_of[p]:
            lp.update(v for v in elem_vars[e] if alive[v])
            del elem_vars[e]  # absorption: e folds into p
        lp.discard(p)
        alive[p] = False
        order.append(p)
        if not lp:
            continue
        absorbed = set(elem_of[p])
        elem_vars[p] = lp
        mass = []
        for v in lp:
            # v's element lists lose absorbed elements, gain p
            elem_of[v] -= absorbed
            elem_of[v].add(p)
            # remove p and L(p) members from v's variable adjacency:
            # those connections now flow through element p
            var_adj[v].discard(p)
            var_adj[v] -= lp
            # mass elimination: v adjacent only through element p
            if not var_adj[v] and elem_of[v] == {p}:
                mass.append(v)
                continue
            nd = len(var_adj[v])
            for e in elem_of[v]:
                nd += len(elem_vars[e]) - 1
            approx_deg[v] = nd
            heapq.heappush(heap, (nd, v))
        for v in mass:
            alive[v] = False
            order.append(v)
            elem_vars[p].discard(v)
    perm = complete_partial_order(np.array(order, dtype=np.int64), n)
    perm = _postorder_elimination(a, perm)
    return OrderingResult("AMD", perm, symmetric=True,
                          seconds=time.perf_counter() - t0)


def _postorder_elimination(a: CSRMatrix, perm: np.ndarray) -> np.ndarray:
    """Postorder the elimination tree of A permuted by ``perm``.

    Returns the composed permutation.  Falls back to ``perm`` unchanged
    if the etree cannot be built (defensive; the symmetrised pattern
    always admits one).
    """
    from ..cholesky.etree import elimination_tree
    from ..cholesky.postorder import etree_postorder
    from ..matrix.permute import permute_symmetric
    from ..matrix.symmetry import is_pattern_symmetric, symmetrize_pattern

    pattern = a if is_pattern_symmetric(a) else symmetrize_pattern(a)
    permuted = permute_symmetric(pattern.pattern_only(), perm)
    parent = elimination_tree(permuted)
    post = etree_postorder(parent)
    return perm[post]
