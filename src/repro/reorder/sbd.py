"""Separated block diagonal (SBD) ordering — Yzelman & Bisseling 2009.

Cited in paper §2.1.3: a cache-oblivious SpMV ordering derived from
recursive *hypergraph* bisection.  Rows are recursively bisected with
the column-net model; at every bisection the rows are laid out as
[part 0 | part 1], and the *columns* are laid out as
[cols only touched by part 0 | cut columns | cols only touched by
part 1] — placing the shared (cut) columns in a separator block between
the two pure blocks.  Recursing yields the separated-block-diagonal
form, whose nested structure keeps the active part of x small at every
scale regardless of cache size.

Unlike the paper's six main orderings, SBD is inherently two-sided and
unsymmetric (row and column permutations differ).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ReorderingError
from ..graph.hypergraph import column_net_hypergraph
from ..hpartition.multilevel import hbisect
from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from ..util.validate import require


@dataclass(frozen=True)
class SBDResult:
    """Two-sided SBD reordering."""

    row_perm: np.ndarray
    col_perm: np.ndarray
    seconds: float

    def apply(self, a: CSRMatrix) -> CSRMatrix:
        from ..matrix.permute import permute_csr

        return permute_csr(a, self.row_perm, self.col_perm)


def _recurse(a: CSRMatrix, rows: np.ndarray, cols: np.ndarray,
             min_rows: int, rng, row_out: list, col_blocks: list) -> None:
    """Emit rows in SBD order; collect column blocks as (key, cols) so
    the caller can interleave separators."""
    if rows.size <= min_rows or cols.size == 0:
        row_out.append(rows)
        col_blocks.append(cols)
        return
    # restrict to the submatrix (rows x cols)
    sub = _submatrix(a, rows, cols)
    h = column_net_hypergraph(sub)
    side = hbisect(h, rng=rng)
    r0 = rows[np.flatnonzero(side == 0)]
    r1 = rows[np.flatnonzero(side == 1)]
    if r0.size == 0 or r1.size == 0:
        row_out.append(rows)
        col_blocks.append(cols)
        return
    # classify columns: touched only by side 0, only side 1, or cut
    touched0 = np.zeros(cols.size, dtype=bool)
    touched1 = np.zeros(cols.size, dtype=bool)
    sub_rows = sub.row_of_entry()
    on0 = side[sub_rows] == 0
    touched0[np.unique(sub.colidx[on0])] = True
    touched1[np.unique(sub.colidx[~on0])] = True
    pure0 = cols[touched0 & ~touched1]
    pure1 = cols[~touched0 & touched1]
    cut = cols[touched0 & touched1]
    untouched = cols[~touched0 & ~touched1]
    _recurse(a, r0, pure0, min_rows, rng, row_out, col_blocks)
    col_blocks.append(cut)
    _recurse(a, r1, pure1, min_rows, rng, row_out, col_blocks)
    if untouched.size:
        col_blocks.append(untouched)


def _submatrix(a: CSRMatrix, rows: np.ndarray,
               cols: np.ndarray) -> CSRMatrix:
    """Extract the (rows × cols) submatrix with local indices."""
    from ..matrix.build import coo_from_arrays, csr_from_coo

    col_local = np.full(a.ncols, -1, dtype=np.int64)
    col_local[cols] = np.arange(cols.size, dtype=np.int64)
    rs = []
    cs = []
    for local_r, r in enumerate(rows):
        c, _ = a.row_slice(int(r))
        lc = col_local[c]
        keep = lc >= 0
        cs.append(lc[keep])
        rs.append(np.full(int(keep.sum()), local_r, dtype=np.int64))
    rows_arr = (np.concatenate(rs) if rs else np.empty(0, dtype=np.int64))
    cols_arr = (np.concatenate(cs) if cs else np.empty(0, dtype=np.int64))
    return csr_from_coo(coo_from_arrays(rows.size, cols.size,
                                        rows_arr, cols_arr))


def sbd_ordering(a: CSRMatrix, min_rows: int = 32, seed=0) -> SBDResult:
    """Compute the separated-block-diagonal reordering of ``a``."""
    require(a.nrows > 0 and a.ncols > 0, ReorderingError,
            "SBD needs a non-empty matrix")
    t0 = time.perf_counter()
    rng = as_rng(seed)
    row_out: list = []
    col_blocks: list = []
    _recurse(a, np.arange(a.nrows, dtype=np.int64),
             np.arange(a.ncols, dtype=np.int64), min_rows, rng,
             row_out, col_blocks)
    row_perm = np.concatenate(row_out) if row_out else np.empty(
        0, dtype=np.int64)
    col_perm = np.concatenate(col_blocks) if col_blocks else np.empty(
        0, dtype=np.int64)
    # defensive completion (empty rows/cols never touched)
    from .base import complete_partial_order

    row_perm = complete_partial_order(row_perm, a.nrows)
    col_perm = complete_partial_order(col_perm, a.ncols)
    return SBDResult(row_perm=row_perm, col_perm=col_perm,
                     seconds=time.perf_counter() - t0)
