"""Hypergraph-partitioning ordering (paper §2.1.3 / §3.3).

Rows are partitioned through the column-net hypergraph model with the
cut-net objective (PaToH's configuration in the study), 128-way by
default as in the paper, with the same row-balance criterion as GP.
The resulting row grouping is applied symmetrically (rows and columns),
which the paper lists among the symmetric orderings.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.hypergraph import column_net_hypergraph
from ..errors import ReorderingError
from ..hpartition.recursive import partition_hypergraph
from ..matrix.csr import CSRMatrix
from ..util.fastpath import reference_mode
from ..util.rng import as_rng
from ..util.validate import require
from .gp import perm_from_parts
from .perm import OrderingResult

DEFAULT_PARTS = 128


def hp_ordering(a: CSRMatrix, nparts: int = DEFAULT_PARTS, seed=0,
                refine: bool = True) -> OrderingResult:
    """Compute the HP ordering (symmetric permutation).

    Unlike the graph-based orderings, HP works on the matrix pattern
    directly (column-net model applies to unsymmetric patterns without
    symmetrisation, §3.3) — but producing a *symmetric* permutation
    requires a square matrix.
    """
    require(a.is_square, ReorderingError,
            f"HP ordering needs a square matrix, got {a.shape}")
    t0 = time.perf_counter()
    h = column_net_hypergraph(a)
    # same minimum-part-size cap as GP (see repro.reorder.gp)
    nparts = max(1, min(nparts, max(h.nvertices // 8, 1)))
    part = partition_hypergraph(h, nparts, rng=as_rng(seed), refine=refine)
    perm = perm_from_parts(part)
    return OrderingResult("HP", perm, symmetric=True,
                          seconds=time.perf_counter() - t0)


def hp_ordering_reference(a: CSRMatrix, nparts: int = DEFAULT_PARTS, seed=0,
                          refine: bool = True) -> OrderingResult:
    """HP ordering with every pipeline stage forced onto the scalar
    reference implementations (cut-net FM, heavy-connectivity matching,
    greedy initial growth)."""
    with reference_mode():
        return hp_ordering(a, nparts=nparts, seed=seed, refine=refine)
