"""Uniform access to the six orderings + the original baseline."""

from __future__ import annotations

from ..errors import ReorderingError
from ..matrix.csr import CSRMatrix
from ..obs.metrics import REGISTRY
from ..obs.trace import span
from .amd import amd_ordering
from .gp import gp_ordering
from .gray import gray_ordering
from .hp import hp_ordering
from .nd import nd_ordering
from .perm import OrderingResult, identity_ordering
from .rcm import cm_ordering, rcm_ordering
from .gps import gps_ordering
from .sfc import sfc_ordering
from .tsp import tsp_ordering

#: Ordering names in the paper's canonical column order.
ALL_ORDERINGS = ("original", "RCM", "ND", "AMD", "GP", "HP", "Gray")

#: Additional orderings from the paper's background/related-work survey
#: (§2.1.1, §2.1.3-2.1.4, §5): plain Cuthill-McKee,
#: Gibbs-Poole-Stockmeyer, space-filling curve, and the TSP-based
#: locality ordering.  (The two-sided SBD form lives in
#: :mod:`repro.reorder.sbd` because its result type differs.)
EXTRA_ORDERINGS = ("CM", "GPS", "SFC", "TSP")

ORDERING_FUNCS = {
    "RCM": rcm_ordering,
    "AMD": amd_ordering,
    "ND": nd_ordering,
    "GP": gp_ordering,
    "HP": hp_ordering,
    "Gray": gray_ordering,
    "CM": cm_ordering,
    "GPS": gps_ordering,
    "SFC": sfc_ordering,
    "TSP": tsp_ordering,
}


def compute_ordering(a: CSRMatrix, name: str, nparts: int = 64,
                     seed=0) -> OrderingResult:
    """Compute ordering ``name`` for matrix ``a``.

    ``nparts`` applies to GP (core count of the target machine) and is
    ignored by the others; HP uses its own 128-way default per the
    paper unless GP-style part matching is requested explicitly through
    :func:`repro.reorder.hp.hp_ordering`.
    """
    if name == "original":
        return identity_ordering(a.nrows)
    if name not in ORDERING_FUNCS:
        raise ReorderingError(
            f"unknown ordering {name!r}; known: "
            f"{ALL_ORDERINGS + EXTRA_ORDERINGS}")
    REGISTRY.counter(f"reorder.computed.{name}").inc()
    with span("ordering.compute", algo=name, nrows=a.nrows, nnz=a.nnz):
        if name == "GP":
            return gp_ordering(a, nparts=nparts, seed=seed)
        if name == "HP":
            return hp_ordering(a, seed=seed)
        if name == "ND":
            return nd_ordering(a, seed=seed)
        if name == "TSP":
            return tsp_ordering(a, seed=seed)
        return ORDERING_FUNCS[name](a)
