"""The result type shared by every reordering algorithm."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PermutationError
from ..matrix.csr import CSRMatrix
from ..matrix.permute import permute_rows, permute_symmetric


@dataclass(frozen=True)
class OrderingResult:
    """A computed reordering.

    Attributes
    ----------
    algorithm:
        Short name ("RCM", "GP", ...).
    perm:
        New-to-old permutation: row ``perm[k]`` of the original matrix
        becomes row ``k``.
    symmetric:
        True if the permutation applies to rows *and* columns (PAPᵀ);
        False for row-only orderings (PA) like Gray.
    seconds:
        Wall-clock time spent computing the ordering (Table 5).
    """

    algorithm: str
    perm: np.ndarray
    symmetric: bool
    seconds: float = 0.0

    def __post_init__(self) -> None:
        perm = np.asarray(self.perm, dtype=np.int64)
        n = perm.size
        seen = np.zeros(n, dtype=bool)
        if n and (perm.min() < 0 or perm.max() >= n):
            raise PermutationError(
                f"{self.algorithm}: permutation entries out of range")
        seen[perm] = True
        if not bool(seen.all()):
            raise PermutationError(
                f"{self.algorithm}: permutation is not a bijection")
        object.__setattr__(self, "perm", perm)

    @property
    def n(self) -> int:
        return int(self.perm.size)

    def apply(self, a: CSRMatrix) -> CSRMatrix:
        """Apply this ordering to ``a`` (PAPᵀ or PA as appropriate)."""
        if self.symmetric:
            return permute_symmetric(a, self.perm)
        return permute_rows(a, self.perm)

    def with_time(self, seconds: float) -> "OrderingResult":
        """Copy with the timing field filled in."""
        return OrderingResult(self.algorithm, self.perm, self.symmetric,
                              seconds)


def identity_ordering(n: int) -> OrderingResult:
    """The original (unreordered) baseline."""
    return OrderingResult("original", np.arange(n, dtype=np.int64), True, 0.0)
