"""Gray code ordering of Zhao et al. [ICCD 2020] (paper §2.1.4).

Using the parameters the paper adopts (§3.3): rows with more than 20
nonzeros are *dense*, the rest *sparse*; sparse rows are ordered by the
Gray-code rank of a 16-bit row bitmap; dense rows are ordered by
descending nonzero count (density reordering).  The matrix is split
[dense block; sparse block] and only the rows are permuted — the
ordering is unsymmetric.

Rationale (from the original work): density grouping makes the inner
SpMV loop trip counts predictable (fewer branch mispredictions), and
Gray-code ordering places rows with similar column *sections* next to
each other so consecutive rows touch overlapping parts of x.
"""

from __future__ import annotations

import time

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.fastpath import fast_enabled
from .perm import OrderingResult

DENSE_ROW_THRESHOLD = 20
BITMAP_BITS = 16


def row_bitmaps(a: CSRMatrix, bits: int = BITMAP_BITS) -> np.ndarray:
    """Bitmap per row: bit k set iff the row has a nonzero whose column
    falls into the k-th of ``bits`` equal column sections."""
    if a.ncols == 0 or a.nnz == 0:
        return np.zeros(a.nrows, dtype=np.int64)
    section = (a.colidx * bits) // max(a.ncols, 1)
    section = np.minimum(section, bits - 1)
    words = np.int64(1) << section
    bitmaps = np.zeros(a.nrows, dtype=np.int64)
    if fast_enabled():
        # segment-reduce per nonempty row: consecutive nonempty row
        # starts are exact reduceat boundaries (empty rows stay 0)
        nonempty = a.row_lengths() > 0
        starts = a.rowptr[:-1][nonempty]
        bitmaps[nonempty] = np.bitwise_or.reduceat(words, starts)
    else:
        np.bitwise_or.at(bitmaps, a.row_of_entry(), words)
    return bitmaps


def gray_rank(codes: np.ndarray, bits: int = BITMAP_BITS) -> np.ndarray:
    """Position of each value in the ``bits``-bit Gray code sequence.

    The inverse Gray transform: b ^= b>>1; b ^= b>>2; ... doubling shifts
    until the word is covered.
    """
    rank = np.asarray(codes, dtype=np.int64).copy()
    shift = 1
    while shift < bits:
        rank ^= rank >> shift
        shift <<= 1
    return rank


def gray_ordering(a: CSRMatrix, dense_threshold: int = DENSE_ROW_THRESHOLD,
                  bits: int = BITMAP_BITS) -> OrderingResult:
    """Compute the Gray row ordering (row-only permutation)."""
    t0 = time.perf_counter()
    lengths = a.row_lengths()
    dense_rows = np.flatnonzero(lengths > dense_threshold)
    sparse_rows = np.flatnonzero(lengths <= dense_threshold)
    # dense block first, ordered by descending density (ties: row id)
    dense_order = dense_rows[np.lexsort(
        (dense_rows, -lengths[dense_rows]))]
    # sparse block ordered by Gray rank of the row bitmap
    bitmaps = row_bitmaps(a, bits=bits)
    ranks = gray_rank(bitmaps[sparse_rows], bits=bits)
    sparse_order = sparse_rows[np.lexsort((sparse_rows, ranks))]
    perm = np.concatenate([dense_order, sparse_order])
    return OrderingResult("Gray", perm, symmetric=False,
                          seconds=time.perf_counter() - t0)


def gray_ordering_reference(a: CSRMatrix,
                            dense_threshold: int = DENSE_ROW_THRESHOLD,
                            bits: int = BITMAP_BITS) -> OrderingResult:
    """Plain-Python scalar Gray ordering (differential-testing oracle).

    Gray always was numpy-vectorised; this scalar twin follows the PR 5
    oracle convention so the vectorised path has an independent
    implementation to be checked against: per-entry bitmap assembly,
    scalar inverse-Gray rank, and ``sorted`` with explicit key tuples
    in place of ``lexsort``.
    """
    t0 = time.perf_counter()
    nrows, ncols = a.nrows, a.ncols
    rowptr = a.rowptr.tolist()
    colidx = a.colidx.tolist()
    lengths = [rowptr[i + 1] - rowptr[i] for i in range(nrows)]
    bitmaps = [0] * nrows
    if ncols > 0:
        for i in range(nrows):
            bm = 0
            for p in range(rowptr[i], rowptr[i + 1]):
                section = (colidx[p] * bits) // ncols
                if section > bits - 1:
                    section = bits - 1
                bm |= 1 << section
            bitmaps[i] = bm

    def rank_of(code: int) -> int:
        rank = code
        shift = 1
        while shift < bits:
            rank ^= rank >> shift
            shift <<= 1
        return rank

    dense = sorted((i for i in range(nrows) if lengths[i] > dense_threshold),
                   key=lambda i: (-lengths[i], i))
    sparse = sorted((i for i in range(nrows) if lengths[i] <= dense_threshold),
                    key=lambda i: (rank_of(bitmaps[i]), i))
    perm = np.array(dense + sparse, dtype=np.int64)
    return OrderingResult("Gray", perm, symmetric=False,
                          seconds=time.perf_counter() - t0)
