"""Nested dissection ordering (paper §2.1.2).

Recursively: compute a vertex separator (from a multilevel edge
bisection, :mod:`repro.partition.separator`), order the two halves
first and the separator last, and recurse into the halves.  Subgraphs
below ``leaf_size`` are ordered with minimum degree — the same hybrid
METIS's ND routine uses (it switches to MMD on small pieces).
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.adjacency import Graph
from ..matrix.csr import CSRMatrix
from ..partition.recursive import induced_subgraph
from ..partition.separator import vertex_separator
from ..util.rng import as_rng
from .base import complete_partial_order, ordering_graph
from .perm import OrderingResult

DEFAULT_LEAF_SIZE = 64


def _leaf_order(g: Graph) -> np.ndarray:
    """Minimum-degree order of a small leaf subgraph.

    Runs the AMD routine on the leaf's adjacency; leaves are tiny so the
    quotient-graph machinery is instant.
    """
    from .amd import amd_ordering
    from ..matrix.build import coo_from_arrays, csr_from_coo

    n = g.nvertices
    if n <= 1:
        return np.arange(n, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), g.degrees())
    pattern = csr_from_coo(coo_from_arrays(n, n, src, g.adjncy))
    return amd_ordering(pattern).perm


def _dissect(g: Graph, global_ids: np.ndarray, leaf_size: int, rng,
             out: list) -> None:
    """Append ``global_ids`` to ``out`` in nested-dissection order."""
    if g.nvertices <= leaf_size:
        out.append(global_ids[_leaf_order(g)])
        return
    a, b, sep = vertex_separator(g, rng=rng)
    if sep.size == 0 or a.size == 0 or b.size == 0:
        # no useful separator (clique-like or disconnected-degenerate):
        # fall back to minimum degree for the whole piece
        out.append(global_ids[_leaf_order(g)])
        return
    sub_a, loc_a = induced_subgraph(g, a)
    sub_b, loc_b = induced_subgraph(g, b)
    _dissect(sub_a, global_ids[loc_a], leaf_size, rng, out)
    _dissect(sub_b, global_ids[loc_b], leaf_size, rng, out)
    out.append(global_ids[sep])


def nd_ordering(a: CSRMatrix, leaf_size: int = DEFAULT_LEAF_SIZE,
                seed=0) -> OrderingResult:
    """Compute the nested dissection ordering (symmetric permutation)."""
    t0 = time.perf_counter()
    g = ordering_graph(a)
    rng = as_rng(seed)
    pieces: list = []
    _dissect(g, np.arange(g.nvertices, dtype=np.int64), leaf_size, rng,
             pieces)
    order = (np.concatenate(pieces) if pieces
             else np.empty(0, dtype=np.int64))
    perm = complete_partial_order(order, g.nvertices)
    return OrderingResult("ND", perm, symmetric=True,
                          seconds=time.perf_counter() - t0)


def nd_ordering_reference(a: CSRMatrix, leaf_size: int = DEFAULT_LEAF_SIZE,
                          seed=0) -> OrderingResult:
    """ND with every pipeline stage forced onto the scalar reference
    implementations (BFS, FM refinement, AMD leaf ordering)."""
    from ..util.fastpath import reference_mode

    with reference_mode():
        return nd_ordering(a, leaf_size=leaf_size, seed=seed)
