"""The six matrix reordering algorithms of the study (paper Table 1).

==========  =============================  ==========================
short name  algorithm                      module
==========  =============================  ==========================
RCM         Reverse Cuthill–McKee          :mod:`.rcm`
AMD         Approximate minimum degree     :mod:`.amd`
ND          Nested dissection              :mod:`.nd`
GP          Graph partitioning (edge-cut)  :mod:`.gp`
HP          Hypergraph part. (cut-net)     :mod:`.hp`
Gray        Gray code ordering             :mod:`.gray`
==========  =============================  ==========================

All orderings except Gray are *symmetric* (the same permutation applies
to rows and columns, computed on the symmetrised pattern A+Aᵀ when
needed); Gray permutes rows only (paper §3.3).  Use
:func:`compute_ordering` / :data:`ALL_ORDERINGS` for uniform access.
"""

from .perm import OrderingResult, identity_ordering
from .rcm import cm_ordering, rcm_ordering
from .gps import gps_ordering
from .sbd import SBDResult, sbd_ordering
from .sfc import sfc_ordering
from .tsp import tsp_ordering
from .amd import amd_ordering
from .nd import nd_ordering
from .gp import gp_ordering
from .hp import hp_ordering
from .gray import gray_ordering
from .registry import (
    ALL_ORDERINGS,
    EXTRA_ORDERINGS,
    ORDERING_FUNCS,
    compute_ordering,
)

__all__ = [
    "OrderingResult",
    "identity_ordering",
    "rcm_ordering",
    "cm_ordering",
    "gps_ordering",
    "sbd_ordering",
    "SBDResult",
    "sfc_ordering",
    "tsp_ordering",
    "amd_ordering",
    "nd_ordering",
    "gp_ordering",
    "hp_ordering",
    "gray_ordering",
    "ALL_ORDERINGS",
    "EXTRA_ORDERINGS",
    "ORDERING_FUNCS",
    "compute_ordering",
]
