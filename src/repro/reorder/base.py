"""Shared plumbing for the reordering implementations."""

from __future__ import annotations

import numpy as np

from ..errors import ReorderingError
from ..graph.adjacency import Graph, graph_from_matrix
from ..matrix.csr import CSRMatrix
from ..util.validate import require


def ordering_graph(a: CSRMatrix) -> Graph:
    """The undirected graph of A (or A+Aᵀ for unsymmetric patterns).

    This is the preprocessing step the paper prescribes for RCM, AMD,
    ND and GP (§3.3).
    """
    require(a.is_square, ReorderingError,
            f"symmetric orderings need a square matrix, got {a.shape}")
    return graph_from_matrix(a, symmetrize=True)


def complete_partial_order(order: np.ndarray, n: int) -> np.ndarray:
    """Append any vertices missing from ``order`` (in index order).

    Defensive helper: component-by-component algorithms should cover all
    vertices, but isolated vertices or empty rows must never produce an
    invalid permutation.
    """
    order = np.asarray(order, dtype=np.int64)
    present = np.zeros(n, dtype=bool)
    present[order] = True
    missing = np.flatnonzero(~present)
    if missing.size == 0:
        return order
    return np.concatenate([order, missing])
