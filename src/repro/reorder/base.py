"""Shared plumbing for the reordering implementations."""

from __future__ import annotations

import numpy as np

from ..errors import ReorderingError
from ..graph.adjacency import Graph, graph_from_matrix
from ..matrix.csr import CSRMatrix
from ..util.fastpath import fast_enabled
from ..util.validate import require


def ordering_graph(a: CSRMatrix) -> Graph:
    """The undirected graph of A (or A+Aᵀ for unsymmetric patterns).

    This is the preprocessing step the paper prescribes for RCM, AMD,
    ND and GP (§3.3).  Under the fast path the (frozen, deterministic)
    graph is memoised on the matrix — every symmetric ordering of the
    same matrix shares one symmetrize-and-build pass; the reference
    path rebuilds it each call, exactly as the scalar implementation
    always did.
    """
    require(a.is_square, ReorderingError,
            f"symmetric orderings need a square matrix, got {a.shape}")
    if not fast_enabled():
        return graph_from_matrix(a, symmetrize=True)
    cached = getattr(a, "_cache_ordering_graph", None)
    if cached is None:
        cached = graph_from_matrix(a, symmetrize=True)
        object.__setattr__(a, "_cache_ordering_graph", cached)
    return cached


def complete_partial_order(order: np.ndarray, n: int) -> np.ndarray:
    """Append any vertices missing from ``order`` (in index order).

    Defensive helper: component-by-component algorithms should cover all
    vertices, but isolated vertices or empty rows must never produce an
    invalid permutation.
    """
    order = np.asarray(order, dtype=np.int64)
    present = np.zeros(n, dtype=bool)
    present[order] = True
    missing = np.flatnonzero(~present)
    if missing.size == 0:
        return order
    return np.concatenate([order, missing])
