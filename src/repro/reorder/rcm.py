"""Reverse Cuthill–McKee ordering (paper §2.1.1).

Per connected component: find a pseudo-peripheral start vertex
(George–Liu), traverse in breadth-first order with vertices of each
level taken in ascending degree, then reverse the concatenated order.
Components are processed in order of their smallest vertex id, matching
common library behaviour (SuiteSparse, scipy).

Two paths share this module: :func:`rcm_ordering` dispatches to a
vectorised fast path (padded-adjacency BFS, one lexsort per component,
and the George–Liu level structure reused so the final BFS per
component disappears) or, under :func:`repro.util.fastpath.reference_mode`,
to :func:`rcm_ordering_reference` — the original scalar-idiom
implementation kept importable for differential testing.  The two are
permutation-exact by construction: BFS levels are a unique function of
the start vertex, so the ``(level, degree, id)`` lexsort keys agree.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.bfs import bfs_levels
from ..graph import peripheral as _peripheral
from ..matrix.csr import CSRMatrix
from ..util.fastpath import fast_enabled, reference_mode
from .base import complete_partial_order, ordering_graph
from .perm import OrderingResult


def cuthill_mckee_component(g, start: int) -> np.ndarray:
    """CM order of ``start``'s component (not reversed)."""
    level = bfs_levels(g, start)
    reached = np.flatnonzero(level >= 0)
    deg = g.degrees()
    # visit by (level, degree, id): classical CM sorts each level by
    # ascending degree; id tie-break keeps it deterministic
    return reached[np.lexsort((reached, deg[reached], level[reached]))]


def _rcm_order_fast(a: CSRMatrix) -> np.ndarray:
    """CM order over all components, reusing the George–Liu levels."""
    g = ordering_graph(a)
    n = g.nvertices
    deg = g.degrees()
    visited = np.zeros(n, dtype=bool)
    pieces = []
    for seed in range(n):
        if visited[seed]:
            continue
        start, level = _peripheral.pseudo_peripheral_with_levels(g, seed)
        reached = np.flatnonzero(level >= 0)
        comp_order = reached[
            np.lexsort((reached, deg[reached], level[reached]))]
        visited[comp_order] = True
        pieces.append(comp_order)
    order = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
    return complete_partial_order(order, n)


def rcm_ordering(a: CSRMatrix, reverse: bool = True) -> OrderingResult:
    """Compute the RCM ordering of a sparse matrix.

    Returns a symmetric :class:`OrderingResult`; the permutation is the
    reversal of the Cuthill–McKee order over all components.  Pass
    ``reverse=False`` for the plain (unreversed) Cuthill–McKee order —
    equivalent for bandwidth, but RCM typically produces less fill in
    factorisations (paper §2.1.1).
    """
    if not fast_enabled():
        return rcm_ordering_reference(a, reverse=reverse)
    t0 = time.perf_counter()
    order = _rcm_order_fast(a)
    if reverse:
        order = order[::-1].copy()  # the "reverse" in RCM
    return OrderingResult("RCM" if reverse else "CM", order,
                          symmetric=True,
                          seconds=time.perf_counter() - t0)


def rcm_ordering_reference(a: CSRMatrix,
                           reverse: bool = True) -> OrderingResult:
    """Scalar reference RCM (pre-vectorisation implementation)."""
    t0 = time.perf_counter()
    with reference_mode():
        g = ordering_graph(a)
        n = g.nvertices
        visited = np.zeros(n, dtype=bool)
        pieces = []
        for seed in range(n):
            if visited[seed]:
                continue
            start = _peripheral.pseudo_peripheral_vertex(g, seed)
            comp_order = cuthill_mckee_component(g, start)
            visited[comp_order] = True
            pieces.append(comp_order)
        order = (np.concatenate(pieces) if pieces
                 else np.empty(0, dtype=np.int64))
        order = complete_partial_order(order, n)
        if reverse:
            order = order[::-1].copy()  # the "reverse" in RCM
    return OrderingResult("RCM" if reverse else "CM", order,
                          symmetric=True,
                          seconds=time.perf_counter() - t0)


def cm_ordering(a: CSRMatrix) -> OrderingResult:
    """The plain (unreversed) Cuthill–McKee ordering."""
    return rcm_ordering(a, reverse=False)


def cm_ordering_reference(a: CSRMatrix) -> OrderingResult:
    """Scalar reference CM (pre-vectorisation implementation)."""
    return rcm_ordering_reference(a, reverse=False)
