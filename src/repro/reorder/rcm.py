"""Reverse Cuthill–McKee ordering (paper §2.1.1).

Per connected component: find a pseudo-peripheral start vertex
(George–Liu), traverse in breadth-first order with vertices of each
level taken in ascending degree, then reverse the concatenated order.
Components are processed in order of their smallest vertex id, matching
common library behaviour (SuiteSparse, scipy).
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.bfs import bfs_levels
from ..graph.peripheral import pseudo_peripheral_vertex
from ..matrix.csr import CSRMatrix
from .base import complete_partial_order, ordering_graph
from .perm import OrderingResult


def cuthill_mckee_component(g, start: int) -> np.ndarray:
    """CM order of ``start``'s component (not reversed)."""
    level = bfs_levels(g, start)
    reached = np.flatnonzero(level >= 0)
    deg = g.degrees()
    # visit by (level, degree, id): classical CM sorts each level by
    # ascending degree; id tie-break keeps it deterministic
    return reached[np.lexsort((reached, deg[reached], level[reached]))]


def rcm_ordering(a: CSRMatrix, reverse: bool = True) -> OrderingResult:
    """Compute the RCM ordering of a sparse matrix.

    Returns a symmetric :class:`OrderingResult`; the permutation is the
    reversal of the Cuthill–McKee order over all components.  Pass
    ``reverse=False`` for the plain (unreversed) Cuthill–McKee order —
    equivalent for bandwidth, but RCM typically produces less fill in
    factorisations (paper §2.1.1).
    """
    t0 = time.perf_counter()
    g = ordering_graph(a)
    n = g.nvertices
    visited = np.zeros(n, dtype=bool)
    pieces = []
    for seed in range(n):
        if visited[seed]:
            continue
        start = pseudo_peripheral_vertex(g, seed)
        comp_order = cuthill_mckee_component(g, start)
        visited[comp_order] = True
        pieces.append(comp_order)
    order = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
    order = complete_partial_order(order, n)
    if reverse:
        order = order[::-1].copy()  # the "reverse" in RCM
    return OrderingResult("RCM" if reverse else "CM", order,
                          symmetric=True,
                          seconds=time.perf_counter() - t0)


def cm_ordering(a: CSRMatrix) -> OrderingResult:
    """The plain (unreversed) Cuthill–McKee ordering."""
    return rcm_ordering(a, reverse=False)
