"""Gibbs–Poole–Stockmeyer bandwidth/profile reduction (paper §2.1.1).

The paper cites GPS [Gibbs, Poole & Stockmeyer 1976] alongside
Cuthill–McKee as the classical bandwidth reducers.  GPS improves on CM
in two ways:

1. it finds *two* pseudo-peripheral endpoints u, v of a long shortest
   path and combines their level structures into one with smaller level
   widths (vertices are placed on the level where the rooted structures
   agree; ties go to the smaller of the two candidate levels by width);
2. the combined level structure is then numbered level by level in
   CM fashion.

This implementation follows the published algorithm's structure while
simplifying the tie-breaking heuristics (which affect constants, not
the asymptotic envelope quality).
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.bfs import bfs_levels
from ..graph.peripheral import pseudo_peripheral_vertex
from ..matrix.csr import CSRMatrix
from .base import complete_partial_order, ordering_graph
from .perm import OrderingResult


def _combined_levels(g, u: int, v: int) -> np.ndarray:
    """GPS level assignment from the two rooted level structures."""
    lu = bfs_levels(g, u)
    lv = bfs_levels(g, v)
    reached = lu >= 0
    depth = int(lu[reached].max(initial=0))
    # mirror the v-structure so both count from u's side
    lv_m = np.where(lv >= 0, depth - lv, -1)
    level = np.full(g.nvertices, -1, dtype=np.int64)
    agree = reached & (lu == lv_m)
    level[agree] = lu[agree]
    rest = np.flatnonzero(reached & ~agree)
    if rest.size:
        # place each remaining vertex on the less-populated of its two
        # candidate levels (the GPS width-minimising rule)
        counts = np.bincount(level[agree][level[agree] >= 0],
                             minlength=depth + 1).astype(np.int64)
        order = rest[np.argsort(lu[rest], kind="stable")]
        for w in order:
            cand = [int(lu[w]), int(lv_m[w])]
            cand = [c for c in cand if 0 <= c <= depth]
            if not cand:
                cand = [int(lu[w])]
            best = min(cand, key=lambda c: counts[c])
            level[w] = best
            counts[best] += 1
    return level


def gps_ordering(a: CSRMatrix) -> OrderingResult:
    """Compute the GPS ordering (symmetric permutation)."""
    t0 = time.perf_counter()
    g = ordering_graph(a)
    n = g.nvertices
    deg = g.degrees()
    visited = np.zeros(n, dtype=bool)
    pieces = []
    for seed in range(n):
        if visited[seed]:
            continue
        u = pseudo_peripheral_vertex(g, seed)
        lu = bfs_levels(g, u)
        comp = np.flatnonzero(lu >= 0)
        visited[comp] = True
        # endpoint v: minimum-degree vertex of u's deepest level
        deepest = comp[lu[comp] == lu[comp].max()]
        v = int(deepest[np.argmin(deg[deepest])])
        level = _combined_levels(g, u, v)
        # CM-style numbering of the combined structure
        order = comp[np.lexsort((comp, deg[comp], level[comp]))]
        pieces.append(order)
    order = (np.concatenate(pieces) if pieces
             else np.empty(0, dtype=np.int64))
    order = complete_partial_order(order, n)
    return OrderingResult("GPS", order[::-1].copy(), symmetric=True,
                          seconds=time.perf_counter() - t0)
