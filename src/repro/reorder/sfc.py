"""Space-filling-curve ordering (paper §2.1.4, Oliker et al. 2002).

Space-filling curves need geometric coordinates, which a bare sparsity
pattern does not carry.  Following the standard graph-embedding trick,
we synthesise 2-D coordinates from the graph metric itself: pick two
far-apart landmark vertices (double BFS sweep, the same machinery RCM's
pseudo-peripheral finder uses) and use the BFS distances to them as
(x, y).  Vertices are then ordered along the Morton (Z-order) curve of
those coordinates.  For mesh-like matrices the embedding recovers the
physical layout well enough that the curve yields banded-ish locality;
for unstructured graphs it degrades gracefully to a BFS-like order.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.bfs import bfs_levels
from ..graph.peripheral import pseudo_peripheral_vertex
from ..matrix.csr import CSRMatrix
from .base import complete_partial_order, ordering_graph
from .perm import OrderingResult

MORTON_BITS = 16


def morton_interleave(x: np.ndarray, y: np.ndarray,
                      bits: int = MORTON_BITS) -> np.ndarray:
    """Interleave the low ``bits`` of x and y into Z-order keys."""
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    key = np.zeros(x.shape, dtype=np.int64)
    for b in range(bits):
        key |= ((x >> b) & 1) << (2 * b)
        key |= ((y >> b) & 1) << (2 * b + 1)
    return key


def graph_coordinates(g, component: np.ndarray) -> tuple:
    """Landmark-BFS 2-D embedding of one connected component."""
    seed = int(component[0])
    u = pseudo_peripheral_vertex(g, seed)
    du = bfs_levels(g, u)
    far = component[du[component] == du[component].max()]
    v = int(far[0])
    dv = bfs_levels(g, v)
    return du[component], dv[component]


def sfc_ordering(a: CSRMatrix) -> OrderingResult:
    """Morton-order rows along a landmark-BFS embedding (symmetric)."""
    t0 = time.perf_counter()
    g = ordering_graph(a)
    n = g.nvertices
    visited = np.zeros(n, dtype=bool)
    pieces = []
    for seed in range(n):
        if visited[seed]:
            continue
        levels = bfs_levels(g, seed)
        comp = np.flatnonzero(levels >= 0)
        visited[comp] = True
        if comp.size == 1:
            pieces.append(comp)
            continue
        x, y = graph_coordinates(g, comp)
        keys = morton_interleave(np.maximum(x, 0), np.maximum(y, 0))
        pieces.append(comp[np.lexsort((comp, keys))])
    order = (np.concatenate(pieces) if pieces
             else np.empty(0, dtype=np.int64))
    order = complete_partial_order(order, n)
    return OrderingResult("SFC", order, symmetric=True,
                          seconds=time.perf_counter() - t0)
