"""Graph-partitioning ordering (paper §2.1.3 / §3.3).

Partition the (symmetrised) graph into ``nparts`` parts with the
edge-cut objective and unit vertex weights (balancing *rows*, the
paper's choice), then group rows and columns by part id.  The part
count is matched to the core count of the target CPU (16…128 in the
study); rows keep their original relative order within a part.
"""

from __future__ import annotations

import time

import numpy as np

from ..matrix.csr import CSRMatrix
from ..partition.recursive import partition_graph
from ..util.fastpath import reference_mode
from ..util.rng import as_rng
from .base import ordering_graph
from .perm import OrderingResult

DEFAULT_PARTS = 64


def perm_from_parts(part: np.ndarray) -> np.ndarray:
    """Stable grouping permutation: sort vertices by (part, original id)."""
    part = np.asarray(part, dtype=np.int64)
    return np.argsort(part, kind="stable").astype(np.int64)


def gp_ordering(a: CSRMatrix, nparts: int = DEFAULT_PARTS, seed=0,
                refine: bool = True) -> OrderingResult:
    """Compute the GP ordering (symmetric permutation).

    Parameters
    ----------
    nparts:
        Number of parts; the paper sets this to the core count of the
        machine the SpMV will run on (§3.3).
    refine:
        FM refinement toggle, exposed for the ablation benchmarks.
    """
    t0 = time.perf_counter()
    g = ordering_graph(a)
    # cap the part count so every part holds at least ~8 rows: the
    # paper's matrices (>= 1M nnz) never hit this, but the scaled-down
    # corpus would otherwise request degenerate single-row parts
    nparts = max(1, min(nparts, max(g.nvertices // 8, 1)))
    part = partition_graph(g, nparts, rng=as_rng(seed), refine=refine)
    perm = perm_from_parts(part)
    return OrderingResult("GP", perm, symmetric=True,
                          seconds=time.perf_counter() - t0)


def gp_ordering_reference(a: CSRMatrix, nparts: int = DEFAULT_PARTS, seed=0,
                          refine: bool = True) -> OrderingResult:
    """GP ordering with every pipeline stage forced onto the scalar
    reference implementations (FM refinement, heavy-edge matching,
    graph construction)."""
    with reference_mode():
        return gp_ordering(a, nparts=nparts, seed=seed, refine=refine)
