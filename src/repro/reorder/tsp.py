"""TSP-based locality ordering (paper §2.1.4 / §5 related work).

Pinar & Heath [SC '99] and Pichel et al. formulate row ordering as a
travelling-salesperson problem: consecutive rows should share as many
column accesses as possible, so the "distance" between rows i and j is
the number of columns in exactly one of the two rows (symmetric
difference), and a short tour is a cache-friendly row order.

Exact TSP is hopeless; like the cited works we use a greedy
nearest-neighbour construction followed by 2-opt improvement, both
restricted to a candidate neighbour set (rows sharing a column) so the
cost stays near-linear for sparse matrices.
"""

from __future__ import annotations

import time

import numpy as np

from ..matrix.csr import CSRMatrix
from ..util.rng import as_rng
from .perm import OrderingResult


def _row_similarity_candidates(a: CSRMatrix, max_per_col: int = 64):
    """For each row, the set of rows sharing >= 1 column (via columns).

    Columns with more than ``max_per_col`` entries are skipped — they
    make everything a neighbour of everything and add no signal.
    """
    rows = a.row_of_entry()
    order = np.argsort(a.colidx, kind="stable")
    sorted_cols = a.colidx[order]
    sorted_rows = rows[order]
    starts = np.searchsorted(sorted_cols, np.arange(a.ncols + 1))
    neighbours: list = [set() for _ in range(a.nrows)]
    for c in range(a.ncols):
        members = sorted_rows[starts[c]:starts[c + 1]]
        if members.size < 2 or members.size > max_per_col:
            continue
        m = members.tolist()
        for r in m:
            neighbours[r].update(m)
    for r in range(a.nrows):
        neighbours[r].discard(r)
    return neighbours


def _shared_count(a: CSRMatrix, i: int, j: int) -> int:
    ci, _ = a.row_slice(i)
    cj, _ = a.row_slice(j)
    return int(np.intersect1d(ci, cj, assume_unique=True).size)


def tsp_ordering(a: CSRMatrix, two_opt_passes: int = 1,
                 seed=0) -> OrderingResult:
    """Greedy nearest-neighbour + bounded 2-opt row ordering.

    Row-only permutation (like Gray); maximises shared columns between
    consecutive rows, i.e. minimises the TSP tour under the
    symmetric-difference distance.
    """
    t0 = time.perf_counter()
    n = a.nrows
    rng = as_rng(seed)
    if n == 0:
        return OrderingResult("TSP", np.empty(0, dtype=np.int64), False,
                              time.perf_counter() - t0)
    neighbours = _row_similarity_candidates(a)
    visited = np.zeros(n, dtype=bool)
    tour = np.empty(n, dtype=np.int64)
    current = int(rng.integers(0, n))
    visited[current] = True
    tour[0] = current
    for k in range(1, n):
        best = -1
        best_shared = -1
        for cand in neighbours[current]:
            if not visited[cand]:
                s = _shared_count(a, current, int(cand))
                if s > best_shared:
                    best_shared = s
                    best = int(cand)
        if best < 0:
            # tour stuck: jump to the first unvisited row
            best = int(np.flatnonzero(~visited)[0])
        tour[k] = best
        visited[best] = True
        current = best
    # bounded 2-opt: try reversing segments between candidate pairs
    for _ in range(two_opt_passes):
        improved = False
        pos = np.empty(n, dtype=np.int64)
        pos[tour] = np.arange(n)
        for i in range(n - 2):
            r = int(tour[i])
            for cand in neighbours[r]:
                j = int(pos[cand])
                if j <= i + 1 or j >= n - 1:
                    continue
                # gain of reversing tour[i+1..j]
                before = (_shared_count(a, r, int(tour[i + 1]))
                          + _shared_count(a, int(tour[j]),
                                          int(tour[j + 1])))
                after = (_shared_count(a, r, int(tour[j]))
                         + _shared_count(a, int(tour[i + 1]),
                                         int(tour[j + 1])))
                if after > before:
                    tour[i + 1:j + 1] = tour[i + 1:j + 1][::-1]
                    pos[tour] = np.arange(n)
                    improved = True
        if not improved:
            break
    return OrderingResult("TSP", tour, symmetric=False,
                          seconds=time.perf_counter() - t0)
