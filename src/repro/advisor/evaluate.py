"""Held-out evaluation: how close does the advisor get to the oracle?

For every (test matrix, architecture, kernel) cell the advisor picks a
top ordering from features alone; the sweep provides the measured
speedup of that pick.  Three baselines anchor the numbers:

* **oracle** — the measured-best ordering per cell (upper bound),
* **always-RCM** — the paper's strongest single default,
* **natural** — never reorder (speedup 1.0 by definition).

Use :func:`repro.generators.split_corpus` to keep the training and test
matrices disjoint (stratified by structural family).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.stats import geomean
from ..errors import AdvisorError
from .dataset import build_dataset
from .service import Advisor


@dataclass(frozen=True)
class EvaluationReport:
    """Aggregate advisor quality over a held-out corpus split."""

    cases: int
    top1_accuracy: float       # pick == measured best (strict label match)
    within_5pct: float         # pick's speedup ≥ 95% of the oracle's
    geomean_advisor: float
    geomean_oracle: float
    geomean_rcm: float
    geomean_natural: float = 1.0
    picks: dict = field(default_factory=dict)   # ordering -> times picked

    @property
    def fraction_of_oracle(self) -> float:
        """Advisor geomean speedup relative to the oracle's."""
        return self.geomean_advisor / self.geomean_oracle

    @property
    def beats_rcm(self) -> bool:
        return self.geomean_advisor >= self.geomean_rcm

    def rows(self) -> list:
        """Table rows: policy, geomean speedup, fraction of oracle."""
        return [
            ["oracle-best", self.geomean_oracle, 1.0],
            ["advisor", self.geomean_advisor, self.fraction_of_oracle],
            ["always-RCM", self.geomean_rcm,
             self.geomean_rcm / self.geomean_oracle],
            ["natural order", self.geomean_natural,
             self.geomean_natural / self.geomean_oracle],
        ]


def evaluate_advisor(advisor: Advisor, corpus: list, architectures: list,
                     orderings=None, kernels: tuple = ("1d", "2d"),
                     cache=None, sweep=None, seed=0,
                     iterations: float | None = None) -> EvaluationReport:
    """Score ``advisor`` against the measured sweep of ``corpus``.

    ``sweep``/``cache`` are forwarded to
    :func:`repro.advisor.dataset.build_dataset`, which supplies the
    ground-truth speedups; the advisor itself sees only features.
    """
    rows = build_dataset(corpus, architectures, orderings=orderings,
                         kernels=kernels, cache=cache, sweep=sweep,
                         seed=seed)
    if not rows:
        raise AdvisorError("evaluation corpus produced no dataset rows")
    budget = advisor.iterations if iterations is None else iterations
    hits = 0
    close = 0
    picked = []
    oracle = []
    rcm = []
    picks: dict = {}
    for row in rows:
        ranked = advisor.model.predict_ranked(row.features, nnz=row.nnz,
                                              iterations=budget)
        pick = ranked[0].ordering
        picks[pick] = picks.get(pick, 0) + 1
        sp = row.speedups.get(pick, 1.0)
        picked.append(sp)
        oracle.append(row.best_speedup)
        rcm.append(row.speedups.get("RCM", 1.0))
        hits += pick == row.best
        close += sp >= 0.95 * row.best_speedup
    return EvaluationReport(
        cases=len(rows),
        top1_accuracy=hits / len(rows),
        within_5pct=close / len(rows),
        geomean_advisor=geomean(picked),
        geomean_oracle=geomean(oracle),
        geomean_rcm=geomean(rcm),
        picks=picks,
    )
