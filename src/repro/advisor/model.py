"""The advisor's learner: a pure-NumPy instance-based speedup model.

Training stores every dataset row in z-normalised feature space along
with its per-ordering log-speedups.  Prediction finds the ``k`` nearest
training rows and returns, per candidate ordering, the distance-weighted
mean log-speedup — i.e. a k-NN *regression* over speedups rather than a
bare classification, so the ranked list degrades gracefully: when the
advisor cannot identify the single best ordering it still lands on one
whose measured speedup is close.  Per-label centroids and a majority
class provide the far-from-training fallback, and the Table 5 cost
model (:mod:`repro.advisor.costmodel`) demotes any ordering whose
predicted gain does not amortize within the caller's iteration budget
below the "keep natural order" entry.

Models serialize to plain JSON (:meth:`AdvisorModel.to_json` /
:meth:`from_json`, or :meth:`save` / :meth:`load`), so trained models
are versioned artifacts that round-trip bit-identically.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..errors import AdvisorError
from .costmodel import ReorderingCostModel
from .featurize import FEATURE_NAMES

#: bump when the serialized layout changes incompatibly
#: (2: the feature vector gained the workload one-hot block)
MODEL_VERSION = 2

#: query further than this multiple of the training radius falls back
#: to the global (majority/mean) prediction
FALLBACK_RADIUS_FACTOR = 2.0


@dataclass(frozen=True)
class Advice:
    """One entry of a ranked recommendation list."""

    ordering: str
    predicted_speedup: float
    confidence: float          # neighbour vote share in [0, 1]

    def row(self) -> list:
        return [self.ordering, self.predicted_speedup, self.confidence]


class AdvisorModel:
    """k-NN speedup regressor with centroid fallback and cost gating."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise AdvisorError(f"k must be positive, got {k}")
        self.k = k
        self.feature_names: tuple = tuple(FEATURE_NAMES)
        self.orderings: tuple = ()
        self.costs = ReorderingCostModel()
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._z: np.ndarray | None = None          # (n, d) training rows
        self._logsp: np.ndarray | None = None      # (n, m) log speedups
        self._labels: list = []                    # best ordering per row
        self._centroids: dict = {}
        self._majority: str = "original"
        self._global_logsp: np.ndarray | None = None
        self._fallback_radius: float = float("inf")
        self.trained_on: dict = {}

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        return self._z is not None and len(self._z) > 0

    def fit(self, rows: list) -> "AdvisorModel":
        """Train on :class:`repro.advisor.dataset.DatasetRow` examples."""
        if not rows:
            raise AdvisorError("fit() needs a non-empty dataset")
        x = np.array([np.asarray(r.features, dtype=np.float64)
                      for r in rows])
        if x.ndim != 2 or x.shape[1] != len(self.feature_names):
            raise AdvisorError(
                f"dataset features have shape {x.shape}, expected "
                f"(n, {len(self.feature_names)})")
        if not np.all(np.isfinite(x)):
            raise AdvisorError("dataset features contain non-finite values")
        names = set()
        for r in rows:
            names.update(r.speedups)
        self.orderings = tuple(sorted(names))
        if "original" not in self.orderings:
            raise AdvisorError(
                'dataset rows must include the "original" baseline')
        self._mean = x.mean(axis=0)
        std = x.std(axis=0)
        self._std = np.where(std > 0, std, 1.0)
        self._z = (x - self._mean) / self._std
        # missing (ordering, row) pairs fall back to "no change"
        self._logsp = np.array(
            [[np.log(max(r.speedups.get(o, 1.0), 1e-12))
              for o in self.orderings] for r in rows])
        self._labels = [r.best for r in rows]
        counts = Counter(self._labels)
        self._majority = min(counts, key=lambda o: (-counts[o], o))
        self._centroids = {
            o: self._z[[i for i, l in enumerate(self._labels)
                        if l == o]].mean(axis=0)
            for o in counts}
        self._global_logsp = self._logsp.mean(axis=0)
        radii = np.linalg.norm(self._z, axis=1)
        self._fallback_radius = FALLBACK_RADIUS_FACTOR * float(radii.max())
        self.costs = ReorderingCostModel.from_rows(rows)
        self.trained_on = {
            "rows": len(rows),
            "groups": sorted({r.group for r in rows}),
            "architectures": sorted({r.architecture for r in rows}),
            "kernels": sorted({r.kernel for r in rows}),
            "workloads": sorted({getattr(r, "workload", "spmv")
                                 for r in rows}),
        }
        return self

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict_ranked(self, features: np.ndarray, nnz: int | None = None,
                       iterations: float | None = None) -> list:
        """Ranked :class:`Advice` list, best first.

        ``iterations`` (together with ``nnz``) enables the Table 5
        break-even gate: orderings whose predicted gain does not
        amortize within that many SpMV iterations rank below
        ``"original"``.
        """
        if not self.is_trained:
            raise AdvisorError("model is not trained; call fit() first")
        x = np.asarray(features, dtype=np.float64)
        if x.shape != (len(self.feature_names),):
            raise AdvisorError(
                f"feature vector has shape {x.shape}, expected "
                f"({len(self.feature_names)},)")
        z = (x - self._mean) / self._std
        if float(np.linalg.norm(z)) > self._fallback_radius:
            ranked = self._fallback_ranked()
        else:
            ranked = self._knn_ranked(z)
        if iterations is not None and nnz is not None:
            ranked = self._apply_break_even(ranked, nnz, iterations)
        return ranked

    def _knn_ranked(self, z: np.ndarray) -> list:
        dists = np.linalg.norm(self._z - z, axis=1)
        idx = np.argsort(dists, kind="stable")[:min(self.k, len(dists))]
        w = 1.0 / (dists[idx] + 1e-9)
        w = w / w.sum()
        pred = w @ self._logsp[idx]
        votes = {o: 0.0 for o in self.orderings}
        for weight, i in zip(w, idx):
            votes[self._labels[i]] += float(weight)
        return self._ranked(pred, votes)

    def _fallback_ranked(self) -> list:
        """Far outside the training distribution: global averages, with
        the majority label carrying what little confidence remains."""
        votes = {o: 0.0 for o in self.orderings}
        return self._ranked(self._global_logsp, votes)

    def _ranked(self, logsp: np.ndarray, votes: dict) -> list:
        items = [Advice(ordering=o,
                        predicted_speedup=float(np.exp(logsp[j])),
                        confidence=float(votes.get(o, 0.0)))
                 for j, o in enumerate(self.orderings)]
        items.sort(key=lambda a: (-a.predicted_speedup, a.ordering))
        return items

    def _apply_break_even(self, ranked: list, nnz: int,
                          iterations: float) -> list:
        keep = [a for a in ranked if self.costs.worth_reordering(
            a.ordering, nnz, a.predicted_speedup, iterations)]
        demoted = [a for a in ranked if a not in keep]
        return keep + demoted

    def predict(self, features: np.ndarray, nnz: int | None = None,
                iterations: float | None = None) -> str:
        """Just the top ordering name."""
        return self.predict_ranked(features, nnz=nnz,
                                   iterations=iterations)[0].ordering

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        if not self.is_trained:
            raise AdvisorError("cannot serialize an untrained model")
        return {
            "version": MODEL_VERSION,
            "k": self.k,
            "feature_names": list(self.feature_names),
            "orderings": list(self.orderings),
            "mean": self._mean.tolist(),
            "std": self._std.tolist(),
            "z": self._z.tolist(),
            "log_speedups": self._logsp.tolist(),
            "labels": list(self._labels),
            "majority": self._majority,
            "fallback_radius": self._fallback_radius,
            "costs": self.costs.to_json(),
            "trained_on": self.trained_on,
        }

    @classmethod
    def from_json(cls, data: dict) -> "AdvisorModel":
        version = data.get("version")
        if version != MODEL_VERSION:
            raise AdvisorError(
                f"model artifact version {version!r} is not supported "
                f"(expected {MODEL_VERSION})")
        model = cls(k=int(data["k"]))
        model.feature_names = tuple(data["feature_names"])
        if model.feature_names != tuple(FEATURE_NAMES):
            raise AdvisorError(
                "model artifact was trained with a different feature "
                f"layout: {model.feature_names}")
        model.orderings = tuple(data["orderings"])
        model._mean = np.array(data["mean"], dtype=np.float64)
        model._std = np.array(data["std"], dtype=np.float64)
        model._z = np.array(data["z"], dtype=np.float64)
        model._logsp = np.array(data["log_speedups"], dtype=np.float64)
        model._labels = [str(l) for l in data["labels"]]
        model._majority = str(data["majority"])
        model._global_logsp = model._logsp.mean(axis=0)
        model._centroids = {}
        for o in set(model._labels):
            rows = [i for i, l in enumerate(model._labels) if l == o]
            model._centroids[o] = model._z[rows].mean(axis=0)
        model._fallback_radius = float(data["fallback_radius"])
        model.costs = ReorderingCostModel.from_json(data["costs"])
        model.trained_on = dict(data["trained_on"])
        return model

    def save(self, path) -> None:
        """Write the model artifact as JSON."""
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_json(), f, indent=1, sort_keys=True)

    @classmethod
    def load(cls, path) -> "AdvisorModel":
        with open(path, encoding="utf-8") as f:
            return cls.from_json(json.load(f))
