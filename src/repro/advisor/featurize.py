"""Feature assembly: matrix × architecture × kernel × workload.

The advisor predicts from one flat vector combining four ingredients:

* the size-independent structural features of :mod:`repro.analysis.predict`
  (relative bandwidth, off-diagonal fraction, imbalance, density, row
  CV) plus scale and profile terms from :mod:`repro.features`,
* descriptors of the target machine (core count, per-core bandwidth,
  per-thread cache, clock, socket count) from :mod:`repro.machine.arch`,
* a kernel indicator (1D row-split vs 2D nonzero-split),
* a workload one-hot (:data:`repro.spmv.registry.WORKLOADS`) telling
  the model whether the schedule runs one SpMV, a CG/Jacobi solver
  loop, SpGEMM or SpMM — plain SpMV is the all-zero base level, so
  pre-workload requests featurize exactly as before.

Matrix features depend on the architecture only through its thread
count, so :class:`repro.advisor.service.Advisor` caches them per
``(matrix, nthreads)`` and re-assembles the full vector per request.
"""

from __future__ import annotations

import numpy as np

from ..analysis.predict import extract_features
from ..errors import AdvisorError
from ..features import profile
from ..machine.arch import Architecture
from ..matrix.csr import CSRMatrix
from ..spmv.registry import DEFAULT_WORKLOAD, KERNELS, WORKLOADS

MATRIX_FEATURE_NAMES = (
    "log_nrows",
    "log_nnz",
    "rel_bandwidth",
    "rel_profile",
    "rel_offdiag",
    "imbalance_1d",
    "density",
    "row_cv",
)

ARCH_FEATURE_NAMES = (
    "log2_cores",
    "log2_bw_per_core",
    "log2_cache_per_thread",
    "freq_ghz",
    "sockets",
)

KERNEL_FEATURE_NAMES = ("kernel_2d",)

#: one-hot workload indicators; plain SpMV is the all-zero base level,
#: so the workload axis extends the vector without renaming anything
WORKLOAD_FEATURE_NAMES = tuple(
    f"workload_{w}" for w in WORKLOADS if w != DEFAULT_WORKLOAD)

#: full layout of the advisor feature vector, in order
FEATURE_NAMES = MATRIX_FEATURE_NAMES + ARCH_FEATURE_NAMES \
    + KERNEL_FEATURE_NAMES + WORKLOAD_FEATURE_NAMES


def matrix_features(a: CSRMatrix, nthreads: int) -> np.ndarray:
    """The architecture-independent part (depends only on ``nthreads``)."""
    f = extract_features(a, nthreads)
    rel_profile = profile(a) / max(a.nrows * max(a.ncols, 1), 1)
    return np.array([
        np.log1p(a.nrows),
        np.log1p(a.nnz),
        f.rel_bandwidth,
        rel_profile,
        f.rel_offdiag,
        f.imbalance_1d,
        f.density / 64.0,
        f.row_cv,
    ])


def arch_features(arch: Architecture) -> np.ndarray:
    """Machine descriptors in roughly comparable (log) scales."""
    return np.array([
        np.log2(arch.cores),
        np.log2(arch.bandwidth / arch.cores / 1e9),
        np.log2(arch.per_thread_cache() / 1024.0),
        arch.freq_ghz,
        float(arch.sockets),
    ])


def kernel_features(kernel: str) -> np.ndarray:
    if kernel not in KERNELS:
        raise AdvisorError(
            f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    return np.array([1.0 if kernel == "2d" else 0.0])


def workload_features(workload: str) -> np.ndarray:
    """One-hot workload indicator (all zeros for plain SpMV)."""
    if workload not in WORKLOADS:
        raise AdvisorError(
            f"unknown workload {workload!r}; expected one of {WORKLOADS}")
    return np.array([1.0 if f"workload_{workload}" == name else 0.0
                     for name in WORKLOAD_FEATURE_NAMES])


def assemble(mf: np.ndarray, arch: Architecture, kernel: str,
             workload: str = DEFAULT_WORKLOAD) -> np.ndarray:
    """Combine precomputed matrix features with arch/kernel/workload
    terms."""
    return np.concatenate([mf, arch_features(arch), kernel_features(kernel),
                           workload_features(workload)])


def featurize(a: CSRMatrix, arch: Architecture, kernel: str,
              workload: str = DEFAULT_WORKLOAD) -> np.ndarray:
    """The full advisor feature vector for one request."""
    return assemble(matrix_features(a, arch.threads), arch, kernel,
                    workload)
