"""Table 5 break-even logic: is a reordering worth its own cost?

The paper's §4.7 amortization argument: reordering pays off only after
enough SpMV iterations that the per-iteration saving covers the
one-time reordering cost.  The advisor learns two linear-in-nnz cost
surrogates from its training rows — seconds of reordering per nonzero
(per algorithm) and baseline SpMV seconds per nonzero — and uses
:func:`repro.harness.experiments.amortization_iterations` to decide
whether a predicted gain clears the caller's iteration budget.  When it
does not, the "none: keep natural order" class wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AdvisorError
from ..harness.experiments import amortization_iterations


@dataclass(frozen=True)
class ReorderingCostModel:
    """Linear-in-nnz reordering and SpMV cost surrogates."""

    seconds_per_nnz: dict = field(default_factory=dict)  # ordering -> s/nnz
    spmv_seconds_per_nnz: float = 0.0

    @classmethod
    def from_rows(cls, rows: list) -> "ReorderingCostModel":
        """Average the per-nnz costs observed across dataset rows."""
        if not rows:
            raise AdvisorError("cost model needs at least one dataset row")
        sums: dict = {}
        counts: dict = {}
        spmv_sum = 0.0
        spmv_n = 0
        for r in rows:
            nnz = max(r.nnz, 1)
            for o, sec in r.reorder_seconds.items():
                sums[o] = sums.get(o, 0.0) + sec / nnz
                counts[o] = counts.get(o, 0) + 1
            if r.spmv_seconds > 0:
                spmv_sum += r.spmv_seconds / nnz
                spmv_n += 1
        return cls(
            seconds_per_nnz={o: sums[o] / counts[o] for o in sums},
            spmv_seconds_per_nnz=spmv_sum / spmv_n if spmv_n else 0.0,
        )

    def reorder_seconds(self, ordering: str, nnz: int) -> float:
        """Estimated wall-clock cost of computing ``ordering``."""
        return self.seconds_per_nnz.get(ordering, 0.0) * max(nnz, 0)

    def break_even_iterations(self, ordering: str, nnz: int,
                              speedup: float) -> float:
        """SpMV iterations before ``ordering`` amortizes (inf if never)."""
        if ordering == "original":
            return 0.0
        spmv_before = self.spmv_seconds_per_nnz * max(nnz, 0)
        if spmv_before <= 0.0:
            return float("inf") if speedup <= 1.0 else 0.0
        return amortization_iterations(
            self.reorder_seconds(ordering, nnz), spmv_before, speedup)

    def worth_reordering(self, ordering: str, nnz: int, speedup: float,
                         iterations: float) -> bool:
        """True when the predicted gain clears the iteration budget."""
        return self.break_even_iterations(ordering, nnz,
                                          speedup) <= iterations

    def to_json(self) -> dict:
        return {
            "seconds_per_nnz": dict(self.seconds_per_nnz),
            "spmv_seconds_per_nnz": self.spmv_seconds_per_nnz,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ReorderingCostModel":
        return cls(
            seconds_per_nnz={str(k): float(v) for k, v in
                             data["seconds_per_nnz"].items()},
            spmv_seconds_per_nnz=float(data["spmv_seconds_per_nnz"]),
        )
