"""Feature-driven reordering selection: ``repro.advisor``.

The paper's central finding is that no single reordering wins
everywhere — the best of {RCM, AMD, ND, GP, HP, Gray} depends on matrix
structure, architecture and kernel (§4.4, Finding 5).  This subsystem
turns that finding into a *service*: instead of running a full
six-ordering sweep, ``Advisor.advise(matrix, arch, kernel)`` answers
from learned features in milliseconds, including "keep the natural
order" when the predicted gain would never amortize the reordering cost
(§4.7 / Table 5).  The selection-is-learnable framing follows Tang et
al. (supervised reordering selection) and Asudeh et al. (reordering is
often not worth its cost); see PAPERS.md.

Layers (each its own module):

* :mod:`.featurize` — matrix × architecture × kernel feature vectors
* :mod:`.dataset`  — replay harness sweeps into labeled training rows
* :mod:`.model`    — pure-NumPy k-NN speedup regressor, JSON artifacts
* :mod:`.costmodel`— Table 5 break-even gating
* :mod:`.service`  — the serving API with LRU feature/advice caches
* :mod:`.train`    — corpus → sweep → dataset → model recipes
* :mod:`.evaluate` — held-out accuracy / geomean-vs-oracle scoring
* :mod:`.cache`    — the thread-safe LRU used by the service
"""

from .cache import LRUCache
from .costmodel import ReorderingCostModel
from .dataset import DatasetRow, build_dataset
from .evaluate import EvaluationReport, evaluate_advisor
from .featurize import FEATURE_NAMES, featurize, matrix_features
from .model import MODEL_VERSION, Advice, AdvisorModel
from .service import Advisor
from .train import train_advisor, train_model

__all__ = [
    "Advice",
    "Advisor",
    "AdvisorModel",
    "DatasetRow",
    "EvaluationReport",
    "FEATURE_NAMES",
    "LRUCache",
    "MODEL_VERSION",
    "ReorderingCostModel",
    "build_dataset",
    "evaluate_advisor",
    "featurize",
    "matrix_features",
    "train_advisor",
    "train_model",
]
