"""A small thread-safe LRU cache with observable hit/miss counters.

The serving path (:mod:`repro.advisor.service`) keeps two of these —
one for matrix features, one for finished advice — keyed the same way
:class:`repro.harness.runner.OrderingCache` keys permutations, so a
repeated request for the same matrix/architecture/kernel costs a dict
lookup instead of a feature pass.  The ``stats`` dict exposes the
shared cache-stats schema (:data:`repro.obs.CACHE_STATS_KEYS`), the
same shape ``OrderingCache.stats`` and the memoised reuse-statistics
cache report, so cache observability is uniform across the code base.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..errors import AdvisorError
from ..obs import cachestats


class LRUCache:
    """Bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise AdvisorError(
                f"LRU capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key, default=None):
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
            return default

    def put(self, key, value) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def get_or_compute(self, key, fn):
        """Cached lookup with a compute-on-miss fallback.

        The computation runs outside the lock, so concurrent misses on
        the same key may compute twice (last write wins) — acceptable
        for the advisor's deterministic, idempotent values.
        """
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        value = fn()
        self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    @property
    def stats(self) -> dict:
        """Shared-schema counters plus ``size``/``capacity``.

        Assembled by :func:`repro.obs.cachestats.cache_stats` (via the
        module attribute, so differential checks can intercept it) —
        the zero-access ``hit_rate`` guard lives there, once, for every
        cache in the code base.
        """
        with self._lock:
            return cachestats.cache_stats(
                hits=self._hits, misses=self._misses,
                evictions=self._evictions,
                size_bytes=sum(cachestats.sizeof_value(v)
                               for v in self._data.values()),
                size=len(self._data), capacity=self.capacity)
