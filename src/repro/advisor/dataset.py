"""Replay sweep results into labeled training rows for the advisor.

One :class:`DatasetRow` is one (matrix, architecture, kernel) cell of a
:class:`repro.harness.runner.SweepResult`: the advisor feature vector,
the measured speedup of every ordering over the natural order, the
measured-best ordering as the label, the §4.4 taxonomy class of that
winner, and the reordering wall-clock costs needed for the Table 5
break-even logic.

:func:`build_dataset` either replays an existing sweep or runs a fresh
one through :func:`repro.harness.runner.run_sweep`; either way the
permutations flow through the shared :class:`OrderingCache`, so the
reordering pass is paid once per corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.classes import ClassificationInput, classify_matrix
from ..errors import AdvisorError
from ..harness.runner import OrderingCache, SweepResult, run_sweep
from ..spmv.registry import resolve_workload
from .featurize import assemble, matrix_features

#: taxonomy placeholder when the sweep lacks one of the two kernels
CLASS_UNKNOWN = 0


@dataclass(frozen=True)
class DatasetRow:
    """One labeled training example for the advisor."""

    matrix: str
    group: str
    tags: tuple
    architecture: str
    kernel: str                 # workload spec, as on the sweep axis
    nnz: int
    features: np.ndarray
    speedups: dict = field(default_factory=dict)   # ordering -> speedup
    best: str = "original"
    best_speedup: float = 1.0
    taxonomy_class: int = CLASS_UNKNOWN
    reorder_seconds: dict = field(default_factory=dict)
    spmv_seconds: float = 0.0                      # baseline s/iteration
    workload: str = "spmv"      # resolved workload of the spec


def _best_ordering(speedups: dict) -> tuple:
    """Highest speedup; ties broken by name for determinism."""
    return min(speedups.items(), key=lambda kv: (-kv[1], kv[0]))


def build_dataset(corpus: list, architectures: list, orderings=None,
                  kernels: tuple = ("1d", "2d"),
                  cache: OrderingCache | None = None,
                  sweep: SweepResult | None = None, seed=0) -> list:
    """Labeled rows for every (corpus entry, architecture, kernel).

    Parameters
    ----------
    corpus:
        List of :class:`repro.generators.CorpusEntry`.
    orderings:
        Candidate reorderings (defaults to the paper's six).
    sweep:
        A pre-computed sweep to replay.  It should cover ``corpus`` ×
        ``architectures`` × ``kernels`` × ``orderings``; when ``None``
        a fresh fault-tolerant sweep is run (through ``cache``).
        Cells the sweep engine journaled as :class:`FailedCell` (or
        that are simply absent) are skipped, not fatal: a failed
        ordering drops out of that matrix's candidate set, and a failed
        baseline drops the whole (matrix, architecture) row.
    """
    if not corpus:
        raise AdvisorError("cannot build a dataset from an empty corpus")
    if not architectures:
        raise AdvisorError("dataset needs at least one architecture")
    if orderings is None:
        from ..harness.experiments import REORDERINGS
        orderings = REORDERINGS
    orderings = tuple(o for o in orderings if o != "original")
    cache = cache or OrderingCache()
    if sweep is None:
        sweep = run_sweep(corpus, architectures, list(orderings),
                          kernels=kernels, cache=cache, seed=seed,
                          strict=False)
    rows = []
    for entry in corpus:
        a = entry.matrix
        for arch in architectures:
            try:
                base = {k: sweep.lookup(entry.name, "original", k,
                                        arch.name)
                        for k in kernels}
            except KeyError:
                continue  # baseline failed: no labels for this row
            # keep only orderings whose every kernel cell succeeded
            # and whose permutation is (re)computable for the costs
            usable = []
            reorder_seconds = {}
            for o in orderings:
                try:
                    for kernel in kernels:
                        sweep.lookup(entry.name, o, kernel, arch.name)
                    reorder_seconds[o] = cache.get(
                        a, entry.name, o, nparts=arch.gp_parts,
                        seed=seed).seconds
                except Exception:  # missing cell or flaky reordering
                    reorder_seconds.pop(o, None)
                    continue
                usable.append(o)
            mf = matrix_features(a, arch.threads)
            per_kernel = {}
            for kernel in kernels:
                sp = {"original": 1.0}
                for o in usable:
                    rec = sweep.lookup(entry.name, o, kernel, arch.name)
                    sp[o] = rec.gflops_max / base[kernel].gflops_max
                per_kernel[kernel] = sp
            for kernel in kernels:
                sp = per_kernel[kernel]
                best, best_speedup = _best_ordering(sp)
                cls = CLASS_UNKNOWN
                if best != "original" and {"1d", "2d"} <= set(kernels):
                    rec1 = sweep.lookup(entry.name, best, "1d", arch.name)
                    cls = classify_matrix(ClassificationInput(
                        speedup_1d=per_kernel["1d"][best],
                        speedup_2d=per_kernel["2d"][best],
                        imbalance_before=base["1d"].imbalance,
                        imbalance_after=rec1.imbalance))
                # the sweep axis carries workload specs; the feature
                # vector wants the resolved (base kind, workload) pair
                workload, base_kind = resolve_workload(kernel)
                rows.append(DatasetRow(
                    matrix=entry.name,
                    group=entry.group,
                    tags=entry.tags,
                    architecture=arch.name,
                    kernel=kernel,
                    nnz=a.nnz,
                    features=assemble(mf, arch, base_kind, workload),
                    speedups=sp,
                    best=best,
                    best_speedup=best_speedup,
                    taxonomy_class=cls,
                    reorder_seconds=reorder_seconds,
                    spmv_seconds=base[kernel].seconds,
                    workload=workload,
                ))
    return rows
