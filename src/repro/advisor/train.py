"""Training recipes: corpus → sweep → dataset → model → Advisor.

The one-call entry point for the CLI and for tests.  Training cost is
dominated by the reordering pass of the sweep; pass a disk-backed
:class:`repro.harness.runner.OrderingCache` to pay it once across runs.
"""

from __future__ import annotations

from ..generators.suite import build_corpus
from ..harness.runner import OrderingCache, SweepResult
from ..machine.arch import get_architecture
from .dataset import build_dataset
from .model import AdvisorModel
from .service import Advisor

#: default training machine when the caller does not name one
DEFAULT_ARCHITECTURES = ("Milan B",)


def train_model(corpus=None, tier: str = "tiny", architectures=None,
                orderings=None, kernels: tuple = ("1d", "2d"),
                cache: OrderingCache | None = None,
                sweep: SweepResult | None = None, seed=0, k: int = 5,
                limit: int | None = None) -> AdvisorModel:
    """Train an :class:`AdvisorModel` from a (generated) corpus.

    Parameters
    ----------
    corpus:
        Training matrices; generated from ``tier`` when ``None``.
    architectures:
        :class:`Architecture` objects or Table 2 names (default:
        Milan B, the paper's headline machine).
    limit:
        Optional cap on the number of training matrices — useful for
        smoke tests where a full corpus sweep is too slow.
    """
    if corpus is None:
        corpus = build_corpus(tier, seed=seed)
    if limit is not None:
        corpus = corpus[:limit]
    if architectures is None:
        architectures = DEFAULT_ARCHITECTURES
    archs = [get_architecture(a) if isinstance(a, str) else a
             for a in architectures]
    rows = build_dataset(corpus, archs, orderings=orderings,
                         kernels=kernels, cache=cache, sweep=sweep,
                         seed=seed)
    return AdvisorModel(k=k).fit(rows)


def train_advisor(*, iterations: float | None = None,
                  cache_size: int = 256, **kwargs) -> Advisor:
    """:func:`train_model` wrapped into a serving :class:`Advisor`."""
    return Advisor(train_model(**kwargs), iterations=iterations,
                   cache_size=cache_size)
