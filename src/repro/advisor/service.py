"""The serving API: "which ordering should I use for THIS matrix?".

:class:`Advisor` wraps a trained :class:`repro.advisor.model.AdvisorModel`
behind two LRU caches so repeated questions cost a dict lookup:

* a **feature cache** keyed by ``(matrix identity, thread count)`` —
  feature extraction scans the whole matrix and is the expensive part
  of a request;
* an **advice cache** keyed like
  :class:`repro.harness.runner.OrderingCache` keys permutations
  (name, shape, nnz) plus architecture, kernel and iteration budget.

``advise`` answers one request with a ranked list of
:class:`repro.advisor.model.Advice`; ``advise_many`` fans feature
extraction for a batch of matrices out over a reusable thread pool
owned by the instance (NumPy releases the GIL in the hot reductions).
The serving daemon (:mod:`repro.serve`) shares one warm ``Advisor``
across every client and sizes the pool via the ``workers`` knob;
``close()`` releases the pool when the advisor retires.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..errors import AdvisorError
from ..machine.arch import Architecture
from ..matrix.csr import CSRMatrix
from ..obs.metrics import REGISTRY
from ..obs.trace import span, trace_context
from ..spmv.registry import DEFAULT_WORKLOAD
from .cache import LRUCache
from .featurize import assemble, matrix_features
from .model import AdvisorModel

#: per-request serving metrics (process-global, shared across Advisor
#: instances — a serving process runs one advisor).
_REQUESTS = REGISTRY.counter("advisor.requests")
_LATENCY = REGISTRY.histogram("advisor.request_seconds")
#: ``advise_many`` batch sizes — evidence that the serving layer's
#: micro-batches actually reach the batched fast path.
_BATCH_SIZES = REGISTRY.histogram(
    "advisor.batch_size", bounds=(1, 2, 4, 8, 16, 32, 64, 128, 256))


class Advisor:
    """Feature-driven reordering selection with request caching."""

    def __init__(self, model: AdvisorModel, iterations: float | None = None,
                 cache_size: int = 256,
                 workers: int | None = None) -> None:
        if not model.is_trained:
            raise AdvisorError("Advisor needs a trained model")
        self.model = model
        #: default SpMV iteration budget for the break-even gate
        #: (None disables cost gating unless a request overrides it)
        self.iterations = iterations
        #: thread count of the reusable ``advise_many`` pool (None lets
        #: :class:`ThreadPoolExecutor` pick its default)
        self.workers = workers
        self._features = LRUCache(cache_size)
        self._advice = LRUCache(cache_size)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    @staticmethod
    def _matrix_key(a: CSRMatrix, matrix_name: str) -> str:
        # mirrors OrderingCache._key: name alone is not trusted, shape
        # and nnz guard against same-named matrices at different scales
        return f"{matrix_name}__{a.nrows}x{a.ncols}_{a.nnz}"

    def advise(self, a: CSRMatrix, arch: Architecture, kernel: str = "1d",
               matrix_name: str = "", iterations: float | None = None,
               top: int | None = None,
               workload: str = DEFAULT_WORKLOAD) -> list:
        """Ranked orderings (best first) for one matrix on one machine.

        Returns a list of :class:`Advice`; ``top`` truncates it.
        ``iterations`` overrides the advisor-level break-even budget
        for this request.  ``workload`` selects what runs per scheduled
        iteration (:data:`repro.spmv.registry.WORKLOADS`); the default
        keeps the historical plain-SpMV behaviour and cache keys.
        """
        t0 = time.perf_counter()
        budget = self.iterations if iterations is None else iterations
        mkey = self._matrix_key(a, matrix_name)
        akey = f"{mkey}__{arch.name}__{kernel}__{budget}__{workload}"
        with span("advisor.request", matrix=matrix_name or mkey,
                  arch=arch.name, kernel=kernel, workload=workload):
            cached = self._advice.get(akey)
            if cached is None:
                mf = self._features.get_or_compute(
                    f"{mkey}__t{arch.threads}",
                    lambda: matrix_features(a, arch.threads))
                cached = self.model.predict_ranked(
                    assemble(mf, arch, kernel, workload), nnz=a.nnz,
                    iterations=budget)
                self._advice.put(akey, cached)
        _REQUESTS.inc()
        _LATENCY.observe(time.perf_counter() - t0)
        return cached[:top] if top is not None else list(cached)

    def advise_many(self, matrices: list, arch: Architecture,
                    kernel: str = "1d", names: list | None = None,
                    iterations: float | None = None,
                    max_workers: int | None = None,
                    trace_ctxs: list | None = None,
                    workload: str = DEFAULT_WORKLOAD) -> list:
        """Batch interface: one ranked list per input matrix.

        ``matrices`` holds :class:`CSRMatrix` instances (or corpus
        entries exposing ``.matrix``/``.name``); ``names`` optionally
        labels bare matrices for cache keying.  Feature extraction for
        distinct matrices runs in parallel on the instance's reusable
        pool (sized by the ``workers`` constructor knob); passing
        ``max_workers`` forces a one-off pool of that size instead.

        ``trace_ctxs`` optionally aligns a ``(trace_id, parent_id)``
        tuple (or ``None``) with each matrix; the serving daemon passes
        each request's ids so the ``advisor.request`` span recorded on
        the pool thread parents to that request's span rather than
        floating free.
        """
        mats = []
        labels = []
        for i, m in enumerate(matrices):
            if hasattr(m, "matrix"):
                mats.append(m.matrix)
                labels.append(m.name)
            else:
                mats.append(m)
                labels.append(names[i] if names else "")
        if not mats:
            return []
        _BATCH_SIZES.observe(len(mats))

        def one(im: int):
            ctx = trace_ctxs[im] if trace_ctxs else None
            if ctx is not None:
                with trace_context(*ctx):
                    return self.advise(mats[im], arch, kernel,
                                       matrix_name=labels[im],
                                       iterations=iterations,
                                       workload=workload)
            return self.advise(mats[im], arch, kernel,
                               matrix_name=labels[im],
                               iterations=iterations,
                               workload=workload)

        if max_workers is not None:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(one, range(len(mats))))
        return list(self._executor().map(one, range(len(mats))))

    # ------------------------------------------------------------------
    def _executor(self) -> ThreadPoolExecutor:
        """The lazily created, reusable ``advise_many`` pool."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="advisor")
            return self._pool

    def close(self) -> None:
        """Shut down the reusable thread pool (idempotent); the next
        ``advise_many`` call would lazily recreate it."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Advisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Hit/miss counters of both serving caches, plus the
        process-wide request count and latency histogram summary."""
        return {"features": self._features.stats,
                "advice": self._advice.stats,
                "requests": _REQUESTS.value,
                "latency": {"count": _LATENCY.count,
                            "mean_s": _LATENCY.mean(),
                            "p50_s": _LATENCY.quantile(0.5),
                            "p99_s": _LATENCY.quantile(0.99)}}

    def clear_caches(self) -> None:
        self._features.clear()
        self._advice.clear()
