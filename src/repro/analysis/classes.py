"""The six-class taxonomy of reordering scenarios (paper §4.4).

A (matrix, ordering) pair is classified from three observables:

* ``s1`` — 1D SpMV speedup after reordering,
* ``s2`` — 2D SpMV speedup after reordering,
* imbalance factors of the 1D split before/after reordering.

======  =========================================================
class   meaning (paper Figure 4)
======  =========================================================
1       balanced before & after; speedup in BOTH kernels
        (pure data-locality win)
2       imbalance improved AND speedup in both kernels
        (locality + load-balance win)
3       speedup only in 1D (load-balance win only)
4       no significant change in either kernel
5       1D slowdown caused by *introduced* imbalance; 2D unaffected
6       anything else (mixed/diverse behaviour)
======  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

CLASS_DESCRIPTIONS = {
    1: "locality win: balanced before and after, both kernels speed up",
    2: "locality + balance win: imbalance drops, both kernels speed up",
    3: "balance win only: 1D speeds up, 2D unchanged",
    4: "neutral: no significant change in either kernel",
    5: "harmful imbalance: 1D slows down from introduced imbalance",
    6: "mixed: behaviour not captured by classes 1-5",
}

#: relative change below which a speedup counts as "no change"
NEUTRAL_BAND = 0.05
#: imbalance-factor change considered significant
IMBALANCE_DELTA = 0.1


@dataclass(frozen=True)
class ClassificationInput:
    """Observables for one (matrix, ordering) pair."""

    speedup_1d: float
    speedup_2d: float
    imbalance_before: float
    imbalance_after: float


def classify_matrix(obs: ClassificationInput) -> int:
    """Assign the §4.4 class for one (matrix, ordering) observation."""
    up1 = obs.speedup_1d > 1.0 + NEUTRAL_BAND
    up2 = obs.speedup_2d > 1.0 + NEUTRAL_BAND
    down1 = obs.speedup_1d < 1.0 - NEUTRAL_BAND
    flat2 = abs(obs.speedup_2d - 1.0) <= NEUTRAL_BAND
    balanced_before = obs.imbalance_before <= 1.0 + IMBALANCE_DELTA
    balanced_after = obs.imbalance_after <= 1.0 + IMBALANCE_DELTA
    improved_balance = (obs.imbalance_before - obs.imbalance_after
                        > IMBALANCE_DELTA)
    worsened_balance = (obs.imbalance_after - obs.imbalance_before
                        > IMBALANCE_DELTA)

    if up1 and up2 and balanced_before and balanced_after:
        return 1
    if up1 and up2 and improved_balance:
        return 2
    if up1 and flat2:
        return 3
    if abs(obs.speedup_1d - 1.0) <= NEUTRAL_BAND and flat2:
        return 4
    if down1 and worsened_balance and not (obs.speedup_2d
                                           < 1.0 - NEUTRAL_BAND):
        return 5
    return 6
