"""Geometric means and distribution summaries (Tables 3/4, Figs 2/3)."""

from __future__ import annotations

import numpy as np

from ..errors import HarnessError


def geomean(values) -> float:
    """Geometric mean of positive values (the paper's Tables 3/4)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise HarnessError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise HarnessError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def boxplot_summary(values, whisker: float = 1.5) -> tuple:
    """Five-number summary (lo-whisker, q1, median, q3, hi-whisker).

    Whiskers follow the Tukey convention (most extreme points within
    ``whisker``·IQR of the box), matching typical boxplot rendering of
    the paper's Figures 2/3/6.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise HarnessError("boxplot of an empty sequence")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    lo_lim = q1 - whisker * iqr
    hi_lim = q3 + whisker * iqr
    inside = arr[(arr >= lo_lim) & (arr <= hi_lim)]
    lo = float(inside.min()) if inside.size else float(q1)
    hi = float(inside.max()) if inside.size else float(q3)
    return (lo, float(q1), float(med), float(q3), hi)


def speedup_quartiles(values) -> tuple:
    """(q1, median, q3) — the paper's \"most typical case\" summary."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise HarnessError("quartiles of an empty sequence")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    return float(q1), float(med), float(q3)
