"""Feature-based reordering recommendation (paper §6 future work).

The paper closes by proposing "machine learning to predict the most
effective reordering algorithm".  This module implements that idea at
the level the study's own findings support: a transparent rule/score
model over the §3.2 features plus cheap structural statistics, and a
data-driven nearest-centroid predictor that can be *trained* on sweep
results from :mod:`repro.harness`.

Two predictors:

* :func:`recommend_ordering` — a hand-written rule model distilled from
  the paper's findings (findings 1–5): hub-dominated matrices want
  GP/2D, banded matrices are already fine, scattered local structure
  wants RCM/GP, etc.  Needs no training.
* :class:`NearestCentroidPredictor` — learns per-ordering feature
  centroids of "this ordering won" examples from a sweep, and predicts
  by nearest centroid in normalised feature space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import HarnessError
from ..features import bandwidth, imbalance_factor_1d, offdiagonal_nonzeros
from ..matrix.csr import CSRMatrix


@dataclass(frozen=True)
class PredictorFeatures:
    """Normalised, size-independent features used by both predictors."""

    rel_bandwidth: float      # bandwidth / n
    rel_offdiag: float        # off-diagonal nnz fraction
    imbalance_1d: float       # max/mean nnz per thread
    density: float            # nnz / n (mean row degree)
    row_cv: float             # coefficient of variation of row lengths

    def vector(self) -> np.ndarray:
        return np.array([self.rel_bandwidth, self.rel_offdiag,
                         self.imbalance_1d, self.density / 64.0,
                         self.row_cv])


def extract_features(a: CSRMatrix, nthreads: int = 64) -> PredictorFeatures:
    """Compute the predictor features for a matrix."""
    if a.nrows == 0:
        raise HarnessError("cannot extract features of an empty matrix")
    lengths = a.row_lengths().astype(np.float64)
    mean_len = lengths.mean() if lengths.size else 0.0
    cv = float(lengths.std() / mean_len) if mean_len else 0.0
    return PredictorFeatures(
        rel_bandwidth=bandwidth(a) / max(a.nrows, 1),
        rel_offdiag=offdiagonal_nonzeros(a, nthreads) / max(a.nnz, 1),
        imbalance_1d=imbalance_factor_1d(a, nthreads),
        density=float(a.nnz / max(a.nrows, 1)),
        row_cv=cv,
    )


def recommend_ordering(a: CSRMatrix, nthreads: int = 64,
                       kernel: str = "1d") -> str:
    """Rule model distilled from the paper's findings.

    Returns the recommended ordering name (possibly ``"original"``).
    """
    f = extract_features(a, nthreads)
    # already narrow band and balanced: reordering rarely pays
    # (paper: "matrices already having an efficient ordering")
    if f.rel_bandwidth < 0.05 and f.imbalance_1d < 1.2:
        return "original"
    if kernel == "1d":
        # heavy imbalance: the partitioners' row balancing + locality
        # wins (finding 2); GP is the most reliable (finding 5)
        if f.imbalance_1d > 1.5 or f.rel_offdiag > 0.5:
            return "GP"
        # moderate disorder with local structure: RCM's band recovery
        # is nearly as good and an order of magnitude cheaper (Table 5)
        if f.rel_bandwidth > 0.25 and f.row_cv < 0.8:
            return "RCM"
        return "GP"
    # 2D kernel: balance is free, locality dominates; RCM and GP are
    # the front-runners (Table 4), RCM being much cheaper to compute
    if f.rel_offdiag > 0.6:
        return "GP"
    return "RCM"


class NearestCentroidPredictor:
    """Learns which ordering wins for which feature region.

    Train on (features, best_ordering) pairs — e.g. harvested from a
    :class:`repro.harness.runner.SweepResult` — then predict by nearest
    centroid in z-normalised feature space.
    """

    def __init__(self) -> None:
        self._centroids: dict = {}
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        return bool(self._centroids)

    def fit(self, features: list, labels: list) -> "NearestCentroidPredictor":
        """``features``: list of :class:`PredictorFeatures`; ``labels``:
        the best-performing ordering name per example."""
        if len(features) != len(labels) or not features:
            raise HarnessError("fit needs equally many features and labels")
        x = np.array([f.vector() for f in features])
        self._mean = x.mean(axis=0)
        self._std = np.where(x.std(axis=0) > 0, x.std(axis=0), 1.0)
        z = (x - self._mean) / self._std
        self._centroids = {}
        for name in set(labels):
            rows = z[[i for i, l in enumerate(labels) if l == name]]
            self._centroids[name] = rows.mean(axis=0)
        return self

    def predict(self, f: PredictorFeatures) -> str:
        if not self.is_trained:
            raise HarnessError("predictor is not trained; call fit() first")
        z = (f.vector() - self._mean) / self._std
        return min(self._centroids,
                   key=lambda n: float(np.linalg.norm(
                       z - self._centroids[n])))

    @staticmethod
    def labels_from_sweep(sweep, corpus, kernel: str,
                          architecture: str) -> tuple:
        """Harvest training data from a sweep: per matrix, the ordering
        with the highest measured performance (original included)."""
        features = []
        labels = []
        for entry in corpus:
            best_name = None
            best_perf = -1.0
            for rec in sweep.records:
                if (rec.matrix != entry.name or rec.kernel != kernel
                        or rec.architecture != architecture):
                    continue
                if rec.gflops_max > best_perf:
                    best_perf = rec.gflops_max
                    best_name = rec.ordering
            if best_name is None:
                raise HarnessError(
                    f"sweep holds no records for matrix {entry.name}")
            features.append(extract_features(entry.matrix))
            labels.append(best_name)
        return features, labels
