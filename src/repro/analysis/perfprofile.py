"""Dolan–Moré performance profiles (paper Figure 5).

Given per-matrix costs of several methods (lower is better), the
profile of method m is the function

``ρ_m(τ) = |{ problems p : cost_m(p) ≤ τ · min_k cost_k(p) }| / |P|``

— the fraction of problems on which m is within a factor τ of the best
method.  A curve closer to the top-left is better.  ``ρ_m(1)`` is the
fraction of problems where m *is* the best.
"""

from __future__ import annotations

import numpy as np

from ..errors import HarnessError


def performance_profile(costs: dict, taus: np.ndarray | None = None) -> dict:
    """Compute profiles for ``costs``: method name → array of per-problem
    costs (all arrays equally long, lower = better).

    Zero costs are allowed (e.g. a zero off-diagonal count): a method is
    "within factor τ" of a zero best only if its own cost is zero.

    Returns ``{"tau": taus, method: rho_values}``.
    """
    if not costs:
        raise HarnessError("no methods given")
    lengths = {len(v) for v in costs.values()}
    if len(lengths) != 1:
        raise HarnessError(f"cost vectors have differing lengths {lengths}")
    nproblems = lengths.pop()
    if nproblems == 0:
        raise HarnessError("no problems given")
    mat = np.array([np.asarray(costs[m], dtype=np.float64)
                    for m in costs])
    if np.any(mat < 0):
        raise HarnessError("costs must be non-negative")
    best = mat.min(axis=0)
    if taus is None:
        taus = np.concatenate([np.linspace(1.0, 3.0, 41),
                               np.linspace(3.2, 10.0, 35)])
    out = {"tau": taus}
    for row, name in zip(mat, costs):
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(best > 0, row / best,
                             np.where(row == 0, 1.0, np.inf))
        rho = (ratio[None, :] <= taus[:, None]).mean(axis=1)
        out[name] = rho
    return out


def profile_at(profiles: dict, method: str, tau: float) -> float:
    """ρ_method(τ), interpolated on the computed grid."""
    taus = profiles["tau"]
    if method not in profiles:
        raise HarnessError(f"unknown method {method!r}")
    return float(np.interp(tau, taus, profiles[method]))
