"""Statistical machinery of the evaluation section.

* :mod:`.stats` — geometric means (Tables 3/4), boxplot five-number
  summaries (Figures 2/3/6), speedup distributions;
* :mod:`.perfprofile` — Dolan–Moré performance profiles (Figure 5);
* :mod:`.classes` — the six-class taxonomy of §4.4.
"""

from .stats import boxplot_summary, geomean, speedup_quartiles
from .perfprofile import performance_profile, profile_at
from .classes import classify_matrix, CLASS_DESCRIPTIONS
from .predict import (
    NearestCentroidPredictor,
    extract_features,
    recommend_ordering,
)

__all__ = [
    "geomean",
    "boxplot_summary",
    "speedup_quartiles",
    "performance_profile",
    "profile_at",
    "classify_matrix",
    "CLASS_DESCRIPTIONS",
    "NearestCentroidPredictor",
    "extract_features",
    "recommend_ordering",
]
