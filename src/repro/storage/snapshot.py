"""Content-addressed corpus snapshots.

A snapshot is a directory of stored matrices (one
:mod:`repro.storage.format` sub-directory per corpus entry) plus a
``corpus.json`` index::

    <dir>/
      corpus.json          format, version, spec, entries, signature
      <matrix-name>/       one stored matrix each (header + 3 arrays)
      _quarantine/         corrupt snapshots moved aside, never deleted

``corpus.json`` is written **last** (atomically, via a temp file), so
it doubles as the commit marker: a build killed mid-corpus leaves no
index, and the next :func:`ensure_corpus_snapshot` resumes by reusing
every per-matrix directory that verifies clean and rebuilding only the
torn ones.

Identity is content-addressed end to end.  Each matrix's signature is
the hash of its header (dims + per-array CRCs,
:func:`repro.storage.format.header_signature`); the corpus signature
is a hash over the sorted ``name signature`` pairs.  Because the
streamed generators are deterministic in ``(seed, spec)``, a quarantined
matrix regenerates to the **same** content address an uninterrupted
write would have produced — which is what lets ``--resume`` reattach a
snapshot by address instead of trusting mtimes.

Reuse is gated on :func:`_spec_key`: a per-matrix ``meta`` records the
generation spec (tier, seed, scale) and a snapshot whose recorded spec
differs — e.g. after a generator-seed change — is quarantined and
rebuilt rather than silently reused.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field

from ..errors import StorageError
from ..obs.metrics import REGISTRY
from ..util.validate import require
from . import format as fmt

__all__ = [
    "StoredEntry", "CorpusSnapshot", "ensure_corpus_snapshot",
    "open_corpus_snapshot", "corpus_signature", "quarantine",
    "CORPUS_FORMAT", "CORPUS_VERSION",
]

CORPUS_FORMAT = "repro-corpus"
CORPUS_VERSION = 1

_INDEX = "corpus.json"
_QUARANTINE = "_quarantine"


def _spec_key(spec: dict) -> str:
    """Canonical string form of a generation spec.

    Matrix reuse compares the spec recorded in a stored header against
    the one requested now; **every** field that changes the generated
    bytes (tier, seed, scale) must round-trip through here, or a stale
    snapshot would be silently reused after, say, a seed change.
    """
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class StoredEntry:
    """A corpus entry backed by an on-disk matrix instead of RAM.

    Duck-types :class:`repro.generators.suite.CorpusEntry` (name, group,
    kind, spd, tags, nrows, ncols, nnz and a ``matrix`` accessor) so the
    sweep engine and CLI treat both interchangeably.  Pickling ships
    only this metadata — the arrays stay on disk and each worker
    process memmaps them on first touch via the attach memo.
    """

    name: str
    group: str
    kind: str
    spd: bool
    tags: tuple
    path: str
    signature: str
    nrows: int
    ncols: int
    nnz: int

    @property
    def storage_path(self) -> str:
        return self.path

    @property
    def matrix(self):
        return fmt.attach_matrix(self.path)


@dataclass(frozen=True)
class CorpusSnapshot:
    """An opened snapshot: the index plus one StoredEntry per matrix."""

    path: str
    tier: str
    seed: int
    signature: str
    spec: dict
    entries: tuple = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.entries)


def quarantine(root: str, name: str) -> str:
    """Move a corrupt matrix directory into ``<root>/_quarantine``.

    Nothing is deleted — torn snapshots stay inspectable.  Returns the
    quarantine destination.
    """
    src = os.path.join(root, name)
    qdir = os.path.join(root, _QUARANTINE)
    os.makedirs(qdir, exist_ok=True)
    for k in range(10_000):
        dst = os.path.join(qdir, f"{name}.{k}")
        if not os.path.exists(dst):
            break
    shutil.move(src, dst)
    REGISTRY.counter("storage.snapshots_quarantined").inc()
    return dst


def _entry_spec(tier: str, seed: int, scale: float) -> dict:
    return {"tier": tier, "seed": int(seed), "scale": float(scale)}


def _reusable(mdir: str, spec_key: str) -> bool:
    """True iff ``mdir`` holds a clean matrix generated under the same
    spec.  Verification is full-CRC — reuse must never trust a torn or
    bit-rotted write."""
    if not os.path.isdir(mdir):
        return False
    if fmt.verify_matrix(mdir, level="crc"):
        return False
    header = fmt.read_header(mdir)
    return header.get("meta", {}).get("spec_key") == spec_key


def _ensure_matrix(root: str, name: str, spec_key: str, build) -> str:
    """Reuse the stored matrix ``<root>/<name>`` if clean and
    spec-matching; otherwise quarantine whatever is there and rebuild
    via ``build(path, meta)``.  Returns the content address."""
    mdir = os.path.join(root, name)
    if _reusable(mdir, spec_key):
        REGISTRY.counter("storage.snapshots_reused").inc()
        return fmt.matrix_signature(mdir)
    if os.path.isdir(mdir):
        quarantine(root, name)
    signature = build(mdir, {"name": name, "spec_key": spec_key})
    REGISTRY.counter("storage.snapshots_built").inc()
    return signature


def _corpus_signature_of(pairs) -> str:
    lines = "\n".join(f"{name} {sig}" for name, sig in sorted(pairs))
    return hashlib.sha256(lines.encode()).hexdigest()[:16]


def _iter_planned(tier: str, seed: int, limit, scale: float, groups):
    """Yield ``(name, group, kind, spd, tags, build)`` per planned
    entry, where ``build(path, meta) -> signature`` writes the matrix.

    Standard tiers delegate to :func:`repro.generators.suite.build_corpus`
    (matrices fit in RAM by construction); the ``xl`` tier streams each
    recipe straight to disk so the dense intermediate never exists.
    """
    if tier == "xl":
        from ..generators.stream import xl_recipes

        recipes = [r for r in xl_recipes()
                   if groups is None or r.group in groups]
        for recipe in recipes[:limit]:
            def build(path, meta, recipe=recipe):
                nrows, ncols, chunks = recipe.make(seed, scale)
                with fmt.MatrixWriter(path, nrows, ncols, meta=meta) as w:
                    for row_lengths, colidx, values in chunks:
                        w.append_chunk(row_lengths, colidx, values)
                    return w.commit()
            yield (recipe.name, recipe.group, recipe.kind, recipe.spd,
                   recipe.tags, build)
        return
    from ..generators.suite import build_corpus

    for entry in build_corpus(tier=tier, seed=seed, groups=groups)[:limit]:
        def build(path, meta, entry=entry):
            return fmt.write_matrix(path, entry.matrix, meta=meta)
        yield (entry.name, entry.group, entry.kind, entry.spd,
               entry.tags, build)


def ensure_corpus_snapshot(path: str, tier: str = "tiny", seed: int = 0,
                           limit=None, scale: float = 1.0,
                           groups=None) -> CorpusSnapshot:
    """Idempotently materialise a corpus snapshot at ``path``.

    A complete snapshot whose spec matches is opened as-is; a torn or
    spec-mismatched one is repaired per matrix (clean + same spec →
    reuse, anything else → quarantine + deterministic rebuild) and the
    index rewritten.  The result is byte-identical — same content
    address — whether the build ran once, resumed after a kill, or
    repaired a corrupt matrix.
    """
    groups = tuple(groups) if groups is not None else None
    spec = {"tier": tier, "seed": int(seed),
            "limit": None if limit is None else int(limit),
            "scale": float(scale),
            "groups": list(groups) if groups is not None else None}
    index = _read_index(path)
    if index is not None and _spec_key(index["spec"]) == _spec_key(spec):
        try:
            return open_corpus_snapshot(path)
        except StorageError:
            pass  # torn matrices behind a stale index: fall through
    os.makedirs(path, exist_ok=True)
    entry_key = _spec_key(_entry_spec(tier, seed, scale))
    records = []
    for name, group, kind, spd, tags, build in _iter_planned(
            tier, seed, limit, scale, groups):
        signature = _ensure_matrix(path, name, entry_key, build)
        header = fmt.read_header(os.path.join(path, name))
        records.append({
            "name": name, "group": group, "kind": kind, "spd": spd,
            "tags": list(tags), "relpath": name, "signature": signature,
            "nrows": header["nrows"], "ncols": header["ncols"],
            "nnz": header["nnz"],
        })
    index = {
        "format": CORPUS_FORMAT,
        "version": CORPUS_VERSION,
        "spec": spec,
        "entries": records,
        "signature": _corpus_signature_of(
            (r["name"], r["signature"]) for r in records),
    }
    tmp = os.path.join(path, f"{_INDEX}.tmp-{os.getpid()}")
    with open(tmp, "w") as fh:
        json.dump(index, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, os.path.join(path, _INDEX))
    return open_corpus_snapshot(path)


def _read_index(path: str):
    try:
        with open(os.path.join(path, _INDEX)) as fh:
            index = json.load(fh)
    except (OSError, ValueError):
        return None
    if (index.get("format") != CORPUS_FORMAT
            or index.get("version") != CORPUS_VERSION
            or not isinstance(index.get("entries"), list)):
        return None
    return index


def open_corpus_snapshot(path: str, verify: str = "size") -> CorpusSnapshot:
    """Open an existing snapshot, verifying every matrix at ``verify``
    level and re-deriving the corpus signature from the stored headers
    (never trusting the recorded one)."""
    index = _read_index(path)
    require(index is not None, StorageError,
            f"{path}: missing or invalid {_INDEX} (not a corpus snapshot)")
    entries = []
    pairs = []
    for rec in index["entries"]:
        mdir = os.path.join(path, rec["relpath"])
        problems = fmt.verify_matrix(mdir, level=verify)
        if problems:
            raise StorageError("; ".join(problems))
        signature = fmt.matrix_signature(mdir)
        if signature != rec["signature"]:
            raise StorageError(
                f"{mdir}: content address {signature} != index "
                f"{rec['signature']} (matrix replaced behind the index)")
        pairs.append((rec["name"], signature))
        entries.append(StoredEntry(
            name=rec["name"], group=rec["group"], kind=rec["kind"],
            spd=bool(rec["spd"]), tags=tuple(rec["tags"]), path=mdir,
            signature=signature, nrows=int(rec["nrows"]),
            ncols=int(rec["ncols"]), nnz=int(rec["nnz"])))
    spec = index["spec"]
    return CorpusSnapshot(path=os.path.abspath(path),
                          tier=spec.get("tier", "?"),
                          seed=int(spec.get("seed", 0)),
                          signature=_corpus_signature_of(pairs),
                          spec=spec, entries=tuple(entries))


def corpus_signature(path: str) -> str:
    """Recompute a snapshot's content address from its stored matrix
    headers (cheap: reads only the headers, not the arrays)."""
    index = _read_index(path)
    require(index is not None, StorageError,
            f"{path}: missing or invalid {_INDEX} (not a corpus snapshot)")
    pairs = []
    for rec in index["entries"]:
        mdir = os.path.join(path, rec["relpath"])
        pairs.append((rec["name"], fmt.matrix_signature(mdir)))
    return _corpus_signature_of(pairs)
