"""Out-of-core CSR storage: memmap matrices and corpus snapshots.

* :mod:`repro.storage.format` — the chunked on-disk CSR format
  (versioned header, per-array CRC32s, atomic directory commit) and
  the read-only ``np.memmap`` attach path the sweep engine's
  ``memmap`` transport uses.
* :mod:`repro.storage.snapshot` — content-addressed corpus snapshots:
  deterministic build/reuse/quarantine/regenerate of whole tiers,
  including the streamed ``xl`` (10⁷–10⁸ nnz) tier that never exists
  in RAM.

See ``docs/storage.md`` for the format, the transport matrix and the
RSS-budgeting model.
"""

from .format import (MatrixWriter, attach_cache_stats, attach_matrix,
                     attached_count, detach_all, header_signature,
                     matrix_signature, open_matrix, verify_matrix,
                     write_matrix)
from .snapshot import (CorpusSnapshot, StoredEntry, corpus_signature,
                       ensure_corpus_snapshot, open_corpus_snapshot)

__all__ = [
    "MatrixWriter", "write_matrix", "open_matrix", "verify_matrix",
    "attach_matrix", "detach_all", "attached_count",
    "attach_cache_stats", "header_signature", "matrix_signature",
    "StoredEntry", "CorpusSnapshot", "ensure_corpus_snapshot",
    "open_corpus_snapshot", "corpus_signature",
]
