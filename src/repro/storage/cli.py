"""``repro snapshot`` — build or verify a corpus snapshot.

Building is idempotent and resumable: matrices already on disk that
verify clean (full CRC) under the same generation spec are reused;
torn or stale ones are quarantined and regenerated to the identical
content address.  ``--verify`` audits an existing snapshot instead.
"""

from __future__ import annotations

from ..errors import StorageError
from ..obs import get_logger
from ..util import format_table

log = get_logger("cli")

_TIERS = ("tiny", "small", "medium", "xl")


def _cmd_snapshot(args) -> int:
    from ..obs.metrics import REGISTRY
    from .snapshot import ensure_corpus_snapshot, open_corpus_snapshot

    groups = tuple(args.groups.split(",")) if args.groups else None
    try:
        if args.verify:
            snap = open_corpus_snapshot(args.out, verify=args.verify)
        else:
            snap = ensure_corpus_snapshot(
                args.out, tier=args.tier, seed=args.seed,
                limit=args.limit, scale=args.scale, groups=groups)
    except StorageError as exc:
        log.error("snapshot: %s", exc)
        return 1
    rows = [[e.name, e.group, e.nrows, e.nnz, e.signature]
            for e in snap.entries]
    print(format_table(["name", "group", "rows", "nnz", "signature"],
                       rows))
    built = REGISTRY.counter("storage.snapshots_built").value
    reused = REGISTRY.counter("storage.snapshots_reused").value
    quarantined = REGISTRY.counter(
        "storage.snapshots_quarantined").value
    print(f"{len(snap.entries)} matrices, "
          f"{sum(e.nnz for e in snap.entries):,} total nonzeros")
    print(f"corpus signature {snap.signature} "
          f"(built {built}, reused {reused}, quarantined {quarantined})")
    return 0


def add_snapshot_parser(sub) -> None:
    p = sub.add_parser(
        "snapshot",
        help="build or verify a content-addressed corpus snapshot")
    p.add_argument("--out", required=True,
                   help="snapshot directory")
    p.add_argument("--tier", default="tiny", choices=_TIERS,
                   help="corpus tier ('xl' streams 10^7+-nnz matrices "
                        "to disk without a dense intermediate)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--limit", type=int, default=None,
                   help="cap the number of matrices")
    p.add_argument("--scale", type=float, default=1.0,
                   help="row-count multiplier for the xl tier")
    p.add_argument("--groups", default="",
                   help="comma-separated group filter (e.g. Banded)")
    p.add_argument("--verify", default=None, choices=("size", "crc"),
                   help="verify an existing snapshot at this level "
                        "instead of building")
    p.set_defaults(func=_cmd_snapshot)
