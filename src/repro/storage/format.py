"""Chunked on-disk CSR format with memmap attach.

A stored matrix is a directory of four files::

    <dir>/
      header.json   format name, version, dims, dtypes, per-array CRCs
      rowptr.bin    int64,   little-endian, length nrows + 1
      colidx.bin    int64,   little-endian, length nnz
      values.bin    float64, little-endian, length nnz

The layout is deliberately the flat ``[rowptr | colidx | values]``
triple the shared-memory transport already uses (:mod:`repro.harness.shm`)
— a worker that attaches the directory gets read-only ``np.memmap``
views with zero copies, backed by reclaimable page cache instead of
``/dev/shm``, so the mapping survives worker death and costs no
resident memory beyond the pages actually touched.

Durability rules:

* **Writes are atomic at directory granularity.**  :class:`MatrixWriter`
  streams chunks into ``<dir>.tmp-<pid>``, writes ``header.json``
  *last* (it is the commit marker), then ``os.rename``\\ s the whole
  directory into place.  A writer killed at any point leaves either no
  final directory or a complete one — never a torn matrix under the
  final name.
* **Reads verify before mapping.**  :func:`open_matrix` checks the
  header and array byte-lengths by default (``verify="size"``), and
  can stream-recompute the CRC32 of every array (``verify="crc"``) to
  detect bit rot or a copy that tore mid-file.
* **Identity is content-addressed.**  :func:`header_signature` hashes
  the header's *structural* fields (format, version, dims, nnz,
  dtypes, CRCs) — not ``meta`` — so two writes of the same arrays get
  the same address no matter when or where they ran.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import StorageError
from ..obs.cachestats import cache_stats
from ..obs.metrics import REGISTRY
from ..util.validate import require

__all__ = [
    "FORMAT_NAME", "FORMAT_VERSION", "CHUNK_ROWS", "ARRAY_FILES",
    "MatrixWriter", "write_matrix", "open_matrix", "verify_matrix",
    "read_header", "header_signature", "matrix_signature",
    "attach_matrix", "detach_all", "attached_count", "attach_cache_stats",
]

FORMAT_NAME = "repro-csr"
FORMAT_VERSION = 1

#: rows per streamed chunk.  Fixed (not tunable) so that chunked and
#: one-shot writes of the same matrix are byte-identical and hash to
#: the same content address.
CHUNK_ROWS = 65536

#: array file names and their fixed on-disk dtypes (little-endian).
ARRAY_FILES = (("rowptr", "<i8"), ("colidx", "<i8"), ("values", "<f8"))

_HEADER = "header.json"
_IO_BLOCK = 1 << 20


def _crc_ok(expected: int, actual: int) -> bool:
    """Compare a header CRC against a recomputed one.

    Isolated so the mutation-smoke suite can stub it out and prove the
    check suite notices a verifier that accepts stale checksums.
    """
    return int(expected) == int(actual)


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
@dataclass
class MatrixWriter:
    """Stream CSR rows to disk without materialising the full arrays.

    Usage::

        with MatrixWriter(path, nrows, ncols, meta={...}) as w:
            for row_lengths, colidx, values in chunks:
                w.append_chunk(row_lengths, colidx, values)
        # exiting the ``with`` block commits atomically

    ``append_chunk`` takes the per-row nonzero counts of the next batch
    of rows plus their concatenated (sorted, in-range) column indices
    and values; ``rowptr`` is accumulated incrementally.  On any
    exception the temporary directory is removed and nothing appears
    under the final ``path``.
    """

    path: str
    nrows: int
    ncols: int
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        require(self.nrows >= 0 and self.ncols >= 0, StorageError,
                f"negative dimensions {self.nrows} x {self.ncols}")
        self._tmp = f"{self.path}.tmp-{os.getpid()}"
        self._rows_done = 0
        self._nnz = 0
        self._crc = {name: 0 for name, _ in ARRAY_FILES}
        self._files = {}
        self._committed = False

    def __enter__(self) -> "MatrixWriter":
        if os.path.exists(self._tmp):
            shutil.rmtree(self._tmp)
        os.makedirs(self._tmp)
        for name, _ in ARRAY_FILES:
            self._files[name] = open(
                os.path.join(self._tmp, f"{name}.bin"), "wb")
        # rowptr[0] == 0 is written up front; chunks append the rest.
        self._write_block("rowptr", np.zeros(1, dtype=np.int64))
        return self

    def _write_block(self, name: str, arr: np.ndarray) -> None:
        """Append one little-endian block to an array file, rolling its
        CRC forward.  Every byte that reaches disk goes through here."""
        dtype = dict(ARRAY_FILES)[name]
        data = np.ascontiguousarray(arr, dtype=dtype).tobytes()
        self._crc[name] = zlib.crc32(data, self._crc[name])
        self._files[name].write(data)
        REGISTRY.counter("storage.bytes_written").inc(len(data))

    def append_chunk(self, row_lengths, colidx, values) -> None:
        """Append a batch of consecutive rows.

        ``row_lengths[i]`` is the nonzero count of row
        ``rows_done + i``; ``colidx``/``values`` hold the entries of
        all batch rows concatenated in row order, columns sorted and
        strictly increasing within each row.
        """
        row_lengths = np.asarray(row_lengths, dtype=np.int64)
        colidx = np.asarray(colidx)
        values = np.asarray(values, dtype=np.float64)
        total = int(row_lengths.sum())
        require(bool(np.all(row_lengths >= 0)), StorageError,
                "row_lengths must be non-negative")
        require(colidx.shape == (total,) and values.shape == (total,),
                StorageError,
                f"chunk arrays must match sum(row_lengths)={total}, got "
                f"colidx {colidx.shape}, values {values.shape}")
        require(self._rows_done + row_lengths.size <= self.nrows,
                StorageError,
                f"chunk overruns nrows={self.nrows}")
        if total:
            lo, hi = int(colidx.min()), int(colidx.max())
            require(lo >= 0 and hi < self.ncols, StorageError,
                    f"colidx entries must lie in [0, {self.ncols}), "
                    f"got range [{lo}, {hi}]")
            # strictly increasing within each row (row starts exempt)
            starts = np.zeros(total, dtype=bool)
            offs = np.cumsum(row_lengths)[:-1]
            starts[offs[offs < total]] = True
            starts[0] = True
            ok = (colidx[1:] > colidx[:-1]) | starts[1:]
            require(bool(np.all(ok)), StorageError,
                    "columns must be strictly increasing within rows")
        rowptr_tail = np.cumsum(row_lengths) + self._nnz
        self._write_block("rowptr", rowptr_tail)
        self._write_block("colidx", colidx)
        self._write_block("values", values)
        self._rows_done += int(row_lengths.size)
        self._nnz += total

    def header(self) -> dict:
        return {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "nrows": int(self.nrows),
            "ncols": int(self.ncols),
            "nnz": int(self._nnz),
            "dtypes": {name: dt for name, dt in ARRAY_FILES},
            "crc": {name: int(self._crc[name]) for name, _ in ARRAY_FILES},
            "meta": dict(self.meta),
        }

    def commit(self) -> str:
        """Flush arrays, write the header (commit marker), rename into
        place.  Returns the matrix's content address."""
        require(self._rows_done == self.nrows, StorageError,
                f"commit with {self._rows_done}/{self.nrows} rows written")
        for fh in self._files.values():
            fh.close()
        self._files = {}
        header = self.header()
        with open(os.path.join(self._tmp, _HEADER), "w") as fh:
            json.dump(header, fh, indent=1, sort_keys=True)
            fh.write("\n")
        if os.path.exists(self.path):
            shutil.rmtree(self.path)
        os.rename(self._tmp, self.path)
        self._committed = True
        return header_signature(header)

    def abort(self) -> None:
        for fh in self._files.values():
            fh.close()
        self._files = {}
        if os.path.isdir(self._tmp):
            shutil.rmtree(self._tmp)

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if not self._committed:
                self.commit()
        else:
            self.abort()


def write_matrix(path: str, a, meta: dict | None = None) -> str:
    """Store an in-RAM :class:`~repro.matrix.csr.CSRMatrix` at ``path``
    (chunked, so peak extra memory is one chunk).  Returns the content
    address."""
    with MatrixWriter(path, a.nrows, a.ncols, meta=dict(meta or {})) as w:
        for lo in range(0, a.nrows, CHUNK_ROWS):
            hi = min(lo + CHUNK_ROWS, a.nrows)
            s, e = int(a.rowptr[lo]), int(a.rowptr[hi])
            w.append_chunk(np.diff(a.rowptr[lo:hi + 1]),
                           a.colidx[s:e], a.values[s:e])
        return w.commit()


# ----------------------------------------------------------------------
# reading / verification
# ----------------------------------------------------------------------
def read_header(path: str) -> dict:
    """Parse and structurally validate ``header.json`` under ``path``."""
    hpath = os.path.join(path, _HEADER)
    try:
        with open(hpath) as fh:
            header = json.load(fh)
    except FileNotFoundError:
        raise StorageError(f"{path}: no {_HEADER} (torn or missing snapshot)")
    except (OSError, ValueError) as exc:
        raise StorageError(f"{hpath}: unreadable header ({exc})")
    if header.get("format") != FORMAT_NAME:
        raise StorageError(
            f"{path}: format {header.get('format')!r} != {FORMAT_NAME!r}")
    if header.get("version") != FORMAT_VERSION:
        raise StorageError(
            f"{path}: version {header.get('version')!r} unsupported "
            f"(this code reads version {FORMAT_VERSION})")
    for key in ("nrows", "ncols", "nnz"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            raise StorageError(f"{path}: header field {key!r} invalid")
    return header


def header_signature(header: dict) -> str:
    """Content address of a stored matrix: a hash over the structural
    header fields.  ``meta`` is excluded on purpose — the address must
    depend only on the bytes of the three arrays and their shape."""
    core = {k: header[k]
            for k in ("format", "version", "nrows", "ncols", "nnz",
                      "dtypes", "crc")}
    blob = json.dumps(core, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def matrix_signature(path: str) -> str:
    """Content address of the matrix stored at ``path``."""
    return header_signature(read_header(path))


def _expected_lengths(header: dict) -> dict:
    return {"rowptr": header["nrows"] + 1,
            "colidx": header["nnz"],
            "values": header["nnz"]}


def _file_crc(fpath: str) -> int:
    crc = 0
    with open(fpath, "rb") as fh:
        while True:
            block = fh.read(_IO_BLOCK)
            if not block:
                return crc
            crc = zlib.crc32(block, crc)


def verify_matrix(path: str, level: str = "size") -> list:
    """Check the stored matrix at ``path``; return a list of problems.

    ``level`` escalates: ``"none"`` only parses the header, ``"size"``
    (default) additionally compares array byte-lengths against the
    header, ``"crc"`` streams every array back through CRC32.
    """
    require(level in ("none", "size", "crc"), StorageError,
            f"unknown verify level {level!r}")
    try:
        header = read_header(path)
    except StorageError as exc:
        return [str(exc)]
    problems = []
    if level == "none":
        return problems
    lengths = _expected_lengths(header)
    for name, dtype in ARRAY_FILES:
        fpath = os.path.join(path, f"{name}.bin")
        expected = lengths[name] * np.dtype(dtype).itemsize
        try:
            actual = os.path.getsize(fpath)
        except OSError:
            problems.append(f"{path}: missing array file {name}.bin")
            continue
        if actual != expected:
            problems.append(
                f"{path}: {name}.bin is {actual} bytes, header implies "
                f"{expected} (rowptr/colidx/values out of sync or torn)")
            continue
        if level == "crc":
            crc = _file_crc(fpath)
            if not _crc_ok(header["crc"][name], crc):
                REGISTRY.counter("storage.crc_failures").inc()
                problems.append(
                    f"{path}: {name}.bin CRC {crc} != header "
                    f"{header['crc'][name]} (corrupt or torn write)")
    return problems


def _mapped(fpath: str, dtype: str, length: int) -> np.ndarray:
    if length == 0:
        return np.empty(0, dtype=dtype)
    arr = np.memmap(fpath, dtype=dtype, mode="r", shape=(length,))
    return arr


def open_matrix(path: str, verify: str = "size"):
    """Map the stored matrix at ``path`` as a read-only
    :class:`~repro.matrix.csr.CSRMatrix` (zero-copy ``np.memmap``
    arrays).  Raises :class:`StorageError` when verification fails."""
    from ..matrix.csr import CSRMatrix

    problems = verify_matrix(path, level=verify)
    if problems:
        raise StorageError("; ".join(problems))
    header = read_header(path)
    lengths = _expected_lengths(header)
    arrays = {}
    for name, dtype in ARRAY_FILES:
        arrays[name] = _mapped(os.path.join(path, f"{name}.bin"),
                               dtype, lengths[name])
    a = CSRMatrix(nrows=header["nrows"], ncols=header["ncols"],
                  rowptr=arrays["rowptr"], colidx=arrays["colidx"],
                  values=arrays["values"])
    REGISTRY.counter("storage.bytes_read").inc(
        sum(arr.nbytes for arr in arrays.values()))
    return a


# ----------------------------------------------------------------------
# per-process attach memo (mirrors repro.harness.shm)
# ----------------------------------------------------------------------
#: path -> CSRMatrix; one mapping per matrix per process regardless of
#: how many crash-retry rounds resubmit it.
_ATTACHED: dict = {}
_ATTACH_HITS = 0
_ATTACH_MISSES = 0


def attach_matrix(path: str, verify: str = "size"):
    """Memoised :func:`open_matrix`: sweep workers attach each stored
    matrix at most once per process."""
    global _ATTACH_HITS, _ATTACH_MISSES
    key = os.path.abspath(path)
    cached = _ATTACHED.get(key)
    if cached is not None:
        _ATTACH_HITS += 1
        return cached
    _ATTACH_MISSES += 1
    a = open_matrix(path, verify=verify)
    _ATTACHED[key] = a
    return a


def attached_count() -> int:
    """Number of stored matrices this process currently has mapped."""
    return len(_ATTACHED)


def detach_all() -> None:
    """Drop the attachment memo (test hygiene only).  The mappings die
    when the arrays are garbage-collected or the process exits."""
    global _ATTACH_HITS, _ATTACH_MISSES
    _ATTACHED.clear()
    _ATTACH_HITS = 0
    _ATTACH_MISSES = 0


def attach_cache_stats() -> dict:
    """Stats for the attach memo in the unified cache schema.

    Mapped matrices are disk-backed page cache, not private heap, so
    their bytes are reported under ``mapped_bytes`` and ``size_bytes``
    stays 0 (see :mod:`repro.obs.cachestats`).
    """
    mapped = sum(a.rowptr.nbytes + a.colidx.nbytes + a.values.nbytes
                 for a in _ATTACHED.values())
    return cache_stats(hits=_ATTACH_HITS, misses=_ATTACH_MISSES,
                       size_bytes=0, mapped_bytes=mapped,
                       entries=len(_ATTACHED))
