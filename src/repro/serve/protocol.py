"""The wire protocol of the advisor daemon: JSON over HTTP/1.1.

One request shape, three response shapes.  A client POSTs an *advise
request* to ``/advise``::

    {"id": 17, "matrix": "roadnet", "arch": "Milan B", "kernel": "1d",
     "workload": "cg", "iterations": 10000, "top": 3, "client": "c0"}

``workload`` (optional, default ``"spmv"``) picks what runs per
scheduled iteration — plain SpMV, a CG/Jacobi solver loop, SpGEMM or
SpMM — and must name an entry of
:data:`repro.spmv.registry.WORKLOADS`.

``matrix`` names an entry of the daemon's resident corpus — the daemon
is an *advisor*, not a matrix transport; shipping CSR payloads per
request would dwarf the answer it returns.  ``arch`` defaults to the
daemon's configured default architecture; ``iterations``/``top`` are
optional per-request overrides; ``client`` is the admission-control
identity (the peer address when omitted).

Responses (always ``application/json``):

* **ok** — ``{"id", "status": "ok", "advice": [{"ordering",
  "predicted_speedup", "confidence"}, ...], "batch_size",
  "queue_ms"}``.  ``advice`` is bit-identical to what a direct
  :meth:`repro.advisor.service.Advisor.advise` call returns (floats
  round-trip exactly through ``json``); ``batch_size``/``queue_ms``
  describe the micro-batch that served the request.
* **rejected** — ``{"id", "status": "rejected", "code": 429|503,
  "reason": "rate_limited"|"queue_full"|"draining",
  "retry_after_ms"}`` (admission control said no; see
  :mod:`repro.serve.admission`).
* **error** — ``{"id", "status": "error", "code": 400|404|500,
  "reason", "detail"}`` (malformed request, unknown matrix/arch,
  or a serving fault).

``GET /healthz`` and ``GET /metricsz`` return liveness and the SLO
snapshot documented in ``docs/serving.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..spmv.registry import DEFAULT_WORKLOAD, KERNELS, WORKLOADS

__all__ = [
    "AdviseRequest", "ProtocolError", "advice_to_wire", "error_body",
    "ok_body", "parse_advise_request", "reject_body",
]

#: keys an advise request may carry; anything else is a client bug we
#: surface early instead of silently ignoring
_ALLOWED_KEYS = frozenset(
    {"id", "matrix", "arch", "kernel", "iterations", "top", "client",
     "trace", "workload"})


class ProtocolError(ValueError):
    """A malformed advise request (maps to a 400 error response)."""


@dataclass(frozen=True)
class AdviseRequest:
    """One parsed, validated advise request."""

    id: object                 # echoed back verbatim (any JSON scalar)
    matrix: str
    arch: str | None           # None -> daemon default architecture
    kernel: str
    iterations: float | None
    top: int | None
    client: str
    #: distributed-tracing context: ``trace_id``/``parent_id`` arrive
    #: in the optional ``trace`` request object (the client's ids);
    #: ``span_id`` is the *server-side* request span id the daemon
    #: assigns, so batcher/advisor spans can parent to it
    trace_id: str | None = None
    parent_id: str | None = None
    span_id: str | None = None
    #: what runs per scheduled iteration (plain SpMV, a CG/Jacobi
    #: solver loop, SpGEMM or SpMM); the default preserves the
    #: pre-workload wire behaviour for old clients
    workload: str = DEFAULT_WORKLOAD


def parse_advise_request(body: bytes, peer: str = "") -> AdviseRequest:
    """Decode and validate a ``POST /advise`` body.

    Raises :class:`ProtocolError` with a human-readable reason on any
    schema violation; the daemon turns that into a 400 response.
    """
    try:
        data = json.loads(body)
    except (ValueError, UnicodeDecodeError) as e:
        raise ProtocolError(f"body is not valid JSON: {e}") from None
    if not isinstance(data, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(data).__name__}")
    unknown = set(data) - _ALLOWED_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown request key(s) {sorted(unknown)}; "
            f"allowed: {sorted(_ALLOWED_KEYS)}")
    matrix = data.get("matrix")
    if not isinstance(matrix, str) or not matrix:
        raise ProtocolError("'matrix' must be a non-empty string")
    kernel = data.get("kernel", "1d")
    if kernel not in KERNELS:
        raise ProtocolError(
            f"'kernel' must be one of {KERNELS}, got {kernel!r}")
    workload = data.get("workload", DEFAULT_WORKLOAD)
    if workload not in WORKLOADS:
        raise ProtocolError(
            f"'workload' must be one of {WORKLOADS}, got {workload!r}")
    arch = data.get("arch")
    if arch is not None and not isinstance(arch, str):
        raise ProtocolError("'arch' must be a string when present")
    iterations = data.get("iterations")
    if iterations is not None:
        if not isinstance(iterations, (int, float)) \
                or isinstance(iterations, bool) or iterations <= 0:
            raise ProtocolError(
                f"'iterations' must be a positive number, "
                f"got {iterations!r}")
        iterations = float(iterations)
    top = data.get("top")
    if top is not None:
        if not isinstance(top, int) or isinstance(top, bool) or top < 1:
            raise ProtocolError(
                f"'top' must be a positive integer, got {top!r}")
    client = data.get("client")
    if client is not None and not isinstance(client, str):
        raise ProtocolError("'client' must be a string when present")
    trace = data.get("trace")
    trace_id = parent_id = None
    if trace is not None:
        if not isinstance(trace, dict):
            raise ProtocolError(
                "'trace' must be an object with optional "
                "'trace_id'/'parent_id' strings")
        unknown_trace = set(trace) - {"trace_id", "parent_id"}
        if unknown_trace:
            raise ProtocolError(
                f"unknown trace key(s) {sorted(unknown_trace)}; "
                "allowed: ['parent_id', 'trace_id']")
        trace_id = trace.get("trace_id")
        parent_id = trace.get("parent_id")
        for label, value in (("trace_id", trace_id),
                             ("parent_id", parent_id)):
            if value is not None and not isinstance(value, str):
                raise ProtocolError(
                    f"'trace.{label}' must be a string when present")
    return AdviseRequest(id=data.get("id"), matrix=matrix, arch=arch,
                         kernel=kernel, iterations=iterations, top=top,
                         client=client or peer or "anonymous",
                         trace_id=trace_id, parent_id=parent_id,
                         workload=workload)


# ----------------------------------------------------------------------
# response bodies
# ----------------------------------------------------------------------
def advice_to_wire(advice) -> list:
    """Serialise a ranked :class:`~repro.advisor.model.Advice` list."""
    return [{"ordering": a.ordering,
             "predicted_speedup": a.predicted_speedup,
             "confidence": a.confidence} for a in advice]


def ok_body(request_id, advice, batch_size: int,
            queue_ms: float) -> dict:
    return {"id": request_id, "status": "ok",
            "advice": advice_to_wire(advice),
            "batch_size": int(batch_size),
            "queue_ms": round(float(queue_ms), 3)}


def reject_body(request_id, code: int, reason: str,
                retry_after_ms: float) -> dict:
    return {"id": request_id, "status": "rejected", "code": int(code),
            "reason": reason,
            "retry_after_ms": round(float(retry_after_ms), 3)}


def error_body(request_id, code: int, reason: str, detail: str) -> dict:
    return {"id": request_id, "status": "error", "code": int(code),
            "reason": reason, "detail": detail}
