"""Admission control: per-client token buckets + queue-depth shedding.

A serving process protects its latency SLO by saying "no" early.  Two
gates run before a request may enter the micro-batching queue:

1. **per-client token bucket** — each client identity refills at
   ``rate`` tokens/second up to a ``burst`` ceiling; a request costs
   one token.  A greedy client exhausts only its own bucket, so one
   misbehaving tenant cannot starve the rest (``reason:
   "rate_limited"``, HTTP 429).
2. **queue-depth shed** — when the batching queue already holds
   ``max_queue_depth`` waiting requests the daemon is saturated and
   queueing further work would only grow tail latency; the request is
   shed instead (``reason: "queue_full"``, HTTP 429).

Both gates answer with a structured reject carrying ``retry_after_ms``
so well-behaved clients can back off precisely.  Shed counts are
first-class SLO metrics (``serve.shed.*`` counters in
:data:`repro.obs.REGISTRY`) — a serving system that silently drops
load is lying about its capacity.

The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..obs.metrics import REGISTRY

__all__ = ["AdmissionController", "Rejection", "TokenBucket"]

_SHED_RATE = REGISTRY.counter("serve.shed.rate_limited")
_SHED_QUEUE = REGISTRY.counter("serve.shed.queue_full")


@dataclass(frozen=True)
class Rejection:
    """A structured admission refusal (maps onto a 429-style reply)."""

    reason: str            # "rate_limited" | "queue_full" | "draining"
    http_status: int       # 429 for load sheds, 503 while draining
    retry_after_ms: float


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s, ``burst`` capacity.

    The bucket starts full, so a client's first ``burst`` requests pass
    unconditionally — admission control throttles sustained rates, not
    the first contact.  Thread-safe; the daemon's event loop is single
    threaded but tests and embedders may not be.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock", "_lock")

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(
                f"rate and burst must be positive, got {rate}/{burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_acquire(self, n: float = 1.0) -> bool:
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def retry_after_s(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available."""
        with self._lock:
            self._refill(self._clock())
            return max(0.0, (n - self._tokens) / self.rate)

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class AdmissionController:
    """The daemon's front door: rate gates, then the queue-depth shed.

    ``rate=None`` disables per-client budgets (the queue-depth shed
    still applies); buckets are created lazily per client identity and
    capped at ``max_clients`` — beyond that, the oldest-idle bucket is
    evicted, which at worst refills a returning client's budget early
    (fail-open, never fail-closed).
    """

    def __init__(self, rate: float | None = 50.0, burst: float = 20.0,
                 max_queue_depth: int = 128, max_clients: int = 1024,
                 clock=time.monotonic) -> None:
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be positive, got {max_queue_depth}")
        self.rate = rate
        self.burst = burst
        self.max_queue_depth = int(max_queue_depth)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._buckets: dict = {}
        self._lock = threading.Lock()

    def _bucket(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.max_clients:
                    self._buckets.pop(next(iter(self._buckets)))
                bucket = TokenBucket(self.rate, self.burst,
                                     clock=self._clock)
                self._buckets[client] = bucket
            else:
                # move-to-end keeps eviction approximately oldest-idle
                self._buckets[client] = self._buckets.pop(client)
            return bucket

    def admit(self, client: str, queue_depth: int) -> Rejection | None:
        """``None`` to admit, or the :class:`Rejection` to send back."""
        if self.rate is not None:
            bucket = self._bucket(client)
            if not bucket.try_acquire():
                _SHED_RATE.inc()
                return Rejection(
                    reason="rate_limited", http_status=429,
                    retry_after_ms=bucket.retry_after_s() * 1e3)
        if queue_depth >= self.max_queue_depth:
            _SHED_QUEUE.inc()
            # the queue drains at the service rate; one linger window
            # is the honest lower bound a client should wait
            return Rejection(reason="queue_full", http_status=429,
                             retry_after_ms=50.0)
        return None

    @property
    def clients(self) -> int:
        with self._lock:
            return len(self._buckets)
