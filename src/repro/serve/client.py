"""Clients for the advisor daemon.

* :class:`ServeClient` — a synchronous keep-alive client on stdlib
  :mod:`http.client`; what tests, the check suite and interactive use
  reach for.
* :func:`post_json` / :func:`get_json` — single-shot async requests on
  raw ``asyncio`` streams (``Connection: close``), the building block
  of the open-loop load generator, which must fire requests on a
  schedule without a connection pool serialising them.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket

__all__ = ["ServeClient", "ServeUnavailable", "get_json", "post_json"]


class ServeUnavailable(ConnectionError):
    """The daemon did not answer (refused, closed early, or timed out)."""


class ServeClient:
    """Synchronous JSON client with one keep-alive connection."""

    def __init__(self, host: str, port: int,
                 timeout: float = 10.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def request(self, method: str, path: str,
                payload: dict | None = None) -> tuple:
        """``(status_code, decoded_json_body)``; retries once on a
        dropped keep-alive connection."""
        body = json.dumps(payload).encode() if payload is not None \
            else None
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                data = resp.read()
                if resp.will_close:
                    self.close()
                return resp.status, json.loads(data)
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, TimeoutError, OSError) as e:
                self.close()
                if attempt or isinstance(e, (socket.timeout,
                                             TimeoutError)):
                    raise ServeUnavailable(
                        f"{method} {path} on {self.host}:{self.port} "
                        f"failed: {e}") from e

    def advise(self, matrix: str, arch: str | None = None,
               kernel: str = "1d", iterations: float | None = None,
               top: int | None = None, client: str | None = None,
               request_id=None, workload: str | None = None) -> tuple:
        """``(status_code, body)`` of one advise round trip."""
        payload = {"matrix": matrix, "kernel": kernel}
        if workload is not None:
            payload["workload"] = workload
        if request_id is not None:
            payload["id"] = request_id
        if arch is not None:
            payload["arch"] = arch
        if iterations is not None:
            payload["iterations"] = iterations
        if top is not None:
            payload["top"] = top
        if client is not None:
            payload["client"] = client
        return self.request("POST", "/advise", payload)

    def healthz(self) -> dict:
        status, body = self.request("GET", "/healthz")
        if status != 200:
            raise ServeUnavailable(f"/healthz returned {status}")
        return body

    def metricsz(self) -> dict:
        status, body = self.request("GET", "/metricsz")
        if status != 200:
            raise ServeUnavailable(f"/metricsz returned {status}")
        return body

    def close(self) -> None:
        if self._conn is not None:
            conn, self._conn = self._conn, None
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# async single-shot requests (the load generator's primitive)
# ----------------------------------------------------------------------
async def _roundtrip(host: str, port: int, request: bytes,
                     timeout: float) -> tuple:
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout)
    except (OSError, asyncio.TimeoutError) as e:
        raise ServeUnavailable(f"connect {host}:{port}: {e}") from e
    try:
        writer.write(request)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout)
    except (OSError, asyncio.TimeoutError) as e:
        raise ServeUnavailable(f"request to {host}:{port}: {e}") from e
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, asyncio.TimeoutError):  # pragma: no cover
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split()
    if len(status_line) < 2 or not status_line[1].isdigit():
        raise ServeUnavailable(
            f"malformed response from {host}:{port}: {head[:80]!r}")
    try:
        return int(status_line[1]), json.loads(body)
    except ValueError as e:
        raise ServeUnavailable(
            f"non-JSON response body from {host}:{port}: {e}") from e


async def post_json(host: str, port: int, path: str, payload: dict,
                    timeout: float = 10.0) -> tuple:
    """One ``POST`` with ``Connection: close``; ``(status, body)``."""
    body = json.dumps(payload).encode()
    request = (
        f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode() + body
    return await _roundtrip(host, port, request, timeout)


async def get_json(host: str, port: int, path: str,
                   timeout: float = 10.0) -> tuple:
    """One ``GET`` with ``Connection: close``; ``(status, body)``."""
    request = (f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
               "Connection: close\r\n\r\n").encode()
    return await _roundtrip(host, port, request, timeout)
