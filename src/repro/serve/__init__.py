"""repro.serve — the always-on advisor daemon.

The paper's end product is a *selection policy* — which reordering for
this matrix on this machine — and :mod:`repro.advisor` answers that as
a library call.  This package turns the answer into a service: a
long-running asyncio daemon that shares one warm advisor (feature
cache, advice cache, thread pool) across every client, coalesces
concurrent requests into micro-batches that ride the batched
``advise_many`` fast path, sheds load it cannot serve within its
latency budget, and reports SLOs (p50/p95/p99 latency, batch-size
histogram, queue wait, shed counts) through :mod:`repro.obs`.

Layers (each its own module):

* :mod:`.protocol`  — JSON-over-HTTP request/response shapes
* :mod:`.batching`  — the bounded micro-batching queue (max batch +
  max linger)
* :mod:`.admission` — per-client token buckets + queue-depth shedding
* :mod:`.daemon`    — the asyncio HTTP server, lifecycle (SIGTERM
  drain), ``/healthz`` + ``/metricsz``
* :mod:`.client`    — sync keep-alive client + async one-shot requests
* :mod:`.loadgen`   — deterministic zipf/bursty open-loop traffic
  replay
* :mod:`.cli`       — ``python -m repro serve`` / ``repro loadgen``

See ``docs/serving.md`` for the protocol and the knob reference, and
``benchmarks/bench_serving.py`` for the throughput/batching gate.
"""

from .admission import AdmissionController, Rejection, TokenBucket
from .batching import MicroBatcher
from .client import ServeClient, ServeUnavailable, get_json, post_json
from .daemon import AdvisorDaemon, DaemonHandle, ServeConfig, \
    start_in_thread
from .loadgen import LoadgenReport, TraceRequest, generate_trace, replay
from .protocol import AdviseRequest, ProtocolError, advice_to_wire, \
    parse_advise_request

__all__ = [
    "AdmissionController",
    "AdviseRequest",
    "AdvisorDaemon",
    "DaemonHandle",
    "LoadgenReport",
    "MicroBatcher",
    "ProtocolError",
    "Rejection",
    "ServeClient",
    "ServeConfig",
    "ServeUnavailable",
    "TokenBucket",
    "TraceRequest",
    "advice_to_wire",
    "generate_trace",
    "get_json",
    "parse_advise_request",
    "post_json",
    "replay",
    "start_in_thread",
]
