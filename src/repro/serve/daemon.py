"""The always-on advisor daemon: asyncio HTTP front end.

``AdvisorDaemon`` turns the :class:`repro.advisor.service.Advisor`
library into a service: one warm advisor (feature cache + advice
cache + thread pool) shared across every client, requests coalesced by
a :class:`repro.serve.batching.MicroBatcher` into
:meth:`~repro.advisor.service.Advisor.advise_many` calls, admission
control in front (:mod:`repro.serve.admission`) and SLO metrics behind
(:data:`repro.obs.REGISTRY`).

The HTTP layer is a deliberately small HTTP/1.1 subset on raw
``asyncio`` streams — stdlib only, keep-alive by default, three
routes:

* ``POST /advise``   — the serving path (:mod:`repro.serve.protocol`)
* ``GET  /healthz``  — liveness + drain state
* ``GET  /metricsz`` — SLO snapshot: request p50/p95/p99, batch-size
  histogram, queue wait, shed counts, plus the raw ``serve.*`` /
  ``advisor.*`` registry entries

Lifecycle: ``start()`` binds the socket (port 0 picks a free port),
``serve_forever()`` parks until shutdown, SIGTERM/SIGINT (or
``begin_shutdown()``) *drains*: the listener closes, queued requests
still get answers, new advise requests are rejected with a 503
``draining`` reply, and connections that outlive ``drain_timeout`` are
cancelled.  Tests and benches run the whole thing on a background
thread via :func:`start_in_thread`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from dataclasses import dataclass, replace

from ..machine.arch import get_architecture
from ..obs.log import get_logger
from ..obs.metrics import REGISTRY, snapshot_quantile
from ..obs.trace import TRACER, new_span_id
from .admission import AdmissionController, Rejection
from .batching import MicroBatcher
from .protocol import (ProtocolError, error_body, ok_body,
                       parse_advise_request, reject_body)

__all__ = ["AdvisorDaemon", "DaemonHandle", "ServeConfig",
           "start_in_thread"]

log = get_logger("serve")

_REQUESTS = REGISTRY.counter("serve.requests")
_RESPONSES = REGISTRY.counter("serve.responses")
_ERRORS = REGISTRY.counter("serve.errors")
_SHED_DRAIN = REGISTRY.counter("serve.shed.draining")
_LATENCY = REGISTRY.histogram("serve.request_seconds")

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 429: "Too Many Requests",
                500: "Internal Server Error", 503: "Service Unavailable"}


@dataclass(frozen=True)
class ServeConfig:
    """Daemon knobs; defaults match docs/serving.md."""

    host: str = "127.0.0.1"
    port: int = 0                  # 0 = pick a free port
    default_arch: str = "Milan B"  # for requests that omit "arch"
    max_batch: int = 32
    linger_ms: float = 5.0
    queue_depth: int = 128         # admission shed threshold
    rate: float | None = 50.0      # per-client tokens/second
    burst: float = 20.0            # per-client bucket capacity
    drain_timeout: float = 5.0     # grace period on shutdown


class AdvisorDaemon:
    """One warm advisor behind a micro-batching asyncio HTTP server."""

    def __init__(self, advisor, corpus, config: ServeConfig | None = None):
        """``corpus`` is a list of :class:`~repro.generators.suite.
        CorpusEntry` (or any objects with ``.name``/``.matrix``) —
        the matrices this daemon is willing to advise on."""
        self.config = config or ServeConfig()
        self.advisor = advisor
        self.entries = {e.name: e for e in corpus}
        self.admission = AdmissionController(
            rate=self.config.rate, burst=self.config.burst,
            max_queue_depth=self.config.queue_depth)
        self.batcher = MicroBatcher(self._flush,
                                    max_batch=self.config.max_batch,
                                    max_linger_ms=self.config.linger_ms)
        self._server: asyncio.Server | None = None
        self._conn_tasks: set = set()
        self._draining = False
        self._stopped: asyncio.Event | None = None
        self._started_at = time.monotonic()
        self._baseline: dict = {}
        # resolve the default arch eagerly: a typo should fail at
        # startup, not on the first request
        get_architecture(self.config.default_arch)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self._started_at = time.monotonic()
        self._baseline = REGISTRY.snapshot()
        log.info("advisor daemon listening on %s:%d "
                 "(%d matrices, max_batch=%d, linger=%.1fms)",
                 self.config.host, self.port, len(self.entries),
                 self.config.max_batch, self.config.linger_ms)

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("daemon is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (CLI mode; must run on the
        main thread's event loop)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda s=sig: asyncio.ensure_future(
                    self.begin_shutdown(reason=signal.Signals(s).name)))

    async def begin_shutdown(self, reason: str = "shutdown") -> None:
        """Drain: stop listening, answer the queue, then stop.

        Idempotent; connections still open after ``drain_timeout``
        seconds are cancelled so a stuck client cannot wedge the
        process.
        """
        if self._draining:
            return
        self._draining = True
        log.info("draining on %s: %d queued request(s), %d open "
                 "connection(s)", reason, self.batcher.depth,
                 len(self._conn_tasks))
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self.batcher.close(),
                                   self.config.drain_timeout)
        except asyncio.TimeoutError:
            log.warning("drain timed out after %.1fs; cancelling the "
                        "batcher", self.config.drain_timeout)
        tasks = set(self._conn_tasks)
        if tasks:
            # keep-alive connections park in readline() waiting for a
            # request that will never come — give in-flight responses
            # a moment, then cut them loose
            _done, pending = await asyncio.wait(
                tasks, timeout=self.config.drain_timeout)
            for task in pending:
                task.cancel()
        if self._stopped is not None:
            self._stopped.set()
        log.info("advisor daemon stopped (%d request(s) served)",
                 _RESPONSES.value)

    async def serve_forever(self) -> None:
        if self._stopped is None:
            raise RuntimeError("call start() first")
        await self._stopped.wait()

    async def wait_stopped(self) -> None:
        await self.serve_forever()

    # ------------------------------------------------------------------
    # the batched serving path
    # ------------------------------------------------------------------
    async def _flush(self, requests: list) -> list:
        """MicroBatcher callback: one batch → advise_many, off-loop.

        Requests in one micro-batch may target different architectures
        or kernels; group them so each group rides one
        ``advise_many`` call, and run the whole (CPU-bound, GIL-
        releasing) evaluation in the advisor's executor so the event
        loop keeps accepting requests meanwhile.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._advise_batch,
                                          requests)

    def _advise_batch(self, requests: list) -> list:
        results: list = [None] * len(requests)
        groups: dict = {}
        for i, req in enumerate(requests):
            arch_name = req.arch or self.config.default_arch
            groups.setdefault(
                (arch_name, req.kernel, req.iterations, req.workload),
                []).append(i)
        for (arch_name, kernel, iterations, workload), idxs in \
                groups.items():
            arch = get_architecture(arch_name)
            entries = [self.entries[requests[i].matrix] for i in idxs]
            # thread each request's trace context into the advisor pool
            # so its advisor.request span parents to the serve.request
            # span — one causal chain per request across the batch
            ctxs = [(requests[i].trace_id, requests[i].span_id)
                    if requests[i].span_id else None for i in idxs]
            ranked = self.advisor.advise_many(
                entries, arch, kernel=kernel, iterations=iterations,
                workload=workload,
                trace_ctxs=ctxs if any(ctxs) else None)
            for i, advice in zip(idxs, ranked):
                results[i] = advice
        return results

    async def _advise(self, body: bytes, peer: str) -> tuple:
        """(http_status, response_body_dict) for one POST /advise."""
        t0 = time.perf_counter()
        _REQUESTS.inc()
        try:
            req = parse_advise_request(body, peer=peer)
        except ProtocolError as e:
            _ERRORS.inc()
            return 400, error_body(None, 400, "bad_request", str(e))
        if not TRACER.enabled:
            return await self._advise_admitted(req, t0)
        # the asyncio request path times its span explicitly (coroutines
        # interleave on one thread, so the tracer's thread-local nesting
        # stack cannot express "this request"); the span_id stored on
        # the request is what batcher and advisor spans parent to
        sid = new_span_id()
        req = replace(req, span_id=sid,
                      trace_id=req.trace_id or f"req-{sid}")
        status, payload = await self._advise_admitted(req, t0)
        span_args = {"status": status, "matrix": req.matrix,
                     "client": req.client}
        if req.parent_id:
            # the client's enclosing span lives in another process;
            # record the cross-process link under its own key so a
            # server-only trace is not full of "orphaned" parent ids
            span_args["remote_parent"] = req.parent_id
        TRACER.record_span("serve.request", t0,
                           time.perf_counter() - t0, span_id=sid,
                           trace_id=req.trace_id, **span_args)
        return status, payload

    async def _advise_admitted(self, req, t0: float) -> tuple:
        """Everything after parsing: validation, admission, batching."""
        if req.matrix not in self.entries:
            _ERRORS.inc()
            return 404, error_body(
                req.id, 404, "unknown_matrix",
                f"matrix {req.matrix!r} is not in the resident corpus "
                f"({len(self.entries)} entries)")
        if req.arch is not None:
            try:
                get_architecture(req.arch)
            except Exception as e:  # noqa: BLE001 — client data
                _ERRORS.inc()
                return 400, error_body(req.id, 400, "unknown_arch",
                                       str(e))
        if self._draining:
            _SHED_DRAIN.inc()
            return 503, reject_body(req.id, 503, "draining", 1000.0)
        rejection = self.admission.admit(req.client, self.batcher.depth)
        if rejection is not None:
            return rejection.http_status, reject_body(
                req.id, rejection.http_status, rejection.reason,
                rejection.retry_after_ms)
        enqueued = time.perf_counter()
        try:
            advice, batch_size = await self.batcher.submit(req)
        except Exception as e:  # noqa: BLE001 — a batch fault must
            _ERRORS.inc()           # answer, not hang, the client
            log.exception("advise batch failed")
            return 500, error_body(req.id, 500, "serving_fault", str(e))
        queue_ms = (time.perf_counter() - enqueued) * 1e3
        if req.top is not None:
            advice = advice[:req.top]
        _RESPONSES.inc()
        _LATENCY.observe(time.perf_counter() - t0)
        return 200, ok_body(req.id, advice, batch_size, queue_ms)

    # ------------------------------------------------------------------
    # introspection routes
    # ------------------------------------------------------------------
    def _healthz(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(time.monotonic() - self._started_at,
                                    3),
            "corpus": len(self.entries),
            "queue_depth": self.batcher.depth,
            "model_rows": self.advisor.model.trained_on.get("rows"),
        }

    def _metricsz(self) -> dict:
        """The SLO snapshot: deltas since *this* daemon started."""
        delta = REGISTRY.delta_since(self._baseline)

        def hist(name: str) -> dict:
            entry = delta.get(name)
            if entry is None or entry.get("type") != "histogram":
                return {"type": "histogram", "count": 0, "sum": 0.0,
                        "max": 0.0, "bounds": [], "counts": []}
            return entry

        def counter(name: str) -> int:
            entry = delta.get(name, {})
            return int(entry.get("value", 0)) \
                if entry.get("type") == "counter" else 0

        lat = hist("serve.request_seconds")
        wait = hist("serve.queue_wait_seconds")
        batch = hist("serve.batch_size")
        slo = {
            "uptime_seconds": round(time.monotonic() - self._started_at,
                                    3),
            "requests": counter("serve.requests"),
            "responses": counter("serve.responses"),
            "errors": counter("serve.errors"),
            "latency_ms": {
                "count": lat["count"],
                "mean": round(lat["sum"] / lat["count"] * 1e3, 3)
                if lat["count"] else 0.0,
                "p50": round(snapshot_quantile(lat, 0.50) * 1e3, 3),
                "p95": round(snapshot_quantile(lat, 0.95) * 1e3, 3),
                "p99": round(snapshot_quantile(lat, 0.99) * 1e3, 3),
                "max": round(lat["max"] * 1e3, 3),
            },
            "queue_wait_ms": {
                "count": wait["count"],
                "p50": round(snapshot_quantile(wait, 0.50) * 1e3, 3),
                "p99": round(snapshot_quantile(wait, 0.99) * 1e3, 3),
            },
            "batch": {
                "batches": batch["count"],
                "mean_size": round(batch["sum"] / batch["count"], 3)
                if batch["count"] else 0.0,
                "max_size": batch["max"],
                "histogram": {"bounds": batch["bounds"],
                              "counts": batch["counts"]},
            },
            "shed": {
                "rate_limited": counter("serve.shed.rate_limited"),
                "queue_full": counter("serve.shed.queue_full"),
                "draining": counter("serve.shed.draining"),
            },
        }
        metrics = {name: entry for name, entry in delta.items()
                   if name.startswith(("serve.", "advisor."))}
        # tracer buffer occupancy: a saturated trace sidecar shows up
        # here as dropped_events > 0 instead of silently losing spans
        return {"slo": slo, "metrics": metrics,
                "advisor": self.advisor.stats,
                "trace": TRACER.stats}

    # ------------------------------------------------------------------
    # the HTTP/1.1 subset
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "unknown"
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, path, _version = \
                        request_line.decode("ascii").split()
                except ValueError:
                    await self._respond(
                        writer, 400,
                        error_body(None, 400, "bad_request",
                                   "malformed request line"))
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0) or 0)
                body = await reader.readexactly(length) if length else b""
                keep_alive = headers.get(
                    "connection", "keep-alive").lower() != "close"
                status, payload = await self._dispatch(method, path,
                                                       body, peer)
                await self._respond(writer, status, payload,
                                    keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            # our own drain-timeout cancel: exit cleanly so the task
            # does not end up "cancelled with unretrieved exception"
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            # a cancelled task raises CancelledError (a BaseException)
            # at its next await — swallow it here too, the connection
            # is already going away
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(self, method: str, path: str, body: bytes,
                        peer: str) -> tuple:
        path = path.split("?", 1)[0]
        if path == "/advise":
            if method != "POST":
                return 405, error_body(None, 405, "method_not_allowed",
                                       "POST /advise")
            return await self._advise(body, peer)
        if path == "/healthz":
            if method != "GET":
                return 405, error_body(None, 405, "method_not_allowed",
                                       "GET /healthz")
            return 200, self._healthz()
        if path == "/metricsz":
            if method != "GET":
                return 405, error_body(None, 405, "method_not_allowed",
                                       "GET /metricsz")
            return 200, self._metricsz()
        return 404, error_body(None, 404, "unknown_route",
                               f"no route {path!r} (have /advise, "
                               "/healthz, /metricsz)")

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       payload: dict, keep_alive: bool = False) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                "\r\n\r\n").encode("ascii")
        writer.write(head + body)
        await writer.drain()


# ----------------------------------------------------------------------
# embedding helper: run the daemon on a background thread
# ----------------------------------------------------------------------
class DaemonHandle:
    """A started background daemon: ``.port`` to talk, ``.stop()`` to
    drain; usable as a context manager."""

    def __init__(self, daemon: AdvisorDaemon, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.daemon = daemon
        self._loop = loop
        self._thread = thread
        self.port = daemon.port
        self.host = daemon.config.host

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.daemon.begin_shutdown(reason="handle.stop"),
                self._loop)
            self._thread.join(timeout)
            if self._thread.is_alive():  # pragma: no cover - fail loud
                raise RuntimeError("daemon thread failed to stop")

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_in_thread(advisor, corpus,
                    config: ServeConfig | None = None,
                    timeout: float = 10.0) -> DaemonHandle:
    """Boot an :class:`AdvisorDaemon` on a daemonized thread and wait
    until it accepts connections.  Tests, benches and the check suite
    all use this to get a real network round trip without a second
    process."""
    started = threading.Event()
    box: dict = {}

    async def main() -> None:
        daemon = AdvisorDaemon(advisor, corpus, config)
        await daemon.start()
        box["daemon"] = daemon
        box["loop"] = asyncio.get_running_loop()
        started.set()
        await daemon.serve_forever()

    def run() -> None:
        try:
            asyncio.run(main())
        except Exception as e:  # pragma: no cover - startup failure
            box["error"] = e
            started.set()

    thread = threading.Thread(target=run, name="advisor-daemon",
                              daemon=True)
    thread.start()
    if not started.wait(timeout) or "daemon" not in box:
        raise RuntimeError(
            f"daemon failed to start: {box.get('error')}")
    return DaemonHandle(box["daemon"], box["loop"], thread)
