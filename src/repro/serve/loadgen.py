"""Deterministic traffic replay: seeded zipf popularity, bursty
open-loop arrivals.

Serving systems are judged under *open-loop* load — arrivals follow a
schedule, not the server's pace, so a slow server grows a queue
instead of quietly slowing its own clients.  :func:`generate_trace`
builds the whole schedule up front from one seed:

* **matrix popularity** is zipf over the corpus names (rank ``r``
  drawn with probability ∝ ``r^-zipf_s``): a few matrices dominate,
  the long tail keeps the feature cache honest — the skew every
  production request log shows.
* **arrival times** alternate between a base Poisson process at
  ``rate`` req/s and burst windows at ``rate × burst_factor`` — the
  duty cycle is ``burst_duty`` of every ``burst_period`` seconds.
  Bursts are what admission control and micro-batching exist for.
* **client identities** round through ``clients`` token-bucket
  tenants.

Two calls with equal arguments return identical traces (the seeded
determinism test and the bench gate rely on it).  :func:`replay`
fires the trace at a live daemon and returns a
:class:`LoadgenReport`; ``python -m repro loadgen`` wraps it.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs.log import get_logger
from ..obs.trace import TRACER, new_span_id
from ..util.rng import as_rng
from .client import ServeUnavailable, post_json

__all__ = ["LoadgenReport", "TraceRequest", "generate_trace", "replay"]

log = get_logger("loadgen")


@dataclass(frozen=True)
class TraceRequest:
    """One scheduled request of a generated trace."""

    id: int
    t: float          # seconds after replay start (open-loop schedule)
    matrix: str
    client: str

    def to_dict(self) -> dict:
        return {"id": self.id, "t": round(self.t, 6),
                "matrix": self.matrix, "client": self.client}


def generate_trace(names, n: int, seed=0, rate: float = 200.0,
                   zipf_s: float = 1.1, burst_factor: float = 4.0,
                   burst_period: float = 0.5, burst_duty: float = 0.5,
                   clients: int = 4) -> list:
    """A deterministic open-loop request schedule over ``names``.

    ``rate`` is the *base* arrival rate; within the burst windows the
    instantaneous rate is ``rate * burst_factor``.  All randomness
    comes from ``seed`` via one PCG64 stream, so equal arguments yield
    byte-equal traces.
    """
    names = list(names)
    if not names:
        raise ValueError("generate_trace needs at least one matrix name")
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if rate <= 0 or burst_factor < 1 or clients < 1:
        raise ValueError(
            f"invalid rate={rate} burst_factor={burst_factor} "
            f"clients={clients}")
    if not 0.0 < burst_duty <= 1.0 or burst_period <= 0:
        raise ValueError(
            f"invalid burst_duty={burst_duty} burst_period={burst_period}")
    rng = as_rng(seed)
    ranks = np.arange(1, len(names) + 1, dtype=float)
    weights = ranks ** -float(zipf_s)
    weights /= weights.sum()
    picks = rng.choice(len(names), size=n, p=weights)
    client_ids = rng.integers(0, clients, size=n)
    # arrivals: exponential gaps whose rate depends on the phase of the
    # burst cycle at the *current* point in time (a thinned process)
    gaps = rng.exponential(1.0, size=n)
    trace = []
    t = 0.0
    for i in range(n):
        in_burst = (t % burst_period) < burst_period * burst_duty
        r = rate * burst_factor if in_burst else rate
        t += gaps[i] / r
        trace.append(TraceRequest(
            id=i, t=t, matrix=names[int(picks[i])],
            client=f"c{int(client_ids[i])}"))
    return trace


@dataclass
class LoadgenReport:
    """Client-side outcome of one open-loop replay."""

    requests: int = 0
    ok: int = 0
    rejected: dict = field(default_factory=dict)   # reason -> count
    errors: dict = field(default_factory=dict)     # reason -> count
    transport_failures: int = 0
    duration_s: float = 0.0
    offered_rps: float = 0.0
    achieved_rps: float = 0.0
    latency_ms: dict = field(default_factory=dict)
    responses: dict = field(default_factory=dict)  # id -> ok body
    batch_sizes: list = field(default_factory=list)

    @property
    def answered(self) -> int:
        """Requests that got *any* structured response."""
        return (self.ok + sum(self.rejected.values())
                + sum(self.errors.values()))

    def to_dict(self) -> dict:
        return {
            "requests": self.requests, "ok": self.ok,
            "rejected": dict(self.rejected),
            "errors": dict(self.errors),
            "transport_failures": self.transport_failures,
            "duration_s": round(self.duration_s, 4),
            "offered_rps": round(self.offered_rps, 2),
            "achieved_rps": round(self.achieved_rps, 2),
            "latency_ms": self.latency_ms,
            "mean_batch_size": (round(float(np.mean(self.batch_sizes)),
                                      3) if self.batch_sizes else 0.0),
        }

    def render(self) -> str:
        lines = [
            f"loadgen: {self.requests} request(s) in "
            f"{self.duration_s:.2f}s "
            f"(offered {self.offered_rps:.0f} rps, achieved "
            f"{self.achieved_rps:.0f} rps)",
            f"  ok={self.ok} rejected={sum(self.rejected.values())} "
            f"errors={sum(self.errors.values())} "
            f"transport_failures={self.transport_failures}",
        ]
        if self.rejected:
            lines.append("  rejects: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.rejected.items())))
        if self.latency_ms:
            lat = self.latency_ms
            lines.append(
                f"  latency ms: p50={lat['p50']} p95={lat['p95']} "
                f"p99={lat['p99']} max={lat['max']}")
        if self.batch_sizes:
            lines.append(
                f"  mean batch size seen by clients: "
                f"{float(np.mean(self.batch_sizes)):.2f}")
        return "\n".join(lines)


async def _replay_async(trace, host: str, port: int,
                        arch: str | None, kernel: str,
                        iterations: float | None, top: int | None,
                        timeout: float) -> LoadgenReport:
    report = LoadgenReport(requests=len(trace))
    latencies: list = []
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def fire(req: TraceRequest) -> None:
        delay = start + req.t - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        payload = {"id": req.id, "matrix": req.matrix,
                   "kernel": kernel, "client": req.client}
        if arch is not None:
            payload["arch"] = arch
        if iterations is not None:
            payload["iterations"] = iterations
        if top is not None:
            payload["top"] = top
        sid = trace_id = None
        if TRACER.enabled:
            # propagate this client span's identity so the daemon's
            # serve.request span joins the same trace (the merged
            # timeline then links client wait to server work)
            sid = new_span_id()
            trace_id = f"req-{sid}"
            payload["trace"] = {"trace_id": trace_id, "parent_id": sid}
        t0 = time.perf_counter()
        try:
            status, body = await post_json(host, port, "/advise",
                                           payload, timeout=timeout)
        except ServeUnavailable as e:
            report.transport_failures += 1
            log.debug("request %d failed: %s", req.id, e)
            return
        finally:
            if sid is not None:
                TRACER.record_span(
                    "loadgen.request", t0, time.perf_counter() - t0,
                    span_id=sid, trace_id=trace_id, id=req.id,
                    matrix=req.matrix, client=req.client)
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        if status == 200 and body.get("status") == "ok":
            report.ok += 1
            latencies.append(elapsed_ms)
            report.responses[req.id] = body
            report.batch_sizes.append(body.get("batch_size", 1))
        elif body.get("status") == "rejected":
            reason = body.get("reason", "unknown")
            report.rejected[reason] = report.rejected.get(reason, 0) + 1
        else:
            reason = body.get("reason", f"http_{status}")
            report.errors[reason] = report.errors.get(reason, 0) + 1

    await asyncio.gather(*(fire(r) for r in trace))
    report.duration_s = loop.time() - start
    span = trace[-1].t if trace else 0.0
    report.offered_rps = len(trace) / span if span > 0 else 0.0
    report.achieved_rps = (report.ok / report.duration_s
                           if report.duration_s > 0 else 0.0)
    if latencies:
        arr = np.asarray(latencies)
        report.latency_ms = {
            "p50": round(float(np.percentile(arr, 50)), 3),
            "p95": round(float(np.percentile(arr, 95)), 3),
            "p99": round(float(np.percentile(arr, 99)), 3),
            "mean": round(float(arr.mean()), 3),
            "max": round(float(arr.max()), 3),
        }
    return report


def replay(trace, host: str = "127.0.0.1", port: int = 8377,
           arch: str | None = None, kernel: str = "1d",
           iterations: float | None = None, top: int | None = None,
           timeout: float = 10.0) -> LoadgenReport:
    """Fire a generated trace at a live daemon (open-loop) and collect
    the client-side report.  Runs its own event loop; call from sync
    code only."""
    return asyncio.run(_replay_async(trace, host, port, arch, kernel,
                                     iterations, top, timeout))
