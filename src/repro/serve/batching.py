"""Request micro-batching: coalesce concurrent advise requests.

The advisor's batched path (:meth:`repro.advisor.service.Advisor.
advise_many`) amortizes thread-pool dispatch and shares cache locality
across a whole batch — but network clients arrive one request at a
time.  :class:`MicroBatcher` bridges the two: requests enqueue with a
future, a single drain loop collects them into batches bounded by
**max_batch** (size) and **max_linger_ms** (added latency), and each
batch is handed to an async ``flush`` callback whose results resolve
the futures in order.

The linger bound is the serving trade the whole subsystem is built
around: a request waits at most ``max_linger_ms`` for company, so
batching can only add a fixed, configured latency — under light load
batches degenerate to size 1 and the daemon behaves like the direct
library call; under load the queue fills while the previous batch is
in flight and batches grow toward ``max_batch`` with *no* added wait.

Observability: every batch feeds the ``serve.batch_size`` histogram
and every request's queue wait feeds ``serve.queue_wait_seconds`` —
the bench gate (``benchmarks/bench_serving.py``) asserts the mean
batch size exceeds 1 under load, which is the proof that batching
actually happens.
"""

from __future__ import annotations

import asyncio
import time

from ..obs.metrics import REGISTRY
from ..obs.trace import TRACER, new_span_id

__all__ = ["MicroBatcher"]

#: batch-size buckets: powers of two up to far beyond any sane
#: ``max_batch`` (fixed bounds keep histograms mergeable, see
#: :func:`repro.obs.metrics.log_buckets`)
BATCH_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

_BATCHES = REGISTRY.counter("serve.batches")
_BATCH_SIZES = REGISTRY.histogram("serve.batch_size",
                                  bounds=BATCH_BOUNDS)
_QUEUE_WAIT = REGISTRY.histogram("serve.queue_wait_seconds")

#: queue sentinel that tells the drain loop to finish up and exit
_STOP = object()


class MicroBatcher:
    """A bounded coalescing queue draining into an async batch callback.

    Parameters
    ----------
    flush:
        ``async callable(list[payload]) -> list[result]`` — must return
        one result per payload, in order.  An exception fails every
        request of that batch (each pending future gets it), never the
        batcher itself.
    max_batch:
        Largest batch handed to ``flush``.
    max_linger_ms:
        Longest a request waits for companions once it is at the head
        of an unfilled batch.
    """

    def __init__(self, flush, max_batch: int = 32,
                 max_linger_ms: float = 5.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_linger_ms < 0:
            raise ValueError(
                f"max_linger_ms must be >= 0, got {max_linger_ms}")
        self._flush = flush
        self.max_batch = int(max_batch)
        self.linger_s = float(max_linger_ms) / 1e3
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._closed = False
        self.batches = 0
        self.requests = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the drain loop on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._drain_loop(), name="microbatcher-drain")

    @property
    def depth(self) -> int:
        """Requests waiting in the queue (admission control reads
        this *before* enqueueing)."""
        return self._queue.qsize()

    async def submit(self, payload):
        """Enqueue one payload; resolves with ``(result, batch_size)``
        — the flush result plus the size of the micro-batch that
        carried it (serving responses report it to the client)."""
        if self._closed:
            raise RuntimeError("MicroBatcher is closed")
        fut = asyncio.get_running_loop().create_future()
        self.requests += 1
        self._queue.put_nowait((payload, fut, time.perf_counter()))
        return await fut

    async def close(self) -> None:
        """Stop accepting, drain everything queued, stop the loop."""
        if self._closed:
            if self._task is not None:
                await self._task
            return
        self._closed = True
        if self._task is not None:
            self._queue.put_nowait(_STOP)
            await self._task
            self._task = None

    # ------------------------------------------------------------------
    async def _drain_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            head = await self._queue.get()
            if head is _STOP:
                return
            batch = [head]
            stop = False
            deadline = loop.time() + self.linger_s
            while len(batch) < self.max_batch and not stop:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    # linger expired: take whatever is already waiting
                    while len(batch) < self.max_batch \
                            and not self._queue.empty():
                        item = self._queue.get_nowait()
                        if item is _STOP:
                            stop = True
                            break
                        batch.append(item)
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(),
                                                  timeout)
                except asyncio.TimeoutError:
                    break
                if item is _STOP:
                    stop = True
                    break
                batch.append(item)
            await self._run_batch(batch)
            if stop:
                # flush whatever arrived before close() won the race
                tail = []
                while not self._queue.empty():
                    item = self._queue.get_nowait()
                    if item is not _STOP:
                        tail.append(item)
                for i in range(0, len(tail), self.max_batch):
                    await self._run_batch(tail[i:i + self.max_batch])
                return

    async def _run_batch(self, batch: list) -> None:
        now = time.perf_counter()
        for payload, _, enqueued in batch:
            _QUEUE_WAIT.observe(now - enqueued)
            # with tracing on, each request's time-in-queue becomes a
            # span parented to its serve.request span (payloads that
            # carry no span_id — non-serving users — record nothing)
            if TRACER.enabled and getattr(payload, "span_id", None):
                TRACER.record_span(
                    "serve.queued", enqueued, now - enqueued,
                    span_id=new_span_id(), parent_id=payload.span_id,
                    trace_id=getattr(payload, "trace_id", None),
                    batch_size=len(batch))
        _BATCHES.inc()
        _BATCH_SIZES.observe(len(batch))
        self.batches += 1
        payloads = [payload for payload, _, _ in batch]
        try:
            results = await self._flush(payloads)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"flush returned {len(results)} results for "
                    f"{len(batch)} payloads")
        except Exception as e:  # noqa: BLE001 — failing the batch,
            for _, fut, _ in batch:     # never the drain loop
                if not fut.done():
                    fut.set_exception(e)
            return
        for (_, fut, _), result in zip(batch, results):
            if not fut.done():
                fut.set_result((result, len(batch)))
