"""``python -m repro serve`` / ``python -m repro loadgen``.

``serve`` boots the always-on advisor daemon: it builds (or loads) a
trained model exactly like ``repro advise`` does, generates the
resident corpus tier, and serves until SIGTERM/SIGINT, draining
queued requests before exit.  ``loadgen`` generates a seeded
zipf/bursty trace (:mod:`repro.serve.loadgen`) and replays it
open-loop against a running daemon, printing the client-side SLO
report.  Both honor the global ``--quiet``/``--verbose`` flags the
same way ``sweep``/``report`` do: data on stdout, status through the
``repro`` logger on stderr.
"""

from __future__ import annotations

import asyncio
import json
import os

from ..obs.log import get_logger

log = get_logger("cli")


def _load_or_train_model(args):
    """The ``advise`` CLI's model recipe, shared by ``serve``."""
    from ..advisor import AdvisorModel, train_model
    from ..harness.runner import OrderingCache
    from ..machine import get_architecture

    if args.model and os.path.exists(args.model):
        model = AdvisorModel.load(args.model)
        log.info("loaded model from %s (%s training rows)", args.model,
                 model.trained_on.get("rows", "?"))
        return model
    arch = get_architecture(args.arch)
    orderings = args.orderings.split(",") if args.orderings else None
    cache = OrderingCache(path=args.cache) if args.cache else None
    model = train_model(tier=args.train_tier, architectures=[arch],
                        orderings=orderings, cache=cache,
                        seed=args.seed, limit=args.train_limit)
    log.info("trained on %d rows (%s tier, %s)",
             model.trained_on["rows"], args.train_tier, arch.name)
    if args.model:
        model.save(args.model)
        log.info("saved model to %s", args.model)
    return model


def _cmd_serve(args) -> int:
    from ..advisor import Advisor
    from ..generators import build_corpus
    from ..obs import trace as obs_trace
    from ..obs.profiler import maybe_profile
    from .daemon import AdvisorDaemon, ServeConfig

    corpus = build_corpus(args.tier, seed=args.seed)
    if args.limit:
        corpus = corpus[:args.limit]
    model = _load_or_train_model(args)
    advisor = Advisor(model, iterations=args.iterations,
                      workers=args.workers)
    config = ServeConfig(
        host=args.host, port=args.port, default_arch=args.arch,
        max_batch=args.max_batch, linger_ms=args.linger_ms,
        queue_depth=args.queue_depth,
        rate=args.rate if args.rate > 0 else None, burst=args.burst,
        drain_timeout=args.drain_timeout)
    if args.trace:
        jsonl = args.trace + "l" if args.trace.endswith(".json") \
            else args.trace + ".jsonl"
        obs_trace.enable(jsonl_path=jsonl)

    async def main() -> None:
        daemon = AdvisorDaemon(advisor, corpus, config)
        await daemon.start()
        daemon.install_signal_handlers()
        # the actual bound port (port 0 picks a free one) is *data* —
        # wrappers parse it to find the daemon
        print(f"listening on http://{config.host}:{daemon.port}",
              flush=True)
        await daemon.serve_forever()

    # the daemon idles in the event loop, so profile wall clock —
    # the CPU-time 'prof' timer would never tick between requests
    with maybe_profile(args.profile, timer="real"):
        asyncio.run(main())
    advisor.close()
    if args.trace:
        nevents = obs_trace.TRACER.save(args.trace)
        obs_trace.disable()
        obs_trace.TRACER.clear()
        log.info("wrote %s (%d events; merge with the loadgen trace "
                 "via 'repro perf merge-trace')", args.trace, nevents)
    return 0


def _cmd_loadgen(args) -> int:
    from ..generators import build_corpus
    from ..obs import trace as obs_trace
    from .loadgen import generate_trace, replay

    if args.matrices:
        names = args.matrices.split(",")
    else:
        names = [e.name for e in build_corpus(args.tier,
                                              seed=args.seed)]
        if args.limit:
            names = names[:args.limit]
    trace = generate_trace(
        names, n=args.requests, seed=args.seed, rate=args.rate,
        zipf_s=args.zipf, burst_factor=args.burst_factor,
        burst_period=args.burst_period, burst_duty=args.burst_duty,
        clients=args.clients)
    log.info("replaying %d requests over %.2fs against %s:%d",
             len(trace), trace[-1].t, args.host, args.port)
    if args.trace_out:
        obs_trace.enable()
    report = replay(trace, host=args.host, port=args.port,
                    arch=args.arch, kernel=args.kernel,
                    iterations=args.iterations, top=args.top,
                    timeout=args.timeout)
    if args.trace_out:
        nevents = obs_trace.TRACER.save(args.trace_out)
        obs_trace.disable()
        obs_trace.TRACER.clear()
        log.info("wrote %s (%d client spans; merge with the server "
                 "trace via 'repro perf merge-trace')", args.trace_out,
                 nevents)
    print(report.render())
    if args.json:
        with open(args.json, "wt") as f:
            json.dump(report.to_dict(), f, indent=2, sort_keys=True)
        log.info("wrote %s", args.json)
    # transport failures mean the daemon was unreachable or hung;
    # structured rejects are the daemon working as designed
    return 1 if report.transport_failures else 0


def add_serve_parsers(sub) -> None:
    """Attach ``serve`` and ``loadgen`` to the main CLI subparsers."""
    p = sub.add_parser(
        "serve",
        help="run the always-on advisor daemon (micro-batching, "
             "admission control, /healthz + /metricsz)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8377,
                   help="listen port (0 picks a free port)")
    p.add_argument("--tier", default="tiny",
                   choices=("tiny", "small", "medium"),
                   help="resident corpus tier the daemon advises on")
    p.add_argument("--limit", type=int, default=None,
                   help="cap the number of resident matrices")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--arch", default="Milan B",
                   help="default architecture for requests that omit "
                        "one")
    p.add_argument("--model", default=None,
                   help="JSON model artifact to load (or save after "
                        "training)")
    p.add_argument("--train-tier", default="tiny",
                   choices=("tiny", "small", "medium"))
    p.add_argument("--train-limit", type=int, default=None,
                   help="cap the number of training matrices")
    p.add_argument("--orderings", default="",
                   help="comma-separated candidate orderings "
                        "(default: all six)")
    p.add_argument("--iterations", type=float, default=None,
                   help="default SpMV iteration budget for cost "
                        "gating")
    p.add_argument("--cache", default=None,
                   help="directory for the training ordering cache")
    p.add_argument("--workers", type=int, default=None,
                   help="advisor thread-pool size for batched "
                        "feature extraction")
    p.add_argument("--max-batch", type=int, default=32,
                   help="largest micro-batch handed to advise_many")
    p.add_argument("--linger-ms", type=float, default=5.0,
                   help="max milliseconds a request waits to be "
                        "batched")
    p.add_argument("--queue-depth", type=int, default=128,
                   help="queued requests beyond this are shed (429)")
    p.add_argument("--rate", type=float, default=50.0,
                   help="per-client admission tokens/second "
                        "(0 disables rate limiting)")
    p.add_argument("--burst", type=float, default=20.0,
                   help="per-client token-bucket capacity")
    p.add_argument("--drain-timeout", type=float, default=5.0,
                   help="grace seconds for queued work on "
                        "SIGTERM/SIGINT")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="record request/queue/advisor spans and write "
                        "a Chrome trace (plus .jsonl sidecar) on exit")
    p.add_argument("--profile", default=None, metavar="PATH",
                   help="sample the daemon (wall-clock timer) and "
                        "write collapsed flamegraph stacks on exit")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="replay a seeded zipf/bursty trace against a running "
             "daemon (open loop)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8377)
    p.add_argument("--tier", default="tiny",
                   choices=("tiny", "small", "medium"),
                   help="corpus tier to draw matrix names from "
                        "(must match the daemon's)")
    p.add_argument("--limit", type=int, default=None,
                   help="cap the number of matrix names")
    p.add_argument("--matrices", default="",
                   help="comma-separated matrix names (overrides "
                        "--tier)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--requests", type=int, default=200,
                   help="trace length")
    p.add_argument("--rate", type=float, default=200.0,
                   help="base arrival rate, requests/second")
    p.add_argument("--zipf", type=float, default=1.1,
                   help="zipf popularity exponent")
    p.add_argument("--burst-factor", type=float, default=4.0,
                   help="arrival-rate multiplier inside burst windows")
    p.add_argument("--burst-period", type=float, default=0.5,
                   help="seconds per burst cycle")
    p.add_argument("--burst-duty", type=float, default=0.5,
                   help="fraction of each cycle spent bursting")
    p.add_argument("--clients", type=int, default=4,
                   help="distinct admission-control identities")
    p.add_argument("--arch", default=None,
                   help="architecture for every request (default: "
                        "the daemon's default)")
    p.add_argument("--kernel", default="1d", choices=("1d", "2d"))
    p.add_argument("--iterations", type=float, default=None)
    p.add_argument("--top", type=int, default=None)
    p.add_argument("--timeout", type=float, default=10.0,
                   help="per-request client timeout in seconds")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the machine-readable report")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="record one client span per request and write "
                        "a Chrome trace to merge with the server's")
    p.set_defaults(func=_cmd_loadgen)
