"""Iterative solver loops built on the scheduled SpMV kernels.

The paper scores reorderings on a single SpMV iteration; real
workloads run *hundreds* of them on one reordered matrix inside a
solver loop, which is where reordering cost amortises (Table 5).  This
module provides the two classic loops:

* :func:`cg` — conjugate gradients for symmetric positive definite
  operators;
* :func:`jacobi` — the Jacobi fixed-point iteration
  ``x += D⁻¹(b − A·x)``, convergent for diagonally dominant systems.

Both build their thread schedule **once** via
:func:`repro.spmv.schedule.get_schedule` and reuse it every iteration
— the per-iteration reuse of the reordered matrix that makes solver
workloads score differently from one-shot SpMV in
:mod:`repro.machine.workloads`.

Determinism: the right-hand side comes from :func:`seeded_rhs`
(``np.random.default_rng``), every reduction is a fixed-order numpy
operation, and results carry the full iterate history and residual
norms, so two interpreters — even under different ``PYTHONHASHSEED``
— produce bit-identical :class:`SolverResult` contents (asserted by
``tests/solvers/test_determinism.py``).

Failure is typed, never silent: non-square/non-finite inputs, a zero
Jacobi diagonal, CG on an indefinite operator, and diverging iterates
all raise :class:`repro.errors.SolverError` instead of looping on
NaNs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SolverError
from ..matrix.csr import CSRMatrix
from ..spmv.kernels import spmv_1d, spmv_2d
from ..spmv.schedule import get_schedule

#: default iteration caps (CG converges in <= n exact-arithmetic steps;
#: Jacobi is linear, so it gets a flat generous cap)
CG_MAXITER_FACTOR = 2
JACOBI_DEFAULT_MAXITER = 1000
DEFAULT_TOL = 1e-10


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one solver run, with full convergence history."""

    solver: str                 # "cg" | "jacobi"
    x: np.ndarray               # final iterate
    iterations: int             # SpMV applications performed
    converged: bool
    residual_norms: np.ndarray  # per-iteration ||r||, incl. initial
    iterates: np.ndarray        # (iterations+1, n) history, incl. x0
    kernel: str                 # schedule kind the SpMVs ran under
    nthreads: int

    @property
    def final_residual(self) -> float:
        return float(self.residual_norms[-1])


def seeded_rhs(a: CSRMatrix, seed: int = 0) -> np.ndarray:
    """The deterministic right-hand side solver workloads default to."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(a.nrows)


# ----------------------------------------------------------------------
# small helpers, module-level so the mutation smoke can patch them
# ----------------------------------------------------------------------
def _residual_norm(r: np.ndarray) -> float:
    return float(np.linalg.norm(r))


def _snapshot(x: np.ndarray) -> np.ndarray:
    return x.copy()


def _inv_diag(a: CSRMatrix) -> np.ndarray:
    """1/diag(A), summing duplicate diagonal entries; zero → error."""
    d = np.zeros(a.nrows)
    on_diag = a.colidx == a.row_of_entry()
    np.add.at(d, a.row_of_entry()[on_diag], a.values[on_diag])
    if np.any(d == 0.0):
        bad = int(np.flatnonzero(d == 0.0)[0])
        raise SolverError(
            f"jacobi needs a nonzero diagonal; row {bad} has none")
    return 1.0 / d


def _jacobi_residual(b: np.ndarray, y: np.ndarray) -> np.ndarray:
    return b - y


def _apply(a: CSRMatrix, x: np.ndarray, schedule) -> np.ndarray:
    """One SpMV under the solver's cached schedule."""
    if schedule.kind == "1d":
        return spmv_1d(a, x, schedule)
    return spmv_2d(a, x, schedule)


def _setup(a: CSRMatrix, b, seed: int, kind: str, nthreads: int,
           solver: str):
    if not a.is_square:
        raise SolverError(
            f"{solver} needs a square operator, got {a.nrows}x{a.ncols}")
    if b is None:
        b = seeded_rhs(a, seed)
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (a.nrows,):
        raise SolverError(
            f"{solver}: rhs has shape {b.shape}, expected ({a.nrows},)")
    if b.size and not np.all(np.isfinite(b)):
        raise SolverError(f"{solver}: rhs contains non-finite values")
    schedule = get_schedule(a, kind, nthreads)
    return b, schedule


def _finish(solver: str, x, iterations: int, converged: bool, norms,
            iterates, kind: str, nthreads: int) -> SolverResult:
    return SolverResult(
        solver=solver, x=x, iterations=iterations, converged=converged,
        residual_norms=np.array(norms),
        iterates=(np.array(iterates).reshape(len(iterates), x.size)),
        kernel=kind, nthreads=nthreads)


# ----------------------------------------------------------------------
# the solvers
# ----------------------------------------------------------------------
def cg(a: CSRMatrix, b: np.ndarray | None = None, *, seed: int = 0,
       kind: str = "1d", nthreads: int = 1, tol: float = DEFAULT_TOL,
       maxiter: int | None = None) -> SolverResult:
    """Conjugate gradients on an SPD operator.

    Converges when ``||r|| <= tol * ||b||``.  Raises
    :class:`SolverError` on breakdown (``p·Ap <= 0`` signals an
    indefinite operator) or non-finite iterates.
    """
    b, schedule = _setup(a, b, seed, kind, nthreads, "cg")
    if maxiter is None:
        maxiter = CG_MAXITER_FACTOR * a.nrows + 10
    x = np.zeros(a.nrows)
    r = b.copy()                      # r0 = b - A·0
    p = r.copy()
    rs = float(r @ r)
    bnorm = _residual_norm(b)
    norms = [_residual_norm(r)]
    iterates = [_snapshot(x)]
    if bnorm == 0.0:                  # all-zero RHS: x = 0 is exact
        return _finish("cg", x, 0, True, norms, iterates, kind, nthreads)
    converged = norms[-1] <= tol * bnorm
    it = 0
    while not converged and it < maxiter:
        q = _apply(a, p, schedule)
        pap = float(p @ q)
        if not np.isfinite(pap) or pap <= 0.0:
            raise SolverError(
                f"cg breakdown at iteration {it}: p·Ap = {pap!r} "
                "(operator is not positive definite)")
        alpha = rs / pap
        x = x + alpha * p
        r = r - alpha * q
        rs_new = float(r @ r)
        if not np.isfinite(rs_new):
            raise SolverError(
                f"cg diverged at iteration {it}: residual is non-finite")
        it += 1
        norms.append(_residual_norm(r))
        iterates.append(_snapshot(x))
        converged = norms[-1] <= tol * bnorm
        beta = rs_new / rs
        p = r + beta * p
        rs = rs_new
    return _finish("cg", x, it, converged, norms, iterates, kind, nthreads)


def jacobi(a: CSRMatrix, b: np.ndarray | None = None, *, seed: int = 0,
           kind: str = "1d", nthreads: int = 1, tol: float = DEFAULT_TOL,
           maxiter: int | None = None) -> SolverResult:
    """Jacobi iteration ``x += D⁻¹(b − A·x)``.

    Convergent for (strictly) diagonally dominant systems; a zero
    diagonal or diverging iterates raise :class:`SolverError`.
    """
    b, schedule = _setup(a, b, seed, kind, nthreads, "jacobi")
    if maxiter is None:
        maxiter = JACOBI_DEFAULT_MAXITER
    inv_d = _inv_diag(a)
    x = np.zeros(a.nrows)
    bnorm = _residual_norm(b)
    r = _jacobi_residual(b, _apply(a, x, schedule))
    norms = [_residual_norm(r)]
    iterates = [_snapshot(x)]
    if bnorm == 0.0:
        return _finish("jacobi", x, 0, True, norms, iterates, kind,
                       nthreads)
    converged = norms[-1] <= tol * bnorm
    it = 0
    while not converged and it < maxiter:
        x = x + r * inv_d
        if not np.all(np.isfinite(x)):
            raise SolverError(
                f"jacobi diverged at iteration {it}: iterate is "
                "non-finite (operator is not diagonally dominant?)")
        r = _jacobi_residual(b, _apply(a, x, schedule))
        it += 1
        norms.append(_residual_norm(r))
        iterates.append(_snapshot(x))
        converged = norms[-1] <= tol * bnorm
    return _finish("jacobi", x, it, converged, norms, iterates, kind,
                   nthreads)


SOLVERS = {"cg": cg, "jacobi": jacobi}
