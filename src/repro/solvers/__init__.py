"""Iterative solver workloads over the reordered matrix (ROADMAP 2).

CG and Jacobi loops that reuse one thread schedule across all
iterations — the amortisation setting in which reordering cost pays
off.  Scored (without execution) by the same machine model as SpMV via
:mod:`repro.machine.workloads`.
"""

from .iterative import (
    SOLVERS,
    SolverResult,
    cg,
    jacobi,
    seeded_rhs,
)

__all__ = [
    "SOLVERS",
    "SolverResult",
    "cg",
    "jacobi",
    "seeded_rhs",
]
