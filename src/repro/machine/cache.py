"""Exact LRU set-associative cache simulator.

Used to validate the analytical model's x-vector reuse term on small
matrices, and available to users who want exact miss counts.  This is a
straightforward reference implementation (Python dict per set), not a
performance-oriented one — the analytical model exists precisely
because simulating every access for 490 matrices × 8 machines would be
intractable.
"""

from __future__ import annotations

import numpy as np

from ..errors import ArchitectureError
from ..matrix.csr import CSRMatrix
from ..obs import cachestats
from .reuse import prev_occurrence, stack_distances


class LRUCache:
    """A size/line/associativity-parameterised LRU cache.

    ``access(addr)`` returns True on hit.  Addresses are byte addresses;
    each access touches exactly one line (the model's accesses are
    8-byte loads, which never straddle 64-byte lines when 8-aligned).
    """

    def __init__(self, size: int, line_size: int = 64,
                 associativity: int = 8) -> None:
        if size <= 0 or line_size <= 0 or associativity <= 0:
            raise ArchitectureError("cache parameters must be positive")
        if size % (line_size * associativity):
            raise ArchitectureError(
                f"cache size {size} not divisible by line*assoc "
                f"({line_size}*{associativity})")
        self.size = size
        self.line_size = line_size
        self.associativity = associativity
        self.nsets = size // (line_size * associativity)
        # per set: dict tag -> timestamp (dicts preserve insertion order,
        # but we need recency order, so store an explicit clock)
        self._sets = [dict() for _ in range(self.nsets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def stats(self) -> dict:
        """Counters in the shared cache-stats schema
        (:data:`repro.obs.CACHE_STATS_KEYS`), like every other cache in
        the code base.  ``size_bytes`` is the resident line footprint."""
        resident = sum(len(s) for s in self._sets)
        return cachestats.cache_stats(
            hits=self.hits, misses=self.misses, evictions=self.evictions,
            size_bytes=resident * self.line_size)

    def flush(self) -> None:
        for s in self._sets:
            s.clear()

    def access(self, addr: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = addr // self.line_size
        set_idx = line % self.nsets
        tag = line // self.nsets
        ways = self._sets[set_idx]
        self._clock += 1
        if tag in ways:
            ways[tag] = self._clock
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.associativity:
            victim = min(ways, key=ways.get)
            del ways[victim]
            self.evictions += 1
        ways[tag] = self._clock
        return False

    def access_many(self, addrs) -> int:
        """Access a sequence of addresses; returns the miss count.

        A fully-associative cache starting from an empty state takes a
        vectorised path: exact LRU stack distances (an access hits iff
        its distance is below the associativity) computed from the
        previous-occurrence array, with the final cache state — tags,
        recency order and clock — reconstructed exactly as the
        per-access loop would leave them.  Set-associative caches (or a
        warm fully-associative one) fall back to the per-access
        reference loop; the two paths are cross-checked in the tests.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        if (self.nsets == 1 and not self._sets[0] and addrs.size):
            return self._access_many_full_assoc(addrs)
        before = self.misses
        for a in addrs:
            self.access(int(a))
        return self.misses - before

    def _access_many_full_assoc(self, addrs: np.ndarray) -> int:
        """Vectorised trace replay for an *empty* fully-associative
        cache.  With one set, tag == line, and LRU hit/miss depends
        only on the stack distance: access ``i`` hits iff the number of
        distinct lines since its previous occurrence is below the
        associativity (cold accesses miss)."""
        lines = addrs // self.line_size
        prev = prev_occurrence(lines)
        dist = stack_distances(prev)
        hit = (dist >= 0) & (dist < self.associativity)
        n = int(lines.size)
        nhits = int(np.count_nonzero(hit))
        self.hits += nhits
        misses = n - nhits
        self.misses += misses
        # every miss inserts a line; starting from empty, whatever does
        # not remain resident at the end was evicted along the way
        ndistinct = int(np.count_nonzero(prev < 0))
        self.evictions += misses - min(self.associativity, ndistinct)
        # exact end state: the loop leaves the associativity most
        # recently used distinct lines, stamped with the clock of each
        # line's last access (clock0 + position + 1)
        clock0 = self._clock
        has_next = np.zeros(n, dtype=bool)
        has_next[prev[prev >= 0]] = True
        last_pos = np.flatnonzero(~has_next)  # ascending == recency order
        ways = self._sets[0]
        for p in last_pos[-self.associativity:]:
            ways[int(lines[p])] = clock0 + int(p) + 1
        self._clock = clock0 + n
        return misses


def simulate_x_misses(a: CSRMatrix, cache: LRUCache,
                      x_base: int = 0) -> int:
    """Exact miss count for the x-vector loads of a sequential SpMV.

    Only x accesses go through the cache (matrix data is streaming and
    assumed never to fit, which is also what the analytical model
    assumes).  Returns total misses over one full SpMV sweep.
    """
    cache.reset_counters()
    addrs = x_base + a.colidx * 8
    return cache.access_many(addrs)
