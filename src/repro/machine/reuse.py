"""Reuse-distance sufficient statistics for the performance model.

Profiling a serial tiny sweep shows the dominant cost of a full
(matrix x ordering x architecture x kernel) grid is no longer the
reordering algorithms but :meth:`PerfModel.predict`: the windowed
working-set model re-derives cache-line ids and per-window distinct
counts from the same column stream once per thread, per architecture
and per kernel, even though those statistics depend only on the
*order* of the stream — they are architecture-independent.

This module computes the order-dependent statistics once per
(matrix, ordering) and serves every architecture / kernel / thread
count from them:

* :func:`prev_occurrence` — one stable argsort over the cache-line id
  stream yields, for every access, the index of the previous access to
  the same line (``-1`` for first occurrences).
* :func:`distinct_count` / :func:`windowed_distinct_loads` — with the
  previous-occurrence array, the number of distinct lines in any window
  ``[s, e)`` is the count of positions whose previous occurrence falls
  before ``s``.  This replaces the per-window ``np.unique`` loop of the
  model with O(nnz) vectorised work whose result is **bit-identical**
  to the loop (both count exactly the first occurrence of each line
  inside each window).
* :func:`stack_distances` — exact fully-associative LRU stack
  distances, computed with a vectorised merge-counting pass (no
  per-access Python loop); used by the cache simulator's fast path.
* :class:`ReuseStats` — the memoised per-matrix container threaded
  through ``simulate_measurement`` and ``PerfModel.predict_many`` so
  line ids, previous occurrences and row-length-change prefix sums are
  shared across all cells of one (matrix, ordering).

Build/hit counters live in the process-global
:data:`repro.obs.REGISTRY` (``reuse.builds`` / ``reuse.hits`` /
``reuse.bytes``) so the sweep engine can prove in
``sweep_metrics.json`` how much recomputation the fast path removed;
``COUNTERS`` remains as a live read-only view with the legacy key
names for existing tests, benchmarks and dashboards.
"""

from __future__ import annotations

import numpy as np

from ..obs import cachestats
from ..obs.metrics import REGISTRY, CounterView

_BUILDS = REGISTRY.counter("reuse.builds")
_HITS = REGISTRY.counter("reuse.hits")
_BYTES = REGISTRY.counter("reuse.bytes")

#: live view over the registry counters under their legacy key names;
#: the sweep engine snapshots it around each task and reports the
#: delta in ``sweep_metrics.json``.
COUNTERS = CounterView({"reuse_builds": _BUILDS, "reuse_hits": _HITS})


def counters_snapshot() -> dict:
    """A plain-dict copy of the current counter values."""
    return dict(COUNTERS)


def reuse_cache_stats() -> dict:
    """The memoised-statistics cache in the shared cache-stats schema.

    A *build* is a miss (the statistics had to be derived), a served
    memoised array is a hit; the cache is unbounded per matrix object
    (entries die with their matrix), so ``evictions`` is always 0.
    ``size_bytes`` accumulates the bytes of every built
    previous-occurrence array.
    """
    return cachestats.cache_stats(hits=_HITS.value, misses=_BUILDS.value,
                                  evictions=0, size_bytes=_BYTES.value)


# ----------------------------------------------------------------------
# core primitives
# ----------------------------------------------------------------------
def prev_occurrence(stream: np.ndarray) -> np.ndarray:
    """Index of the previous occurrence of every element, else ``-1``.

    ``prev[i] = max{j < i : stream[j] == stream[i]}`` or ``-1`` when no
    such ``j`` exists.  One stable argsort groups equal values while
    keeping their positions in increasing order, so consecutive entries
    of the sorted permutation with equal values are exactly the
    (previous, next) occurrence pairs.
    """
    stream = np.asarray(stream)
    n = stream.size
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = np.argsort(stream, kind="stable")
    svals = stream[order]
    same = svals[1:] == svals[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def distinct_count(prev: np.ndarray, lo: int = 0, hi: int | None = None) -> int:
    """Number of distinct values in ``stream[lo:hi]``.

    Equals ``np.unique(stream[lo:hi]).size``: an element is the first
    occurrence of its value inside the slice exactly when its previous
    occurrence falls before ``lo``.
    """
    hi = prev.size if hi is None else hi
    return int(np.count_nonzero(prev[lo:hi] < lo))


def windowed_distinct_loads(prev: np.ndarray, window: int, lo: int = 0,
                            hi: int | None = None,
                            positions: np.ndarray | None = None) -> int:
    """Sum of per-window distinct counts over ``stream[lo:hi]``.

    The slice is split into consecutive windows of ``window`` elements
    (the last one truncated) and each window contributes its distinct
    value count — bit-identical to running ``np.unique`` per window:
    position ``i`` is a first occurrence within its window exactly when
    ``prev[i]`` falls before the window start.

    ``positions`` may supply a preallocated ``arange`` of length at
    least ``hi - lo`` to avoid the allocation on hot paths.
    """
    hi = prev.size if hi is None else hi
    n = hi - lo
    if n <= 0:
        return 0
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    pos = (np.arange(n, dtype=np.int64) if positions is None
           else positions[:n])
    wstart = lo + (pos // window) * window
    return int(np.count_nonzero(prev[lo:hi] < wstart))


def _rank_before(values: np.ndarray) -> np.ndarray:
    """For every ``i``: ``#{j < i : values[j] <= values[i]}``.

    Bottom-up merge counting: at each level, adjacent blocks of size
    ``s`` are merged pairwise with one global lexsort; inside each pair
    a left-block element sorts before a right-block element of equal
    value (``is_right`` tie-break), so a cumulative count of left
    elements gives each right element its ``<=`` contribution.  Every
    ordered pair ``(j, i)`` meets in sibling blocks at exactly one
    level, so the contributions sum to the exact rank.  O(log n)
    vectorised passes, no per-element Python loop.
    """
    v = np.asarray(values)
    n = v.size
    rank = np.zeros(n, dtype=np.int64)
    if n < 2:
        return rank
    idx = np.arange(n, dtype=np.int64)
    size = 1
    while size < n:
        pair = idx // (2 * size)
        is_right = (idx // size) & 1
        order = np.lexsort((is_right, v, pair))
        left_sorted = 1 - is_right[order]
        csum = np.cumsum(left_sorted)
        pair_sorted = pair[order]
        seg_first = np.empty(n, dtype=bool)
        seg_first[0] = True
        seg_first[1:] = pair_sorted[1:] != pair_sorted[:-1]
        starts = np.flatnonzero(seg_first)
        base_vals = np.where(starts > 0, csum[np.maximum(starts - 1, 0)], 0)
        base = base_vals[np.cumsum(seg_first) - 1]
        # left elements earlier in this pair's merged order
        contrib = csum - left_sorted - base
        right_positions = order[is_right[order] == 1]
        rank[right_positions] += contrib[is_right[order] == 1]
        size *= 2
    return rank


def stack_distances(prev: np.ndarray) -> np.ndarray:
    """Exact LRU stack distance of every access of a reference stream.

    ``dist[i]`` is the number of *distinct* values accessed strictly
    between the previous occurrence of ``stream[i]`` and position
    ``i``; first occurrences get ``-1`` (cold).  A fully-associative
    LRU cache of capacity ``C`` (starting empty) hits access ``i``
    exactly when ``0 <= dist[i] < C``.

    Derivation: with ``p = prev[i] >= 0``, the distinct values in
    ``(p, i)`` are the positions ``j`` there whose own previous
    occurrence satisfies ``prev[j] <= p``.  Because ``prev[j] < j``
    always holds, *every* ``j <= p`` also satisfies ``prev[j] <= p``,
    so ``#{j < i : prev[j] <= p} = (p + 1) + dist[i]`` — one
    rank-before query on the ``prev`` array itself.
    """
    prev = np.asarray(prev, dtype=np.int64)
    dist = np.full(prev.size, -1, dtype=np.int64)
    if prev.size == 0:
        return dist
    rank = _rank_before(prev)
    warm = prev >= 0
    dist[warm] = rank[warm] - (prev[warm] + 1)
    return dist


# ----------------------------------------------------------------------
# per-(matrix, ordering) container
# ----------------------------------------------------------------------
class ReuseStats:
    """Order-dependent, architecture-independent model statistics.

    One instance is memoised per matrix object (each (matrix, ordering)
    pair of a sweep is its own :class:`~repro.matrix.csr.CSRMatrix`
    instance), so the statistics are computed once and shared across
    all architectures, kernels and thread counts evaluated on it.

    Everything is built lazily: :meth:`prev` keys the line-id and
    previous-occurrence arrays by words-per-line (64-byte lines hold 8
    x-vector doubles on every Table 2 machine, but the key keeps
    non-standard line sizes correct), and :meth:`row_change_count`
    serves any row range from one prefix sum over the row-length
    change indicators.
    """

    #: attribute used to memoise the instance on the matrix object;
    #: ``CSRMatrix.__getstate__`` drops ``_cache_*`` attributes so
    #: pickled matrices (process-pool fan-out) do not ship the caches.
    _ATTR = "_cache_reuse_stats"

    def __init__(self, a) -> None:
        self.matrix = a
        self._lines: dict = {}
        self._prev: dict = {}
        self._positions: np.ndarray | None = None
        self._row_change_prefix: np.ndarray | None = None

    @classmethod
    def for_matrix(cls, a) -> "ReuseStats":
        """The memoised statistics of ``a`` (built on first request)."""
        stats = getattr(a, cls._ATTR, None)
        if stats is None:
            stats = cls(a)
            object.__setattr__(a, cls._ATTR, stats)
        return stats

    # -- column-stream statistics -------------------------------------
    def lines(self, words_per_line: int) -> np.ndarray:
        """Cache-line id of every stored entry's column index."""
        cached = self._lines.get(words_per_line)
        if cached is None:
            cached = self.matrix.colidx // words_per_line
            self._lines[words_per_line] = cached
        return cached

    def prev(self, words_per_line: int) -> np.ndarray:
        """Previous-occurrence array of the cache-line id stream."""
        cached = self._prev.get(words_per_line)
        if cached is None:
            _BUILDS.inc()
            cached = prev_occurrence(self.lines(words_per_line))
            _BYTES.inc(int(cached.nbytes))
            self._prev[words_per_line] = cached
        else:
            _HITS.inc()
        return cached

    def positions(self, n: int) -> np.ndarray:
        """A shared ``arange`` scratch array of length at least ``n``."""
        if self._positions is None or self._positions.size < n:
            self._positions = np.arange(max(n, self.matrix.nnz),
                                        dtype=np.int64)
        return self._positions[:n]

    # -- row-structure statistics -------------------------------------
    def row_change_prefix(self) -> np.ndarray:
        """Prefix sums of the row-length change indicators.

        ``prefix[k]`` counts adjacent row pairs ``(i, i+1)`` with
        differing lengths among rows ``0..k``; any row range's change
        count is one subtraction away.
        """
        if self._row_change_prefix is None:
            lengths = np.diff(self.matrix.rowptr)
            prefix = np.zeros(max(lengths.size, 1), dtype=np.int64)
            if lengths.size > 1:
                np.cumsum(lengths[1:] != lengths[:-1], out=prefix[1:])
            self._row_change_prefix = prefix
        return self._row_change_prefix

    def row_change_count(self, row_lo: int, row_hi: int) -> int:
        """Number of adjacent row-length changes in rows [row_lo, row_hi).

        Bit-identical to
        ``np.count_nonzero(np.diff(np.diff(rowptr[row_lo:row_hi+1])))``.
        """
        if row_hi - row_lo < 2:
            return 0
        p = self.row_change_prefix()
        return int(p[row_hi - 1] - p[row_lo])

    def prepare(self, words_per_lines=(8,)) -> "ReuseStats":
        """Force materialisation of the lazy arrays (for stage timing)."""
        from ..obs.trace import span

        with span("reuse.build", nnz=self.matrix.nnz,
                  line_sizes=list(words_per_lines)):
            for wpl in words_per_lines:
                self.prev(wpl)
            self.row_change_prefix()
        return self
