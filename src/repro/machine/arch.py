"""The eight multicore architectures of the study (paper Table 2)."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ArchitectureError

KiB = 1024
MiB = 1024 * 1024
GB = 1e9


@dataclass(frozen=True)
class Architecture:
    """One row of Table 2.

    Cache sizes are in bytes; ``bandwidth`` is the total machine
    memory bandwidth in bytes/second; ``freq_ghz`` is the sustained
    (boost-range midpoint) clock used for instruction-overhead terms.
    """

    name: str
    cpu: str
    isa: str
    microarch: str
    sockets: int
    cores: int            # total cores across sockets
    freq_ghz: float
    l1d_per_core: int
    l2_per_core: int
    l3_per_socket: int
    bandwidth: float      # total bytes/s
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.sockets <= 0:
            raise ArchitectureError(
                f"{self.name}: cores and sockets must be positive")
        if self.cores % self.sockets:
            raise ArchitectureError(
                f"{self.name}: cores ({self.cores}) not divisible by "
                f"sockets ({self.sockets})")
        if self.bandwidth <= 0 or self.freq_ghz <= 0:
            raise ArchitectureError(
                f"{self.name}: bandwidth and frequency must be positive")

    @property
    def cores_per_socket(self) -> int:
        return self.cores // self.sockets

    @property
    def threads(self) -> int:
        """Thread count used in the study: one per core."""
        return self.cores

    @property
    def l3_total(self) -> int:
        return self.l3_per_socket * self.sockets

    def per_thread_bandwidth(self, active_threads: int) -> float:
        """Memory bandwidth available to each of ``active_threads``
        threads streaming simultaneously (even contention split)."""
        return self.bandwidth / max(min(active_threads, self.cores), 1)

    def per_thread_cache(self) -> int:
        """Private L2 plus this core's share of the socket L3 — the
        capacity the performance model assumes for x-vector reuse."""
        return self.l2_per_core + self.l3_per_socket // self.cores_per_socket

    @property
    def gp_parts(self) -> int:
        """Partition count for the GP ordering on this machine (§3.3:
        parts are matched to the core count)."""
        return self.cores


def _arch(name, cpu, isa, micro, sockets, cores_per_socket, freq, l1d_kib,
          l2_kib, l3_mib, bw_gbs) -> Architecture:
    return Architecture(
        name=name, cpu=cpu, isa=isa, microarch=micro, sockets=sockets,
        cores=sockets * cores_per_socket, freq_ghz=freq,
        l1d_per_core=l1d_kib * KiB, l2_per_core=l2_kib * KiB,
        l3_per_socket=l3_mib * MiB, bandwidth=bw_gbs * GB)


#: Table 2, one entry per machine, in the paper's column order.
TABLE2 = {
    a.name: a for a in [
        _arch("Skylake", "Intel Xeon Gold 6130", "x86-64", "Skylake",
              2, 16, 2.8, 32, 1024, 22, 256.0),
        _arch("Ice Lake", "Intel Xeon Platinum 8360Y", "x86-64", "Ice Lake",
              2, 36, 3.0, 48, 1280, 54, 409.6),
        _arch("Naples", "AMD Epyc 7601", "x86-64", "Zen",
              2, 32, 3.0, 32, 512, 64, 342.0),
        _arch("Rome", "AMD Epyc 7302P", "x86-64", "Zen 2",
              1, 16, 2.4, 32, 512, 16, 204.8),
        _arch("Milan A", "AMD Epyc 7413", "x86-64", "Zen 3",
              2, 24, 3.0, 32, 512, 128, 409.6),
        _arch("Milan B", "AMD Epyc 7763", "x86-64", "Zen 3",
              2, 64, 3.0, 32, 512, 256, 409.6),
        _arch("TX2", "Cavium TX2 CN9980", "ARMv8.1", "Vulcan",
              2, 32, 2.2, 32, 256, 32, 342.0),
        _arch("Hi1620", "HiSilicon Kunpeng 920-6426", "ARMv8.2",
              "TaiShan v110", 2, 64, 2.6, 64, 512, 64, 342.0),
    ]
}


def get_architecture(name: str) -> Architecture:
    """Look up a Table 2 architecture by name."""
    if name not in TABLE2:
        raise ArchitectureError(
            f"unknown architecture {name!r}; known: {sorted(TABLE2)}")
    return TABLE2[name]


def architecture_names() -> list:
    """The eight architecture names in Table 2 order."""
    return list(TABLE2)
