"""Analytical multicore SpMV performance model.

The model predicts the execution time of one scheduled SpMV iteration
on a Table 2 architecture from first principles, using the two effects
the paper identifies as decisive (§4.4–4.5):

1. **Load balance** — per-thread times are computed independently and
   the iteration time is their maximum (static schedule, barrier at the
   end).  An imbalanced 1D row split therefore directly stretches the
   predicted time.

2. **Data locality** — x-vector gathers are estimated with a *windowed
   working-set model* against the per-core L2: if all x-lines a thread
   touches fit, each line is fetched once per iteration; otherwise the
   access stream is split into cache-sized windows and every window
   refetches its distinct lines.  Orderings that cluster column
   accesses (GP, HP, RCM) shrink the per-window distinct-line count and
   thus x traffic — the model's counterpart of the off-diagonal
   nonzero/edge-cut feature (§4.5, key finding 5).

Where that traffic is served from follows the paper's observation that
most of the 490 matrices fit in last-level cache (§4.1: only 77 exceed
the largest LLC): the combined working set (CSR arrays + x) is resident
in the scaled LLC with fraction ``resid``; that fraction of the traffic
moves at LLC bandwidth (``L3_BANDWIDTH_MULT`` × DRAM) and the rest at
the contended DRAM share.  Cache-resident matrices therefore see
*muted* ordering effects and LLC-exceeding ones the full effect —
reproducing both the paper's mild medians and its extreme outliers.

On top of the bandwidth roofline sits a compute roofline:
``cpi·nnz + c_row·rows + c_mispredict·(row-length changes)`` cycles —
the last term models the branch effects that motivate the Gray
ordering's density grouping.  Per-ISA constants give the ARM CPUs their
lower instruction throughput (the paper notes their weak baseline ILP
and their large 2D-algorithm gains, §4.3).

The corpus is ~3 orders of magnitude smaller than the paper's matrices,
so cache capacities are scaled down by ``cache_scale`` to keep the
cache-resident/cache-exceeding boundary at the same relative position
(DESIGN.md §2).  The model is deterministic: the goal is the *shape* of
the paper's results (who wins, where, and why), not absolute Gflop/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..matrix.csr import CSRMatrix
from ..spmv.schedule import Schedule
from .arch import Architecture

#: bytes per stored nonzero streamed each iteration: 8 (value) + 4
#: (column index, 32-bit as in the paper §4.1)
BYTES_PER_NNZ = 12.0
#: bytes per row: 4 (row pointer) + 8 (y store)
BYTES_PER_ROW = 12.0
#: fraction of each cache level realistically usable by SpMV data
CACHE_UTILISATION = 0.5
#: sustained fraction of theoretical peak DRAM bandwidth (the paper's
#: dense calibration run reaches ~77 % of peak on Milan B, §4.2)
BANDWIDTH_EFFICIENCY = 0.77
#: aggregate LLC bandwidth relative to DRAM bandwidth
L3_BANDWIDTH_MULT = 4.0
#: outstanding-miss parallelism assumed for gather latency overlap
MEMORY_PARALLELISM = 20.0
MEMORY_LATENCY_S = 90e-9
#: cache scale-down matching the corpus scale-down (see module docstring)
DEFAULT_CACHE_SCALE = 1.0 / 1024.0
#: ceiling on the modelled LLC residency: a shared LLC also holds
#: instructions, y write-allocate lines and other tenants, so even a
#: nominally cache-fitting working set keeps a DRAM traffic share.
#: This is also what keeps the eight machines' behaviour similar, as
#: the paper observes (key finding 3), despite their 16x LLC spread.
#: Symmetrically, RESIDENCY_FLOOR models the hot fraction of an
#: LLC-exceeding working set that still hits (the LRU-recent x lines).
RESIDENCY_CAP = 0.7
RESIDENCY_FLOOR = 0.3
#: fraction of capacity-regime x reloads charged (prefetch/OoO overlap
#: hides part of the naive reload count)
LOCALITY_WEIGHT = 0.5
#: effective bytes charged per x line fetch.  A full line is 64 B, but
#: prefetch overlap and partial-line reuse mean the marginal bandwidth
#: cost of a gather is lower; 16 B calibrates the model's speedup
#: spread to the paper's interquartile band (~0.5-1.5x, Fig. 2)
X_BYTES_PER_LOAD = 16.0

#: per-ISA instruction cost constants (cycles).  CPI is per nonzero of
#: the scalar CSR inner loop (load-load-fma dependency chain); the
#: values are calibrated against the paper's measured medians — ~80
#: Gflop/s on the 128-core Milan B implies ~10 cycles/nnz-row work on
#: x86, and the ARM machines' low 20–30 Gflop/s medians (§4.3 blames
#: weak ILP/compiler support) imply far higher per-element cost.
_CPI_FLOP = {"x86-64": 3.5, "ARMv8.1": 7.0, "ARMv8.2": 11.0}
_CYCLES_PER_ROW = {"x86-64": 10.0, "ARMv8.1": 20.0, "ARMv8.2": 22.0}
_MISPREDICT_CYCLES = {"x86-64": 14.0, "ARMv8.1": 22.0, "ARMv8.2": 20.0}


@dataclass(frozen=True)
class SpmvPrediction:
    """Model output for one (matrix, schedule, architecture) triple."""

    seconds: float            # time of one iteration (max over threads)
    thread_seconds: np.ndarray
    x_line_loads: int         # modelled x-vector line fetches
    gflops: float
    bytes_total: float
    llc_residency: float      # fraction of working set resident in LLC

    @property
    def slowest_thread(self) -> int:
        return int(np.argmax(self.thread_seconds))


class PerfModel:
    """Performance model bound to one architecture.

    Parameters
    ----------
    arch:
        A Table 2 :class:`Architecture`.
    locality_term / imbalance_term:
        Ablation switches (DESIGN.md §5).  Disabling the locality term
        charges one x line fetch per nonzero regardless of ordering;
        disabling the imbalance term replaces max-over-threads with the
        mean.
    cache_scale:
        Cache size scale-down matching the corpus scale-down.
    """

    def __init__(self, arch: Architecture, locality_term: bool = True,
                 imbalance_term: bool = True,
                 cache_scale: float = DEFAULT_CACHE_SCALE) -> None:
        self.arch = arch
        self.locality_term = locality_term
        self.imbalance_term = imbalance_term
        self.cache_scale = cache_scale
        self._cpi = _CPI_FLOP[arch.isa]
        self._row_cycles = _CYCLES_PER_ROW[arch.isa]
        self._mispredict = _MISPREDICT_CYCLES[arch.isa]

    # ------------------------------------------------------------------
    # capacities
    # ------------------------------------------------------------------
    def _l2_lines(self) -> int:
        """x-line capacity of the (scaled) per-core L2 window."""
        return max(int(self.arch.l2_per_core * CACHE_UTILISATION
                       * self.cache_scale // self.arch.line_size), 8)

    def _llc_bytes(self) -> float:
        """Usable (scaled) machine-wide last-level cache capacity."""
        return self.arch.l3_total * CACHE_UTILISATION * self.cache_scale

    def llc_residency(self, a: CSRMatrix) -> float:
        """Fraction of the SpMV working set resident in the scaled LLC."""
        working_set = (BYTES_PER_NNZ * a.nnz + BYTES_PER_ROW * a.nrows
                       + 8.0 * a.ncols)
        raw = min(1.0, self._llc_bytes() / max(working_set, 1.0))
        return float(RESIDENCY_FLOOR
                     + (RESIDENCY_CAP - RESIDENCY_FLOOR) * raw)

    # ------------------------------------------------------------------
    # x-traffic model
    # ------------------------------------------------------------------
    def _x_line_loads(self, cols: np.ndarray) -> int:
        """Modelled x line fetches (beyond L1/L2) for one thread's
        column-index stream, via the windowed working-set model."""
        if cols.size == 0:
            return 0
        lines = cols // (self.arch.line_size // 8)
        if not self.locality_term:
            return int(cols.size)
        capacity_lines = self._l2_lines()
        distinct_total = int(np.unique(lines).size)
        if distinct_total <= capacity_lines:
            return distinct_total
        # capacity regime: estimate how many accesses fill the window,
        # then charge each window its distinct lines
        density = distinct_total / cols.size  # new-line probability
        window = max(int(capacity_lines / max(density, 0.05)),
                     capacity_lines)
        loads = 0
        for start in range(0, cols.size, window):
            loads += int(np.unique(lines[start:start + window]).size)
        # compulsory fetches in full, capacity reloads damped
        return int(distinct_total
                   + LOCALITY_WEIGHT * (loads - distinct_total))

    # ------------------------------------------------------------------
    # per-thread cost
    # ------------------------------------------------------------------
    def _thread_time(self, a: CSRMatrix, schedule: Schedule, t: int,
                     resid: float) -> tuple:
        lo, hi = schedule.thread_entry_range(t)
        nnz_t = hi - lo
        rows_t = max(int(schedule.row_start[t + 1] - schedule.row_start[t]),
                     1 if nnz_t else 0)
        cols = a.colidx[lo:hi]
        x_loads = self._x_line_loads(cols)
        bytes_t = (BYTES_PER_NNZ * nnz_t + BYTES_PER_ROW * rows_t
                   + X_BYTES_PER_LOAD * x_loads)
        dram_bw = (self.arch.per_thread_bandwidth(schedule.nthreads)
                   * BANDWIDTH_EFFICIENCY)
        l3_bw = dram_bw * L3_BANDWIDTH_MULT
        # DRAM and LLC act as parallel channels (prefetchers stream the
        # matrix from DRAM while the LLC serves resident gathers), so a
        # thread is bound by the slower channel, not their sum
        time_mem = max(bytes_t * (1.0 - resid) / dram_bw,
                       bytes_t / l3_bw)
        time_lat = (x_loads * (1.0 - resid) * MEMORY_LATENCY_S
                    / MEMORY_PARALLELISM)
        # compute roofline with branch-irregularity penalty
        lengths = np.diff(a.rowptr[int(schedule.row_start[t]):
                                   int(schedule.row_start[t + 1]) + 1])
        if lengths.size > 1:
            changes = int(np.count_nonzero(np.diff(lengths)))
        else:
            changes = 0
        cycles = (self._cpi * nnz_t + self._row_cycles * rows_t
                  + self._mispredict * changes)
        time_cpu = cycles / (self.arch.freq_ghz * 1e9)
        return max(time_mem + time_lat, time_cpu), x_loads, bytes_t

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def predict(self, a: CSRMatrix, schedule: Schedule) -> SpmvPrediction:
        """Predict one warm-cache SpMV iteration under ``schedule``."""
        resid = self.llc_residency(a)
        times = np.zeros(schedule.nthreads)
        loads = 0
        total_bytes = 0.0
        for t in range(schedule.nthreads):
            times[t], x_loads, bytes_t = self._thread_time(
                a, schedule, t, resid)
            loads += x_loads
            total_bytes += bytes_t
        if self.imbalance_term:
            seconds = float(times.max())
        else:
            seconds = float(times.mean())
        seconds = max(seconds, 1e-12)
        gflops = 2.0 * a.nnz / seconds / 1e9
        return SpmvPrediction(seconds=seconds, thread_seconds=times,
                              x_line_loads=loads, gflops=gflops,
                              bytes_total=total_bytes,
                              llc_residency=resid)
