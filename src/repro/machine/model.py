"""Analytical multicore SpMV performance model.

The model predicts the execution time of one scheduled SpMV iteration
on a Table 2 architecture from first principles, using the two effects
the paper identifies as decisive (§4.4–4.5):

1. **Load balance** — per-thread times are computed independently and
   the iteration time is their maximum (static schedule, barrier at the
   end).  An imbalanced 1D row split therefore directly stretches the
   predicted time.

2. **Data locality** — x-vector gathers are estimated with a *windowed
   working-set model* against the per-core L2: if all x-lines a thread
   touches fit, each line is fetched once per iteration; otherwise the
   access stream is split into cache-sized windows and every window
   refetches its distinct lines.  Orderings that cluster column
   accesses (GP, HP, RCM) shrink the per-window distinct-line count and
   thus x traffic — the model's counterpart of the off-diagonal
   nonzero/edge-cut feature (§4.5, key finding 5).

Where that traffic is served from follows the paper's observation that
most of the 490 matrices fit in last-level cache (§4.1: only 77 exceed
the largest LLC): the combined working set (CSR arrays + x) is resident
in the scaled LLC with fraction ``resid``; that fraction of the traffic
moves at LLC bandwidth (``L3_BANDWIDTH_MULT`` × DRAM) and the rest at
the contended DRAM share.  Cache-resident matrices therefore see
*muted* ordering effects and LLC-exceeding ones the full effect —
reproducing both the paper's mild medians and its extreme outliers.

On top of the bandwidth roofline sits a compute roofline:
``cpi·nnz + c_row·rows + c_mispredict·(row-length changes)`` cycles —
the last term models the branch effects that motivate the Gray
ordering's density grouping.  Per-ISA constants give the ARM CPUs their
lower instruction throughput (the paper notes their weak baseline ILP
and their large 2D-algorithm gains, §4.3).

The corpus is ~3 orders of magnitude smaller than the paper's matrices,
so cache capacities are scaled down by ``cache_scale`` to keep the
cache-resident/cache-exceeding boundary at the same relative position
(DESIGN.md §2).  The model is deterministic: the goal is the *shape* of
the paper's results (who wins, where, and why), not absolute Gflop/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..matrix.csr import CSRMatrix
from ..obs.metrics import REGISTRY
from ..obs.trace import span
from ..spmv.schedule import Schedule, get_schedule
from .arch import Architecture
from .reuse import (
    ReuseStats,
    distinct_count,
    prev_occurrence,
    windowed_distinct_loads,
)

#: bytes per stored nonzero streamed each iteration: 8 (value) + 4
#: (column index, 32-bit as in the paper §4.1)
BYTES_PER_NNZ = 12.0
#: bytes per row: 4 (row pointer) + 8 (y store)
BYTES_PER_ROW = 12.0
#: fraction of each cache level realistically usable by SpMV data
CACHE_UTILISATION = 0.5
#: sustained fraction of theoretical peak DRAM bandwidth (the paper's
#: dense calibration run reaches ~77 % of peak on Milan B, §4.2)
BANDWIDTH_EFFICIENCY = 0.77
#: aggregate LLC bandwidth relative to DRAM bandwidth
L3_BANDWIDTH_MULT = 4.0
#: outstanding-miss parallelism assumed for gather latency overlap
MEMORY_PARALLELISM = 20.0
MEMORY_LATENCY_S = 90e-9
#: cache scale-down matching the corpus scale-down (see module docstring)
DEFAULT_CACHE_SCALE = 1.0 / 1024.0
#: ceiling on the modelled LLC residency: a shared LLC also holds
#: instructions, y write-allocate lines and other tenants, so even a
#: nominally cache-fitting working set keeps a DRAM traffic share.
#: This is also what keeps the eight machines' behaviour similar, as
#: the paper observes (key finding 3), despite their 16x LLC spread.
#: Symmetrically, RESIDENCY_FLOOR models the hot fraction of an
#: LLC-exceeding working set that still hits (the LRU-recent x lines).
RESIDENCY_CAP = 0.7
RESIDENCY_FLOOR = 0.3
#: fraction of capacity-regime x reloads charged (prefetch/OoO overlap
#: hides part of the naive reload count)
LOCALITY_WEIGHT = 0.5
#: effective bytes charged per x line fetch.  A full line is 64 B, but
#: prefetch overlap and partial-line reuse mean the marginal bandwidth
#: cost of a gather is lower; 16 B calibrates the model's speedup
#: spread to the paper's interquartile band (~0.5-1.5x, Fig. 2)
X_BYTES_PER_LOAD = 16.0

#: per-ISA instruction cost constants (cycles).  CPI is per nonzero of
#: the scalar CSR inner loop (load-load-fma dependency chain); the
#: values are calibrated against the paper's measured medians — ~80
#: Gflop/s on the 128-core Milan B implies ~10 cycles/nnz-row work on
#: x86, and the ARM machines' low 20–30 Gflop/s medians (§4.3 blames
#: weak ILP/compiler support) imply far higher per-element cost.
_CPI_FLOP = {"x86-64": 3.5, "ARMv8.1": 7.0, "ARMv8.2": 11.0}
_CYCLES_PER_ROW = {"x86-64": 10.0, "ARMv8.1": 20.0, "ARMv8.2": 22.0}
_MISPREDICT_CYCLES = {"x86-64": 14.0, "ARMv8.1": 22.0, "ARMv8.2": 20.0}


@dataclass(frozen=True)
class SpmvPrediction:
    """Model output for one (matrix, schedule, architecture) triple."""

    seconds: float            # time of one iteration (max over threads)
    thread_seconds: np.ndarray
    x_line_loads: int         # modelled x-vector line fetches
    gflops: float
    bytes_total: float
    llc_residency: float      # fraction of working set resident in LLC

    @property
    def slowest_thread(self) -> int:
        return int(np.argmax(self.thread_seconds))


class PerfModel:
    """Performance model bound to one architecture.

    Parameters
    ----------
    arch:
        A Table 2 :class:`Architecture`.
    locality_term / imbalance_term:
        Ablation switches (DESIGN.md §5).  Disabling the locality term
        charges one x line fetch per nonzero regardless of ordering;
        disabling the imbalance term replaces max-over-threads with the
        mean.
    cache_scale:
        Cache size scale-down matching the corpus scale-down.
    fastpath:
        Serve the x-traffic and branch-irregularity statistics from the
        memoised per-matrix :class:`~repro.machine.reuse.ReuseStats`
        (and schedules from the per-matrix schedule cache).  The
        predictions are bit-identical either way; ``False`` keeps the
        original per-cell recomputation as a reference implementation
        for the golden-equivalence tests and the fast-path benchmark.
    """

    def __init__(self, arch: Architecture, locality_term: bool = True,
                 imbalance_term: bool = True,
                 cache_scale: float = DEFAULT_CACHE_SCALE,
                 fastpath: bool = True) -> None:
        self.arch = arch
        self.locality_term = locality_term
        self.imbalance_term = imbalance_term
        self.cache_scale = cache_scale
        self.fastpath = fastpath
        self._cpi = _CPI_FLOP[arch.isa]
        self._row_cycles = _CYCLES_PER_ROW[arch.isa]
        self._mispredict = _MISPREDICT_CYCLES[arch.isa]

    # ------------------------------------------------------------------
    # capacities
    # ------------------------------------------------------------------
    def _l2_lines(self) -> int:
        """x-line capacity of the (scaled) per-core L2 window."""
        return max(int(self.arch.l2_per_core * CACHE_UTILISATION
                       * self.cache_scale // self.arch.line_size), 8)

    def _llc_bytes(self) -> float:
        """Usable (scaled) machine-wide last-level cache capacity."""
        return self.arch.l3_total * CACHE_UTILISATION * self.cache_scale

    def llc_residency(self, a: CSRMatrix) -> float:
        """Fraction of the SpMV working set resident in the scaled LLC."""
        working_set = (BYTES_PER_NNZ * a.nnz + BYTES_PER_ROW * a.nrows
                       + 8.0 * a.ncols)
        raw = min(1.0, self._llc_bytes() / max(working_set, 1.0))
        return float(RESIDENCY_FLOOR
                     + (RESIDENCY_CAP - RESIDENCY_FLOOR) * raw)

    # ------------------------------------------------------------------
    # x-traffic model
    # ------------------------------------------------------------------
    def _x_line_loads(self, cols: np.ndarray) -> int:
        """Modelled x line fetches (beyond L1/L2) for one thread's
        column-index stream, via the windowed working-set model.

        One-shot entry point (used by the model/simulator validation
        probe): builds the previous-occurrence array for this stream
        and delegates to the shared vectorised implementation."""
        if cols.size == 0:
            return 0
        if not self.locality_term:
            return int(cols.size)
        lines = cols // (self.arch.line_size // 8)
        return self._loads_from_prev(prev_occurrence(lines), 0, cols.size)

    def _loads_from_prev(self, prev: np.ndarray, lo: int, hi: int,
                         reuse: ReuseStats | None = None) -> int:
        """Windowed working-set loads for stream positions [lo, hi),
        from the previous-occurrence array — bit-identical to (and the
        vectorised O(nnz) replacement of) the historical per-window
        ``np.unique`` loop kept in :meth:`_x_line_loads_loop`."""
        n = hi - lo
        if n == 0:
            return 0
        if not self.locality_term:
            return int(n)
        capacity_lines = self._l2_lines()
        distinct_total = distinct_count(prev, lo, hi)
        if distinct_total <= capacity_lines:
            return distinct_total
        # capacity regime: estimate how many accesses fill the window,
        # then charge each window its distinct lines
        density = distinct_total / n  # new-line probability
        window = max(int(capacity_lines / max(density, 0.05)),
                     capacity_lines)
        positions = reuse.positions(n) if reuse is not None else None
        loads = windowed_distinct_loads(prev, window, lo, hi,
                                        positions=positions)
        # compulsory fetches in full, capacity reloads damped
        return int(distinct_total
                   + LOCALITY_WEIGHT * (loads - distinct_total))

    def _x_line_loads_loop(self, cols: np.ndarray) -> int:
        """The original per-window ``np.unique`` implementation, kept
        verbatim as the reference the fast path must match bit-for-bit
        (golden-equivalence tests, ``bench_model_fastpath``)."""
        if cols.size == 0:
            return 0
        lines = cols // (self.arch.line_size // 8)
        if not self.locality_term:
            return int(cols.size)
        capacity_lines = self._l2_lines()
        distinct_total = int(np.unique(lines).size)
        if distinct_total <= capacity_lines:
            return distinct_total
        density = distinct_total / cols.size
        window = max(int(capacity_lines / max(density, 0.05)),
                     capacity_lines)
        loads = 0
        for start in range(0, cols.size, window):
            loads += int(np.unique(lines[start:start + window]).size)
        return int(distinct_total
                   + LOCALITY_WEIGHT * (loads - distinct_total))

    # ------------------------------------------------------------------
    # per-thread cost
    # ------------------------------------------------------------------
    def _thread_time(self, a: CSRMatrix, schedule: Schedule, t: int,
                     resid: float, reuse: ReuseStats | None = None,
                     prev: np.ndarray | None = None) -> tuple:
        lo, hi = schedule.thread_entry_range(t)
        nnz_t = hi - lo
        rows_t = max(int(schedule.row_start[t + 1] - schedule.row_start[t]),
                     1 if nnz_t else 0)
        if prev is not None:
            x_loads = self._loads_from_prev(prev, lo, hi, reuse=reuse)
        else:
            x_loads = self._x_line_loads_loop(a.colidx[lo:hi])
        bytes_t = (BYTES_PER_NNZ * nnz_t + BYTES_PER_ROW * rows_t
                   + X_BYTES_PER_LOAD * x_loads)
        dram_bw = (self.arch.per_thread_bandwidth(schedule.nthreads)
                   * BANDWIDTH_EFFICIENCY)
        l3_bw = dram_bw * L3_BANDWIDTH_MULT
        # DRAM and LLC act as parallel channels (prefetchers stream the
        # matrix from DRAM while the LLC serves resident gathers), so a
        # thread is bound by the slower channel, not their sum
        time_mem = max(bytes_t * (1.0 - resid) / dram_bw,
                       bytes_t / l3_bw)
        time_lat = (x_loads * (1.0 - resid) * MEMORY_LATENCY_S
                    / MEMORY_PARALLELISM)
        # compute roofline with branch-irregularity penalty
        if reuse is not None:
            changes = reuse.row_change_count(int(schedule.row_start[t]),
                                             int(schedule.row_start[t + 1]))
        else:
            lengths = np.diff(a.rowptr[int(schedule.row_start[t]):
                                       int(schedule.row_start[t + 1]) + 1])
            if lengths.size > 1:
                changes = int(np.count_nonzero(np.diff(lengths)))
            else:
                changes = 0
        cycles = (self._cpi * nnz_t + self._row_cycles * rows_t
                  + self._mispredict * changes)
        time_cpu = cycles / (self.arch.freq_ghz * 1e9)
        return max(time_mem + time_lat, time_cpu), x_loads, bytes_t

    # ------------------------------------------------------------------
    # batched (all-threads-at-once) fast path
    # ------------------------------------------------------------------
    def _x_loads_batch(self, schedule: Schedule, reuse: ReuseStats,
                       prev: np.ndarray, nnz_t: np.ndarray) -> np.ndarray:
        """Per-thread x line loads for every thread at once.

        Same windowed working-set model as :meth:`_loads_from_prev`,
        with the per-thread slices handled by one pass over the entry
        stream (thread ids via ``repeat``, per-thread counts via
        ``bincount``) — bit-identical results, no per-thread Python
        loop.
        """
        n = prev.size
        tcount = schedule.nthreads
        tid = np.repeat(np.arange(tcount, dtype=np.int64), nnz_t)
        lo = np.repeat(schedule.entry_start[:-1], nnz_t)
        distinct = np.bincount(tid[prev < lo], minlength=tcount)
        cap = self._l2_lines()
        x_loads = distinct.copy()
        capm = distinct > cap
        if not capm.any():
            return x_loads
        # capacity regime per thread: window from that thread's density
        density = distinct[capm] / nnz_t[capm]
        window = np.ones(tcount, dtype=np.int64)
        window[capm] = np.maximum(
            (cap / np.maximum(density, 0.05)).astype(np.int64), cap)
        win = np.repeat(window, nnz_t)
        rel = reuse.positions(n) - lo
        wstart = lo + (rel // win) * win
        loads = np.bincount(tid[prev < wstart], minlength=tcount)
        x_loads[capm] = (distinct[capm] + LOCALITY_WEIGHT
                         * (loads[capm] - distinct[capm])).astype(np.int64)
        return x_loads

    def _predict_batch(self, a: CSRMatrix, schedule: Schedule,
                       reuse: ReuseStats, prev: np.ndarray | None,
                       resid: float) -> tuple:
        """All per-thread costs in one vectorised pass.

        Elementwise float64 operations in the same order as
        :meth:`_thread_time`, so ``(times, x_loads, bytes)`` are
        bit-identical to the per-thread loop (asserted by the
        golden-equivalence suite).
        """
        tcount = schedule.nthreads
        nnz_t = np.diff(schedule.entry_start)
        rows_span = schedule.row_start[1:] - schedule.row_start[:-1]
        rows_t = np.maximum(rows_span, (nnz_t > 0).astype(np.int64))
        if not self.locality_term:
            x_loads = nnz_t.copy()
        elif prev is None or a.nnz == 0:
            x_loads = np.zeros(tcount, dtype=np.int64)
        else:
            x_loads = self._x_loads_batch(schedule, reuse, prev, nnz_t)
        changes = np.zeros(tcount, dtype=np.int64)
        multi = rows_span >= 2
        if multi.any():
            p = reuse.row_change_prefix()
            changes[multi] = (p[schedule.row_start[1:][multi] - 1]
                              - p[schedule.row_start[:-1][multi]])
        bytes_t = (BYTES_PER_NNZ * nnz_t + BYTES_PER_ROW * rows_t
                   + X_BYTES_PER_LOAD * x_loads)
        dram_bw = (self.arch.per_thread_bandwidth(tcount)
                   * BANDWIDTH_EFFICIENCY)
        l3_bw = dram_bw * L3_BANDWIDTH_MULT
        time_mem = np.maximum(bytes_t * (1.0 - resid) / dram_bw,
                              bytes_t / l3_bw)
        time_lat = (x_loads * (1.0 - resid) * MEMORY_LATENCY_S
                    / MEMORY_PARALLELISM)
        cycles = (self._cpi * nnz_t + self._row_cycles * rows_t
                  + self._mispredict * changes)
        time_cpu = cycles / (self.arch.freq_ghz * 1e9)
        return np.maximum(time_mem + time_lat, time_cpu), x_loads, bytes_t

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def predict(self, a: CSRMatrix, schedule: Schedule,
                reuse: ReuseStats | None = None) -> SpmvPrediction:
        """Predict one warm-cache SpMV iteration under ``schedule``.

        ``reuse`` supplies precomputed per-matrix statistics; when
        omitted (and ``fastpath`` is on) the memoised per-matrix stats
        are used, so repeated predictions on the same matrix object —
        across architectures, kernels and thread counts — share one
        previous-occurrence pass instead of re-deriving line ids and
        per-window distinct counts per cell.
        """
        REGISTRY.counter("model.predicts").inc()
        prev = None
        if self.fastpath:
            if reuse is None:
                reuse = ReuseStats.for_matrix(a)
            if self.locality_term and a.nnz:
                prev = reuse.prev(self.arch.line_size // 8)
        else:
            reuse = None
        resid = self.llc_residency(a)
        if (reuse is not None
                and type(self)._thread_time is PerfModel._thread_time):
            times, loads_t, bytes_arr = self._predict_batch(
                a, schedule, reuse, prev, resid)
            loads = int(loads_t.sum())
            # cumsum accumulates left-to-right like the loop below, so
            # the float result is bit-identical to the per-thread sum
            total_bytes = float(np.cumsum(bytes_arr)[-1])
        else:
            times = np.zeros(schedule.nthreads)
            loads = 0
            total_bytes = 0.0
            for t in range(schedule.nthreads):
                times[t], x_loads, bytes_t = self._thread_time(
                    a, schedule, t, resid, reuse=reuse, prev=prev)
                loads += x_loads
                total_bytes += bytes_t
        if self.imbalance_term:
            seconds = float(times.max())
        else:
            seconds = float(times.mean())
        seconds = max(seconds, 1e-12)
        gflops = 2.0 * a.nnz / seconds / 1e9
        return SpmvPrediction(seconds=seconds, thread_seconds=times,
                              x_line_loads=loads, gflops=gflops,
                              bytes_total=total_bytes,
                              llc_residency=resid)


def predict_many(a: CSRMatrix, architectures, kernels=("1d", "2d"),
                 nthreads=None, model_factory=None,
                 reuse: ReuseStats | None = None,
                 workloads=None) -> dict:
    """Batched model evaluation over architectures × kernels × threads.

    Computes the per-(matrix, ordering) sufficient statistics once (one
    argsort over the cache-line id stream, one row-length-change prefix
    sum) and serves every requested cell from them; schedules are
    memoised per (matrix, kind, nthreads), so architectures with equal
    core counts share them too.  Returns
    ``{(arch.name, kernel, nthreads): SpmvPrediction}`` whose entries
    are **bit-identical** to calling :meth:`PerfModel.predict` per
    cell (the golden-equivalence suite asserts this).

    Parameters
    ----------
    architectures:
        Iterable of :class:`Architecture`.
    kernels:
        Schedule kinds (``"1d"`` / ``"2d"`` / ``"merge"``).
    nthreads:
        Optional iterable of thread counts applied to every
        architecture; by default each architecture runs with its own
        ``arch.threads`` (the study's one-thread-per-core setting).
    model_factory:
        Optional ``arch -> PerfModel`` hook (ablations override this).
    reuse:
        Precomputed statistics; defaults to the matrix's memoised
        :class:`ReuseStats`.
    workloads:
        ``None`` (the default) keeps the historical 3-tuple keys and
        :class:`SpmvPrediction` values bit-identically.  A tuple of
        workload names (:data:`repro.spmv.registry.WORKLOADS`) adds a
        fourth key axis: ``{(arch.name, kernel, nthreads, workload):
        WorkloadPrediction}``, with every workload score derived from
        the one base SpMV prediction of its cell (see
        :mod:`repro.machine.workloads`).
    """
    factory = model_factory or PerfModel
    if reuse is None:
        reuse = ReuseStats.for_matrix(a)
    architectures = list(architectures)
    out = {}
    with span("model.predict_many", nnz=a.nnz,
              architectures=len(architectures), kernels=list(kernels),
              workloads=list(workloads) if workloads else []):
        for arch in architectures:
            model = factory(arch)
            counts = ([arch.threads] if nthreads is None
                      else list(nthreads))
            for kernel in kernels:
                for nt in counts:
                    schedule = get_schedule(a, kernel, nt)
                    pred = model.predict(a, schedule, reuse=reuse)
                    if workloads is None:
                        out[(arch.name, kernel, nt)] = pred
                        continue
                    from .workloads import predict_workload

                    for workload in workloads:
                        out[(arch.name, kernel, nt, workload)] = \
                            predict_workload(a, workload, arch, pred)
    return out
