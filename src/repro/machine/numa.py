"""NUMA placement modelling (paper §3.1).

The study's kernels run on two-socket machines with the *first-touch*
policy "to ensure that the data is placed close to the core using it".
This module models what that buys: under first-touch, each thread's
slice of the matrix lives on its own socket, so matrix streaming is
socket-local; the x vector, however, is read by *all* threads, so a
fraction of x traffic crosses the socket interconnect no matter how it
is placed.

:class:`NumaModel` wraps :class:`~repro.machine.model.PerfModel` and
adds a remote-access surcharge to each thread's x traffic:

* ``first_touch`` — matrix/y local; x pages distributed by the threads
  that touched them first, so on average half of a thread's *remote*
  part of x (columns outside its own block) crosses sockets;
* ``interleaved`` — pages round-robin across sockets: half of *all*
  traffic is remote;
* ``local_only`` — idealised single-socket placement (no surcharge),
  the implicit baseline of :class:`PerfModel`.

Remote accesses pay ``remote_penalty`` × the local byte cost — the
~1.5–2× bandwidth/latency gap of two-socket Epyc/Xeon systems.
"""

from __future__ import annotations

import numpy as np

from ..errors import ArchitectureError
from ..matrix.csr import CSRMatrix
from ..spmv.schedule import Schedule
from .arch import Architecture
from .model import PerfModel, SpmvPrediction, X_BYTES_PER_LOAD

PLACEMENTS = ("local_only", "first_touch", "interleaved")
DEFAULT_REMOTE_PENALTY = 1.7


class NumaModel(PerfModel):
    """Performance model with a two-socket NUMA surcharge on x traffic."""

    def __init__(self, arch: Architecture, placement: str = "first_touch",
                 remote_penalty: float = DEFAULT_REMOTE_PENALTY,
                 **kwargs) -> None:
        if placement not in PLACEMENTS:
            raise ArchitectureError(
                f"unknown placement {placement!r}; pick from {PLACEMENTS}")
        if remote_penalty < 1.0:
            raise ArchitectureError(
                f"remote_penalty must be >= 1, got {remote_penalty}")
        super().__init__(arch, **kwargs)
        self.placement = placement
        self.remote_penalty = remote_penalty

    def _remote_fraction(self, a: CSRMatrix, schedule: Schedule,
                         t: int) -> float:
        """Fraction of thread t's x accesses served by the other socket."""
        if self.arch.sockets < 2 or self.placement == "local_only":
            return 0.0
        if self.placement == "interleaved":
            return 0.5
        # first touch: x pages owned by the thread whose block initialised
        # them; accesses inside the thread's own column block are local,
        # the rest split evenly between the sockets
        lo, hi = schedule.thread_entry_range(t)
        if lo == hi:
            return 0.0
        cols = a.colidx[lo:hi]
        block = a.ncols / schedule.nthreads
        own_lo = t * block
        own_hi = (t + 1) * block
        local = np.count_nonzero((cols >= own_lo) & (cols < own_hi))
        remote_share = 1.0 - local / cols.size
        return 0.5 * remote_share

    def _thread_time(self, a: CSRMatrix, schedule: Schedule, t: int,
                     resid: float, reuse=None, prev=None) -> tuple:
        base_time, x_loads, bytes_t = super()._thread_time(
            a, schedule, t, resid, reuse=reuse, prev=prev)
        frac = self._remote_fraction(a, schedule, t)
        if frac == 0.0 or x_loads == 0:
            return base_time, x_loads, bytes_t
        # surcharge: remote x bytes cost (penalty - 1) extra, paid on
        # the DRAM-side share of the traffic
        x_bytes = X_BYTES_PER_LOAD * x_loads
        dram_bw = (self.arch.per_thread_bandwidth(schedule.nthreads)
                   * 0.77)
        extra = (self.remote_penalty - 1.0) * frac * x_bytes \
            * (1.0 - resid) / dram_bw
        return base_time + extra, x_loads, bytes_t
