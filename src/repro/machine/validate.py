"""Validating the analytical model against the exact cache simulator.

The windowed working-set model (:meth:`PerfModel._x_line_loads`) is an
approximation; this module quantifies how well it tracks ground truth
on real inputs by comparing, per matrix, the model's x-line load count
against the exact miss count of an LRU cache of the same capacity.

The headline statistic is the *rank correlation across matrices and
orderings*: the model is used for A-vs-B comparisons, so ordering
agreement — not absolute miss counts — is what must hold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ArchitectureError
from ..matrix.csr import CSRMatrix
from .cache import LRUCache, simulate_x_misses
from .model import PerfModel


@dataclass(frozen=True)
class ValidationReport:
    """Model-vs-simulator comparison over a set of matrices."""

    model_loads: np.ndarray
    exact_misses: np.ndarray
    labels: tuple

    @property
    def rank_correlation(self) -> float:
        """Spearman rank correlation between model and simulator."""
        if self.model_loads.size < 2:
            return 1.0
        rm = np.argsort(np.argsort(self.model_loads))
        re = np.argsort(np.argsort(self.exact_misses))
        c = np.corrcoef(rm, re)
        return float(c[0, 1])

    @property
    def mean_abs_log_error(self) -> float:
        """Mean |log(model/exact)| — the absolute-level agreement."""
        m = np.maximum(self.model_loads, 1)
        e = np.maximum(self.exact_misses, 1)
        return float(np.mean(np.abs(np.log(m / e))))


def validate_x_traffic_model(matrices, cache_lines: int = 64,
                             associativity: int = 8,
                             labels=None) -> ValidationReport:
    """Compare model load counts vs exact LRU misses for ``matrices``.

    ``cache_lines`` is the capacity used for *both* sides: the model's
    window capacity and the simulator's cache size, so the comparison
    isolates the windowing approximation itself.
    """
    if cache_lines < 1:
        raise ArchitectureError(
            f"cache_lines must be >= 1, got {cache_lines}")
    model_loads = []
    exact = []
    for a in matrices:
        if not isinstance(a, CSRMatrix):
            raise ArchitectureError(
                "validate_x_traffic_model expects CSRMatrix inputs")
        # a throwaway model whose L2 window equals the simulated cache
        class _Probe(PerfModel):
            def _l2_lines(self) -> int:
                return cache_lines

        from .arch import get_architecture

        probe = _Probe(get_architecture("Rome"))
        model_loads.append(probe._x_line_loads(a.colidx))
        sim = LRUCache(size=cache_lines * 64, line_size=64,
                       associativity=min(associativity, cache_lines))
        exact.append(simulate_x_misses(a, sim))
    return ValidationReport(
        model_loads=np.array(model_loads, dtype=np.float64),
        exact_misses=np.array(exact, dtype=np.float64),
        labels=tuple(labels) if labels is not None
        else tuple(range(len(model_loads))))
