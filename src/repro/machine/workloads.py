"""Workload scoring: CG/Jacobi loops, SpGEMM and SpMM on the SpMV model.

The analytical model (:class:`repro.machine.PerfModel`) predicts one
warm-cache SpMV iteration.  Real workloads wrap that iteration — and
reordering pays off differently in each wrapper:

* **cg / jacobi** — ``ITERATIONS[w]`` repeated SpMVs on the *same*
  reordered matrix plus dense vector traffic per iteration.  The SpMV
  term (where ordering matters) is diluted by the ordering-insensitive
  vector streams, so solver speedups are milder than raw SpMV ones,
  but the one-off reordering cost amortises over every iteration.
* **spgemm** (A·A) — each nonzero ``(i, k)`` of A gathers row ``k`` of
  A, so the column-access locality the SpMV x-gather window measures
  governs the gather stream here too.  The score scales the calibrated
  SpMV iteration by the *row-gather intensity* (partial products per
  nonzero), keeping load balance and locality effects — including
  their ordering sensitivity — from the underlying prediction.
* **spmm** (A·X, ``SPMM_VECTORS`` dense columns) — the CSR arrays are
  streamed once for all columns while x-gather traffic and compute
  scale with the column count, so the matrix-stream share of the SpMV
  time is amortised by the bytes ratio.

Everything is a deterministic, closed-form function of one
:class:`~repro.machine.model.SpmvPrediction`, so the batched fast path
(:func:`repro.machine.model.predict_many` with ``workloads=``) and the
per-cell path are bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ScheduleError
from ..matrix.csr import CSRMatrix
from ..spmv.products import spgemm_flops
from .arch import Architecture
from .model import BANDWIDTH_EFFICIENCY, SpmvPrediction, X_BYTES_PER_LOAD

#: scoring iteration counts for the solver loops — the "hundreds of
#: repeated SpMVs" regime of Table 5, kept at a round calibrated value
#: so scores are comparable across matrices
ITERATIONS = {"spmv": 1, "cg": 100, "jacobi": 100, "spgemm": 1, "spmm": 1}

#: dense n-vector streams per solver iteration beyond the SpMV itself:
#: CG touches x/p/q/r updates plus two dot products (~10 passes),
#: Jacobi the residual/diagonal-scale updates (~6 passes)
VECTOR_WORDS = {"cg": 10.0, "jacobi": 6.0}

#: extra flops per matrix row and solver iteration (axpy/dot work)
ROW_FLOPS = {"cg": 10.0, "jacobi": 3.0}

#: dense right-hand-side block width the SpMM workload is scored at
SPMM_VECTORS = 8


@dataclass(frozen=True)
class WorkloadPrediction:
    """Model output for one (matrix, schedule, architecture, workload)."""

    workload: str
    seconds: float              # total modelled workload time
    seconds_per_iteration: float
    iterations: int
    flops: float                # total floating-point work scored
    gflops: float
    spmv: SpmvPrediction        # the underlying SpMV-iteration score


def _vector_pass_seconds(arch: Architecture, n: int, words: float) -> float:
    """Streamed dense-vector traffic at sustained machine bandwidth."""
    return words * 8.0 * n / (arch.bandwidth * BANDWIDTH_EFFICIENCY)


def predict_workload(a: CSRMatrix, workload: str, arch: Architecture,
                     pred: SpmvPrediction) -> WorkloadPrediction:
    """Score ``workload`` on ``a`` from its SpMV prediction ``pred``.

    ``pred`` must be the :meth:`PerfModel.predict` output for the
    schedule the workload runs under; everything else is closed-form,
    so batched and per-cell callers agree bit-for-bit.
    """
    if workload == "spmv":
        flops = 2.0 * a.nnz
        return WorkloadPrediction(
            workload="spmv", seconds=pred.seconds,
            seconds_per_iteration=pred.seconds, iterations=1,
            flops=flops, gflops=pred.gflops, spmv=pred)
    if workload in ("cg", "jacobi"):
        iterations = ITERATIONS[workload]
        per_iter = pred.seconds + _vector_pass_seconds(
            arch, a.nrows, VECTOR_WORDS[workload])
        seconds = iterations * per_iter
        flops = iterations * (2.0 * a.nnz + ROW_FLOPS[workload] * a.nrows)
        return WorkloadPrediction(
            workload=workload, seconds=seconds,
            seconds_per_iteration=per_iter, iterations=iterations,
            flops=flops, gflops=flops / seconds / 1e9, spmv=pred)
    if workload == "spgemm":
        if not a.is_square:
            raise ScheduleError(
                f"spgemm workload squares A, which needs a square "
                f"matrix; got {a.nrows}x{a.ncols}")
        flops = spgemm_flops(a)
        # partial products per nonzero: how many row-gather passes one
        # calibrated SpMV iteration is repeated for (>= 1 so an empty
        # product never scores below a plain pass over A)
        intensity = max((flops / 2.0) / max(a.nnz, 1), 1.0)
        seconds = pred.seconds * intensity
        return WorkloadPrediction(
            workload="spgemm", seconds=seconds,
            seconds_per_iteration=seconds, iterations=1, flops=flops,
            gflops=flops / seconds / 1e9 if seconds else 0.0, spmv=pred)
    if workload == "spmm":
        k = SPMM_VECTORS
        x_bytes = X_BYTES_PER_LOAD * pred.x_line_loads
        a_bytes = max(pred.bytes_total - x_bytes, 0.0)
        # matrix stream paid once, gathers/compute k times
        scale = ((a_bytes + k * x_bytes) / pred.bytes_total
                 if pred.bytes_total else float(k))
        seconds = pred.seconds * max(scale, 1.0)
        flops = 2.0 * a.nnz * k
        return WorkloadPrediction(
            workload="spmm", seconds=seconds,
            seconds_per_iteration=seconds, iterations=1, flops=flops,
            gflops=flops / seconds / 1e9 if seconds else 0.0, spmv=pred)
    raise ScheduleError(
        f"unknown workload {workload!r}; expected one of "
        f"{tuple(ITERATIONS)}")
