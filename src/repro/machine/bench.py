"""Measurement-shaped runner mirroring the paper's artifact records.

The artifact distributes one row per matrix with, per ordering, seven
columns: min/max/mean nonzeros per thread, imbalance factor, seconds
per iteration, max Gflop/s and mean Gflop/s.  This module produces the
same record from the performance model, so the downstream analysis code
(geometric means, boxplots, performance profiles) consumes data of the
identical shape.

The paper repeats each measurement 100× and reports the max performance
(warm cache, minimal noise); the model is deterministic and directly
predicts that warm-cache steady state, so max and mean performance
differ only by a small modelled iteration-to-iteration overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..matrix.csr import CSRMatrix
from ..spmv.registry import resolve_workload
from ..spmv.schedule import (
    get_schedule,
    schedule_1d,
    schedule_2d,
    schedule_merge,
)
from .arch import Architecture
from .model import PerfModel
from .reuse import ReuseStats

#: modelled relative gap between best-of-100 and mean-of-97 performance
MEAN_PERF_FACTOR = 0.97


@dataclass(frozen=True)
class MeasurementRecord:
    """One (matrix, ordering, kernel, architecture) measurement.

    ``kernel`` carries the workload spec exactly as the sweep's kernel
    axis passed it (``"1d"``, ``"2d"``, ``"cg"``, ``"spgemm:2d"`` ...),
    so downstream lookups filter on the same string; ``workload`` is
    the resolved workload name (``"spmv"`` for the historical kernels,
    which also keeps journals written before the field existed
    loadable — the default applies on replay).
    """

    matrix: str
    ordering: str
    kernel: str            # workload spec ("1d" | "2d" | "cg" | ...)
    architecture: str
    nthreads: int
    nnz_min: int
    nnz_max: int
    nnz_mean: float
    imbalance: float
    seconds: float
    gflops_max: float
    gflops_mean: float
    workload: str = "spmv"

    def row(self) -> list:
        """The 7-column artifact layout (plus identifying prefix)."""
        return [self.matrix, self.ordering, self.kernel, self.architecture,
                self.nthreads, self.nnz_min, self.nnz_max, self.nnz_mean,
                self.imbalance, self.seconds, self.gflops_max,
                self.gflops_mean]


def simulate_measurement(a: CSRMatrix, arch: Architecture, kernel: str,
                         matrix_name: str = "", ordering_name: str = "",
                         model: PerfModel | None = None,
                         reuse: ReuseStats | None = None) -> MeasurementRecord:
    """Run the model on ``a`` and package the artifact-shaped record.

    ``reuse`` optionally threads precomputed per-(matrix, ordering)
    statistics through to the model so batched callers (the sweep
    engine, :func:`simulate_many`) share one statistics pass across
    all architectures and kernels.  With a fast-path model the thread
    schedule is likewise served from the per-matrix schedule cache; a
    ``fastpath=False`` reference model keeps the historical
    rebuild-per-call behaviour (the fast-path benchmark times both).
    """
    workload, kind = resolve_workload(kernel)
    model = model if model is not None else PerfModel(arch)
    if model.fastpath:
        schedule = get_schedule(a, kind, arch.threads)
    elif kind == "1d":
        schedule = schedule_1d(a, arch.threads)
    elif kind == "2d":
        schedule = schedule_2d(a, arch.threads)
    else:
        schedule = schedule_merge(a, arch.threads)
    pred = model.predict(a, schedule, reuse=reuse)
    if workload == "spmv":
        seconds, gflops = pred.seconds, pred.gflops
    else:
        from .workloads import predict_workload

        wp = predict_workload(a, workload, arch, pred)
        seconds, gflops = wp.seconds, wp.gflops
    per_thread = schedule.nnz_per_thread()
    mean = float(per_thread.mean()) if per_thread.size else 0.0
    imb = float(per_thread.max() / mean) if mean else 1.0
    return MeasurementRecord(
        matrix=matrix_name,
        ordering=ordering_name,
        kernel=kernel,
        architecture=arch.name,
        nthreads=arch.threads,
        nnz_min=int(per_thread.min()) if per_thread.size else 0,
        nnz_max=int(per_thread.max()) if per_thread.size else 0,
        nnz_mean=mean,
        imbalance=imb,
        seconds=seconds,
        gflops_max=gflops,
        gflops_mean=gflops * MEAN_PERF_FACTOR,
        workload=workload,
    )


def simulate_many(a: CSRMatrix, architectures, kernels=("1d", "2d"),
                  matrix_name: str = "", ordering_name: str = "",
                  model_factory=None) -> list:
    """Batched :func:`simulate_measurement` over architectures × kernels.

    One :class:`ReuseStats` pass serves every cell, and schedules are
    shared between architectures with equal core counts.  Records come
    back in (architecture, kernel) iteration order and are bit-identical
    to per-cell ``simulate_measurement`` calls.

    ``kernels`` entries are workload specs
    (:func:`repro.spmv.registry.resolve_workload`): the historical
    kernel kinds score one SpMV, while ``"cg"``/``"jacobi"``/
    ``"spgemm"``/``"spmm"`` (optionally ``":kind"``-suffixed) score
    that workload on the same schedule — so sweeps extend to the new
    workloads by listing them on their existing kernel axis.
    """
    factory = model_factory or PerfModel
    reuse = ReuseStats.for_matrix(a)
    return [simulate_measurement(a, arch, kernel, matrix_name,
                                 ordering_name, model=factory(arch),
                                 reuse=reuse)
            for arch in architectures for kernel in kernels]
