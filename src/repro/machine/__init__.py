"""The hardware substitute: Table 2 architectures + performance model.

The paper measures SpMV on eight physical multicore machines.  Offline
and in pure Python we replace the machines with:

* :mod:`.arch` — the eight architecture descriptions of Table 2
  (cores, cache hierarchy, bandwidth), verbatim;
* :mod:`.cache` — an exact LRU set-associative cache simulator used to
  validate the analytical model on small inputs;
* :mod:`.model` — an analytical per-thread cost model for the SpMV
  kernels: streamed matrix traffic at contended memory bandwidth, an
  x-vector reuse model (distinct cache lines per cache-sized window),
  per-row loop overhead and a row-length-irregularity penalty.  Total
  time is the max over threads (static schedule barrier), which is how
  load imbalance enters;
* :mod:`.bench` — a measurement-shaped runner producing the same
  7-column records as the paper's artifact files.

See DESIGN.md §2 for why this substitution preserves the phenomena the
paper studies (who wins, and why) even though absolute Gflop/s are not
comparable.
"""

from .arch import Architecture, TABLE2, get_architecture, architecture_names
from .cache import LRUCache
from .model import PerfModel, SpmvPrediction, predict_many
from .numa import NumaModel
from .reuse import ReuseStats
from .bench import MeasurementRecord, simulate_many, simulate_measurement
from .workloads import WorkloadPrediction, predict_workload

__all__ = [
    "Architecture",
    "TABLE2",
    "get_architecture",
    "architecture_names",
    "LRUCache",
    "PerfModel",
    "NumaModel",
    "ReuseStats",
    "SpmvPrediction",
    "MeasurementRecord",
    "WorkloadPrediction",
    "predict_many",
    "predict_workload",
    "simulate_many",
    "simulate_measurement",
]
