"""Differential checks of the §3.2 structural features.

Every feature routine is cross-validated against an independent dense
oracle written as the paper's definition, in plain Python, sharing no
code with the production path:

* bandwidth  — ``max |i - j|`` over ``a_ij != 0``;
* profile    — ``Σ_i max(i - min{j: a_ij != 0}, 0)``;
* offdiag    — nonzeros outside the ``nblocks`` diagonal blocks of the
  linspace row/column split;
* imbalance  — max/mean nonzeros per *active* thread of the 1D split.

Two-path agreement is asserted alongside: a feature computed on the
CSR directly must equal the same feature after a dense round trip
(which drops explicitly stored zeros), and schedules with more threads
than rows must not skew the imbalance factor.

Production functions are resolved through their module namespaces
(``features.bandwidth(...)``, not a from-import), so the mutation
smoke can inject faults that this suite must catch.
"""

from __future__ import annotations

import numpy as np

from .. import features
from ..matrix import csr_from_dense
from ..obs.trace import span
from ..spmv import schedule as schedule_mod
from .findings import CheckReport

SUITE = "features"


def _oracle_bandwidth(dense: np.ndarray) -> int:
    rows, cols = np.nonzero(dense)
    return int(max((abs(int(i) - int(j)) for i, j in zip(rows, cols)),
                   default=0))


def _oracle_profile(dense: np.ndarray) -> int:
    total = 0
    for i in range(dense.shape[0]):
        cols = np.flatnonzero(dense[i])
        if cols.size:
            total += max(i - int(cols[0]), 0)
    return total


def _oracle_offdiag(dense: np.ndarray, nblocks: int) -> int:
    nrows, ncols = dense.shape
    row_bounds = np.linspace(0, nrows, nblocks + 1).astype(np.int64)
    col_bounds = np.linspace(0, ncols, nblocks + 1).astype(np.int64)
    count = 0
    for i, j in zip(*np.nonzero(dense)):
        rb = int(np.searchsorted(row_bounds, i, side="right")) - 1
        cb = int(np.searchsorted(col_bounds, j, side="right")) - 1
        count += rb != cb
    return count


def _oracle_imbalance_1d(row_lengths: np.ndarray, nthreads: int) -> float:
    """The paper's definition over the actual 1D row partition: shares
    owning neither rows nor entries are not part of the partition.

    Counts *stored* entries per thread (``row_lengths``), not
    mathematical nonzeros — the kernel's work includes explicitly
    stored zeros, unlike the structural features above."""
    nrows = int(row_lengths.size)
    bounds = np.linspace(0, nrows, nthreads + 1).astype(np.int64)
    shares = []
    for t in range(nthreads):
        lo, hi = int(bounds[t]), int(bounds[t + 1])
        if hi > lo:
            shares.append(int(row_lengths[lo:hi].sum()))
    if not shares or sum(shares) == 0:
        return 1.0
    return max(shares) / (sum(shares) / len(shares))


def check_features(matrices, nblocks=(1, 2, 4),
                   nthreads=(1, 2, 3, 8)) -> CheckReport:
    """Cross-validate every feature on every matrix against the dense
    oracles, and assert CSR-path/dense-path agreement."""
    report = CheckReport(suites=[SUITE])
    with span("check.features"):
        for name, a in matrices:
            dense = a.to_dense()
            subject = f"matrix={name}"

            got, want = features.bandwidth(a), _oracle_bandwidth(dense)
            report.check(got == want, SUITE, "bandwidth-matches-oracle",
                         subject, f"bandwidth()={got}, dense oracle={want}")

            got, want = features.profile(a), _oracle_profile(dense)
            report.check(got == want, SUITE, "profile-matches-oracle",
                         subject, f"profile()={got}, dense oracle={want}")

            for k in nblocks:
                got = features.offdiagonal_nonzeros(a, k)
                want = _oracle_offdiag(dense, k)
                report.check(
                    got == want, SUITE, "offdiag-matches-oracle",
                    f"{subject} nblocks={k}",
                    f"offdiagonal_nonzeros()={got}, dense oracle={want}")

            for nt in nthreads:
                got = features.imbalance_factor_1d(a, nt)
                want = _oracle_imbalance_1d(a.row_lengths(), nt)
                report.check(
                    bool(np.isfinite(got)) and abs(got - want) < 1e-12,
                    SUITE, "imbalance-matches-active-partition",
                    f"{subject} nthreads={nt}",
                    f"imbalance_factor_1d()={got}, partition oracle={want}")
                s = schedule_mod.schedule_1d(a, nt)
                active = s.active_threads()
                report.check(
                    int(active.sum()) == min(nt, a.nrows)
                    and int(s.nnz_per_thread()[~active].sum()) == 0,
                    SUITE, "active-threads-cover-partition",
                    f"{subject} nthreads={nt}",
                    f"{int(active.sum())} active thread(s) for "
                    f"{a.nrows} rows over {nt} threads, or an inactive "
                    "thread owns entries")

            # two-path agreement: CSR direct vs dense round trip (the
            # round trip drops explicitly stored zeros)
            b = csr_from_dense(dense)
            report.check(
                features.bandwidth(a) == features.bandwidth(b) and
                features.profile(a) == features.profile(b) and
                features.offdiagonal_nonzeros(a, 2)
                == features.offdiagonal_nonzeros(b, 2),
                SUITE, "csr-path-agrees-with-dense-path", subject,
                "feature values differ between the CSR container and "
                "its dense round trip (explicit zeros handled "
                "inconsistently)")
    return report
