"""Serving invariants: the daemon vs a naive unbatched oracle.

The serving path adds queueing, coalescing and admission in front of
the advisor; none of it may change *answers*.  This suite boots a real
daemon on a loopback port, replays a canned seeded trace, and checks:

* ``serving-answers-every-request`` — open-loop replay of the canned
  trace loses nothing: every request gets a structured response (an
  answer or a reject), never a hung or dropped connection.
* ``serving-matches-unbatched-oracle`` — every 200 response is
  bit-identical to a direct :meth:`Advisor.advise` call on a *fresh*
  advisor (separate caches), i.e. batching is invisible.
* ``serving-batches-requests`` — the canned burst actually exercises
  the batched path (mean batch size > 1); a daemon that degenerates to
  one-request batches silently loses the fast path this subsystem
  exists for.
* ``metricsz-schema`` — ``/metricsz`` carries the SLO quantities
  (p50/p95/p99 monotone, batch histogram consistent, shed counters
  present) that dashboards and the bench gate key on.
* ``reject-schema`` — a starved token bucket produces the documented
  structured 429 (status/code/reason/retry_after_ms), not a bare
  error.

Training a model is the expensive part; one model per seed is memoised
at module level so the mutation smoke (which runs this suite three
times) stays fast.
"""

from __future__ import annotations

from ..obs.log import get_logger
from .findings import CheckReport

log = get_logger("check")

SUITE = "serving"

#: canned-trace shape: small enough for CI, bursty enough to coalesce
TRACE_N = 24
TRACE_RATE = 500.0

_MODEL_CACHE: dict = {}


def _trained_model(seed: int):
    """One small trained model per seed (memoised: training dominates)."""
    if seed not in _MODEL_CACHE:
        from ..advisor import train_model
        from ..generators import build_corpus
        from ..machine import get_architecture

        corpus = build_corpus("tiny", seed=seed)[:4]
        arch = get_architecture("Rome")
        model = train_model(corpus=corpus, architectures=[arch],
                            orderings=("RCM", "Gray"), seed=seed)
        _MODEL_CACHE[seed] = (corpus, arch, model)
    return _MODEL_CACHE[seed]


def _check_replay(report: CheckReport, corpus, arch, model,
                  seed: int) -> None:
    from ..advisor import Advisor
    from ..serve import (ServeConfig, generate_trace, replay,
                         start_in_thread)
    from ..serve.protocol import advice_to_wire

    names = [e.name for e in corpus]
    trace = generate_trace(names, n=TRACE_N, seed=seed,
                           rate=TRACE_RATE)
    advisor = Advisor(model, workers=2)
    config = ServeConfig(port=0, rate=None, max_batch=16,
                         linger_ms=5.0, drain_timeout=1.0)
    try:
        with start_in_thread(advisor, corpus, config) as handle:
            result = replay(trace, port=handle.port, arch=arch.name,
                            timeout=3.0)
            metrics = _fetch_metrics(handle)
    finally:
        advisor.close()

    report.check(
        result.answered == len(trace)
        and result.transport_failures == 0,
        SUITE, "serving-answers-every-request",
        f"trace seed={seed} n={len(trace)}",
        f"answered {result.answered}/{len(trace)} request(s), "
        f"{result.transport_failures} transport failure(s)")

    # a fresh advisor: the oracle must not share the daemon's caches
    oracle = Advisor(model)
    by_name = {e.name: e for e in corpus}
    mismatches = []
    for req in trace:
        report.case()
        body = result.responses.get(req.id)
        if body is None:
            continue  # already reported above
        e = by_name[req.matrix]
        expected = advice_to_wire(
            oracle.advise(e.matrix, arch, matrix_name=e.name))
        if body["advice"] != expected:
            mismatches.append(req.id)
    if mismatches:
        report.fail(
            SUITE, "serving-matches-unbatched-oracle",
            f"trace seed={seed}",
            f"{len(mismatches)} of {len(trace)} response(s) differ "
            f"from the unbatched oracle (ids {mismatches[:5]})")

    batch = metrics["slo"]["batch"]
    report.check(
        batch["mean_size"] > 1.0, SUITE, "serving-batches-requests",
        f"trace seed={seed} rate={TRACE_RATE:.0f}rps",
        f"mean batch size {batch['mean_size']} over "
        f"{batch['batches']} batch(es) — the burst never coalesced")

    _check_metrics_schema(report, metrics)


def _fetch_metrics(handle) -> dict:
    from ..serve import ServeClient

    with ServeClient(handle.host, handle.port) as client:
        return client.metricsz()


def _check_metrics_schema(report: CheckReport, metrics: dict) -> None:
    subject = "/metricsz"
    slo = metrics.get("slo", {})
    for key in ("uptime_seconds", "requests", "responses", "errors",
                "latency_ms", "queue_wait_ms", "batch", "shed"):
        report.check(key in slo, SUITE, "metricsz-schema", subject,
                     f"slo is missing {key!r}: {sorted(slo)}")
    lat = slo.get("latency_ms", {})
    have = all(k in lat for k in ("count", "mean", "p50", "p95",
                                  "p99", "max"))
    report.check(have, SUITE, "metricsz-schema", subject,
                 f"latency_ms is missing quantiles: {sorted(lat)}")
    if have:
        report.check(
            0 <= lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"],
            SUITE, "metricsz-schema", subject,
            f"latency quantiles not monotone: p50={lat['p50']} "
            f"p95={lat['p95']} p99={lat['p99']} max={lat['max']}")
    batch = slo.get("batch", {})
    hist = batch.get("histogram", {})
    report.check(
        sum(hist.get("counts", [])) == batch.get("batches", -1),
        SUITE, "metricsz-schema", subject,
        f"batch histogram counts {hist.get('counts')} do not sum to "
        f"batches={batch.get('batches')}")
    report.check(
        set(slo.get("shed", {})) == {"rate_limited", "queue_full",
                                     "draining"},
        SUITE, "metricsz-schema", subject,
        f"shed counters are {sorted(slo.get('shed', {}))}")
    report.check(
        isinstance(metrics.get("metrics"), dict)
        and isinstance(metrics.get("advisor"), dict),
        SUITE, "metricsz-schema", subject,
        "raw 'metrics' / 'advisor' sections missing")


def _check_reject_schema(report: CheckReport, corpus, arch,
                         model) -> None:
    from ..advisor import Advisor
    from ..serve import ServeClient, ServeConfig, start_in_thread

    advisor = Advisor(model, workers=2)
    config = ServeConfig(port=0, rate=0.001, burst=1.0,
                         drain_timeout=1.0)
    try:
        with start_in_thread(advisor, corpus, config) as handle, \
                ServeClient(handle.host, handle.port) as client:
            e = corpus[0]
            first, _ = client.advise(e.name, arch=arch.name,
                                     client="starved")
            status, body = client.advise(e.name, arch=arch.name,
                                         client="starved",
                                         request_id="r2")
    finally:
        advisor.close()

    subject = "rate=0.001 burst=1"
    report.check(first == 200, SUITE, "reject-schema", subject,
                 f"the first request should pass the full bucket, "
                 f"got {first}")
    report.check(status == 429, SUITE, "reject-schema", subject,
                 f"the second request should be shed, got {status}")
    report.check(
        body.get("status") == "rejected" and body.get("code") == 429
        and body.get("reason") == "rate_limited"
        and body.get("id") == "r2"
        and isinstance(body.get("retry_after_ms"), (int, float))
        and body.get("retry_after_ms", 0) > 0,
        SUITE, "reject-schema", subject,
        f"reject body violates the documented schema: {body}")


def check_serving(seed: int = 0) -> CheckReport:
    """Boot a real daemon and verify the serving invariants."""
    report = CheckReport(suites=[SUITE])
    corpus, arch, model = _trained_model(seed)
    _check_replay(report, corpus, arch, model, seed)
    _check_reject_schema(report, corpus, arch, model)
    return report
