"""repro.check — differential testing and invariant oracle layer.

Cross-validates the fast production paths against naive independent
oracles (dense SpMV, per-element reuse statistics, per-cell model
evaluation), asserts permutation invariants for every registered
reordering, validates harness artifacts against their schemas, and —
via the mutation smoke — tests the oracle layer itself by injecting
seeded faults it must catch.

Entry point: ``python -m repro check`` (see :mod:`repro.check.cli`).
"""

from .corpus import check_corpus, edge_corpus
from .findings import CheckReport, Finding

__all__ = [
    "CheckReport",
    "Finding",
    "check_artifacts",
    "check_corpus",
    "check_features",
    "check_kernels",
    "check_model",
    "check_permutations",
    "check_serving",
    "edge_corpus",
    "run_check",
    "run_mutation_smoke",
]


def __getattr__(name):
    # suites import heavyweight modules (harness, machine); load lazily
    if name == "check_features":
        from .features import check_features
        return check_features
    if name == "check_kernels":
        from .kernels import check_kernels
        return check_kernels
    if name == "check_permutations":
        from .permutations import check_permutations
        return check_permutations
    if name == "check_model":
        from .model import check_model
        return check_model
    if name == "check_artifacts":
        from .artifacts import check_artifacts
        return check_artifacts
    if name == "check_serving":
        from .serving import check_serving
        return check_serving
    if name == "run_check":
        from .cli import run_check
        return run_check
    if name == "run_mutation_smoke":
        from .mutation import run_mutation_smoke
        return run_mutation_smoke
    raise AttributeError(f"module 'repro.check' has no attribute {name!r}")
