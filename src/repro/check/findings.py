"""Finding and report types shared by every check suite.

A *finding* is one violated invariant: which suite noticed it, the
machine-readable invariant name (stable — the mutation smoke asserts on
it, and docs/correctness.md indexes it), the subject under check and a
human-readable detail with the observed numbers.  A clean run is a
report with zero findings; the CLI exit code is derived from exactly
that.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..obs.metrics import REGISTRY

#: total invariant evaluations across all suites (observability)
CASES = REGISTRY.counter("check.cases")
#: total findings raised across all suites
FINDINGS = REGISTRY.counter("check.findings")


@dataclass(frozen=True)
class Finding:
    """One violated invariant."""

    suite: str       # "features" / "kernels" / "permutations" / ...
    invariant: str   # stable machine-readable name, kebab-case
    subject: str     # what was being checked ("matrix=banded kernel=2d")
    detail: str      # human explanation with the observed numbers

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"[{self.suite}] {self.invariant} :: {self.subject}: "
                f"{self.detail}")


@dataclass
class CheckReport:
    """Aggregated outcome of one or more check suites."""

    findings: list = field(default_factory=list)
    cases: int = 0
    suites: list = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def case(self, n: int = 1) -> None:
        """Count ``n`` evaluated invariant instances."""
        self.cases += n
        CASES.inc(n)

    def fail(self, suite: str, invariant: str, subject: str,
             detail: str) -> None:
        self.findings.append(Finding(suite, invariant, subject, detail))
        FINDINGS.inc()

    def check(self, condition: bool, suite: str, invariant: str,
              subject: str, detail: str) -> bool:
        """Count one case; record a finding unless ``condition`` holds."""
        self.case()
        if not condition:
            self.fail(suite, invariant, subject, detail)
        return bool(condition)

    def merge(self, other: "CheckReport") -> "CheckReport":
        self.findings.extend(other.findings)
        self.cases += other.cases
        self.suites.extend(s for s in other.suites if s not in self.suites)
        self.seconds += other.seconds
        return self

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "cases": self.cases,
            "suites": list(self.suites),
            "seconds": round(self.seconds, 3),
            "findings": [asdict(f) for f in self.findings],
        }

    def render(self, max_findings: int = 50) -> str:
        lines = [f"check: {self.cases} invariant case(s) across "
                 f"{len(self.suites)} suite(s) "
                 f"[{', '.join(self.suites)}] in {self.seconds:.2f}s"]
        if self.ok:
            lines.append("check: OK — no invariant violations")
        else:
            lines.append(f"check: FAILED — {len(self.findings)} finding(s)")
            for f in self.findings[:max_findings]:
                lines.append(f"  {f}")
            if len(self.findings) > max_findings:
                lines.append(
                    f"  ... and {len(self.findings) - max_findings} more")
        return "\n".join(lines)
