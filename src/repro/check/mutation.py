"""Mutation smoke: seeded faults the check suites must catch.

Each fault monkeypatches one production function with a realistic bug
— an off-by-one, a swapped permutation direction, a dropped journal
line, a stale cache entry, an unguarded division — runs the check
suite built to catch exactly that class of defect, and asserts at
least one finding names the expected invariant.  A fault that slips
through means the oracle layer has a blind spot; the smoke exits
nonzero and CI fails.

Faults patch *module/class attributes* (the names the checkers resolve
at call time), never local bindings, and every patch is restored in a
``finally`` so faults cannot leak into each other or into a subsequent
real check run.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from ..obs.trace import span
from .corpus import check_corpus, edge_corpus
from .findings import CheckReport


# ----------------------------------------------------------------------
# patch helper
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _patched(owner, name: str, replacement):
    """Temporarily replace ``owner.name`` (module or class attribute)."""
    original = getattr(owner, name)
    setattr(owner, name, replacement)
    try:
        yield original
    finally:
        setattr(owner, name, original)


# ----------------------------------------------------------------------
# target suites (small fixed corpora keep the smoke fast)
# ----------------------------------------------------------------------
def _small_matrices(seed: int) -> list:
    return check_corpus(seed)[:2] + edge_corpus(seed)


def _features_target(seed: int) -> CheckReport:
    from .features import check_features

    return check_features(_small_matrices(seed))


def _kernels_target(seed: int) -> CheckReport:
    from .kernels import check_kernels

    return check_kernels(_small_matrices(seed), seed=seed)


def _permutations_target(seed: int) -> CheckReport:
    from .permutations import check_permutations

    mats = [m for m in check_corpus(seed)[:2] if m[1].is_square]
    return check_permutations(mats, orderings=("RCM", "Gray"), seed=seed)


def _model_target(seed: int) -> CheckReport:
    from .model import check_model

    return check_model(check_corpus(seed)[:2],
                       architectures=("Rome",))


def _artifacts_target(seed: int) -> CheckReport:
    from .artifacts import check_artifacts

    return check_artifacts(seed=seed)


def _serving_target(seed: int) -> CheckReport:
    from .serving import check_serving

    return check_serving(seed=seed)


def _caches_target(seed: int) -> CheckReport:
    from ..generators import build_corpus
    from .artifacts import _check_caches

    report = CheckReport(suites=["artifacts"])
    _check_caches(report, build_corpus("tiny", seed=seed)[:1])
    return report


def _fastpath_target(seed: int) -> CheckReport:
    from .fastpath import check_fastpath

    mats = [m for m in check_corpus(seed)[:3] if m[1].is_square]
    return check_fastpath(mats)


def _storage_target(seed: int) -> CheckReport:
    from .storage import check_storage

    return check_storage(seed=seed)


# ----------------------------------------------------------------------
# the faults
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fault:
    """One injectable bug and the invariant expected to catch it."""

    name: str
    description: str
    expect_invariant: str
    target: object                 # seed -> CheckReport
    inject: object                 # () -> contextmanager
    expect_detail: str = ""        # optional substring of subject+detail


def _fault_bandwidth_off_by_one():
    from .. import features

    orig = features.bandwidth
    return _patched(features, "bandwidth", lambda a: orig(a) + 1)


def _fault_swapped_perm_direction():
    from ..matrix.permute import invert_permutation
    from ..reorder import perm as perm_mod

    orig = perm_mod.permute_symmetric
    return _patched(perm_mod, "permute_symmetric",
                    lambda a, p: orig(a, invert_permutation(p)))


def _fault_dropped_journal_line():
    from ..harness.engine import SweepJournal

    orig = SweepJournal.append_record
    state = {"n": 0}

    def dropping(self, cell, rec):
        state["n"] += 1
        if state["n"] == 2:
            return  # silently lose one completed cell
        orig(self, cell, rec)

    return _patched(SweepJournal, "append_record", dropping)


def _fault_stale_cache_entry():
    from ..harness.runner import OrderingCache
    from ..reorder.perm import identity_ordering

    orig = OrderingCache.get

    def stale(self, a, matrix_name, ordering, nparts=64, seed=0):
        result = orig(self, a, matrix_name, ordering, nparts=nparts,
                      seed=seed)
        # second lookup serves a wrong (identity) permutation, as a
        # colliding/stale key would
        if self._hits > 0:
            return identity_ordering(a.nrows)
        return result

    return _patched(OrderingCache, "get", stale)


def _fault_imbalance_empty_threads():
    from ..spmv.schedule import Schedule

    def all_active(self):
        return np.ones(self.nthreads, dtype=bool)

    return _patched(Schedule, "active_threads", all_active)


def _fault_kernel_skips_last_thread():
    from ..spmv import kernels

    orig = kernels.spmv_1d

    def skipping(a, x, schedule):
        y = orig(a, x, schedule)
        lo = int(schedule.row_start[schedule.nthreads - 1])
        hi = int(schedule.row_start[schedule.nthreads])
        y[lo:hi] = 0.0  # last thread's rows never computed
        return y

    return _patched(kernels, "spmv_1d", skipping)


def _fault_model_fastpath_drift():
    from ..machine.reuse import ReuseStats

    orig = ReuseStats.prev

    def drifted(self, words_per_line):
        prev = orig(self, words_per_line).copy()
        warm = np.flatnonzero(prev >= 0)
        if warm.size:
            prev[warm[0]] = -1  # one extra modelled line load
        return prev

    return _patched(ReuseStats, "prev", drifted)


def _fault_prev_occurrence_off_by_one():
    from ..machine import reuse as reuse_mod

    orig = reuse_mod.prev_occurrence

    def shifted(stream):
        prev = orig(stream)
        return np.where(prev > 0, prev - 1, prev)

    return _patched(reuse_mod, "prev_occurrence", shifted)


def _fault_torn_trace_event():
    from ..obs.trace import Tracer

    orig = Tracer.save

    def torn(self, path, extra_events=None):
        bad = [{"name": "torn", "ph": "X", "cat": "repro", "ts": 0.0,
                "dur": -1.0, "pid": 0, "tid": 0}]
        return orig(self, path, extra_events=bad + list(extra_events or []))

    return _patched(Tracer, "save", torn)


def _fault_sidecar_negative_duration():
    from ..obs.trace import Tracer

    orig = Tracer._write_jsonl
    state = {"done": False}

    def negated(self, event):
        if not state["done"] and event.get("ph") == "X":
            state["done"] = True
            # corrupt the sidecar line only — the in-RAM buffer (and
            # thus the saved .json trace) stays clean, so the finding
            # must come from the sidecar validation pass
            event = dict(event)
            event["dur"] = -abs(float(event.get("dur", 0.0))) - 1.0
        orig(self, event)

    return _patched(Tracer, "_write_jsonl", negated)


def _fault_sidecar_orphaned_parent():
    from ..obs.trace import Tracer

    orig = Tracer._write_jsonl
    state = {"done": False}

    def orphaned(self, event):
        args = event.get("args") or {}
        if not state["done"] and args.get("parent_id"):
            state["done"] = True
            event = dict(event)
            event["args"] = dict(args, parent_id="ffffffff")
        orig(self, event)

    return _patched(Tracer, "_write_jsonl", orphaned)


def _fault_sidecar_child_exceeds_parent():
    from ..obs.trace import Tracer

    orig = Tracer._write_jsonl
    state = {"done": False}

    def skewed(self, event):
        args = event.get("args") or {}
        if (not state["done"] and event.get("ph") == "X"
                and args.get("parent_id")):
            state["done"] = True
            # inflate a child span well past any parent interval the
            # tiny check sweep can produce — the skewed-clock shape
            event = dict(event)
            event["dur"] = float(event.get("dur", 0.0)) * 1000.0 + 1e7
        orig(self, event)

    return _patched(Tracer, "_write_jsonl", skewed)


def _fault_manifest_missing_field():
    import json

    from ..obs.manifest import RunManifest

    def truncated(self, path):
        data = self.to_dict()
        data.pop("run_id", None)
        with open(path, "wt") as f:
            json.dump(data, f)
        return path

    return _patched(RunManifest, "write", truncated)


def _fault_serve_drops_queued_request():
    import asyncio

    from ..serve.batching import MicroBatcher

    orig = MicroBatcher.submit
    state = {"n": 0}

    async def dropping(self, payload):
        state["n"] += 1
        if state["n"] == 2:
            # the request vanishes from the queue: its future never
            # resolves, so no response is ever written for it
            return await asyncio.get_running_loop().create_future()
        return await orig(self, payload)

    return _patched(MicroBatcher, "submit", dropping)


def _fault_stale_crc_accepted():
    from ..storage import format as storage_fmt

    # the verifier accepts any checksum: bit rot and torn writes in
    # array files sail through level='crc' verification
    return _patched(storage_fmt, "_crc_ok",
                    lambda expected, actual: True)


def _fault_rowptr_colidx_desync():
    from ..storage.format import MatrixWriter

    orig = MatrixWriter._write_block

    def desynced(self, name, arr):
        if name == "colidx" and np.asarray(arr).size:
            arr = np.asarray(arr)[:-1]  # drop the chunk's last column
        orig(self, name, arr)

    return _patched(MatrixWriter, "_write_block", desynced)


def _fault_snapshot_reused_after_seed_change():
    import json

    from ..storage import snapshot as snap_mod

    def seedless(spec):
        pruned = {k: v for k, v in spec.items() if k != "seed"}
        return json.dumps(pruned, sort_keys=True,
                          separators=(",", ":"))

    return _patched(snap_mod, "_spec_key", seedless)


def _fault_hit_rate_unguarded():
    from ..obs import cachestats

    def unguarded(hits=0, misses=0, evictions=0, size_bytes=0, **extra):
        out = {
            "hits": int(hits), "misses": int(misses),
            "evictions": int(evictions),
            "hit_rate": hits / (hits + misses),  # no zero guard
            "size_bytes": int(size_bytes),
        }
        out.update(extra)
        return out

    return _patched(cachestats, "cache_stats", unguarded)


def _fault_bfs_level_off_by_one():
    from ..graph import bfs as bfs_mod

    orig = bfs_mod.bfs_levels_fast

    def merged(g, start):
        levels = orig(g, start).copy()
        top = levels.max(initial=-1)
        if top > 0:
            # the classic frontier off-by-one: the last BFS level is
            # folded into the one before it, so RCM's level structure
            # (and with it the Cuthill-McKee visit order) is wrong
            levels[levels == top] = top - 1
        return levels

    return _patched(bfs_mod, "bfs_levels_fast", merged)


def _fault_amd_stale_degree():
    from ..reorder import amd as amd_mod

    # the fast path's approximate degree stops discounting the mass of
    # just-eliminated supervariables — a stale degree that steers pivot
    # selection away from the reference's elimination order
    return _patched(amd_mod, "AMD_MASS_DISCOUNT", 0)


def _fault_fm_dropped_gain_update():
    from ..partition import fm as fm_mod

    # moving a vertex no longer updates its neighbours' gains (step 0
    # instead of 2x edge weight): the classic dropped-gain-update FM
    # bug, visible as a diverged GP/ND permutation
    return _patched(fm_mod, "NEIGHBOR_GAIN_STEP", 0)


def _fault_spgemm_drops_duplicate_products():
    from ..spmv import products

    orig = products._coalesce

    def keeps_first(nrows, ncols, rows, cols, vals):
        # keep only the first partial product of each (row, col) run
        # instead of summing the run — the classic missing-accumulate
        # SpGEMM bug
        if rows.size:
            order = np.lexsort((cols, rows))
            rows, cols, vals = rows[order], cols[order], vals[order]
            first = np.ones(rows.size, dtype=bool)
            first[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            rows, cols, vals = rows[first], cols[first], vals[first]
        return orig(nrows, ncols, rows, cols, vals)

    return _patched(products, "_coalesce", keeps_first)


def _fault_spgemm_zeroes_last_row():
    from ..matrix.csr import CSRMatrix
    from ..spmv import products

    orig = products.spgemm

    def zeroing(a, b=None):
        c = orig(a, b)
        vals = c.values.copy()
        vals[c.rowptr[c.nrows - 1]:c.rowptr[c.nrows]] = 0.0
        return CSRMatrix(c.nrows, c.ncols, c.rowptr, c.colidx, vals)

    return _patched(products, "spgemm", zeroing)


def _fault_spmm_zeroes_last_vector():
    from ..spmv import products

    orig = products.spmm

    def zeroing(a, x, kind="1d", nthreads=1):
        y = orig(a, x, kind, nthreads)
        y[:, -1] = 0.0  # the block loop stops one vector short
        return y

    return _patched(products, "spmm", zeroing)


def _fault_spmm_reuses_first_vector():
    from ..spmv import products

    orig = products.spmm

    def reusing(a, x, kind="1d", nthreads=1):
        y = orig(a, x, kind, nthreads)
        y[:, 1:] = y[:, :1]  # a stale column-offset bug: every output
        return y             # vector is the first one

    return _patched(products, "spmm", reusing)


def _fault_cg_stale_residual_norm():
    from ..solvers import iterative

    orig = iterative._residual_norm
    state = {"v": None}

    def stale(r):
        cur = orig(r)
        if state["v"] is None:
            state["v"] = cur
        return state["v"]  # the convergence test never sees progress

    return _patched(iterative, "_residual_norm", stale)


def _fault_solver_history_lags():
    from ..solvers import iterative

    state = {"prev": None}

    def lagged(x):
        out = state["prev"]
        state["prev"] = np.asarray(x).copy()
        if out is None or out.shape != x.shape:
            return np.zeros_like(x)
        return out  # the recorded iterate is one step behind

    return _patched(iterative, "_snapshot", lagged)


def _fault_jacobi_halved_diagonal():
    from ..solvers import iterative

    orig = iterative._inv_diag

    # the preconditioner halves the diagonal, doubling every update
    # step: the iteration overshoots and oscillates/diverges even on
    # diagonally dominant systems
    return _patched(iterative, "_inv_diag", lambda a: 2.0 * orig(a))


def _fault_jacobi_residual_skips_last_row():
    from ..solvers import iterative

    orig = iterative._jacobi_residual

    def truncated(b, y):
        r = orig(b, y)
        if r.size:
            r[-1] = 0.0  # the residual loop stops one row short, so
        return r         # the last unknown never moves off x0

    return _patched(iterative, "_jacobi_residual", truncated)


FAULTS = (
    Fault("bandwidth-off-by-one",
          "bandwidth() reports max|i-j| + 1",
          "bandwidth-matches-oracle", _features_target,
          _fault_bandwidth_off_by_one),
    Fault("imbalance-counts-empty-threads",
          "active_threads() reports every thread active (pre-fix "
          "behaviour: empty shares dilute the imbalance mean)",
          "imbalance-matches-active-partition", _features_target,
          _fault_imbalance_empty_threads),
    Fault("kernel-skips-last-thread",
          "the 1D kernel never computes the last thread's rows",
          "spmv-matches-dense-oracle", _kernels_target,
          _fault_kernel_skips_last_thread),
    Fault("swapped-permutation-direction",
          "permute_symmetric applies the inverse (old-to-new) "
          "permutation",
          "permuted-matrix-matches-dense-gather", _permutations_target,
          _fault_swapped_perm_direction),
    Fault("prev-occurrence-off-by-one",
          "prev_occurrence() shifts every warm index down by one",
          "prev-occurrence-matches-naive", _model_target,
          _fault_prev_occurrence_off_by_one),
    Fault("model-fastpath-drift",
          "the memoised reuse statistics feed the fast path one extra "
          "line load",
          "fastpath-matches-naive-model", _model_target,
          _fault_model_fastpath_drift),
    Fault("dropped-journal-line",
          "SweepJournal silently drops the second record line",
          "journal-matches-metrics", _artifacts_target,
          _fault_dropped_journal_line),
    Fault("torn-trace-event",
          "the saved trace contains an event with negative duration",
          "artifact-schema", _artifacts_target,
          _fault_torn_trace_event, expect_detail="trace:"),
    Fault("manifest-missing-field",
          "the run manifest is written without its run_id",
          "artifact-schema", _artifacts_target,
          _fault_manifest_missing_field, expect_detail="manifest:"),
    Fault("sidecar-negative-duration",
          "the trace sidecar logs a span with negative duration",
          "artifact-schema", _artifacts_target,
          _fault_sidecar_negative_duration, expect_detail="sidecar:"),
    Fault("sidecar-orphaned-parent",
          "a sidecar span's parent_id points at a span that was never "
          "written (torn merge)",
          "artifact-schema", _artifacts_target,
          _fault_sidecar_orphaned_parent, expect_detail="sidecar:"),
    Fault("sidecar-child-exceeds-parent",
          "a sidecar child span's duration is inflated past its "
          "parent's interval (clock skew)",
          "artifact-schema", _artifacts_target,
          _fault_sidecar_child_exceeds_parent, expect_detail="sidecar:"),
    Fault("stale-cache-entry",
          "OrderingCache serves an identity permutation on cache hits",
          "cache-serves-fresh-result", _caches_target,
          _fault_stale_cache_entry),
    Fault("bfs-level-off-by-one",
          "the vectorised BFS folds the last frontier level into its "
          "predecessor (RCM level-boundary off-by-one)",
          "fastpath-matches-reference", _fastpath_target,
          _fault_bfs_level_off_by_one, expect_detail="ordering=RCM"),
    Fault("amd-stale-degree",
          "the fast AMD path stops discounting just-eliminated mass "
          "from the approximate degree (stale degree)",
          "fastpath-matches-reference", _fastpath_target,
          _fault_amd_stale_degree, expect_detail="ordering=AMD"),
    Fault("fm-dropped-gain-update",
          "fast FM refinement no longer updates neighbour gains after "
          "a move",
          "fastpath-matches-reference", _fastpath_target,
          _fault_fm_dropped_gain_update, expect_detail="ordering=GP"),
    Fault("serve-drops-queued-request",
          "the serving micro-batcher silently drops the second queued "
          "request (its future never resolves)",
          "serving-answers-every-request", _serving_target,
          _fault_serve_drops_queued_request),
    Fault("hit-rate-unguarded",
          "cache_stats divides by hits+misses without a zero guard",
          "cache-hit-rate-finite", _caches_target,
          _fault_hit_rate_unguarded),
    Fault("stale-crc-accepted",
          "the snapshot verifier accepts any CRC, so corrupt array "
          "files pass level='crc' verification",
          "snapshot-detects-corruption", _storage_target,
          _fault_stale_crc_accepted),
    Fault("rowptr-colidx-desync",
          "the matrix writer drops each chunk's last column index, "
          "desynchronising colidx from rowptr/values",
          "snapshot-roundtrip-identical", _storage_target,
          _fault_rowptr_colidx_desync),
    Fault("snapshot-reused-after-seed-change",
          "snapshot reuse ignores the generator seed, serving stale "
          "matrices after a seed change",
          "snapshot-seed-changes-address", _storage_target,
          _fault_snapshot_reused_after_seed_change),
    Fault("spgemm-drops-duplicate-products",
          "SpGEMM keeps only the first partial product of each "
          "(row, col) run instead of summing the run",
          "spgemm-matches-dense-oracle", _kernels_target,
          _fault_spgemm_drops_duplicate_products),
    Fault("spgemm-zeroes-last-row",
          "SpGEMM never computes the last output row",
          "spgemm-matches-dense-oracle", _kernels_target,
          _fault_spgemm_zeroes_last_row),
    Fault("spmm-zeroes-last-vector",
          "SpMM stops one vector short of the dense block",
          "spmm-matches-dense-oracle", _kernels_target,
          _fault_spmm_zeroes_last_vector),
    Fault("spmm-reuses-first-vector",
          "SpMM serves the first output vector for every block column "
          "(stale column offset)",
          "spmm-matches-dense-oracle", _kernels_target,
          _fault_spmm_reuses_first_vector),
    Fault("cg-stale-residual-norm",
          "the solver's residual norm never updates past its first "
          "value, so the convergence test never sees progress",
          "cg-converges", _kernels_target,
          _fault_cg_stale_residual_norm, expect_detail="solver=cg"),
    Fault("solver-history-off-by-one",
          "the recorded iterate history lags the true iterate by one "
          "step",
          "solver-history-final-iterate", _kernels_target,
          _fault_solver_history_lags, expect_detail="solver=cg"),
    Fault("jacobi-halved-diagonal",
          "Jacobi's preconditioner halves the diagonal, doubling every "
          "update step into overshoot",
          "jacobi-converges", _kernels_target,
          _fault_jacobi_halved_diagonal, expect_detail="solver=jacobi"),
    Fault("jacobi-residual-skips-last-row",
          "Jacobi's residual loop stops one row short, converging to a "
          "wrong fixed point",
          "jacobi-matches-dense-solve", _kernels_target,
          _fault_jacobi_residual_skips_last_row,
          expect_detail="solver=jacobi"),
)


# ----------------------------------------------------------------------
# the smoke runner
# ----------------------------------------------------------------------
@dataclass
class MutationOutcome:
    fault: str
    caught: bool
    findings: int
    matched: int
    description: str


@dataclass
class MutationReport:
    outcomes: list = field(default_factory=list)
    baseline_clean: bool = True
    baseline_findings: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.baseline_clean and all(o.caught for o in self.outcomes)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "baseline_clean": self.baseline_clean,
            "outcomes": [vars(o) for o in self.outcomes],
        }

    def render(self) -> str:
        lines = [f"mutation smoke: {len(self.outcomes)} fault(s)"]
        if not self.baseline_clean:
            lines.append(
                "  BASELINE DIRTY — suites report findings without any "
                "injected fault:")
            for f in self.baseline_findings[:10]:
                lines.append(f"    {f}")
        for o in self.outcomes:
            status = "caught" if o.caught else "MISSED"
            lines.append(
                f"  [{status:>6}] {o.fault}: {o.description} "
                f"({o.matched}/{o.findings} finding(s) matched)")
        lines.append("mutation smoke: "
                     + ("OK — every fault caught" if self.ok else "FAILED"))
        return "\n".join(lines)


def _matches(finding, fault: Fault) -> bool:
    haystack = f"{finding.subject}: {finding.detail}"
    return (finding.invariant == fault.expect_invariant
            and (fault.expect_detail in haystack
                 if fault.expect_detail else True))


def run_mutation_smoke(seed: int = 0) -> MutationReport:
    """Inject every fault; assert its designated suite catches it."""
    report = MutationReport()
    with span("check.mutation"):
        # baseline: every target suite must be clean before injection
        for target in {f.target for f in FAULTS}:
            clean = target(seed)
            if not clean.ok:
                report.baseline_clean = False
                report.baseline_findings.extend(clean.findings)
        for fault in FAULTS:
            with span("check.mutation.fault", fault=fault.name):
                with fault.inject():
                    result = fault.target(seed)
            matched = sum(_matches(f, fault) for f in result.findings)
            report.outcomes.append(MutationOutcome(
                fault=fault.name,
                caught=matched > 0,
                findings=len(result.findings),
                matched=matched,
                description=fault.description))
    return report
