"""Permutation invariants for every registered reordering.

For each ordering of the registry (the paper's six plus the survey
extras) applied to each corpus matrix, this suite asserts:

* **bijection** — the permutation is a valid bijection of row indices;
* **gather equivalence** — the permuted matrix equals the dense oracle
  gather: ``A[perm][:, perm]`` for symmetric (PAPᵀ) orderings,
  ``A[perm, :]`` for row-only (PA) ones.  This is direction-sensitive,
  unlike a pure round trip (applying the *inverse* of a swapped
  permutation still restores the original), so a swapped new-to-old /
  old-to-new convention anywhere in the permutation plumbing is caught
  here;
* **conservation** — nnz and the value multiset are preserved;
* **symmetry preservation** — a PAPᵀ ordering of a pattern-symmetric
  matrix yields a pattern-symmetric matrix;
* **round trip** — applying the inverse permutation restores the
  original matrix bit-for-bit, and the structural features recomputed
  on the round-tripped matrix equal the originals;
* **determinism** — recomputing with the same seed yields the same
  permutation (the cross-process half lives in
  ``tests/reorder/test_determinism.py``).
"""

from __future__ import annotations

import numpy as np

from .. import features
from ..matrix import permute as permute_mod
from ..matrix.symmetry import is_pattern_symmetric
from ..obs.trace import span
from ..reorder import registry
from .findings import CheckReport

SUITE = "permutations"


def _orderings() -> tuple:
    return registry.ALL_ORDERINGS + registry.EXTRA_ORDERINGS


def check_permutations(matrices, orderings=None, nparts: int = 4,
                       seed: int = 0) -> CheckReport:
    """Assert the permutation invariants for every ordering × matrix."""
    report = CheckReport(suites=[SUITE])
    names = tuple(orderings) if orderings is not None else _orderings()
    with span("check.permutations"):
        for mat_name, a in matrices:
            if not a.is_square:
                continue  # reorderings are defined on square matrices
            dense = a.to_dense()
            sym_before = a.is_square and is_pattern_symmetric(a)
            for ordering in names:
                subject = f"matrix={mat_name} ordering={ordering}"
                try:
                    result = registry.compute_ordering(
                        a, ordering, nparts=nparts, seed=seed)
                    b = result.apply(a)
                except Exception as exc:  # noqa: BLE001 - report
                    report.case()
                    report.fail(SUITE, "ordering-crash", subject,
                                f"{type(exc).__name__}: {exc}")
                    continue
                perm = result.perm

                counts = np.bincount(perm, minlength=a.nrows)
                report.check(
                    perm.size == a.nrows and bool(np.all(counts == 1)),
                    SUITE, "permutation-is-bijection", subject,
                    f"perm of size {perm.size} over {a.nrows} rows is "
                    "not a bijection")

                if result.symmetric:
                    want = dense[perm][:, perm]
                else:
                    want = dense[perm, :]
                report.check(
                    bool(np.array_equal(b.to_dense(), want)),
                    SUITE, "permuted-matrix-matches-dense-gather",
                    subject,
                    "applied permutation disagrees with the dense "
                    f"{'PAPt' if result.symmetric else 'PA'} gather "
                    "oracle (swapped direction or dropped entries)")

                report.check(
                    b.nnz == a.nnz and bool(np.array_equal(
                        np.sort(b.values), np.sort(a.values))),
                    SUITE, "nnz-and-values-conserved", subject,
                    f"nnz {a.nnz} -> {b.nnz}, or the value multiset "
                    "changed")

                if sym_before and result.symmetric:
                    report.check(
                        is_pattern_symmetric(b), SUITE,
                        "symmetry-preserved", subject,
                        "PAPt ordering broke pattern symmetry")

                if result.symmetric:
                    inv = permute_mod.invert_permutation(perm)
                    back = permute_mod.permute_symmetric(b, inv)
                    report.check(
                        bool(np.array_equal(back.to_dense(), dense)),
                        SUITE, "inverse-round-trip-restores-original",
                        subject,
                        "PAPt followed by its inverse does not restore "
                        "the matrix")
                    report.check(
                        features.bandwidth(back) == features.bandwidth(a)
                        and features.profile(back) == features.profile(a),
                        SUITE, "features-stable-after-round-trip",
                        subject,
                        "features recomputed after the inverse round "
                        "trip differ from the originals")

                again = registry.compute_ordering(
                    a, ordering, nparts=nparts, seed=seed)
                report.check(
                    bool(np.array_equal(again.perm, perm)), SUITE,
                    "ordering-deterministic-for-seed", subject,
                    "two in-process computations with the same seed "
                    "produced different permutations")
    return report
