"""Harness-artifact and cache-observability checks.

Runs one real (tiny) sweep into a scratch directory with every
artifact enabled — journal, ``sweep_metrics.json``, run manifest and
trace sidecar — then validates the whole set:

* the artifact schemas, via :func:`repro.obs.report.check_artifacts`
  (this suite subsumes ``repro report --check``);
* **cross-counts** — every completed cell must have journaled exactly
  one record line: the journal's record count is compared against the
  engine's cell metrics, so a dropped or unflushed journal line is a
  finding, not silent data loss on the next resume;
* the ``sweep_metrics.json`` shape (stages, cache, cells, registry);
* an empty-journal probe: a zero-byte journal must be *flagged* by the
  artifact validator even though the engine accepts it on resume.

Cache observability rides along: the three caches sharing the stats
schema (ordering cache, advisor LRU, reuse memo) are checked idle and
after a seeded workload — shared keys present, ``hit_rate`` finite and
in ``[0, 1]`` at zero accesses — and the ordering cache is
differentially checked against a fresh ``compute_ordering``, so a
stale entry (wrong permutation under a colliding key) is caught.
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

from ..generators import build_corpus
from ..machine import reuse as reuse_mod
from ..machine.arch import get_architecture
from ..obs import cachestats
from ..obs import report as report_mod
from ..obs import trace as trace_mod
from ..obs.trace import span
from ..reorder import registry
from .findings import CheckReport

SUITE = "artifacts"

#: keys ``sweep_metrics.json`` must always carry
METRICS_KEYS = ("jobs", "wall_seconds", "stages", "cache", "model_stats",
                "cells", "workers", "registry")


def _check_caches(report: CheckReport, corpus) -> None:
    from ..advisor.cache import LRUCache
    from ..harness.runner import OrderingCache

    entry = corpus[0]

    def rate_ok(stats: dict) -> bool:
        rate = stats.get("hit_rate")
        return (rate is not None and np.isfinite(rate)
                and 0.0 <= rate <= 1.0
                and all(k in stats for k in cachestats.CACHE_STATS_KEYS))

    # idle: zero accesses must not divide by zero anywhere
    for cache_name, stats_fn in (
            ("ordering-cache", lambda: OrderingCache().stats),
            ("advisor-lru", lambda: LRUCache(capacity=2).stats),
            ("reuse-memo", reuse_mod.reuse_cache_stats)):
        try:
            stats = stats_fn()
            ok = rate_ok(stats)
            detail = f"idle stats {stats!r}"
        except Exception as exc:  # noqa: BLE001 - report
            ok, detail = False, f"{type(exc).__name__}: {exc}"
        report.check(ok, SUITE, "cache-hit-rate-finite",
                     f"cache={cache_name} state=idle", detail)

    # workload: the ordering cache must keep serving the same result a
    # fresh computation produces
    cache = OrderingCache()
    fresh = registry.compute_ordering(entry.matrix, "RCM", nparts=4,
                                      seed=0)
    first = cache.get(entry.matrix, entry.name, "RCM", nparts=4, seed=0)
    second = cache.get(entry.matrix, entry.name, "RCM", nparts=4, seed=0)
    report.check(
        bool(np.array_equal(first.perm, fresh.perm))
        and bool(np.array_equal(second.perm, fresh.perm)),
        SUITE, "cache-serves-fresh-result",
        f"cache=ordering-cache matrix={entry.name}",
        "cached permutation differs from a fresh compute_ordering "
        "(stale or cross-wired cache entry)")
    try:
        ok = rate_ok(cache.stats)
        detail = f"workload stats {cache.stats!r}"
    except Exception as exc:  # noqa: BLE001 - report
        ok, detail = False, f"{type(exc).__name__}: {exc}"
    report.check(ok, SUITE, "cache-hit-rate-finite",
                 "cache=ordering-cache state=active", detail)


def check_artifacts(seed: int = 0, workdir: str | None = None) -> CheckReport:
    """Produce and validate one full artifact set."""
    from ..harness.engine import SweepEngine, SweepJournal

    report = CheckReport(suites=[SUITE])
    corpus = build_corpus("tiny", seed=seed)[:2]
    archs = [get_architecture("Rome")]

    with span("check.artifacts"), tempfile.TemporaryDirectory() as tmp:
        out = workdir or tmp
        journal = os.path.join(out, "check_sweep.jsonl")
        metrics = os.path.join(out, "check_metrics.json")
        manifest = os.path.join(out, "check_manifest.json")
        trace = os.path.join(out, "check_trace.json")
        sidecar = trace + "l"

        was_enabled = trace_mod.TRACER.enabled
        engine = SweepEngine(corpus, archs, ["RCM", "Gray"],
                             seed=seed, journal_path=journal,
                             manifest_path=manifest, trace=True)
        try:
            # inline (jobs=1) spans record only while the global tracer
            # is on — same contract as the sweep CLI; the sidecar gets
            # every event the moment it finishes, so the link checks
            # below also cover the crash-log path
            trace_mod.TRACER.enable(jsonl_path=sidecar)
            engine.run()
            trace_mod.TRACER.save(trace)
        finally:
            trace_mod.TRACER.disable()  # closes the sidecar handle
            if was_enabled:
                trace_mod.TRACER.enable()
            else:
                trace_mod.TRACER.clear()
        engine.metrics.save(metrics)

        for problem in report_mod.check_artifacts(
                trace_path=trace, journal_path=journal,
                manifest_path=manifest,
                require_spans=("reorder", "reuse_stats", "model_eval"),
                sidecar_path=sidecar):
            report.fail(SUITE, "artifact-schema", "sweep artifacts",
                        problem)
        report.case(4)  # trace + sidecar + journal + manifest validated

        _sig, records, _failures = SweepJournal.load(journal)
        cells = engine.metrics.cells
        journaled = len(records)
        completed = cells.get("completed", 0) + cells.get("resumed", 0)
        report.check(
            journaled == completed == cells.get("total", -1),
            SUITE, "journal-matches-metrics", "sweep artifacts",
            f"journal has {journaled} record line(s) but the engine "
            f"completed {completed} of {cells.get('total')} cell(s) — "
            "a journal line was dropped or never flushed")

        with open(metrics, "rt") as f:
            metrics_data = json.load(f)
        missing = [k for k in METRICS_KEYS if k not in metrics_data]
        report.check(
            not missing, SUITE, "metrics-schema", "sweep_metrics.json",
            f"missing required key(s) {missing}")

        # an empty journal is a valid resume point for the engine but
        # must be flagged as a broken artifact by the validator
        empty = os.path.join(out, "empty.jsonl")
        open(empty, "wt").close()
        problems = report_mod.check_artifacts(journal_path=empty)
        report.check(
            bool(problems), SUITE, "empty-journal-flagged", empty,
            "check_artifacts accepted a journal with no readable "
            "header")

    _check_caches(report, corpus)
    return report
