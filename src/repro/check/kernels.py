"""Differential checks of the SpMV kernels against a dense oracle.

Every registered kernel (1d, 2d, merge) is run on every matrix of the
check corpora, over several thread counts — deliberately including
counts larger than the row count — with a seeded random ``x`` vector,
and compared against the dense NumPy oracle ``A @ x``.  A crash is a
finding, not an abort: the suite keeps going and reports every broken
cell.

The dispatch is called through the kernel module's namespace
(``kernels.spmv``), so mutation faults patched into
``repro.spmv.kernels`` are observed by this suite.
"""

from __future__ import annotations

import numpy as np

from ..obs.trace import span
from ..spmv import kernels
from .findings import CheckReport

SUITE = "kernels"

#: every registered schedule kind the dispatcher accepts
KERNEL_KINDS = ("1d", "2d", "merge")


def check_kernels(matrices, nthreads=(1, 2, 3, 8),
                  seed: int = 0) -> CheckReport:
    """Cross-validate every kernel × matrix × thread count."""
    rng = np.random.default_rng(seed)
    report = CheckReport(suites=[SUITE])
    with span("check.kernels"):
        for name, a in matrices:
            x = rng.standard_normal(a.ncols)
            oracle = a.to_dense() @ x
            for kind in KERNEL_KINDS:
                for nt in nthreads:
                    subject = (f"matrix={name} kernel={kind} "
                               f"nthreads={nt}")
                    try:
                        y = kernels.spmv(a, x, kind, nt)
                    except Exception as exc:  # noqa: BLE001 - report
                        report.case()
                        report.fail(SUITE, "kernel-crash", subject,
                                    f"{type(exc).__name__}: {exc}")
                        continue
                    err = float(np.max(np.abs(y - oracle), initial=0.0))
                    report.check(
                        y.shape == oracle.shape
                        and bool(np.allclose(y, oracle,
                                             rtol=1e-10, atol=1e-12)),
                        SUITE, "spmv-matches-dense-oracle", subject,
                        f"max abs error {err:.3e} vs dense A @ x")
    return report
