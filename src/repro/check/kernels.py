"""Differential checks of the SpMV-family kernels against dense oracles.

Every registered kernel (1d, 2d, merge) is run on every matrix of the
check corpora, over several thread counts — deliberately including
counts larger than the row count — with a seeded random ``x`` vector,
and compared against the dense NumPy oracle ``A @ x``.  A crash is a
finding, not an abort: the suite keeps going and reports every broken
cell.

The workload kernels ride the same suite:

* :func:`repro.spmv.products.spgemm` (A·A) against the dense
  ``A @ A`` oracle on square matrices;
* :func:`repro.spmv.products.spmm` (multi-vector) against ``A @ X``
  for a small dense block, across every schedule kind;
* :func:`repro.solvers.iterative.cg` / ``jacobi`` against
  ``np.linalg.solve`` on a diagonally dominant SPD system built from
  each matrix's structure, plus internal-consistency invariants (the
  reported final residual matches a recomputed ``||b - A·x||``, and
  the iterate history ends at the returned solution).

The dispatch is called through each module's namespace
(``kernels.spmv``, ``products.spgemm``, ``iterative.cg``), so mutation
faults patched into those modules are observed by this suite.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..matrix.build import csr_from_dense
from ..obs.trace import span
from ..solvers import iterative
from ..spmv import kernels, products
from .findings import CheckReport

SUITE = "kernels"

#: every registered schedule kind the dispatcher accepts
KERNEL_KINDS = ("1d", "2d", "merge")

#: size caps keeping the dense oracles (O(n^2) memory, O(n^3) solve)
#: affordable on the full check corpus
SOLVER_MAX_ROWS = 300
SPGEMM_MAX_ROWS = 300
SPMM_MAX_ROWS = 600

#: dense block width for the SpMM differential check
SPMM_VECTORS = 3


def check_kernels(matrices, nthreads=(1, 2, 3, 8),
                  seed: int = 0) -> CheckReport:
    """Cross-validate every kernel × matrix × thread count."""
    rng = np.random.default_rng(seed)
    report = CheckReport(suites=[SUITE])
    with span("check.kernels"):
        for name, a in matrices:
            x = rng.standard_normal(a.ncols)
            oracle = a.to_dense() @ x
            for kind in KERNEL_KINDS:
                for nt in nthreads:
                    subject = (f"matrix={name} kernel={kind} "
                               f"nthreads={nt}")
                    try:
                        y = kernels.spmv(a, x, kind, nt)
                    except Exception as exc:  # noqa: BLE001 - report
                        report.case()
                        report.fail(SUITE, "kernel-crash", subject,
                                    f"{type(exc).__name__}: {exc}")
                        continue
                    err = float(np.max(np.abs(y - oracle), initial=0.0))
                    report.check(
                        y.shape == oracle.shape
                        and bool(np.allclose(y, oracle,
                                             rtol=1e-10, atol=1e-12)),
                        SUITE, "spmv-matches-dense-oracle", subject,
                        f"max abs error {err:.3e} vs dense A @ x")
            _check_spgemm(report, name, a)
            _check_spmm(report, name, a, rng, nthreads)
            _check_solvers(report, name, a, rng)
    return report


# ----------------------------------------------------------------------
# workload kernels
# ----------------------------------------------------------------------
def _check_spgemm(report: CheckReport, name: str, a) -> None:
    if not a.is_square or a.nrows > SPGEMM_MAX_ROWS:
        return
    subject = f"matrix={name} kernel=spgemm"
    try:
        c = products.spgemm(a)
    except Exception as exc:  # noqa: BLE001 - report
        report.case()
        report.fail(SUITE, "kernel-crash", subject,
                    f"{type(exc).__name__}: {exc}")
        return
    d = a.to_dense()
    oracle = d @ d
    dense_c = c.to_dense()
    err = float(np.max(np.abs(dense_c - oracle), initial=0.0))
    report.check(
        dense_c.shape == oracle.shape
        and bool(np.allclose(dense_c, oracle, rtol=1e-8, atol=1e-10)),
        SUITE, "spgemm-matches-dense-oracle", subject,
        f"max abs error {err:.3e} vs dense A @ A")


def _check_spmm(report: CheckReport, name: str, a, rng,
                nthreads) -> None:
    if a.nrows > SPMM_MAX_ROWS:
        return
    x = rng.standard_normal((a.ncols, SPMM_VECTORS))
    oracle = a.to_dense() @ x
    for kind in KERNEL_KINDS:
        for nt in nthreads:
            subject = (f"matrix={name} kernel=spmm:{kind} "
                       f"nthreads={nt}")
            try:
                y = products.spmm(a, x, kind, nt)
            except Exception as exc:  # noqa: BLE001 - report
                report.case()
                report.fail(SUITE, "kernel-crash", subject,
                            f"{type(exc).__name__}: {exc}")
                continue
            err = float(np.max(np.abs(y - oracle), initial=0.0))
            report.check(
                y.shape == oracle.shape
                and bool(np.allclose(y, oracle, rtol=1e-8, atol=1e-10)),
                SUITE, "spmm-matches-dense-oracle", subject,
                f"max abs error {err:.3e} vs dense A @ X "
                f"(k={SPMM_VECTORS})")


def _spd_system(a):
    """A diagonally dominant SPD stand-in sharing ``a``'s structure.

    Symmetrise the matrix and boost the diagonal past each row's
    absolute sum, so CG's SPD requirement and Jacobi's dominance
    requirement both hold by construction while the sparsity pattern
    (what reordering acts on) stays recognisable.
    """
    d = a.to_dense()
    s = 0.5 * (d + d.T)
    np.fill_diagonal(s, s.diagonal() + np.abs(s).sum(axis=1) + 1.0)
    return csr_from_dense(s), s


def _check_solvers(report: CheckReport, name: str, a, rng) -> None:
    if not a.is_square or a.nrows > SOLVER_MAX_ROWS:
        return
    m, s = _spd_system(a)
    b = rng.standard_normal(a.nrows)
    exact = np.linalg.solve(s, b)
    bnorm = float(np.linalg.norm(b))
    for solver, fn in (("cg", iterative.cg), ("jacobi", iterative.jacobi)):
        for kind in ("1d", "2d"):
            subject = f"matrix={name} solver={solver} kernel={kind}"
            try:
                res = fn(m, b, kind=kind, nthreads=2)
            except ReproError as exc:
                # a typed solver failure on this well-conditioned SPD
                # system is a convergence bug, not an input error
                report.case()
                report.fail(SUITE, f"{solver}-converges", subject,
                            f"solver raised {type(exc).__name__}: {exc}")
                continue
            except Exception as exc:  # noqa: BLE001 - report
                report.case()
                report.fail(SUITE, "solver-crash", subject,
                            f"{type(exc).__name__}: {exc}")
                continue
            report.check(
                res.converged, SUITE, f"{solver}-converges", subject,
                f"no convergence in {res.iterations} iteration(s); "
                f"final residual {res.final_residual:.3e}")
            err = float(np.max(np.abs(res.x - exact), initial=0.0))
            report.check(
                bool(np.allclose(res.x, exact, rtol=1e-6, atol=1e-8)),
                SUITE, f"{solver}-matches-dense-solve", subject,
                f"max abs error {err:.3e} vs np.linalg.solve")
            recomputed = float(np.linalg.norm(b - s @ res.x))
            report.check(
                abs(recomputed - res.final_residual)
                <= 1e-6 * max(bnorm, 1.0),
                SUITE, "solver-residual-matches-recomputed", subject,
                f"reported ||r|| {res.final_residual:.3e} vs "
                f"recomputed {recomputed:.3e}")
            report.check(
                res.iterates.shape == (res.iterations + 1, m.nrows)
                and bool(np.array_equal(res.iterates[-1], res.x)),
                SUITE, "solver-history-final-iterate", subject,
                f"history shape {res.iterates.shape} for "
                f"{res.iterations} iteration(s); the last history row "
                "must equal the returned solution bit-for-bit")
